//! Integration tests for the paper's structural lemmas, validated across
//! crates on randomized instances:
//!
//! * Observation 2.1 — greedy assignment is optimal given calibrations;
//! * Lemma 4.1 — optimal schedules have no idle-then-late pattern;
//! * Lemma 4.2 — each interval can end with an at-release job
//!   (candidate-start restriction is lossless);
//! * Definition 4.4 / Corollary 4.3 — critical-job structure of non-full
//!   intervals.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use calibration_scheduling::core::coverage_by_machine;
use calibration_scheduling::offline::{
    optimal_assignment_exhaustive, optimal_flow_brute, optimal_flow_exhaustive, solve_offline,
};
use calibration_scheduling::prelude::*;

fn random_instance(rng: &mut StdRng, n: usize, span: i64, max_w: u64, t: i64) -> Instance {
    let mut releases: Vec<i64> = Vec::new();
    while releases.len() < n {
        let r = rng.gen_range(0..=span);
        if !releases.contains(&r) {
            releases.push(r);
        }
    }
    releases.sort_unstable();
    let jobs: Vec<Job> = releases
        .into_iter()
        .enumerate()
        .map(|(i, r)| Job::new(i as u32, r, rng.gen_range(1..=max_w)))
        .collect();
    Instance::single_machine(jobs, t).unwrap()
}

/// Observation 2.1: the greedy highest-weight-first assignment matches the
/// exhaustive optimal assignment for any calibration set.
#[test]
fn observation_2_1_greedy_assignment_is_optimal() {
    let mut rng = StdRng::seed_from_u64(61);
    for case in 0..200 {
        let n = rng.gen_range(1..=6);
        let t = rng.gen_range(1..=4);
        let inst = random_instance(&mut rng, n, 10, 9, t);
        // Random calibration times, enough to likely fit all jobs.
        let k = rng.gen_range(1..=4);
        let times: Vec<Time> = (0..k).map(|_| rng.gen_range(-2..12)).collect();
        let greedy = assign_greedy(&inst, &times);
        let exhaustive = optimal_assignment_exhaustive(&inst, &times);
        match (greedy, exhaustive) {
            (Ok(s), Some(best)) => {
                assert_eq!(
                    s.total_weighted_flow(&inst),
                    best,
                    "case {case}: greedy suboptimal on {inst:?} times {times:?}"
                );
            }
            (Err(_), None) => {}
            (g, e) => panic!(
                "case {case}: feasibility disagreement: greedy {:?} vs exhaustive {e:?} on {inst:?} times {times:?}",
                g.map(|s| s.total_weighted_flow(&inst))
            ),
        }
    }
}

/// Lemma 4.2: restricting interval starts to `{r_j + 1 − T}` loses nothing
/// against a full exhaustive search over all start times.
#[test]
fn lemma_4_2_candidate_starts_are_lossless() {
    let mut rng = StdRng::seed_from_u64(62);
    for case in 0..60 {
        let n = rng.gen_range(1..=5);
        let t = rng.gen_range(1..=3);
        let inst = random_instance(&mut rng, n, 8, 5, t);
        for k in 1..=2usize {
            let restricted = optimal_flow_brute(&inst, k).map(|(f, _)| f);
            let full = optimal_flow_exhaustive(&inst, k).map(|(f, _)| f);
            assert_eq!(restricted, full, "case {case}: {inst:?} K={k}");
        }
    }
}

/// Lemma 4.1: in a DP-optimal schedule, every job either starts at its
/// release time or has no idle calibrated step between its interval's start
/// and its own slot.
#[test]
fn lemma_4_1_no_idle_before_delayed_jobs() {
    let mut rng = StdRng::seed_from_u64(63);
    for _ in 0..80 {
        let n = rng.gen_range(2..=8);
        let t = rng.gen_range(2..=4);
        let inst = random_instance(&mut rng, n, 16, 7, t);
        let budget = n.div_ceil(t as usize).max(2).min(n);
        let Some(sol) = solve_offline(&inst, budget).unwrap() else {
            continue;
        };
        let sched = &sol.schedule;
        let coverage = coverage_by_machine(&sched.calibrations, 1, inst.cal_len());
        let busy: std::collections::HashSet<Time> =
            sched.assignments.iter().map(|a| a.start).collect();
        for a in &sched.assignments {
            let job = inst.job(a.job).unwrap();
            if a.start == job.release {
                continue;
            }
            // Delayed job: every calibrated step in [release-capped interval
            // start, a.start) must be busy... more precisely the lemma says
            // no idle *calibrated* step between the interval's start and
            // t_j. Walk backwards from a.start to the start of its covering
            // segment.
            let seg = coverage[0]
                .segments()
                .iter()
                .find(|&&(b, e)| b <= a.start && a.start < e)
                .copied()
                .expect("assignment is covered");
            for step in seg.0..a.start {
                assert!(
                    busy.contains(&step),
                    "idle calibrated step {step} before delayed {} at {} on {inst:?}",
                    a.job,
                    a.start
                );
            }
        }
    }
}

/// Corollary 4.3 flavour: in DP-optimal schedules, a job released before the
/// first idle step of a non-full interval is never scheduled after that
/// idle step.
#[test]
fn corollary_4_3_non_full_interval_structure() {
    let mut rng = StdRng::seed_from_u64(64);
    for _ in 0..80 {
        let n = rng.gen_range(2..=8);
        let t = rng.gen_range(2..=5);
        let inst = random_instance(&mut rng, n, 14, 5, t);
        let budget = n.min(4);
        let Some(sol) = solve_offline(&inst, budget).unwrap() else {
            continue;
        };
        let sched = &sol.schedule;
        let coverage = coverage_by_machine(&sched.calibrations, 1, inst.cal_len());
        let busy: std::collections::HashSet<Time> =
            sched.assignments.iter().map(|a| a.start).collect();
        for &(b, e) in coverage[0].segments() {
            // First idle step of this covered segment, if any.
            let Some(idle) = (b..e).find(|s| !busy.contains(s)) else {
                continue;
            };
            for a in &sched.assignments {
                let job = inst.job(a.job).unwrap();
                if job.release < idle {
                    assert!(
                        a.start <= idle,
                        "{} released {} before idle {idle} but runs at {} on {inst:?}",
                        a.job,
                        job.release,
                        a.start
                    );
                }
            }
        }
    }
}
