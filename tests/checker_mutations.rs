//! Property test for the feasibility checker: `check_schedule` must reject
//! every corrupted schedule and name the right violation.
//!
//! Starting from known-good schedules (produced by an online run on
//! generated instances and verified clean), each mutation below breaks
//! exactly one of the Section 2 feasibility rules:
//!
//! * pulling a job's start before its release;
//! * moving a job outside every calibrated interval;
//! * stacking two jobs into one `(machine, time)` slot.
//!
//! The checker defines correctness for the whole differential harness, so
//! it gets its own adversarial coverage: a checker that silently accepts
//! corrupt schedules would make every downstream green light meaningless.

use calib_difftest::{gen_case, GenParams};
use calibration_scheduling::online::{run_online, CalibrateImmediately};
use calibration_scheduling::prelude::*;
use proptest::{Strategy, TestRng};

/// Known-good `(instance, schedule)` pairs: an engine run whose output the
/// checker accepts.
fn good_schedules(count: usize) -> Vec<(Instance, Schedule)> {
    let params = GenParams::default();
    let mut out = Vec::new();
    let mut seed = 0u64;
    while out.len() < count {
        let case = gen_case(seed, &params);
        seed += 1;
        let run = run_online(&case.instance, case.cal_cost, &mut CalibrateImmediately);
        assert!(
            check_schedule(&case.instance, &run.schedule).is_ok(),
            "engine produced an infeasible schedule on seed {}",
            seed - 1
        );
        out.push((case.instance, run.schedule));
    }
    out
}

/// The violation codes reported for `mutated` against `instance`.
fn codes(instance: &Instance, mutated: &Schedule) -> Vec<&'static str> {
    match check_schedule(instance, mutated) {
        Ok(()) => Vec::new(),
        Err(e) => e.violations.iter().map(|v| v.code()).collect(),
    }
}

#[test]
fn start_before_release_is_rejected() {
    let mut exercised = 0;
    for (inst, sched) in good_schedules(40) {
        // Corrupt the first assignment whose release is late enough that
        // starting earlier is a genuine violation.
        let Some(idx) = sched.assignments.iter().position(|a| {
            inst.job(a.job)
                .is_some_and(|j| j.release > 0 && a.start == j.release)
        }) else {
            continue;
        };
        let mut bad = sched.clone();
        bad.assignments[idx].start -= 1;
        let codes = codes(&inst, &bad);
        assert!(
            codes.contains(&"started-before-release"),
            "early start not reported; got {codes:?}"
        );
        exercised += 1;
    }
    assert!(
        exercised >= 5,
        "only {exercised} cases exercised the mutation"
    );
}

#[test]
fn run_outside_calibrated_interval_is_rejected() {
    let mut exercised = 0;
    for (inst, sched) in good_schedules(40) {
        // Push the last assignment far past every calibration's coverage.
        let Some(last_cal) = sched.calibration_times().last().copied() else {
            continue;
        };
        let mut bad = sched.clone();
        let Some(a) = bad.assignments.last_mut() else {
            continue;
        };
        a.start = last_cal + inst.cal_len() + 1_000;
        let codes = codes(&inst, &bad);
        assert!(
            codes.contains(&"uncalibrated-slot"),
            "uncalibrated run not reported; got {codes:?}"
        );
        exercised += 1;
    }
    assert!(
        exercised >= 5,
        "only {exercised} cases exercised the mutation"
    );
}

#[test]
fn two_jobs_in_one_slot_is_rejected() {
    let mut exercised = 0;
    for (inst, sched) in good_schedules(40) {
        if sched.assignments.len() < 2 {
            continue;
        }
        // Collide the second assignment into the first one's slot; keep the
        // victim's release satisfied so the only new violation class is the
        // conflict (plus possibly an uncalibrated/early side effect — the
        // conflict itself must still be named).
        let mut bad = sched.clone();
        let target = bad.assignments[0];
        let job = bad.assignments[1].job;
        let release = inst.job(job).unwrap().release;
        if release > target.start {
            continue;
        }
        bad.assignments[1].start = target.start;
        bad.assignments[1].machine = target.machine;
        let codes = codes(&inst, &bad);
        assert!(
            codes.contains(&"slot-conflict"),
            "slot conflict not reported; got {codes:?}"
        );
        exercised += 1;
    }
    assert!(
        exercised >= 5,
        "only {exercised} cases exercised the mutation"
    );
}

/// The same three mutations driven through the proptest strategy shim, so
/// the corrupted-schedule property composes with the crate's other
/// property tests.
#[test]
fn checker_rejects_mutants_property() {
    let strategy = calib_difftest::cases(GenParams::default());
    let mut rng = TestRng::for_case("checker_mutations", "rejects_mutants", 0);
    let mut rejected = 0;
    for _ in 0..60 {
        let case = strategy.generate(&mut rng);
        let run = run_online(&case.instance, case.cal_cost, &mut CalibrateImmediately);
        let mut bad = run.schedule.clone();
        let Some(a) = bad.assignments.last_mut() else {
            continue;
        };
        a.start += 10_000; // far outside any calibration
        assert!(
            check_schedule(&case.instance, &bad).is_err(),
            "checker accepted a corrupted schedule for {}",
            case.name
        );
        rejected += 1;
    }
    assert!(rejected >= 30);
}
