//! End-to-end integration tests spanning all workspace crates: workload
//! generation → online algorithms → offline optimum → LP certificate →
//! checker, exercised through the meta-crate's public API exactly as a
//! downstream user would.

use calibration_scheduling::lp::lp_lower_bound;
use calibration_scheduling::online::SkiRentalBatch;
use calibration_scheduling::prelude::*;
use calibration_scheduling::workloads::{arrivals, WeightModel};

#[test]
fn full_pipeline_unweighted() {
    // Generate → run online → exact OPT → verify everything agrees.
    let inst = make_instance(
        arrivals::poisson(100, 30, 0.5, true),
        WeightModel::Unit,
        100,
        1,
        6,
    );
    for g in [2u128, 9, 33, 120] {
        let online = run_online(&inst, g, &mut Alg1::new());
        check_schedule(&inst, &online.schedule).unwrap();
        let opt = opt_online_cost(&inst, g).unwrap();
        assert!(online.cost >= opt.cost, "online can't beat OPT (G={g})");
        assert!(online.cost <= 3 * opt.cost, "Theorem 3.3 (G={g})");
        // The reconstructed optimal schedule is feasible and achieves the
        // claimed cost.
        let sol = solve_offline(&inst, opt.calibrations).unwrap().unwrap();
        check_schedule(&inst, &sol.schedule).unwrap();
        assert_eq!(sol.flow, opt.flow);
    }
}

#[test]
fn full_pipeline_weighted() {
    let inst = make_instance(
        arrivals::uniform_spread(200, 24, 60, true),
        WeightModel::Pareto {
            alpha: 1.3,
            cap: 40,
        },
        200,
        1,
        5,
    );
    for g in [3u128, 20, 77] {
        let online = run_online(&inst, g, &mut Alg2::new());
        let opt = opt_online_cost(&inst, g).unwrap();
        assert!(online.cost <= 12 * opt.cost, "Theorem 3.8 (G={g})");
    }
}

#[test]
fn full_pipeline_multi_machine_with_lp_certificate() {
    let inst = make_instance(arrivals::bursty(2, 3, 8, false), WeightModel::Unit, 7, 2, 4);
    let g = 6u128;
    let spec = run_online(&inst, g, &mut Alg3::new());
    let practical = run_alg3_practical(&inst, g);
    check_schedule(&inst, &spec.schedule).unwrap();
    check_schedule(&inst, &practical.schedule).unwrap();
    assert_eq!(spec.calibrations, practical.calibrations);
    assert!(practical.flow <= spec.flow);

    let lb = lp_lower_bound(&inst, g).unwrap();
    assert!(
        (spec.cost as f64) <= 12.0 * lb + 1e-6,
        "Theorem 3.10 certified"
    );
    assert!(lb <= spec.cost as f64 + 1e-6);
}

#[test]
fn trace_round_trip_preserves_experiment_results() {
    let inst = make_instance(
        arrivals::staircase(5, 7, true),
        WeightModel::Uniform { max: 7 },
        300,
        1,
        4,
    );
    let trace = Trace::new("staircase(7)", 300, 15, inst.clone());
    let json = trace.to_json().unwrap();
    let back = Trace::from_json(&json).unwrap();
    // Re-running the same algorithm on the deserialized instance gives
    // bit-identical results.
    let a = run_online(&inst, 15, &mut Alg2::new());
    let b = run_online(&back.instance, 15, &mut Alg2::new());
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.cost, b.cost);
}

#[test]
fn online_costs_ordered_by_algorithm_quality_on_train() {
    // On the lower-bound job train with matching G, Alg1 ≤ ski-rental.
    let inst = make_instance(arrivals::job_train(40), WeightModel::Unit, 0, 1, 40);
    let g = 40u128 * 40;
    let alg1 = run_online(&inst, g, &mut Alg1::new());
    let ski = run_online(&inst, g, &mut SkiRentalBatch);
    let opt = opt_online_cost(&inst, g).unwrap();
    assert!(alg1.cost <= ski.cost);
    assert!(alg1.cost <= 3 * opt.cost);
}

#[test]
fn prelude_covers_the_readme_snippet() {
    // The README quickstart, kept compiling forever.
    let inst = InstanceBuilder::new(4)
        .unit_jobs([0, 1, 2, 10, 11])
        .build()
        .unwrap();
    let online = run_online(&inst, 6, &mut Alg1::new());
    let opt = opt_online_cost(&inst, 6).unwrap();
    assert!(online.cost <= 3 * opt.cost);
}

/// The full certification chain on tiny multi-machine instances:
/// `LP ≤ OPT (exact brute force) ≤ ALG3`, so the LP-certified ratios of
/// experiment E3 are genuine upper bounds on the true ratios.
#[test]
fn lp_opt_alg3_ordering_on_multi_machine() {
    use calibration_scheduling::offline::opt_online_brute_multi;
    let cases = [
        (vec![0i64, 0, 1], 2usize, 2i64),
        (vec![0, 2, 3, 5], 2, 3),
        (vec![0, 0, 0, 1], 3, 2),
    ];
    for (releases, p, t) in cases {
        let jobs: Vec<Job> = releases
            .iter()
            .enumerate()
            .map(|(i, &r)| Job::unweighted(i as u32, r))
            .collect();
        let inst = Instance::new(jobs, p, t).unwrap();
        for g in [1u128, 3, 8] {
            let lb = lp_lower_bound(&inst, g).unwrap();
            let (opt, sched) = opt_online_brute_multi(&inst, g, inst.n()).unwrap();
            check_schedule(&inst, &sched).unwrap();
            let alg = run_online(&inst, g, &mut Alg3::new()).cost;
            assert!(
                lb <= opt as f64 + 1e-6,
                "LP {lb} above OPT {opt} on {releases:?} P={p} G={g}"
            );
            assert!(alg >= opt, "ALG3 {alg} below OPT {opt}?!");
            assert!(alg <= 12 * opt, "Theorem 3.10 vs exact OPT");
        }
    }
}
