//! Integration tests for the `calib` command-line tool (spawned as a real
//! subprocess via `CARGO_BIN_EXE_calib`).

use std::process::Command;

fn calib(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_calib"))
        .args(args)
        .output()
        .expect("spawn calib");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn tmp_path(name: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!("calib-cli-test-{}-{name}", std::process::id()));
    p.to_string_lossy().into_owned()
}

#[test]
fn gen_online_offline_opt_pipeline() {
    let trace = tmp_path("pipeline.json");
    let (ok, _, err) = calib(&[
        "gen", "--family", "bursty", "--burst", "3", "--gap", "15", "--n", "6", "--t", "4",
        "--seed", "5", "--out", &trace,
    ]);
    assert!(ok, "gen failed: {err}");

    let (ok, stdout, _) = calib(&["online", "--alg", "alg1", "--g", "8", "--trace", &trace]);
    assert!(ok);
    assert!(stdout.contains("alg1: flow="), "got: {stdout}");
    assert!(stdout.contains("calibrations="));

    let (ok, stdout, _) = calib(&["offline", "--budget", "2", "--trace", &trace, "--gantt"]);
    assert!(ok);
    assert!(stdout.contains("offline DP (Propositions 1-2): flow="));
    assert!(stdout.contains("m0 "), "gantt row expected: {stdout}");

    let (ok, stdout, _) = calib(&["opt", "--g", "8", "--trace", &trace]);
    assert!(ok);
    assert!(stdout.contains("OPT(G=8)"));

    std::fs::remove_file(&trace).ok();
}

#[test]
fn online_cost_never_below_opt_via_cli() {
    let trace = tmp_path("bound.json");
    calib(&[
        "gen", "--family", "poisson", "--rate", "0.6", "--n", "12", "--t", "3", "--seed", "9",
        "--out", &trace,
    ]);
    let (_, online_out, _) = calib(&["online", "--alg", "alg1", "--g", "12", "--trace", &trace]);
    let (_, opt_out, _) = calib(&["opt", "--g", "12", "--trace", &trace]);
    let grab = |s: &str, key: &str| -> u128 {
        s.split(key)
            .nth(1)
            .and_then(|rest| {
                rest.chars()
                    .take_while(|c| c.is_ascii_digit())
                    .collect::<String>()
                    .parse()
                    .ok()
            })
            .unwrap_or_else(|| panic!("no '{key}' in: {s}"))
    };
    let alg_cost = grab(&online_out, "cost=");
    let opt_cost = grab(&opt_out, "cost=");
    assert!(alg_cost >= opt_cost);
    assert!(
        alg_cost <= 3 * opt_cost,
        "Theorem 3.3 via CLI: {alg_cost} vs {opt_cost}"
    );
    std::fs::remove_file(&trace).ok();
}

#[test]
fn weighted_generation_models() {
    for spec in ["unit", "uniform:9", "pareto:1.2:50", "bimodal:40:0.2"] {
        let trace = tmp_path(&format!("w-{}.json", spec.replace(':', "-")));
        let (ok, _, err) = calib(&[
            "gen",
            "--family",
            "train",
            "--n",
            "8",
            "--t",
            "3",
            "--weights",
            spec,
            "--out",
            &trace,
        ]);
        assert!(ok, "gen {spec} failed: {err}");
        let (ok, stdout, _) = calib(&["online", "--alg", "alg2", "--g", "10", "--trace", &trace]);
        assert!(ok, "alg2 on {spec}: {stdout}");
        std::fs::remove_file(&trace).ok();
    }
}

#[test]
fn adversary_subcommand() {
    let (ok, stdout, _) = calib(&["adversary", "--t", "64", "--g", "32"]);
    assert!(ok);
    assert!(stdout.contains("ratio="));
}

#[test]
fn helpful_errors() {
    let (ok, _, err) = calib(&["online", "--alg", "alg1"]);
    assert!(!ok);
    assert!(
        err.contains("missing --g") || err.contains("usage"),
        "got: {err}"
    );

    let (ok, _, err) = calib(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"));

    let (ok, _, err) = calib(&["gen", "--family", "nope", "--n", "3", "--t", "2"]);
    assert!(!ok);
    assert!(err.contains("unknown family"));
}

#[test]
fn unweighted_solver_via_cli_matches_general() {
    let trace = tmp_path("solver.json");
    calib(&[
        "gen", "--family", "poisson", "--rate", "0.5", "--n", "10", "--t", "3", "--seed", "4",
        "--out", &trace,
    ]);
    let (_, general, _) = calib(&["offline", "--budget", "4", "--trace", &trace]);
    let (_, slot, _) = calib(&[
        "offline",
        "--budget",
        "4",
        "--trace",
        &trace,
        "--solver",
        "unweighted",
    ]);
    let grab = |s: &str| -> u128 {
        s.split("flow=")
            .nth(1)
            .and_then(|r| {
                r.chars()
                    .take_while(|c| c.is_ascii_digit())
                    .collect::<String>()
                    .parse()
                    .ok()
            })
            .unwrap_or_else(|| panic!("no flow in: {s}"))
    };
    assert_eq!(
        grab(&general),
        grab(&slot),
        "the two exact solvers must agree"
    );
    std::fs::remove_file(&trace).ok();
}
