//! The Lemma 3.1 lower-bound adversary in action: it probes whether an
//! online algorithm calibrates immediately, then constructs the workload
//! that hurts it most. No deterministic algorithm can beat ratio 2 − o(1);
//! watch the measured ratios approach 2 as G grows — and watch the naive
//! baseline blow past 2 entirely.
//!
//! ```text
//! cargo run --release --example adversary_duel
//! ```

use calibration_scheduling::online::{CalibrateImmediately, SkiRentalBatch};
use calibration_scheduling::prelude::*;

fn main() {
    println!("Lemma 3.1 adversary vs three algorithms\n");
    println!(
        "{:<22} {:>6} {:>8} {:>16} {:>8}",
        "algorithm", "T", "G", "branch", "ratio"
    );

    for (t, g) in [(8i64, 4u128), (32, 16), (128, 64), (512, 256), (2048, 1024)] {
        let a1 = play_lemma31(t, g, Alg1::new);
        println!(
            "{:<22} {:>6} {:>8} {:>16} {:>8.3}",
            "Alg1",
            t,
            g,
            format!("{:?}", a1.branch),
            a1.ratio()
        );
        let eager = play_lemma31(t, g, || CalibrateImmediately);
        println!(
            "{:<22} {:>6} {:>8} {:>16} {:>8.3}",
            "CalibrateImmediately",
            t,
            g,
            format!("{:?}", eager.branch),
            eager.ratio()
        );
        let ski = play_lemma31(t, g, || SkiRentalBatch);
        println!(
            "{:<22} {:>6} {:>8} {:>16} {:>8.3}",
            "SkiRentalBatch",
            t,
            g,
            format!("{:?}", ski.branch),
            ski.ratio()
        );
    }

    println!("\nAlg1 hugs the lower-bound curve (2G+2)/(G+3) -> 2;");
    println!("the pure ski-rental baseline, lacking the queue rule, is");
    println!("unboundedly punished by the job train.");
}
