//! Quickstart: schedule a small job set online, compare against the exact
//! offline optimum, and inspect the schedule.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use calibration_scheduling::prelude::*;

fn main() {
    // A machine whose calibration lasts T = 5 steps; calibrating costs G = 8.
    // Unit jobs arrive in two bursts.
    let instance = InstanceBuilder::new(5)
        .unit_jobs([0, 1, 2, 20, 21, 22, 23])
        .build()
        .expect("valid instance");
    let g: Cost = 8;

    println!(
        "instance: {} jobs, T = {}, G = {g}",
        instance.n(),
        instance.cal_len()
    );

    // --- Online: the 3-competitive Algorithm 1 -----------------------------
    let online = run_online(&instance, g, &mut Alg1::new());
    println!("\nAlg1 (online, 3-competitive):");
    println!("  calibrations : {}", online.calibrations);
    println!("  flow         : {}", online.flow);
    println!("  total cost   : {}", online.cost);
    for (t, reason) in &online.trace {
        println!("  calibrated at t={t} ({reason})");
    }

    // --- Offline: exact optimum via the O(K n^3) dynamic program -----------
    let opt = opt_online_cost(&instance, g).expect("single machine, distinct releases");
    println!("\nexact offline OPT:");
    println!("  calibrations : {}", opt.calibrations);
    println!("  flow         : {}", opt.flow);
    println!("  total cost   : {}", opt.cost);

    let ratio = online.cost as f64 / opt.cost as f64;
    println!("\ncompetitive ratio on this instance: {ratio:.3} (theorem bound: 3)");
    assert!(online.cost <= 3 * opt.cost);

    // --- Inspect and verify the online schedule ----------------------------
    println!("\nonline schedule:");
    for a in online.schedule.sorted_assignments() {
        let job = instance.job(a.job).unwrap();
        println!(
            "  t={:>3}  {}  (released {}, flow {})",
            a.start,
            a.job,
            job.release,
            a.start + 1 - job.release
        );
    }
    check_schedule(&instance, &online.schedule).expect("engine output is always feasible");
    println!("\nschedule verified by the independent checker ✓");

    println!("\nGantt ('#' job, '.' calibrated idle, '^' release):");
    print!(
        "{}",
        calibration_scheduling::core::render_gantt(&instance, &online.schedule)
    );
}
