//! Captures a probed online run as a JSON-lines trace, then re-parses the
//! trace from text and renders the reconstructed schedule as an ASCII Gantt
//! timeline — the round trip the observability layer is for.
//!
//! Usage:
//!
//! ```text
//! cargo run --example trace_dump              # print trace summary + Gantt
//! cargo run --example trace_dump out.jsonl    # also save the raw trace
//! ```

use calib_core::obs::TraceProbe;
use calib_core::{
    check_schedule, render_gantt, Assignment, Calibration, JobId, Json, MachineId, Schedule, Time,
};
use calib_online::{run_online_probed, Alg3, EngineConfig};
use calib_workloads::{arrivals, make_instance, WeightModel};

fn field(obj: &Json, key: &str) -> i64 {
    obj.get(key)
        .and_then(Json::as_i64)
        .unwrap_or_else(|| panic!("trace line missing numeric {key:?}"))
}

fn main() {
    // Two bursty machines with dead air between bursts: small enough for a
    // readable timeline, busy enough to exercise skips and calibrations.
    let inst = make_instance(
        arrivals::bursty(4, 5, 11, false),
        WeightModel::Uniform { max: 5 },
        3,
        2,
        6,
    );
    let g = 8;

    // Run with a trace probe writing JSON lines into memory.
    let mut probe = TraceProbe::new(Vec::new());
    let res = run_online_probed(
        &inst,
        g,
        &mut Alg3::new(),
        EngineConfig::default(),
        &mut probe,
    );
    let trace = String::from_utf8(probe.finish().expect("in-memory writes cannot fail"))
        .expect("traces are UTF-8");

    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, &trace).expect("write trace file");
        println!("raw trace saved to {path}");
    }

    // Re-parse the text and rebuild the schedule from calibrate/dispatch
    // events alone — everything the engine did is in the trace.
    let mut calibrations: Vec<Calibration> = Vec::new();
    let mut assignments: Vec<Assignment> = Vec::new();
    let mut kinds: Vec<(String, u64)> = Vec::new();
    let mut skips: Vec<(Time, Time)> = Vec::new();
    for line in trace.lines() {
        let obj = Json::parse(line).expect("every trace line is one JSON object");
        let kind = obj
            .get("type")
            .and_then(Json::as_str)
            .expect("tagged")
            .to_string();
        match kinds.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, c)) => *c += 1,
            None => kinds.push((kind.clone(), 1)),
        }
        match kind.as_str() {
            "calibrate" => calibrations.push(Calibration {
                machine: MachineId(field(&obj, "machine") as u32),
                start: field(&obj, "start"),
            }),
            "dispatch" => assignments.push(Assignment {
                job: JobId(field(&obj, "job") as u32),
                start: field(&obj, "start"),
                machine: MachineId(field(&obj, "machine") as u32),
            }),
            "time_skip" => skips.push((field(&obj, "from"), field(&obj, "to"))),
            _ => {}
        }
    }

    let rebuilt = Schedule::new(calibrations, assignments);
    check_schedule(&inst, &rebuilt).expect("replayed trace yields a feasible schedule");
    assert_eq!(
        rebuilt.total_weighted_flow(&inst),
        res.schedule.total_weighted_flow(&inst),
        "replayed schedule must cost exactly what the engine reported"
    );

    println!(
        "{} jobs on {} machines, T = {}, G = {g}: cost {} ({} calibrations)",
        inst.n(),
        inst.machines(),
        inst.cal_len(),
        res.cost,
        rebuilt.calibration_count(),
    );
    println!("\nevents by kind:");
    for (kind, count) in &kinds {
        println!("  {kind:<14} {count}");
    }
    if !skips.is_empty() {
        let skipped: Time = skips.iter().map(|(from, to)| to - from - 1).sum();
        println!(
            "\n{} time skips jumped {} quiescent steps",
            skips.len(),
            skipped
        );
    }
    println!("\nreplayed timeline (# job, . calibrated idle, ^ release):");
    print!("{}", render_gantt(&inst, &rebuilt));
}
