//! A precision-manufacturing scenario (weighted jobs, one machine):
//! a CNC station must be recalibrated every `T` steps; rush orders carry
//! much higher weight than routine ones. Algorithm 2 (12-competitive)
//! balances calibration spending against weighted waiting time, and the
//! run is compared against the exact offline optimum and the
//! lightest-first ablation.
//!
//! ```text
//! cargo run --release --example factory_floor
//! ```

use calibration_scheduling::prelude::*;
use calibration_scheduling::workloads::{arrivals, WeightModel};

fn main() {
    // Routine orders trickle in (Poisson); 5% are rush orders (weight 50).
    let releases = arrivals::poisson(2024, 60, 0.35, true);
    let instance = make_instance(
        releases,
        WeightModel::Bimodal {
            heavy: 50,
            p_heavy: 0.05,
        },
        2024,
        1,
        6, // calibration lasts 6 steps
    );
    let g: Cost = 30; // a calibration costs as much as 30 weighted wait-steps

    println!(
        "factory floor: {} orders ({} rush), T = {}, G = {g}",
        instance.n(),
        instance.jobs().iter().filter(|j| j.weight > 1).count(),
        instance.cal_len(),
    );

    let alg2 = run_online(&instance, g, &mut Alg2::new());
    let ablated = run_online(&instance, g, &mut Alg2::lightest_first());
    let opt = opt_online_cost(&instance, g).expect("normalized instance");

    println!("\n                     calibrations   weighted flow   total cost");
    println!(
        "Alg2 (heaviest-1st)  {:>12}   {:>13}   {:>10}",
        alg2.calibrations, alg2.flow, alg2.cost
    );
    println!(
        "Alg2 (lightest-1st)  {:>12}   {:>13}   {:>10}",
        ablated.calibrations, ablated.flow, ablated.cost
    );
    println!(
        "offline optimum      {:>12}   {:>13}   {:>10}",
        opt.calibrations, opt.flow, opt.cost
    );

    println!(
        "\ncompetitive ratio: {:.3} (theorem bound: 12)",
        alg2.cost as f64 / opt.cost as f64
    );
    println!(
        "extraction-order ablation costs {:.1}% extra",
        100.0 * (ablated.cost as f64 / alg2.cost as f64 - 1.0)
    );
    assert!(alg2.cost <= 12 * opt.cost);

    // How long did rush orders wait under Alg2?
    let mut worst_rush = 0;
    for a in &alg2.schedule.assignments {
        let job = instance.job(a.job).unwrap();
        if job.weight > 1 {
            worst_rush = worst_rush.max(a.start + 1 - job.release);
        }
    }
    println!("worst rush-order flow under Alg2: {worst_rush} steps");
}
