//! The paper's motivating setting (Integrated Stockpile Evaluation):
//! a bank of identical test rigs must each be expensively calibrated before
//! running tests, and a calibration is only trusted for `T` steps. Test
//! requests arrive in campaign bursts. Algorithm 3 (12-competitive on `P`
//! machines) decides when to calibrate which rig; its cost is certified
//! against the Figure 1 LP lower bound, and the paper's "practical"
//! re-assignment variant is shown alongside.
//!
//! ```text
//! cargo run --release --example isotope_lab
//! ```

use calibration_scheduling::lp::lp_lower_bound;
use calibration_scheduling::prelude::*;
use calibration_scheduling::workloads::{arrivals, WeightModel};

fn main() {
    let rigs = 3;
    // Two campaign bursts of 3 tests each, 10 steps apart (tests within a
    // burst are requested simultaneously — fine for the online engine).
    // Kept lab-sized: the LP certificate below is a dense simplex solve
    // whose tableau grows as O(n·horizon·rigs) rows.
    let releases = arrivals::bursty(2, 3, 10, false);
    let instance = make_instance(releases, WeightModel::Unit, 7, rigs, 5);
    let g: Cost = 12;

    println!(
        "isotope lab: {} tests over {} rigs, T = {}, G = {g}",
        instance.n(),
        instance.machines(),
        instance.cal_len(),
    );

    let spec = run_online(&instance, g, &mut Alg3::new());
    let practical = run_alg3_practical(&instance, g);

    println!("\n                      calibrations   flow   total cost");
    println!(
        "Alg3 (as specified)   {:>12}   {:>4}   {:>10}",
        spec.calibrations, spec.flow, spec.cost
    );
    println!(
        "Alg3 (practical)      {:>12}   {:>4}   {:>10}",
        practical.calibrations, practical.flow, practical.cost
    );

    // Certified ratio: OPT >= LP, so ALG/LP upper-bounds the true ratio.
    let lb = lp_lower_bound(&instance, g).expect("LP solves on lab-sized instances");
    println!("\nLP lower bound on any schedule's cost: {lb:.2}");
    println!(
        "certified competitive ratio of Alg3 here: <= {:.3} (theorem bound: 12)",
        spec.cost as f64 / lb
    );
    assert!((spec.cost as f64) <= 12.0 * lb + 1e-6);

    // Per-rig utilization.
    println!("\nper-rig schedule:");
    for m in 0..rigs {
        let mut slots: Vec<Time> = spec
            .schedule
            .assignments
            .iter()
            .filter(|a| a.machine.index() == m)
            .map(|a| a.start)
            .collect();
        slots.sort_unstable();
        let cals = spec
            .schedule
            .calibrations
            .iter()
            .filter(|c| c.machine.index() == m)
            .count();
        println!("  rig {m}: {cals} calibration(s), tests at {slots:?}");
    }
}
