//! # calibration-scheduling
//!
//! A complete, tested reproduction of **"Minimizing Total Weighted Flow
//! Time with Calibrations"** (Chau, McCauley, Li, Wang — SPAA 2017).
//!
//! Machines must be *calibrated* (cost `G`) before running jobs, and a
//! calibration lasts only `T` time steps. Unit jobs arrive over time with
//! weights; the goal is to balance calibration spending against total
//! weighted flow time.
//!
//! This meta-crate re-exports the whole workspace:
//!
//! * [`core`] ([`calib_core`]) — instances, schedules, exact costs, the
//!   feasibility checker, and the Observation 2.1 optimal assigner;
//! * [`online`] ([`calib_online`]) — the paper's three constant-competitive
//!   online algorithms, the simulation engine, naive baselines, and the
//!   Lemma 3.1 lower-bound adversary;
//! * [`offline`] ([`calib_offline`]) — the `O(K n³)` optimal dynamic
//!   program with schedule reconstruction, plus brute-force oracles;
//! * [`lp`] ([`calib_lp`]) — a simplex substrate and the Figure 1/2
//!   analysis LPs (certified lower bounds);
//! * [`workloads`] ([`calib_workloads`]) — synthetic workload families and
//!   trace serialization;
//! * [`sim`] ([`calib_sim`]) — the E1–E10 experiment suite.
//!
//! ## Quickstart
//!
//! ```
//! use calibration_scheduling::prelude::*;
//!
//! // Five unit jobs on one machine; calibrations last T = 4 steps.
//! let inst = InstanceBuilder::new(4).unit_jobs([0, 1, 2, 10, 11]).build().unwrap();
//!
//! // Run the 3-competitive online algorithm with calibration cost G = 6.
//! let online = run_online(&inst, 6, &mut Alg1::new());
//!
//! // Compare with the exact offline optimum.
//! let opt = opt_online_cost(&inst, 6).unwrap();
//! assert!(online.cost <= 3 * opt.cost); // Theorem 3.3
//! ```

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use calib_core as core;
pub use calib_lp as lp;
pub use calib_offline as offline;
pub use calib_online as online;
pub use calib_sim as sim;
pub use calib_workloads as workloads;

/// The most commonly used items, one `use` away.
pub mod prelude {
    pub use calib_core::{
        assign_greedy, check_schedule, Assignment, Calibration, Cost, Instance, InstanceBuilder,
        Job, JobId, MachineId, PriorityPolicy, Schedule, Time, Weight,
    };
    pub use calib_offline::{
        min_flow_by_budget, opt_online_cost, optimal_flow_brute, solve_offline,
    };
    pub use calib_online::{
        play_lemma31, run_alg3_practical, run_online, Alg1, Alg2, Alg3, OnlineScheduler, RunResult,
    };
    pub use calib_workloads::{make_instance, Trace, WeightModel};
}
