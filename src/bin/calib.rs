//! `calib` — command-line front end for the calibration-scheduling library.
//!
//! ```text
//! calib gen      --family poisson --rate 0.5 --n 30 --t 5 --machines 1 --seed 7 --out trace.json
//! calib online   --alg alg1|alg2|alg3|wmulti|naive|ski --g 20 --trace trace.json [--gantt]
//! calib offline  --budget 4 --trace trace.json [--gantt]
//! calib opt      --g 20 --trace trace.json
//! calib adversary --t 64 --g 32
//! ```
//!
//! Arguments are `--key value` pairs (hand-rolled parsing; the workspace
//! deliberately sticks to its vetted dependency set).

use std::collections::HashMap;
use std::process::ExitCode;

use calibration_scheduling::core::{render_gantt, schedule_stats};
use calibration_scheduling::offline::opt_online_cost_ternary;
use calibration_scheduling::online::{CalibrateImmediately, SkiRentalBatch, WeightedMulti};
use calibration_scheduling::prelude::*;
use calibration_scheduling::workloads::{arrivals, WeightModel};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "gen" => cmd_gen(&opts),
        "online" => cmd_online(&opts),
        "offline" => cmd_offline(&opts),
        "opt" => cmd_opt(&opts),
        "adversary" => cmd_adversary(&opts),
        _ => Err(format!("unknown command '{cmd}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  calib gen       --family poisson|bursty|uniform|train|staircase [--rate R] [--burst B] [--gap D]
                  --n N --t T [--machines P] [--seed S] [--weights unit|uniform:MAX|pareto:ALPHA:CAP|bimodal:W:P]
                  [--out FILE]
  calib online    --alg alg1|alg2|alg3|wmulti|naive|ski --g G --trace FILE [--gantt]
  calib offline   --budget K --trace FILE [--gantt] [--solver general|unweighted]
  calib opt       --g G --trace FILE
  calib adversary --t T --g G";

type Opts = HashMap<String, String>;

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let key = key
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --key, got '{key}'"))?;
        if key == "gantt" {
            opts.insert(key.to_string(), "true".to_string());
            continue;
        }
        let val = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        opts.insert(key.to_string(), val.clone());
    }
    Ok(opts)
}

fn get<'a>(opts: &'a Opts, key: &str) -> Result<&'a str, String> {
    opts.get(key)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("missing --{key}"))
}

fn get_num<T: std::str::FromStr>(opts: &Opts, key: &str) -> Result<T, String> {
    get(opts, key)?
        .parse()
        .map_err(|_| format!("--{key}: not a number"))
}

fn get_num_or<T: std::str::FromStr>(opts: &Opts, key: &str, default: T) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key}: not a number")),
    }
}

fn parse_weights(spec: &str) -> Result<WeightModel, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        ["unit"] => Ok(WeightModel::Unit),
        ["uniform", max] => Ok(WeightModel::Uniform {
            max: max.parse().map_err(|_| "bad uniform max")?,
        }),
        ["pareto", alpha, cap] => Ok(WeightModel::Pareto {
            alpha: alpha.parse().map_err(|_| "bad pareto alpha")?,
            cap: cap.parse().map_err(|_| "bad pareto cap")?,
        }),
        ["bimodal", w, p] => Ok(WeightModel::Bimodal {
            heavy: w.parse().map_err(|_| "bad bimodal weight")?,
            p_heavy: p.parse().map_err(|_| "bad bimodal probability")?,
        }),
        _ => Err(format!("unknown weight model '{spec}'")),
    }
}

fn load_trace(opts: &Opts) -> Result<Trace, String> {
    let path = get(opts, "trace")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    Trace::from_json(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn cmd_gen(opts: &Opts) -> Result<(), String> {
    let n: usize = get_num(opts, "n")?;
    let t: i64 = get_num(opts, "t")?;
    let machines: usize = get_num_or(opts, "machines", 1)?;
    let seed: u64 = get_num_or(opts, "seed", 0)?;
    let family = get(opts, "family")?;
    let releases = match family {
        "poisson" => arrivals::poisson(seed, n, get_num_or(opts, "rate", 0.5)?, machines == 1),
        "bursty" => {
            let burst: usize = get_num_or(opts, "burst", 4)?;
            let gap: i64 = get_num_or(opts, "gap", 20)?;
            arrivals::bursty(n.div_ceil(burst), burst, gap, machines == 1)
        }
        "uniform" => arrivals::uniform_spread(seed, n, 3 * n as i64, machines == 1),
        "train" => arrivals::job_train(n as i64),
        "staircase" => {
            let gap: i64 = get_num_or(opts, "gap", 10)?;
            let mut steps = 1;
            while steps * (steps + 1) / 2 < n {
                steps += 1;
            }
            arrivals::staircase(steps, gap, machines == 1)
        }
        other => return Err(format!("unknown family '{other}'")),
    };
    let weights = parse_weights(opts.get("weights").map_or("unit", |s| s.as_str()))?;
    let inst = make_instance(releases, weights, seed, machines, t);
    let label = format!("{family}(cli)");
    let trace = Trace::new(label, seed, 0, inst);
    let json = trace.to_json().map_err(|e| e.to_string())?;
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?;
            eprintln!("wrote {} jobs to {path}", trace.instance.n());
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn run_named(alg: &str, inst: &Instance, g: u128) -> Result<RunResult, String> {
    Ok(match alg {
        "alg1" => run_online(inst, g, &mut Alg1::new()),
        "alg2" => run_online(inst, g, &mut Alg2::new()),
        "alg3" => run_online(inst, g, &mut Alg3::new()),
        "alg3-practical" => run_alg3_practical(inst, g),
        "wmulti" => run_online(inst, g, &mut WeightedMulti::new()),
        "naive" => run_online(inst, g, &mut CalibrateImmediately),
        "ski" => run_online(inst, g, &mut SkiRentalBatch),
        other => return Err(format!("unknown algorithm '{other}'")),
    })
}

fn print_outcome(inst: &Instance, schedule: &Schedule, cost_line: String, gantt: bool) {
    let stats = schedule_stats(inst, schedule);
    println!("{cost_line}");
    println!(
        "calibrations={} busy/calibrated slots={}/{} utilization={:.2} mean flow={:.2} max flow={} at-release={}",
        stats.calibrations,
        stats.busy_slots,
        stats.calibrated_slots,
        stats.utilization,
        stats.mean_flow,
        stats.max_flow,
        stats.at_release,
    );
    if gantt {
        println!("{}", render_gantt(inst, schedule));
    }
}

fn cmd_online(opts: &Opts) -> Result<(), String> {
    let trace = load_trace(opts)?;
    let g: u128 = get_num(opts, "g")?;
    let alg = get(opts, "alg")?;
    let res = run_named(alg, &trace.instance, g)?;
    print_outcome(
        &trace.instance,
        &res.schedule,
        format!("{alg}: flow={} cost={} (G={g})", res.flow, res.cost),
        opts.contains_key("gantt"),
    );
    Ok(())
}

fn cmd_offline(opts: &Opts) -> Result<(), String> {
    let trace = load_trace(opts)?;
    let budget: usize = get_num(opts, "budget")?;
    let inst = trace.instance.normalized();
    let solver = opts.get("solver").map_or("general", |s| s.as_str());
    let (flow, schedule, label) = match solver {
        "general" => {
            let sol = solve_offline(&inst, budget)
                .map_err(|e| e.to_string())?
                .ok_or(format!("budget {budget} cannot fit all jobs"))?;
            (sol.flow, sol.schedule, "offline DP (Propositions 1-2)")
        }
        "unweighted" => {
            let sol = calibration_scheduling::offline::solve_offline_unweighted(&inst, budget)
                .map_err(|e| e.to_string())?
                .ok_or(format!("budget {budget} cannot fit all jobs"))?;
            (
                sol.flow,
                sol.schedule,
                "offline DP (slot-exchange, unweighted)",
            )
        }
        other => return Err(format!("unknown solver '{other}'")),
    };
    print_outcome(
        &inst,
        &schedule,
        format!("{label}: flow={flow} within {budget} calibrations"),
        opts.contains_key("gantt"),
    );
    Ok(())
}

fn cmd_opt(opts: &Opts) -> Result<(), String> {
    let trace = load_trace(opts)?;
    let g: u128 = get_num(opts, "g")?;
    let inst = trace.instance.normalized();
    let opt = opt_online_cost_ternary(&inst, g).map_err(|e| e.to_string())?;
    println!(
        "OPT(G={g}): cost={} calibrations={} flow={}",
        opt.cost, opt.calibrations, opt.flow
    );
    Ok(())
}

fn cmd_adversary(opts: &Opts) -> Result<(), String> {
    let t: i64 = get_num(opts, "t")?;
    let g: u128 = get_num(opts, "g")?;
    let outcome = play_lemma31(t, g, Alg1::new);
    println!(
        "Lemma 3.1 vs Alg1 (T={t}, G={g}): branch={:?} alg={} opt={} ratio={:.4}",
        outcome.branch,
        outcome.alg_cost,
        outcome.opt_cost,
        outcome.ratio()
    );
    Ok(())
}
