//! End-to-end tests for the daemon: byte-identical determinism against the
//! batch engine, and TCP-level fault tolerance.
//!
//! The determinism contract is the serve layer's reason to exist: the same
//! `EngineSession` drives `calib-sim`'s batch runs and the daemon, so the
//! schedule a tenant streams out of the wire protocol must be *the same
//! schedule* — same JSON bytes — as `run_online` on the identical instance,
//! for every algorithm.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};

use calib_core::json::{FromJson, Json, ToJson};
use calib_core::{check_schedule, Assignment, Calibration, Instance, Schedule};
use calib_difftest::{gen_case_sized, GenParams};
use calib_online::run_online;
use calib_serve::{serve, serve_stream, Algorithm, ServeReport, ServerConfig};

/// Drives `serve_stream` with scripted request lines; returns parsed
/// replies plus the final report.
fn run_script(lines: &[String], workers: usize) -> (Vec<Json>, ServeReport) {
    let input = lines.join("\n") + "\n";
    let out = Arc::new(Mutex::new(Vec::<u8>::new()));
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let report = serve_stream(
        input.as_bytes(),
        Box::new(SharedBuf(Arc::clone(&out))),
        ServerConfig {
            workers,
            // Scripted input arrives all at once (no pipelining window), so
            // backpressure must not kick in.
            queue_cap: 100_000,
            ..Default::default()
        },
    );
    let bytes = out.lock().unwrap().clone();
    let replies = String::from_utf8(bytes)
        .unwrap()
        .lines()
        .map(|l| Json::parse(l).unwrap())
        .collect();
    (replies, report)
}

fn decision_arrays(reply: &Json) -> (Vec<Calibration>, Vec<Assignment>) {
    // `decisions` replies carry the arrays at top level; `drained` nests
    // them under `decisions` (the accounting owns the top-level keys).
    let reply = reply.get("decisions").unwrap_or(reply);
    let cals = reply
        .get("calibrations")
        .map(|j| Vec::<Calibration>::from_json(j).unwrap())
        .unwrap_or_default();
    let starts = reply
        .get("starts")
        .map(|j| Vec::<Assignment>::from_json(j).unwrap())
        .unwrap_or_default();
    (cals, starts)
}

/// Replays `instance` through the daemon tick by tick and returns the
/// schedule reconstructed from the streamed decision deltas.
fn daemon_schedule(instance: &Instance, cal_cost: u128, algorithm: Algorithm) -> Schedule {
    let mut jobs = instance.jobs().to_vec();
    jobs.sort_by_key(|j| (j.release, j.id));

    let mut lines = vec![Json::obj([
        ("type", "hello".to_json()),
        ("tenant", "t".to_json()),
        ("machines", instance.machines().to_json()),
        ("cal_len", instance.cal_len().to_json()),
        ("cal_cost", cal_cost.to_json()),
        ("algorithm", algorithm.name().to_json()),
    ])
    .to_string_compact()];
    // One arrive+tick pair per distinct release: the finest-grained replay
    // the protocol allows, so any incremental-vs-batch divergence shows.
    let mut i = 0;
    while i < jobs.len() {
        let release = jobs[i].release;
        let mut batch = Vec::new();
        while i < jobs.len() && jobs[i].release == release {
            batch.push(jobs[i]);
            i += 1;
        }
        lines.push(
            Json::obj([
                ("type", "arrive".to_json()),
                ("tenant", "t".to_json()),
                ("jobs", batch.to_json()),
            ])
            .to_string_compact(),
        );
        lines.push(
            Json::obj([
                ("type", "tick".to_json()),
                ("tenant", "t".to_json()),
                ("now", release.to_json()),
            ])
            .to_string_compact(),
        );
    }
    lines.push(r#"{"type":"drain","tenant":"t"}"#.to_string());
    lines.push(r#"{"type":"bye","tenant":"t"}"#.to_string());

    let (replies, report) = run_script(&lines, 1);
    assert!(report.all_ok(), "accountings: {:?}", report.accountings);

    let mut calibrations = Vec::new();
    let mut assignments = Vec::new();
    for reply in &replies {
        let kind = reply.get("type").and_then(Json::as_str).unwrap_or("");
        assert_ne!(kind, "error", "unexpected error reply: {reply:?}");
        if kind == "decisions" || kind == "drained" {
            let (c, s) = decision_arrays(reply);
            calibrations.extend(c);
            assignments.extend(s);
        }
    }
    Schedule::new(calibrations, assignments)
}

/// Satellite 1: for every algorithm the daemon's streamed schedule is
/// byte-identical (as canonical JSON) to the batch engine's, and passes
/// the feasibility checker.
#[test]
fn daemon_schedule_is_byte_identical_to_batch() {
    for (algorithm, params) in [
        (
            Algorithm::Alg1,
            GenParams {
                max_p: 1,
                max_weight: 1,
                ..GenParams::default()
            },
        ),
        (
            Algorithm::Alg2,
            GenParams {
                max_p: 1,
                ..GenParams::default()
            },
        ),
        (
            Algorithm::Alg3,
            GenParams {
                max_weight: 1,
                ..GenParams::default()
            },
        ),
    ] {
        for seed in [3u64, 17, 2017] {
            let case = gen_case_sized(seed, &params, 60);
            let batch = run_online(
                &case.instance,
                case.cal_cost,
                algorithm.scheduler().as_mut(),
            );
            let streamed = daemon_schedule(&case.instance, case.cal_cost, algorithm);

            check_schedule(&case.instance, &streamed).unwrap_or_else(|e| {
                panic!(
                    "{} seed {seed}: infeasible daemon schedule: {e}",
                    algorithm.name()
                )
            });
            assert_eq!(
                streamed.to_json().to_string_compact(),
                batch.schedule.to_json().to_string_compact(),
                "{} seed {seed} ({}): daemon and batch schedules diverge",
                algorithm.name(),
                case.name,
            );
        }
    }
}

fn send_line(stream: &mut TcpStream, line: &str) {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
}

fn read_reply(reader: &mut BufReader<TcpStream>) -> Json {
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(
        !line.is_empty(),
        "server closed the connection unexpectedly"
    );
    Json::parse(line.trim()).unwrap()
}

/// Satellite 2, TCP flavor: a client that sends malformed JSON, duplicate
/// job ids, past arrivals, and finally disconnects without `bye` gets
/// typed error replies and does not poison a healthy tenant on a second
/// connection — whose final objective still matches the batch engine.
#[test]
fn tcp_faulty_client_does_not_poison_healthy_tenant() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        serve(
            listener,
            ServerConfig {
                workers: 2,
                ..Default::default()
            },
        )
        .unwrap()
    });

    // Healthy tenant: a tiny alg1 instance replayed and drained.
    let params = GenParams {
        max_p: 1,
        max_weight: 1,
        ..GenParams::default()
    };
    let case = gen_case_sized(5, &params, 20);
    let expected = run_online(
        &case.instance,
        case.cal_cost,
        Algorithm::Alg1.scheduler().as_mut(),
    );

    let mut faulty = TcpStream::connect(addr).unwrap();
    let mut faulty_rd = BufReader::new(faulty.try_clone().unwrap());
    send_line(
        &mut faulty,
        r#"{"type":"hello","tenant":"faulty","machines":1,"cal_len":3,"cal_cost":5,"algorithm":"alg1"}"#,
    );
    assert_eq!(
        read_reply(&mut faulty_rd)
            .get("type")
            .and_then(Json::as_str),
        Some("ok")
    );

    let mut healthy = TcpStream::connect(addr).unwrap();
    let mut healthy_rd = BufReader::new(healthy.try_clone().unwrap());
    let mut jobs = case.instance.jobs().to_vec();
    jobs.sort_by_key(|j| (j.release, j.id));
    send_line(
        &mut healthy,
        &Json::obj([
            ("type", "hello".to_json()),
            ("tenant", "healthy".to_json()),
            ("machines", case.instance.machines().to_json()),
            ("cal_len", case.instance.cal_len().to_json()),
            ("cal_cost", case.cal_cost.to_json()),
            ("algorithm", "alg1".to_json()),
        ])
        .to_string_compact(),
    );
    assert_eq!(
        read_reply(&mut healthy_rd)
            .get("type")
            .and_then(Json::as_str),
        Some("ok")
    );

    // Interleave the faults with the healthy tenant's real session.
    send_line(&mut faulty, "this is not json {{{");
    let r = read_reply(&mut faulty_rd);
    assert_eq!(r.get("code").and_then(Json::as_str), Some("bad-json"));

    send_line(
        &mut faulty,
        r#"{"type":"arrive","tenant":"faulty","jobs":[{"id":1,"release":4,"weight":1},{"id":1,"release":5,"weight":1}]}"#,
    );
    let r = read_reply(&mut faulty_rd);
    assert_eq!(r.get("code").and_then(Json::as_str), Some("duplicate-job"));

    send_line(
        &mut healthy,
        &Json::obj([
            ("type", "arrive".to_json()),
            ("tenant", "healthy".to_json()),
            ("jobs", jobs.to_json()),
        ])
        .to_string_compact(),
    );
    assert_eq!(
        read_reply(&mut healthy_rd)
            .get("type")
            .and_then(Json::as_str),
        Some("ok")
    );

    // Advance the faulty engine, then arrive behind its clock.
    send_line(&mut faulty, r#"{"type":"tick","tenant":"faulty","now":10}"#);
    assert_eq!(
        read_reply(&mut faulty_rd)
            .get("type")
            .and_then(Json::as_str),
        Some("decisions")
    );
    send_line(
        &mut faulty,
        r#"{"type":"arrive","tenant":"faulty","jobs":[{"id":9,"release":2,"weight":1}]}"#,
    );
    let r = read_reply(&mut faulty_rd);
    assert_eq!(
        r.get("code").and_then(Json::as_str),
        Some("arrival-in-past")
    );
    send_line(&mut faulty, r#"{"type":"tick","tenant":"faulty","now":4}"#);
    let r = read_reply(&mut faulty_rd);
    assert_eq!(
        r.get("code").and_then(Json::as_str),
        Some("time-regression")
    );

    // Disconnect without bye: the server must finalize the tenant itself.
    drop(faulty);
    drop(faulty_rd);

    send_line(&mut healthy, r#"{"type":"drain","tenant":"healthy"}"#);
    let drained = read_reply(&mut healthy_rd);
    assert_eq!(drained.get("type").and_then(Json::as_str), Some("drained"));
    assert_eq!(drained.get("checker_ok"), Some(&Json::Bool(true)));
    assert_eq!(
        drained.get("flow").and_then(Json::as_u128),
        Some(expected.flow),
        "healthy tenant's flow must match the batch engine"
    );
    assert_eq!(
        drained.get("cost").and_then(Json::as_u128),
        Some(expected.cost)
    );
    send_line(&mut healthy, r#"{"type":"bye","tenant":"healthy"}"#);
    let bye = read_reply(&mut healthy_rd);
    assert_eq!(bye.get("type").and_then(Json::as_str), Some("goodbye"));
    drop(healthy);
    drop(healthy_rd);

    let report = server.join().unwrap();
    assert_eq!(report.connections, 2);
    assert_eq!(report.accountings.len(), 2, "both tenants accounted for");
    for acc in &report.accountings {
        assert!(
            acc.checker_ok,
            "{}: partial schedules must still be feasible: {:?}",
            acc.tenant, acc.violations
        );
    }
}

/// A connection that sends a single oversized line (satellite 2's
/// flood-resistance case at the TCP layer) gets `line-too-long` and the
/// stream keeps working afterwards.
#[test]
fn tcp_oversized_line_recovers() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || serve(listener, ServerConfig::default()).unwrap());

    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let huge = "x".repeat(calib_serve::MAX_LINE_BYTES + 100);
    send_line(&mut stream, &huge);
    let r = read_reply(&mut reader);
    assert_eq!(r.get("code").and_then(Json::as_str), Some("line-too-long"));

    send_line(
        &mut stream,
        r#"{"type":"hello","tenant":"after","machines":1,"cal_len":2,"cal_cost":1,"algorithm":"immediate"}"#,
    );
    assert_eq!(
        read_reply(&mut reader).get("type").and_then(Json::as_str),
        Some("ok"),
        "stream must recover after an oversized line"
    );
    send_line(&mut stream, r#"{"type":"bye","tenant":"after"}"#);
    assert_eq!(
        read_reply(&mut reader).get("type").and_then(Json::as_str),
        Some("goodbye")
    );
    // Half-close our side and wait for EOF so `serve` sees the idle state.
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut rest = String::new();
    reader.read_to_string(&mut rest).unwrap();

    let report = server.join().unwrap();
    assert_eq!(report.accountings.len(), 1);
    assert!(report.all_ok());
}
