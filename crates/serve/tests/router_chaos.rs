//! Router e2e: sharded serving and live migration against real daemons.
//!
//! The router runs in-process (its report and panics stay visible); the
//! shards are real `calib-serve` processes sharing one journal directory,
//! so a `kill -9` exercises the genuine crash-fallback path. The
//! acceptance bar matches `tests/chaos.rs`: drained accounting through
//! the router must equal the local batch engine's `u128` flow/cost to
//! the last integer — and, for migration, byte-identical to a straight
//! single-daemon run of the same plan.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

use calib_core::json::{Json, ToJson};
use calib_core::{Instance, Job, Time};
use calib_difftest::{gen_case_sized, GenParams};
use calib_online::run_online;
use calib_router::{run_router, Ring, RouterConfig};
use calib_serve::{run_plan, Algorithm, Backoff, ClientConfig, PlanStep, SystemClock};

/// A unique, self-cleaning scratch directory.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!("calib-router-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Reads the `{"type":"listening","addr":...}` banner a daemon prints.
fn daemon_addr(child: &mut std::process::Child) -> String {
    let stdout = child.stdout.as_mut().expect("daemon stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("banner");
    let v = Json::parse(line.trim()).expect("banner json");
    assert_eq!(v.get("type").and_then(Json::as_str), Some("listening"));
    v.get("addr")
        .and_then(Json::as_str)
        .expect("listening addr")
        .to_string()
}

fn spawn_daemon_args(
    journal_dir: &std::path::Path,
    extra: &[&str],
) -> (std::process::Child, String) {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_calib-serve"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--journal-dir",
            journal_dir.to_str().expect("utf8 dir"),
            "--fsync",
            "tick",
            "--read-timeout-ms",
            "0",
        ])
        .args(extra)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn calib-serve");
    let addr = daemon_addr(&mut child);
    (child, addr)
}

fn spawn_daemon(journal_dir: &std::path::Path) -> (std::process::Child, String) {
    spawn_daemon_args(journal_dir, &[])
}

/// Starts an in-process router fronting `shards`. `--run-forever`
/// semantics: the test's phased clients would otherwise trip idle exit
/// between phases, so the thread is left to die with the process.
fn spawn_router(shards: Vec<String>, connect_attempts: u32) -> (String, RouterConfig) {
    let config = RouterConfig {
        shards,
        exit_when_idle: false,
        control_timeout: Duration::from_secs(5),
        connect_attempts,
        backoff_base_ms: 1,
        backoff_cap_ms: 20,
        ..Default::default()
    };
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind router");
    let addr = listener.local_addr().expect("router addr").to_string();
    let thread_config = config.clone();
    std::thread::spawn(move || run_router(listener, thread_config).expect("router"));
    (addr, config)
}

/// Compiles a session plan (mirrors `tests/chaos.rs`): hello, arrive/tick
/// per release group, drain (captured), bye.
fn build_plan(
    name: &str,
    algorithm: Algorithm,
    cal_cost: u128,
    instance: &Instance,
) -> (Vec<PlanStep>, u64) {
    let mut steps = Vec::new();
    let mut seq: u64 = 0;
    steps.push(PlanStep::new(
        seq,
        vec![
            ("type", "hello".to_json()),
            ("tenant", name.to_json()),
            ("machines", instance.machines().to_json()),
            ("cal_len", instance.cal_len().to_json()),
            ("cal_cost", cal_cost.to_json()),
            ("algorithm", algorithm.name().to_json()),
        ],
        false,
        false,
    ));
    seq += 1;
    let mut jobs: Vec<Job> = instance.jobs().to_vec();
    jobs.sort_by_key(|j| (j.release, j.id));
    let mut i = 0;
    while i < jobs.len() {
        let release: Time = jobs[i].release;
        let mut batch = Vec::new();
        while i < jobs.len() && jobs[i].release == release {
            batch.push(jobs[i]);
            i += 1;
        }
        steps.push(PlanStep::new(
            seq,
            vec![
                ("type", "arrive".to_json()),
                ("tenant", name.to_json()),
                ("jobs", batch.to_json()),
            ],
            false,
            false,
        ));
        seq += 1;
        steps.push(PlanStep::new(
            seq,
            vec![
                ("type", "tick".to_json()),
                ("tenant", name.to_json()),
                ("now", release.to_json()),
            ],
            false,
            false,
        ));
        seq += 1;
    }
    let drain_seq = seq;
    steps.push(PlanStep::new(
        seq,
        vec![("type", "drain".to_json()), ("tenant", name.to_json())],
        true,
        false,
    ));
    seq += 1;
    steps.push(PlanStep::new(
        seq,
        vec![("type", "bye".to_json()), ("tenant", name.to_json())],
        false,
        true,
    ));
    (steps, drain_seq)
}

fn client_config(tenant: &str) -> ClientConfig {
    ClientConfig {
        tenant: tenant.to_string(),
        window: 8,
        deadline: Some(Duration::from_secs(10)),
        max_reconnects: 64,
        resume_on_start: false,
    }
}

/// One admin round-trip on a fresh router connection.
fn admin_roundtrip(router_addr: &str, line: &str) -> Json {
    let mut stream = TcpStream::connect(router_addr).expect("connect router");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("admin timeout");
    stream.write_all(line.as_bytes()).expect("admin write");
    stream.write_all(b"\n").expect("admin newline");
    stream.flush().expect("admin flush");
    let mut reader = BufReader::new(&stream);
    let mut buf = String::new();
    reader.read_line(&mut buf).expect("admin reply");
    assert!(!buf.is_empty(), "router closed on admin request");
    Json::parse(buf.trim()).expect("admin reply json")
}

fn assert_exact_accounting(reply: &Json, name: &str, flow: u128, cost: u128) {
    assert_eq!(
        reply.get("type").and_then(Json::as_str),
        Some("drained"),
        "{name}: captured reply is the drained accounting"
    );
    assert_eq!(
        reply.get("checker_ok"),
        Some(&Json::Bool(true)),
        "{name}: feasibility checker verdict"
    );
    assert_eq!(
        reply.get("flow").and_then(Json::as_u128),
        Some(flow),
        "{name}: exact flow equality with the batch engine"
    );
    assert_eq!(
        reply.get("cost").and_then(Json::as_u128),
        Some(cost),
        "{name}: exact cost equality with the batch engine"
    );
}

/// The headline migration theorem: a tenant is moved between live shards
/// mid-session by checkpoint handoff, the session finishes through the
/// router, and the drained accounting is byte-identical to a straight
/// single-daemon run of the same plan. The evicted source shard ends the
/// test empty — it exits on its own.
#[test]
fn live_migration_mid_session_is_byte_exact() {
    let journal_dir = TempDir::new("live-mig");
    let (mut daemon_a, addr_a) = spawn_daemon(&journal_dir.0);
    let (mut daemon_b, addr_b) = spawn_daemon(&journal_dir.0);
    let (router_addr, config) = spawn_router(vec![addr_a, addr_b], 8);

    let name = "mover";
    // The same ring the router built — so the test knows the owner
    // without scraping placement logs.
    let from = Ring::new(config.shards.len(), config.vnodes, config.seed).owner(name);
    let to = 1 - from;

    let (algorithm, params) = (
        Algorithm::Alg2,
        GenParams {
            max_n: 1,
            max_t: 8,
            max_g: 60,
            max_p: 1,
            max_weight: 9,
        },
    );
    let case = gen_case_sized(2026, &params, 160);
    let expected = run_online(
        &case.instance,
        case.cal_cost,
        algorithm.scheduler().as_mut(),
    );
    let (plan, drain_seq) = build_plan(name, algorithm, case.cal_cost, &case.instance);

    // Phase 1: roughly half the session lands on the ring owner.
    let half = plan.len() / 2;
    let cfg = client_config(name);
    let mut clock = SystemClock;
    let report = run_plan(
        &router_addr,
        &cfg,
        &plan[..half],
        &mut Backoff::new(1, 50, 3),
        &mut clock,
    );
    assert!(
        report.completed,
        "phase 1 must apply its prefix: {:?}",
        report.errors
    );

    // The handoff: evict on the source, adopt on the destination — the
    // live path, not the journal fallback.
    let migrated = admin_roundtrip(
        &router_addr,
        &format!(r#"{{"type":"migrate","tenant":"{name}","to":{to},"seq":9}}"#),
    );
    assert_eq!(
        migrated.get("type").and_then(Json::as_str),
        Some("migrated"),
        "migration succeeded: {migrated:?}"
    );
    assert_eq!(
        migrated.get("from").and_then(Json::as_u64),
        Some(from as u64)
    );
    assert_eq!(migrated.get("to").and_then(Json::as_u64), Some(to as u64));
    assert_eq!(migrated.get("seq").and_then(Json::as_u64), Some(9));
    assert_eq!(
        migrated.get("fallback"),
        Some(&Json::Bool(false)),
        "both shards alive: the checkpoint handoff path, not the fallback"
    );
    assert!(
        migrated.get("micros").and_then(Json::as_u64).is_some(),
        "migration latency reported: {migrated:?}"
    );

    // A second migrate for the same tenant to its current home is a
    // no-op, answered without touching either shard.
    let noop = admin_roundtrip(
        &router_addr,
        &format!(r#"{{"type":"migrate","tenant":"{name}","to":{to}}}"#),
    );
    assert_eq!(noop.get("type").and_then(Json::as_str), Some("migrated"));
    assert_eq!(noop.get("from").and_then(Json::as_u64), Some(to as u64));

    // Phase 2: the client resumes through the router; every request now
    // lands on the adopted session on the destination shard.
    let cfg2 = ClientConfig {
        resume_on_start: true,
        ..cfg
    };
    let report2 = run_plan(
        &router_addr,
        &cfg2,
        &plan,
        &mut Backoff::new(1, 50, 4),
        &mut clock,
    );
    assert!(
        report2.completed,
        "phase 2 must finish the session: {:?}",
        report2.errors
    );
    let drained = report2.captured_for(drain_seq).expect("drained captured");
    assert_exact_accounting(drained, name, expected.flow, expected.cost);

    // Byte-identity: the same plan against a lone daemon, no router, no
    // migration. The drained reply must match to the byte.
    let control_dir = TempDir::new("live-mig-control");
    let (mut lone, lone_addr) = spawn_daemon(&control_dir.0);
    let control = run_plan(
        &lone_addr,
        &client_config(name),
        &plan,
        &mut Backoff::new(1, 50, 5),
        &mut clock,
    );
    assert!(control.completed, "control run: {:?}", control.errors);
    let control_drained = control.captured_for(drain_seq).expect("control drained");
    assert_eq!(
        drained.to_string_compact(),
        control_drained.to_string_compact(),
        "migrated session diverged from the straight run"
    );
    lone.wait().expect("control daemon exits when idle");

    // The eviction emptied the source shard; with its control connection
    // closed and no tenants left, it exits on its own. The destination
    // finalized the tenant on `bye` and exits too.
    daemon_a.wait().expect("shard A exits");
    daemon_b.wait().expect("shard B exits");
    let leftover: Vec<_> = std::fs::read_dir(&journal_dir.0)
        .expect("journal dir")
        .filter_map(|e| e.ok())
        .collect();
    assert!(
        leftover.is_empty(),
        "journal deleted after the clean finalize: {leftover:?}"
    );
}

/// The crash drill: the source shard is `kill -9`'d before the handoff,
/// so evict can never answer — the router falls back to recovering the
/// tenant on the destination from the shared journal directory, and the
/// session still drains to exact accounting.
#[test]
fn kill_dash_nine_source_falls_back_to_journal_handoff() {
    let journal_dir = TempDir::new("kill9-mig");
    let (mut daemon_a, addr_a) = spawn_daemon(&journal_dir.0);
    let (mut daemon_b, addr_b) = spawn_daemon(&journal_dir.0);
    // Two connect attempts with millisecond backoff: the dead shard must
    // fail fast, not burn the control timeout.
    let (router_addr, config) = spawn_router(vec![addr_a, addr_b], 2);

    let name = "phoenix-shard";
    let from = Ring::new(config.shards.len(), config.vnodes, config.seed).owner(name);
    let to = 1 - from;

    let (algorithm, params) = (
        Algorithm::Alg3,
        GenParams {
            max_n: 1,
            max_t: 8,
            max_g: 60,
            max_p: 3,
            max_weight: 1,
        },
    );
    let case = gen_case_sized(777, &params, 160);
    let expected = run_online(
        &case.instance,
        case.cal_cost,
        algorithm.scheduler().as_mut(),
    );
    let (plan, drain_seq) = build_plan(name, algorithm, case.cal_cost, &case.instance);

    // Phase 1 through the router, onto the doomed owner.
    let half = plan.len() / 2;
    let cfg = client_config(name);
    let mut clock = SystemClock;
    let report = run_plan(
        &router_addr,
        &cfg,
        &plan[..half],
        &mut Backoff::new(1, 50, 6),
        &mut clock,
    );
    assert!(
        report.completed,
        "phase 1 must apply its prefix: {:?}",
        report.errors
    );

    // The `kill -9`: the owner vanishes with only the journal surviving.
    let doomed = if from == 0 {
        &mut daemon_a
    } else {
        &mut daemon_b
    };
    doomed.kill().expect("SIGKILL source shard");
    doomed.wait().expect("reap source shard");

    // The migrate cannot evict a corpse; it must take the journal path.
    let migrated = admin_roundtrip(
        &router_addr,
        &format!(r#"{{"type":"migrate","tenant":"{name}","to":{to}}}"#),
    );
    assert_eq!(
        migrated.get("type").and_then(Json::as_str),
        Some("migrated"),
        "fallback migration succeeded: {migrated:?}"
    );
    assert_eq!(
        migrated.get("fallback"),
        Some(&Json::Bool(true)),
        "dead source: the journal-tail fallback, not the live handoff"
    );

    // Phase 2: resume through the router onto the recovered session.
    let cfg2 = ClientConfig {
        resume_on_start: true,
        ..cfg
    };
    let report2 = run_plan(
        &router_addr,
        &cfg2,
        &plan,
        &mut Backoff::new(1, 50, 8),
        &mut clock,
    );
    assert!(
        report2.completed,
        "phase 2 must finish the session: {:?}",
        report2.errors
    );
    assert!(report2.resumes >= 1, "phase 2 resumed the session");
    let drained = report2.captured_for(drain_seq).expect("drained captured");
    assert_exact_accounting(drained, name, expected.flow, expected.cost);

    // The survivor finalized the tenant on `bye` and exits when idle; the
    // clean finalize also deleted the shared journal.
    let survivor = if from == 0 {
        &mut daemon_b
    } else {
        &mut daemon_a
    };
    survivor.wait().expect("destination shard exits");
    let leftover: Vec<_> = std::fs::read_dir(&journal_dir.0)
        .expect("journal dir")
        .filter_map(|e| e.ok())
        .collect();
    assert!(
        leftover.is_empty(),
        "journal deleted after the clean finalize: {leftover:?}"
    );
}

/// Plain sharded serving, no migration: three tenants spread across two
/// shards by the ring, each drains to exact accounting through the
/// router, and the merged `metrics` reply adds up.
#[test]
fn sharded_serving_is_exact_and_metrics_merge() {
    let journal_dir = TempDir::new("sharded");
    // `--run-forever`: the mid-fleet `metrics` poll below opens control
    // connections to *both* shards while one may still be tenant-less,
    // which would otherwise trip its idle exit before work arrives.
    let (mut daemon_a, addr_a) = spawn_daemon_args(&journal_dir.0, &["--run-forever"]);
    let (mut daemon_b, addr_b) = spawn_daemon_args(&journal_dir.0, &["--run-forever"]);
    let (router_addr, _config) = spawn_router(vec![addr_a, addr_b], 8);

    let families = [
        (
            Algorithm::Alg1,
            GenParams {
                max_n: 1,
                max_t: 8,
                max_g: 60,
                max_p: 1,
                max_weight: 1,
            },
        ),
        (
            Algorithm::Alg2,
            GenParams {
                max_n: 1,
                max_t: 8,
                max_g: 60,
                max_p: 1,
                max_weight: 9,
            },
        ),
        (
            Algorithm::Alg3,
            GenParams {
                max_n: 1,
                max_t: 8,
                max_g: 60,
                max_p: 3,
                max_weight: 1,
            },
        ),
    ];
    let mut clock = SystemClock;
    let mut plans = Vec::new();
    for (i, (algorithm, params)) in families.iter().enumerate() {
        let name = format!("shard-tenant-{i}");
        let case = gen_case_sized(100 + i as u64, params, 80);
        let expected = run_online(
            &case.instance,
            case.cal_cost,
            algorithm.scheduler().as_mut(),
        );
        let (plan, drain_seq) = build_plan(&name, *algorithm, case.cal_cost, &case.instance);
        plans.push((name, plan, drain_seq, expected));
    }

    // `metrics` mid-fleet merges both shards while sessions are open.
    // Driven sequentially so the poll happens at a known point.
    let (name0, plan0, drain0, expected0) = &plans[0];
    let r0 = run_plan(
        &router_addr,
        &client_config(name0),
        &plan0[..plan0.len() - 1], // hold the bye: keep the tenant open
        &mut Backoff::new(1, 50, 20),
        &mut clock,
    );
    assert!(r0.completed, "{name0}: {:?}", r0.errors);
    let drained0 = r0.captured_for(*drain0).expect("drained captured");
    assert_exact_accounting(drained0, name0, expected0.flow, expected0.cost);

    let metrics = admin_roundtrip(&router_addr, r#"{"type":"metrics","seq":5}"#);
    assert_eq!(metrics.get("type").and_then(Json::as_str), Some("metrics"));
    assert_eq!(metrics.get("seq").and_then(Json::as_u64), Some(5));
    let per_shard = metrics
        .get("per_shard")
        .and_then(Json::as_arr)
        .expect("per_shard array");
    assert_eq!(per_shard.len(), 2, "one row per shard");
    for row in per_shard {
        assert!(row.get("error").is_none(), "both shards reachable: {row:?}");
    }
    let router_obj = metrics.get("router").expect("router counters");
    assert!(
        router_obj
            .get("forwarded_requests")
            .and_then(Json::as_u64)
            .is_some_and(|n| n > 0),
        "router counted its forwards: {router_obj:?}"
    );
    // The tenant with an open session appears in the merged per-tenant
    // rows exactly once.
    let tenants = metrics
        .get("per_tenant")
        .and_then(Json::as_arr)
        .expect("per_tenant array");
    let hits = tenants
        .iter()
        .filter(|t| t.get("tenant").and_then(Json::as_str) == Some(name0))
        .count();
    assert_eq!(hits, 1, "open tenant listed once in the merge: {tenants:?}");

    // Finish tenant 0 (the held-back bye), then the rest end to end.
    let rbye = run_plan(
        &router_addr,
        &ClientConfig {
            resume_on_start: true,
            ..client_config(name0)
        },
        plan0,
        &mut Backoff::new(1, 50, 21),
        &mut clock,
    );
    assert!(rbye.completed, "{name0} bye: {:?}", rbye.errors);
    for (name, plan, drain_seq, expected) in &plans[1..] {
        let r = run_plan(
            &router_addr,
            &client_config(name),
            plan,
            &mut Backoff::new(1, 50, 22),
            &mut clock,
        );
        assert!(r.completed, "{name}: {:?}", r.errors);
        let drained = r.captured_for(*drain_seq).expect("drained captured");
        assert_exact_accounting(drained, name, expected.flow, expected.cost);
    }

    // `--run-forever` daemons never idle-exit; reap them explicitly.
    daemon_a.kill().expect("stop shard A");
    daemon_a.wait().expect("reap shard A");
    daemon_b.kill().expect("stop shard B");
    daemon_b.wait().expect("reap shard B");
}
