//! End-to-end tests for the daemon metrics registry: the tenant-less
//! `metrics` wire request, exact agreement between the registry and the
//! protocol's own accounting, and the periodic snapshot stream.
//!
//! The registry's contract is *exact* observability: `decisions` is
//! counted at the same points the wire replies hand decision deltas to the
//! client, so the daemon-wide counter, the per-tenant counters, and a
//! client's own tally of reply array lengths must all agree — and the
//! per-tenant `flow`/`cost` totals are the u128 values from the drained
//! accounting, not approximations.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use calib_core::json::{Json, ToJson};
use calib_difftest::{gen_case_sized, GenParams};
use calib_serve::{serve, serve_stream, MetricsSink, ServerConfig};

fn send_line(stream: &mut TcpStream, line: &str) {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
}

fn read_reply(reader: &mut BufReader<TcpStream>) -> Json {
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(
        !line.is_empty(),
        "server closed the connection unexpectedly"
    );
    Json::parse(line.trim()).unwrap()
}

fn decision_count(reply: &Json) -> u64 {
    let reply = reply.get("decisions").unwrap_or(reply);
    let len = |key: &str| {
        reply
            .get(key)
            .and_then(Json::as_arr)
            .map_or(0, |a| a.len() as u64)
    };
    len("calibrations") + len("starts")
}

fn tenant_row<'a>(snapshot: &'a Json, name: &str) -> &'a Json {
    snapshot
        .get("per_tenant")
        .and_then(Json::as_arr)
        .and_then(|rows| {
            rows.iter()
                .find(|r| r.get("tenant").and_then(Json::as_str) == Some(name))
        })
        .unwrap_or_else(|| panic!("no per-tenant row for `{name}`: {snapshot:?}"))
}

fn u64_field(v: &Json, key: &str) -> u64 {
    v.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing u64 `{key}` in {v:?}"))
}

/// Drives two tenants to completion over TCP, tallying decisions from the
/// replies, then asserts the `metrics` request reports exactly those
/// totals — globally, per tenant, and for the drained flow/cost u128s.
#[test]
fn metrics_request_matches_exact_accounting() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        serve(
            listener,
            ServerConfig {
                workers: 2,
                ..Default::default()
            },
        )
        .unwrap()
    });

    let params = GenParams {
        max_p: 1,
        max_weight: 3,
        ..GenParams::default()
    };

    let mut expected_decisions = Vec::new();
    let mut expected_totals = Vec::new();
    // `t0` says bye (closed but retained); `t1` stays open.
    for (i, name) in ["t0", "t1"].iter().enumerate() {
        let case = gen_case_sized(7 + i as u64, &params, 30);
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        send_line(
            &mut stream,
            &Json::obj([
                ("type", "hello".to_json()),
                ("tenant", (*name).to_json()),
                ("machines", case.instance.machines().to_json()),
                ("cal_len", case.instance.cal_len().to_json()),
                ("cal_cost", case.cal_cost.to_json()),
                ("algorithm", "alg1".to_json()),
            ])
            .to_string_compact(),
        );
        assert_eq!(
            read_reply(&mut reader).get("type").and_then(Json::as_str),
            Some("ok")
        );
        let mut jobs = case.instance.jobs().to_vec();
        jobs.sort_by_key(|j| (j.release, j.id));
        let mut decisions = 0u64;
        let mut j = 0;
        while j < jobs.len() {
            let release = jobs[j].release;
            let mut batch = Vec::new();
            while j < jobs.len() && jobs[j].release == release {
                batch.push(jobs[j]);
                j += 1;
            }
            send_line(
                &mut stream,
                &Json::obj([
                    ("type", "arrive".to_json()),
                    ("tenant", (*name).to_json()),
                    ("jobs", batch.to_json()),
                ])
                .to_string_compact(),
            );
            assert_eq!(
                read_reply(&mut reader).get("type").and_then(Json::as_str),
                Some("ok")
            );
            send_line(
                &mut stream,
                &Json::obj([
                    ("type", "tick".to_json()),
                    ("tenant", (*name).to_json()),
                    ("now", release.to_json()),
                ])
                .to_string_compact(),
            );
            decisions += decision_count(&read_reply(&mut reader));
        }
        send_line(
            &mut stream,
            &format!(r#"{{"type":"drain","tenant":"{name}"}}"#),
        );
        let drained = read_reply(&mut reader);
        assert_eq!(drained.get("type").and_then(Json::as_str), Some("drained"));
        decisions += decision_count(&drained);
        let flow = drained.get("flow").and_then(Json::as_u128).unwrap();
        let cost = drained.get("cost").and_then(Json::as_u128).unwrap();
        expected_decisions.push(decisions);
        expected_totals.push((flow, cost));
        if i == 0 {
            send_line(
                &mut stream,
                &format!(r#"{{"type":"bye","tenant":"{name}"}}"#),
            );
            assert_eq!(
                read_reply(&mut reader).get("type").and_then(Json::as_str),
                Some("goodbye")
            );
        }

        // The snapshot is answered inline on any connection; poll it from
        // this tenant's connection while it is still open (t1) or right
        // after bye (t0).
        send_line(&mut stream, r#"{"type":"metrics","seq":42}"#);
        let snapshot = read_reply(&mut reader);
        assert_eq!(snapshot.get("type").and_then(Json::as_str), Some("metrics"));
        assert_eq!(snapshot.get("seq").and_then(Json::as_u64), Some(42));

        let row = tenant_row(&snapshot, name);
        assert_eq!(
            u64_field(row, "decisions"),
            decisions,
            "tenant `{name}` decisions must equal the reply-array tally"
        );
        assert_eq!(row.get("flow").and_then(Json::as_u128), Some(flow));
        assert_eq!(row.get("cost").and_then(Json::as_u128), Some(cost));
        assert_eq!(
            row.get("open"),
            Some(&Json::Bool(i != 0)),
            "t0 closed on bye, t1 still open"
        );

        if i == 1 {
            // Final frame: both tenants are in the registry (t0 retained
            // after bye), and the global counter equals the sum.
            let global = snapshot.get("global").unwrap();
            let sum: u64 = snapshot
                .get("per_tenant")
                .and_then(Json::as_arr)
                .unwrap()
                .iter()
                .map(|r| u64_field(r, "decisions"))
                .sum();
            assert_eq!(u64_field(global, "decisions"), sum);
            assert_eq!(
                sum,
                expected_decisions.iter().sum::<u64>(),
                "registry total must equal both clients' own tallies"
            );
            let t0 = tenant_row(&snapshot, "t0");
            assert_eq!(
                t0.get("flow").and_then(Json::as_u128),
                Some(expected_totals[0].0)
            );
            assert_eq!(
                t0.get("cost").and_then(Json::as_u128),
                Some(expected_totals[0].1)
            );
            // Histograms are present and consistent: fsync never recorded
            // (no journal), requests always.
            assert!(u64_field(snapshot.get("request_micros").unwrap(), "count") > 0);
            assert_eq!(u64_field(snapshot.get("fsync_micros").unwrap(), "count"), 0);

            send_line(
                &mut stream,
                &format!(r#"{{"type":"bye","tenant":"{name}"}}"#),
            );
            assert_eq!(
                read_reply(&mut reader).get("type").and_then(Json::as_str),
                Some("goodbye")
            );
        }
    }

    let report = server.join().unwrap();
    assert!(report.all_ok());
}

/// The `--metrics-interval-ms` stream: snapshots arrive as parseable JSON
/// lines while the daemon runs, a final snapshot is flushed at shutdown,
/// and `seq` increases monotonically across the stream.
#[test]
fn metrics_snapshot_stream_is_periodic_and_monotonic() {
    let lines = [
        r#"{"type":"hello","tenant":"s","machines":1,"cal_len":2,"cal_cost":3,"algorithm":"alg1"}"#,
        r#"{"type":"arrive","tenant":"s","jobs":[{"id":0,"release":0,"weight":2}]}"#,
        r#"{"type":"tick","tenant":"s","now":10}"#,
        r#"{"type":"drain","tenant":"s"}"#,
        r#"{"type":"bye","tenant":"s"}"#,
    ];
    let input = lines.join("\n") + "\n";

    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let replies = Arc::new(Mutex::new(Vec::<u8>::new()));
    let snapshots = Arc::new(Mutex::new(Vec::<u8>::new()));
    let report = serve_stream(
        input.as_bytes(),
        Box::new(SharedBuf(Arc::clone(&replies))),
        ServerConfig {
            workers: 1,
            metrics_interval: Some(Duration::from_millis(5)),
            metrics_sink: Some(MetricsSink::new(Box::new(SharedBuf(Arc::clone(
                &snapshots,
            ))))),
            ..Default::default()
        },
    );
    assert!(report.all_ok());

    let raw = String::from_utf8(snapshots.lock().unwrap().clone()).unwrap();
    let frames: Vec<Json> = raw.lines().map(|l| Json::parse(l).unwrap()).collect();
    // At least the shutdown flush; usually interval frames too.
    assert!(!frames.is_empty(), "no snapshot lines were emitted");
    let mut last_seq = None;
    for frame in &frames {
        assert_eq!(frame.get("type").and_then(Json::as_str), Some("metrics"));
        let seq = frame.get("seq").and_then(Json::as_u64).unwrap();
        if let Some(prev) = last_seq {
            assert!(seq > prev, "snapshot seq must be strictly increasing");
        }
        last_seq = Some(seq);
    }
    // The final frame has the completed session: decisions counted, flow
    // recorded, tenant closed but retained.
    let last = frames.last().unwrap();
    let row = tenant_row(last, "s");
    assert!(u64_field(row, "decisions") > 0);
    assert_eq!(row.get("open"), Some(&Json::Bool(false)));
    assert_eq!(
        u64_field(last.get("global").unwrap(), "decisions"),
        u64_field(row, "decisions")
    );
}
