//! Chaos-fault e2e: the full resilience stack under injected failures.
//!
//! Three layers under test at once — the daemon's journaling/detach/resume
//! semantics, the client's reconnect/backoff/resend loop, and the seeded
//! fault proxy between them. The acceptance bar is exact: under any
//! injected fault schedule, every tenant's drained accounting must equal
//! the local batch engine's `u128` flow/cost to the last integer, and a
//! `kill -9`'d daemon restarted from its journal must drain to the same
//! numbers.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use calib_core::json::{Json, ToJson};
use calib_core::{Instance, Job, Time};
use calib_difftest::{gen_case_sized, GenParams};
use calib_online::run_online;
use calib_serve::{
    run_plan, run_proxy, serve, Algorithm, Backoff, ClientConfig, FaultPlan, PlanStep, ProxyStats,
    RetryClock, ServerConfig, SystemClock,
};

/// A unique, self-cleaning scratch directory.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!("calib-chaos-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn spawn_server(
    config: ServerConfig,
) -> (
    SocketAddr,
    std::thread::JoinHandle<calib_serve::ServeReport>,
) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind server");
    let addr = listener.local_addr().expect("server addr");
    let handle = std::thread::spawn(move || serve(listener, config).expect("serve"));
    (addr, handle)
}

fn spawn_proxy(
    upstream: SocketAddr,
    plan: FaultPlan,
) -> (SocketAddr, Arc<AtomicBool>, Arc<ProxyStats>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
    let addr = listener.local_addr().expect("proxy addr");
    let stop = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ProxyStats::default());
    let stop2 = Arc::clone(&stop);
    let stats2 = Arc::clone(&stats);
    std::thread::spawn(move || {
        run_proxy(listener, upstream.to_string(), plan, stop2, stats2).ok();
    });
    (addr, stop, stats)
}

/// The i-th tenant's algorithm and generator bounds (mirrors loadgen).
fn tenant_family(i: usize) -> (Algorithm, GenParams) {
    let base = GenParams {
        max_n: 1,
        max_t: 8,
        max_g: 60,
        max_p: 1,
        max_weight: 1,
    };
    match i % 3 {
        0 => (Algorithm::Alg1, base),
        1 => (
            Algorithm::Alg2,
            GenParams {
                max_weight: 9,
                ..base
            },
        ),
        _ => (Algorithm::Alg3, GenParams { max_p: 3, ..base }),
    }
}

/// Compiles a session plan: hello, arrive/tick per release group, drain
/// (captured), bye. Returns the steps and the drain's seq.
fn build_plan(
    name: &str,
    algorithm: Algorithm,
    cal_cost: u128,
    instance: &Instance,
) -> (Vec<PlanStep>, u64) {
    let mut steps = Vec::new();
    let mut seq: u64 = 0;
    steps.push(PlanStep::new(
        seq,
        vec![
            ("type", "hello".to_json()),
            ("tenant", name.to_json()),
            ("machines", instance.machines().to_json()),
            ("cal_len", instance.cal_len().to_json()),
            ("cal_cost", cal_cost.to_json()),
            ("algorithm", algorithm.name().to_json()),
        ],
        false,
        false,
    ));
    seq += 1;
    let mut jobs: Vec<Job> = instance.jobs().to_vec();
    jobs.sort_by_key(|j| (j.release, j.id));
    let mut i = 0;
    while i < jobs.len() {
        let release: Time = jobs[i].release;
        let mut batch = Vec::new();
        while i < jobs.len() && jobs[i].release == release {
            batch.push(jobs[i]);
            i += 1;
        }
        steps.push(PlanStep::new(
            seq,
            vec![
                ("type", "arrive".to_json()),
                ("tenant", name.to_json()),
                ("jobs", batch.to_json()),
            ],
            false,
            false,
        ));
        seq += 1;
        steps.push(PlanStep::new(
            seq,
            vec![
                ("type", "tick".to_json()),
                ("tenant", name.to_json()),
                ("now", release.to_json()),
            ],
            false,
            false,
        ));
        seq += 1;
    }
    let drain_seq = seq;
    steps.push(PlanStep::new(
        seq,
        vec![("type", "drain".to_json()), ("tenant", name.to_json())],
        true,
        false,
    ));
    seq += 1;
    steps.push(PlanStep::new(
        seq,
        vec![("type", "bye".to_json()), ("tenant", name.to_json())],
        false,
        true,
    ));
    (steps, drain_seq)
}

fn assert_exact_accounting(reply: &Json, name: &str, flow: u128, cost: u128) {
    assert_eq!(
        reply.get("type").and_then(Json::as_str),
        Some("drained"),
        "{name}: captured reply is the drained accounting"
    );
    assert_eq!(
        reply.get("checker_ok"),
        Some(&Json::Bool(true)),
        "{name}: feasibility checker verdict"
    );
    assert_eq!(
        reply.get("flow").and_then(Json::as_u128),
        Some(flow),
        "{name}: exact flow equality with the batch engine"
    );
    assert_eq!(
        reply.get("cost").and_then(Json::as_u128),
        Some(cost),
        "{name}: exact cost equality with the batch engine"
    );
}

/// The headline chaos theorem: three tenants drive full sessions through
/// a proxy injecting disconnects, truncations, duplicates, torn writes,
/// and delays — and every drained accounting still equals the local batch
/// run exactly, with faults demonstrably injected.
#[test]
fn reconnecting_loadgen_is_exact_under_injected_faults() {
    let journal_dir = TempDir::new("faults-journal");
    let (server_addr, server) = spawn_server(ServerConfig {
        workers: 2,
        journal_dir: Some(journal_dir.0.clone()),
        ..Default::default()
    });
    let fault_plan = FaultPlan {
        seed: 2017,
        disconnect_per_10k: 80,
        truncate_per_10k: 40,
        duplicate_per_10k: 60,
        torn_per_10k: 40,
        delay_per_10k: 20,
        delay_ms: 2,
    };
    let (proxy_addr, proxy_stop, stats) = spawn_proxy(server_addr, fault_plan);

    let outcomes: Vec<(String, Vec<String>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3usize)
            .map(|i| {
                scope.spawn(move || {
                    let (algorithm, params) = tenant_family(i);
                    let seed = 77u64
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(i as u64);
                    let case = gen_case_sized(seed, &params, 200);
                    let expected = run_online(
                        &case.instance,
                        case.cal_cost,
                        algorithm.scheduler().as_mut(),
                    );
                    let name = format!("chaos-{i}");
                    let (plan, drain_seq) =
                        build_plan(&name, algorithm, case.cal_cost, &case.instance);
                    let cfg = ClientConfig {
                        tenant: name.clone(),
                        window: 8,
                        deadline: Some(Duration::from_secs(5)),
                        max_reconnects: 200,
                        resume_on_start: false,
                    };
                    let mut backoff = Backoff::new(1, 50, seed);
                    let mut clock = SystemClock;
                    let report = run_plan(
                        &proxy_addr.to_string(),
                        &cfg,
                        &plan,
                        &mut backoff,
                        &mut clock,
                    );
                    let mut errors = report.errors.clone();
                    if !report.completed {
                        errors.push(format!("{name}: plan did not complete"));
                    } else if let Some(reply) = report.captured_for(drain_seq) {
                        assert_exact_accounting(reply, &name, expected.flow, expected.cost);
                    } else {
                        errors.push(format!("{name}: drain reply never captured"));
                    }
                    (name, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tenant thread"))
            .collect()
    });

    for (name, errors) in &outcomes {
        assert!(errors.is_empty(), "{name}: {errors:?}");
    }
    // The run must actually have been chaotic, or the test proves nothing.
    assert!(
        stats.faults() > 0,
        "fault plan injected nothing (lines={})",
        stats.lines.load(Ordering::Relaxed)
    );
    proxy_stop.store(true, Ordering::Relaxed);

    let report = server.join().expect("server thread");
    assert_eq!(report.accountings.len(), 3, "every tenant accounted for");
    assert!(report.all_ok(), "accountings: {:?}", report.accountings);
}

/// Reads the `{"type":"listening","addr":...}` line a daemon prints.
fn daemon_addr(child: &mut std::process::Child) -> String {
    let stdout = child.stdout.as_mut().expect("daemon stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("banner");
    let v = Json::parse(line.trim()).expect("banner json");
    assert_eq!(v.get("type").and_then(Json::as_str), Some("listening"));
    v.get("addr")
        .and_then(Json::as_str)
        .expect("listening addr")
        .to_string()
}

fn spawn_daemon_args(
    journal_dir: &std::path::Path,
    extra: &[&str],
) -> (std::process::Child, String) {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_calib-serve"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--journal-dir",
            journal_dir.to_str().expect("utf8 dir"),
            "--fsync",
            "tick",
            "--read-timeout-ms",
            "0",
        ])
        .args(extra)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn calib-serve");
    let addr = daemon_addr(&mut child);
    (child, addr)
}

fn spawn_daemon(journal_dir: &std::path::Path) -> (std::process::Child, String) {
    spawn_daemon_args(journal_dir, &[])
}

/// The crash-recovery theorem, with a real process and a real `kill -9`:
/// a daemon SIGKILLed mid-session and restarted from its journal drains
/// the resumed tenant to byte-identical accounting.
#[test]
fn kill_dash_nine_then_journal_restart_is_exact() {
    let journal_dir = TempDir::new("kill9-journal");
    let (mut first, addr) = spawn_daemon(&journal_dir.0);

    let (algorithm, params) = tenant_family(1);
    let case = gen_case_sized(4242, &params, 120);
    let expected = run_online(
        &case.instance,
        case.cal_cost,
        algorithm.scheduler().as_mut(),
    );
    let name = "phoenix";
    let (plan, drain_seq) = build_plan(name, algorithm, case.cal_cost, &case.instance);

    // Phase 1: apply roughly half the plan, cleanly, then vanish.
    let half = plan.len() / 2;
    let cfg = ClientConfig {
        tenant: name.to_string(),
        window: 8,
        deadline: Some(Duration::from_secs(5)),
        max_reconnects: 8,
        resume_on_start: false,
    };
    let mut backoff = Backoff::new(1, 50, 1);
    let mut clock = SystemClock;
    let report = run_plan(&addr, &cfg, &plan[..half], &mut backoff, &mut clock);
    assert!(
        report.completed,
        "phase 1 must apply its prefix: {:?}",
        report.errors
    );

    // The `kill -9`: no shutdown handler runs, only the journal survives.
    first.kill().expect("SIGKILL daemon");
    first.wait().expect("reap daemon");

    // Phase 2: a restarted daemon (fresh port — nothing shared but the
    // journal directory) serves the *full* plan from a resuming client;
    // the journal replay supplies the phase-1 prefix, the seq high-water
    // mark suppresses the resent duplicates.
    let (mut second, addr2) = spawn_daemon(&journal_dir.0);
    let cfg2 = ClientConfig {
        resume_on_start: true,
        ..cfg
    };
    let mut backoff2 = Backoff::new(1, 50, 2);
    let report2 = run_plan(&addr2, &cfg2, &plan, &mut backoff2, &mut clock);
    assert!(
        report2.completed,
        "phase 2 must finish the session: {:?}",
        report2.errors
    );
    assert!(report2.resumes >= 1, "phase 2 resumed from the journal");
    let drained = report2.captured_for(drain_seq).expect("drained captured");
    assert_exact_accounting(drained, name, expected.flow, expected.cost);

    // The clean bye finalized the tenant and deleted its journal; the
    // daemon, now idle, exits on its own.
    second.wait().expect("daemon exits when idle");
    let leftover: Vec<_> = std::fs::read_dir(&journal_dir.0)
        .expect("journal dir")
        .filter_map(|e| e.ok())
        .collect();
    assert!(
        leftover.is_empty(),
        "journal deleted after clean finalize: {leftover:?}"
    );
}

/// The compaction crash drill, with a real process: a daemon running
/// cadence checkpoints is SIGKILLed mid-session, a half-written compaction
/// scratch file is staged next to its journal (the on-disk state of a
/// crash *during* `compact()`), and the restarted daemon must recover from
/// the latest durable checkpoint — replaying at most the cadence-bounded
/// tail, reporting it on the `{"type":"recovered",...}` log line — and
/// drain the resumed tenant to byte-identical accounting.
#[test]
fn kill_dash_nine_mid_compaction_recovers_from_checkpoint() {
    use calib_serve::compact_tmp_path;
    use calib_serve::journal::journal_path;

    const CADENCE: u64 = 4;
    let cadence = CADENCE.to_string();
    let flags = [
        "--checkpoint-every-n",
        cadence.as_str(),
        "--compact-on-idle",
    ];
    let journal_dir = TempDir::new("compact-kill9-journal");
    let (mut first, addr) = spawn_daemon_args(&journal_dir.0, &flags);

    let (algorithm, params) = tenant_family(2);
    let case = gen_case_sized(99, &params, 120);
    let expected = run_online(
        &case.instance,
        case.cal_cost,
        algorithm.scheduler().as_mut(),
    );
    let name = "compactor";
    let (plan, drain_seq) = build_plan(name, algorithm, case.cal_cost, &case.instance);

    // Phase 1: enough of the plan that cadence checkpoints have fired.
    let half = plan.len() / 2;
    let cfg = ClientConfig {
        tenant: name.to_string(),
        window: 8,
        deadline: Some(Duration::from_secs(5)),
        max_reconnects: 8,
        resume_on_start: false,
    };
    let mut backoff = Backoff::new(1, 50, 7);
    let mut clock = SystemClock;
    let report = run_plan(&addr, &cfg, &plan[..half], &mut backoff, &mut clock);
    assert!(
        report.completed,
        "phase 1 must apply its prefix: {:?}",
        report.errors
    );

    first.kill().expect("SIGKILL daemon");
    first.wait().expect("reap daemon");

    // Stage the mid-compaction wreckage: a torn checkpoint line at the
    // scratch path, exactly as a crash inside `compact()` leaves it.
    let path = journal_path(&journal_dir.0, name);
    assert!(path.exists(), "phase-1 journal survives the kill");
    let tmp = compact_tmp_path(&path);
    std::fs::write(
        &tmp,
        b"{\"op\":\"checkpoint\",\"tenant\":\"compactor\",\"tr",
    )
    .expect("stage torn scratch");

    // Phase 2: restart with the same flags; the resume must recover from
    // the latest durable checkpoint and finish the session exactly.
    let (mut second, addr2) = spawn_daemon_args(&journal_dir.0, &flags);
    let cfg2 = ClientConfig {
        resume_on_start: true,
        ..cfg
    };
    let mut backoff2 = Backoff::new(1, 50, 8);
    let report2 = run_plan(&addr2, &cfg2, &plan, &mut backoff2, &mut clock);
    assert!(
        report2.completed,
        "phase 2 must finish the session: {:?}",
        report2.errors
    );
    assert!(report2.resumes >= 1, "phase 2 resumed from the journal");
    let drained = report2.captured_for(drain_seq).expect("drained captured");
    assert_exact_accounting(drained, name, expected.flow, expected.cost);

    second.wait().expect("daemon exits when idle");

    // The daemon logged the bounded recovery: the tail it replayed after
    // the checkpoint never exceeds the checkpoint cadence.
    let mut rest = String::new();
    use std::io::Read;
    second
        .stdout
        .as_mut()
        .expect("daemon stdout")
        .read_to_string(&mut rest)
        .expect("drain daemon log");
    let recovered = rest
        .lines()
        .filter_map(|l| Json::parse(l.trim()).ok())
        .find(|v| v.get("type").and_then(Json::as_str) == Some("recovered"))
        .expect("daemon logs the recovery");
    assert_eq!(
        recovered.get("tenant").and_then(Json::as_str),
        Some(name),
        "recovery names the tenant"
    );
    assert_eq!(
        recovered.get("from_checkpoint"),
        Some(&Json::Bool(true)),
        "recovery started from a checkpoint: {recovered:?}"
    );
    let tail = recovered
        .get("tail_replayed")
        .and_then(Json::as_u64)
        .expect("tail_replayed reported");
    assert!(
        tail <= CADENCE,
        "tail {tail} exceeds the checkpoint cadence {CADENCE}"
    );

    // Clean finalize removed the journal *and* the staged scratch file.
    let leftover: Vec<_> = std::fs::read_dir(&journal_dir.0)
        .expect("journal dir")
        .filter_map(|e| e.ok())
        .collect();
    assert!(
        leftover.is_empty(),
        "journal and scratch deleted after clean finalize: {leftover:?}"
    );
}

/// The tentpole fairness drill: two tenants with admission weights 4:1
/// drive ticks at 10x the sustainable token rate over one connection, so
/// every admission decision is a pure function of the request stream (the
/// admission clock ticks once per parsed line — no wall clock, no thread
/// races). The admitted counts are therefore *exactly* reproducible, and
/// they converge to the weight proportion precisely.
///
/// Derivation of the expected counts (rate_per_k=20, burst=8, 501 rounds
/// of one tick per tenant per round, gold registered at virtual ms 1 and
/// iron at ms 2):
///   - gold (weight 4) starts with 8*4 = 32 tokens and refills 20*4 = 80
///     millitokens per virtual ms; each of its attempts sees 2 elapsed ms
///     (two lines per round), i.e. +160 milli per round. Its first refill
///     caps at the full bucket (losing exactly 160 milli), so total
///     supply over 501 rounds is 32000 - 160 + 160*501 = 112000 milli =
///     112 whole tokens, drained to exactly 0.
///   - iron (weight 1): 8000 - 40 + 40*501 = 28000 milli = 28 tokens.
///
/// 112 = 4 * 28: admitted throughput is weight-proportional to the last
/// integer, while 10x of the offered load is rejected with typed
/// `rate-limited` errors carrying the exact refill time.
#[test]
fn ten_x_overload_admits_in_exact_weight_proportion() {
    use calib_serve::AdmitConfig;
    let (addr, server) = spawn_server(ServerConfig {
        admit: AdmitConfig {
            rate_per_k: Some(20),
            ..AdmitConfig::default()
        },
        ..Default::default()
    });
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    for (tenant, weight) in [("gold", 4), ("iron", 1)] {
        send_line(
            &mut stream,
            &format!(
                r#"{{"type":"hello","tenant":"{tenant}","machines":1,"cal_len":2,"cal_cost":1,"algorithm":"immediate","weight":{weight}}}"#
            ),
        );
        assert_eq!(
            read_reply(&mut reader).get("type").and_then(Json::as_str),
            Some("ok"),
            "{tenant} registers"
        );
    }

    const ROUNDS: u64 = 501;
    let mut admitted = [0u64; 2];
    let mut rejected = [0u64; 2];
    for now in 1..=ROUNDS {
        for (i, tenant) in ["gold", "iron"].iter().enumerate() {
            send_line(
                &mut stream,
                &format!(r#"{{"type":"tick","tenant":"{tenant}","now":{now}}}"#),
            );
            let reply = read_reply(&mut reader);
            match reply.get("type").and_then(Json::as_str) {
                Some("decisions") => admitted[i] += 1,
                Some("error") => {
                    assert_eq!(
                        reply.get("code").and_then(Json::as_str),
                        Some("rate-limited"),
                        "the only rejection under pure rate pressure: {reply:?}"
                    );
                    let after = reply
                        .get("retry_after_ms")
                        .and_then(Json::as_u64)
                        .expect("every rejection carries retry_after_ms");
                    assert!(after >= 1, "retry-after is a real delay");
                    rejected[i] += 1;
                }
                other => panic!("unexpected reply type {other:?}: {reply:?}"),
            }
        }
    }
    assert_eq!(admitted, [112, 28], "exact seeded admission counts");
    assert_eq!(
        admitted[0],
        4 * admitted[1],
        "admitted throughput matches the 4:1 weights exactly"
    );
    assert_eq!(rejected, [ROUNDS - 112, ROUNDS - 28]);

    // The daemon-side counters agree with the wire-observed decisions,
    // per tenant and in the global sum (the calib-top --check invariant).
    send_line(&mut stream, r#"{"type":"metrics","seq":1}"#);
    let snap = read_reply(&mut reader);
    let g = snap.get("global").expect("global counters");
    let field = |v: &Json, k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
    assert_eq!(field(g, "admitted"), admitted[0] + admitted[1]);
    assert_eq!(field(g, "rate_limited"), rejected[0] + rejected[1]);
    assert_eq!(field(g, "sheds"), 0, "no in-flight budget configured");
    assert_eq!(field(g, "shed_disconnects"), 0);
    let rows = snap.get("per_tenant").and_then(Json::as_arr).expect("rows");
    for (i, tenant) in ["gold", "iron"].iter().enumerate() {
        let row = rows
            .iter()
            .find(|r| r.get("tenant").and_then(Json::as_str) == Some(tenant))
            .expect("tenant row");
        assert_eq!(field(row, "admitted"), admitted[i], "{tenant} admitted");
        assert_eq!(field(row, "rate_limited"), rejected[i], "{tenant} limited");
    }

    // Sessions stay fully functional behind the limiter: drains (gated,
    // so they too may need to wait out the bucket) and byes still land.
    for tenant in ["gold", "iron"] {
        let mut drained = false;
        for _ in 0..200 {
            send_line(
                &mut stream,
                &format!(r#"{{"type":"drain","tenant":"{tenant}"}}"#),
            );
            let reply = read_reply(&mut reader);
            match reply.get("type").and_then(Json::as_str) {
                Some("drained") => {
                    assert_eq!(reply.get("checker_ok"), Some(&Json::Bool(true)));
                    drained = true;
                    break;
                }
                _ => {
                    assert_eq!(
                        reply.get("code").and_then(Json::as_str),
                        Some("rate-limited")
                    );
                }
            }
        }
        assert!(drained, "{tenant}: drain admitted once the bucket refilled");
        send_line(
            &mut stream,
            &format!(r#"{{"type":"bye","tenant":"{tenant}"}}"#),
        );
        assert_eq!(
            read_reply(&mut reader).get("type").and_then(Json::as_str),
            Some("goodbye")
        );
    }
    drop(stream);
    drop(reader);
    let report = server.join().expect("server");
    assert!(report.all_ok());
    assert_eq!(report.sheds, 0);
    assert_eq!(report.shed_disconnects, 0);
}

/// The shed half of the drill: a one-slot in-flight budget under two
/// concurrent pipelining clients forces `shed` disconnects, and the
/// resilience stack absorbs them — clients honor the server-supplied
/// retry-after, resume the journaled session, and the drained accounting
/// still equals the local batch engine to the last integer.
#[test]
fn shedding_under_inflight_budget_recovers_exactly() {
    use calib_serve::AdmitConfig;
    let journal_dir = TempDir::new("shed-journal");
    let (server_addr, server) = spawn_server(ServerConfig {
        workers: 2,
        journal_dir: Some(journal_dir.0.clone()),
        admit: AdmitConfig {
            max_inflight: Some(1),
            ..AdmitConfig::default()
        },
        ..Default::default()
    });

    let outcomes: Vec<(String, u64, Vec<String>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2usize)
            .map(|i| {
                scope.spawn(move || {
                    let (algorithm, params) = tenant_family(i);
                    let seed = 1209u64.wrapping_add(i as u64);
                    let case = gen_case_sized(seed, &params, 60);
                    let expected = run_online(
                        &case.instance,
                        case.cal_cost,
                        algorithm.scheduler().as_mut(),
                    );
                    let name = format!("shed-{i}");
                    let (plan, drain_seq) =
                        build_plan(&name, algorithm, case.cal_cost, &case.instance);
                    let cfg = ClientConfig {
                        tenant: name.clone(),
                        window: 8,
                        deadline: Some(Duration::from_secs(5)),
                        max_reconnects: 500,
                        resume_on_start: false,
                    };
                    let mut backoff = Backoff::new(1, 20, seed);
                    let mut clock = SystemClock;
                    let report = run_plan(
                        &server_addr.to_string(),
                        &cfg,
                        &plan,
                        &mut backoff,
                        &mut clock,
                    );
                    let mut errors = report.errors.clone();
                    if !report.completed {
                        errors.push(format!("{name}: plan did not complete"));
                    } else if let Some(reply) = report.captured_for(drain_seq) {
                        assert_exact_accounting(reply, &name, expected.flow, expected.cost);
                    } else {
                        errors.push(format!("{name}: drain reply never captured"));
                    }
                    (name, report.reconnects, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tenant thread"))
            .collect()
    });

    for (name, _, errors) in &outcomes {
        assert!(errors.is_empty(), "{name}: {errors:?}");
    }
    let report = server.join().expect("server thread");
    assert_eq!(report.accountings.len(), 2, "every tenant accounted for");
    assert!(report.all_ok(), "accountings: {:?}", report.accountings);
    // The drill must actually have shed, or it proves nothing: with one
    // in-flight slot and two 8-deep pipelines, overlap is unavoidable.
    assert!(report.sheds > 0, "the budget never shed: {report:?}");
    assert_eq!(
        report.sheds, report.shed_disconnects,
        "journaled sheds drop the connection (sessions detach, not die)"
    );
    // Client-side: every shed disconnect forced a reconnect the client
    // rode through. (The *typed* shed path — sleeping exactly the
    // server-supplied retry_after_ms — is proven deterministically in the
    // retry.rs unit tests; under deep pipelining the inline shed error can
    // overtake in-flight worker replies, so it is not asserted here.)
    let client_reconnects: u64 = outcomes.iter().map(|(_, r, _)| r).sum();
    assert!(
        client_reconnects > 0,
        "clients reconnected through the shed disconnects"
    );
}

fn send_line(stream: &mut TcpStream, line: &str) {
    stream.write_all(line.as_bytes()).expect("write");
    stream.write_all(b"\n").expect("write newline");
    stream.flush().expect("flush");
}

fn read_reply(reader: &mut BufReader<TcpStream>) -> Json {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read reply");
    assert!(!line.is_empty(), "server closed unexpectedly");
    Json::parse(line.trim()).expect("reply json")
}

/// `ping` answers inline with health counters even before any hello, and
/// is exempt from every tenant's seq chain.
#[test]
fn ping_pong_reports_health_counters() {
    let (addr, server) = spawn_server(ServerConfig::default());
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    send_line(&mut stream, r#"{"type":"ping","seq":41}"#);
    let pong = read_reply(&mut reader);
    assert_eq!(pong.get("type").and_then(Json::as_str), Some("pong"));
    assert_eq!(pong.get("seq").and_then(Json::as_u64), Some(41));
    assert_eq!(
        pong.get("active_connections").and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(pong.get("tenants").and_then(Json::as_u64), Some(0));
    assert!(pong.get("requests").and_then(Json::as_u64).is_some());
    drop(stream);
    drop(reader);
    server.join().expect("server");
}

/// `--max-tenants` caps registrations with a typed `tenant-limit` error;
/// the slot frees when a tenant finalizes.
#[test]
fn tenant_limit_is_typed_and_slot_frees_on_bye() {
    let (addr, server) = spawn_server(ServerConfig {
        max_tenants: 1,
        ..Default::default()
    });
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    send_line(
        &mut stream,
        r#"{"type":"hello","tenant":"one","machines":1,"cal_len":2,"cal_cost":1,"algorithm":"immediate"}"#,
    );
    assert_eq!(
        read_reply(&mut reader).get("type").and_then(Json::as_str),
        Some("ok")
    );
    send_line(
        &mut stream,
        r#"{"type":"hello","tenant":"two","machines":1,"cal_len":2,"cal_cost":1,"algorithm":"immediate"}"#,
    );
    let r = read_reply(&mut reader);
    assert_eq!(r.get("code").and_then(Json::as_str), Some("tenant-limit"));
    send_line(&mut stream, r#"{"type":"bye","tenant":"one"}"#);
    assert_eq!(
        read_reply(&mut reader).get("type").and_then(Json::as_str),
        Some("goodbye")
    );
    send_line(
        &mut stream,
        r#"{"type":"hello","tenant":"two","machines":1,"cal_len":2,"cal_cost":1,"algorithm":"immediate"}"#,
    );
    assert_eq!(
        read_reply(&mut reader).get("type").and_then(Json::as_str),
        Some("ok"),
        "slot freed by the finalized tenant"
    );
    send_line(&mut stream, r#"{"type":"bye","tenant":"two"}"#);
    read_reply(&mut reader);
    drop(stream);
    drop(reader);
    server.join().expect("server");
}

/// The server-side seq protocol: duplicates are answered benignly without
/// re-execution, gaps get a typed `seq-gap`, and the chain survives both.
#[test]
fn seq_duplicates_are_suppressed_and_gaps_are_typed() {
    let (addr, server) = spawn_server(ServerConfig::default());
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    send_line(
        &mut stream,
        r#"{"type":"hello","tenant":"s","machines":1,"cal_len":2,"cal_cost":1,"algorithm":"immediate","seq":0}"#,
    );
    assert_eq!(
        read_reply(&mut reader).get("type").and_then(Json::as_str),
        Some("ok")
    );
    let arrive =
        r#"{"type":"arrive","tenant":"s","jobs":[{"id":1,"release":3,"weight":1}],"seq":1}"#;
    send_line(&mut stream, arrive);
    assert_eq!(
        read_reply(&mut reader).get("type").and_then(Json::as_str),
        Some("ok")
    );
    // The identical line again: were it re-executed, the engine would
    // reject a duplicate job id. The seq chain must suppress it first.
    send_line(&mut stream, arrive);
    let dup = read_reply(&mut reader);
    assert_eq!(
        dup.get("type").and_then(Json::as_str),
        Some("ok"),
        "duplicate request answered benignly: {dup:?}"
    );
    assert_eq!(dup.get("seq").and_then(Json::as_u64), Some(1));
    // Skipping seq 2 entirely is a typed gap, not a hang or a silent hole.
    send_line(
        &mut stream,
        r#"{"type":"tick","tenant":"s","now":5,"seq":3}"#,
    );
    let gap = read_reply(&mut reader);
    assert_eq!(gap.get("code").and_then(Json::as_str), Some("seq-gap"));
    // The chain is intact: the *correct* next seq still works.
    send_line(
        &mut stream,
        r#"{"type":"tick","tenant":"s","now":5,"seq":2}"#,
    );
    assert_eq!(
        read_reply(&mut reader).get("type").and_then(Json::as_str),
        Some("decisions")
    );
    send_line(&mut stream, r#"{"type":"bye","tenant":"s","seq":3}"#);
    read_reply(&mut reader);
    drop(stream);
    drop(reader);
    server.join().expect("server");
}

/// An idle socket trips `--read-timeout-ms`: the server sends a typed
/// `read-timeout` error and hangs up instead of pinning the reader.
#[test]
fn idle_socket_gets_typed_read_timeout() {
    let (addr, server) = spawn_server(ServerConfig {
        read_timeout: Some(Duration::from_millis(100)),
        ..Default::default()
    });
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("client timeout");
    let mut reader = BufReader::new(stream);
    // Send nothing; the server must speak first.
    let reply = read_reply(&mut reader);
    assert_eq!(
        reply.get("code").and_then(Json::as_str),
        Some("read-timeout")
    );
    let mut rest = String::new();
    let n = reader.read_line(&mut rest).expect("read EOF");
    assert_eq!(n, 0, "server disconnects after the timeout notice");
    server.join().expect("server");
}

/// Backoff sleeps route through the injected clock — a fake clock sees
/// the whole schedule instantly, proving no wall-clock dependence in the
/// retry decision path.
#[test]
fn retry_sleeps_are_injectable_and_deterministic() {
    struct CountingClock {
        slept: Vec<Duration>,
    }
    impl RetryClock for CountingClock {
        fn sleep(&mut self, d: Duration) {
            self.slept.push(d);
        }
    }
    // No server at this address: every attempt fails, every sleep counts.
    let dead = {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind");
        let a = l.local_addr().expect("addr");
        drop(l);
        a
    };
    let (plan, _) = build_plan(
        "ghost",
        Algorithm::Alg1,
        1,
        &gen_case_sized(
            1,
            &GenParams {
                max_p: 1,
                max_weight: 1,
                ..GenParams::default()
            },
            5,
        )
        .instance,
    );
    let cfg = ClientConfig {
        tenant: "ghost".to_string(),
        max_reconnects: 6,
        ..Default::default()
    };
    let run = |seed: u64| -> Vec<Duration> {
        let mut backoff = Backoff::new(2, 64, seed);
        let mut clock = CountingClock { slept: Vec::new() };
        let report = run_plan(&dead.to_string(), &cfg, &plan, &mut backoff, &mut clock);
        assert!(!report.completed, "no server, no completion");
        assert!(!report.errors.is_empty(), "budget exhaustion is reported");
        clock.slept
    };
    let a = run(9);
    let b = run(9);
    assert_eq!(a, b, "same seed, same backoff schedule");
    assert_eq!(a.len(), 6, "one sleep per allowed retry");
    let c = run(10);
    assert_ne!(a, c, "different seed, different jitter");
}

/// A destructive `bye` must never ride the pipeline window. The scripted
/// daemon below applies every request it reads but loses all replies from
/// the drain onward on the first connection. A client that pipelined its
/// bye onto that doomed connection would finalize the session server-side
/// (journal deleted) with the drain's accounting never delivered — the
/// follow-up `resume` then truthfully answers `unknown-tenant` while
/// non-bye steps are still unacked, which is indistinguishable from real
/// session loss. Holding the bye until the window drains keeps the session
/// alive across the fault: the resume lands on the open session and the
/// duplicate-suppressed drain re-serves its payload.
#[test]
fn bye_is_not_pipelined_past_unacked_replies() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind scripted daemon");
    let addr = listener.local_addr().expect("addr");
    let server = std::thread::spawn(move || {
        let mut last_seq: Option<u64> = None;
        let mut finalized = false;
        for conn in 0u32.. {
            let Ok((stream, _)) = listener.accept() else {
                return finalized;
            };
            let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
            let mut writer = stream;
            let mut dropping = false;
            let mut line = String::new();
            loop {
                line.clear();
                match reader.read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
                let v = Json::parse(line.trim()).expect("client sends valid JSON");
                let ty = v.get("type").and_then(Json::as_str).unwrap_or("");
                if ty == "resume" {
                    let reply = if finalized {
                        r#"{"type":"error","code":"unknown-tenant"}"#.to_string()
                    } else {
                        match last_seq {
                            Some(s) => format!(r#"{{"type":"resumed","last_seq":{s}}}"#),
                            None => r#"{"type":"resumed"}"#.to_string(),
                        }
                    };
                    writer
                        .write_all(reply.as_bytes())
                        .and_then(|()| writer.write_all(b"\n"))
                        .expect("resume reply");
                    continue;
                }
                let seq = v
                    .get("seq")
                    .and_then(Json::as_u64)
                    .expect("sequenced request");
                // Apply before replying, like the real write-ahead daemon.
                if Some(seq) > last_seq {
                    last_seq = Some(seq);
                }
                if ty == "bye" {
                    finalized = true;
                }
                // The first connection loses every reply from the drain on.
                if conn == 0 && ty == "drain" {
                    dropping = true;
                }
                if dropping {
                    if ty == "bye" {
                        break;
                    }
                    continue;
                }
                writer
                    .write_all(format!("{{\"type\":\"ok\",\"seq\":{seq}}}\n").as_bytes())
                    .expect("reply");
                if ty == "bye" {
                    return finalized;
                }
            }
        }
        finalized
    });

    let case = gen_case_sized(
        5,
        &GenParams {
            max_p: 1,
            max_weight: 3,
            ..GenParams::default()
        },
        8,
    );
    let (plan, _) = build_plan("held-bye", Algorithm::Alg1, case.cal_cost, &case.instance);
    let cfg = ClientConfig {
        tenant: "held-bye".to_string(),
        deadline: Some(Duration::from_millis(200)),
        max_reconnects: 8,
        ..Default::default()
    };
    let mut backoff = Backoff::new(1, 4, 11);
    let report = run_plan(
        &addr.to_string(),
        &cfg,
        &plan,
        &mut backoff,
        &mut SystemClock,
    );
    assert!(
        report.completed,
        "plan completes across the lost-reply window: {:?}",
        report.errors
    );
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    // The drain's payload was re-served and captured on the retry.
    assert_eq!(report.captured.len(), 1, "one captured drain");
    let finalized = server.join().expect("scripted daemon thread");
    assert!(finalized, "the held-back bye eventually landed");
}
