//! Checkpoint-handoff equivalence: the property suite behind live tenant
//! migration.
//!
//! A migration (see `ROUTER.md`) is exactly "checkpoint on the source,
//! restore on the destination, keep going". For that to be invisible to
//! the client, a session that is checkpointed and restored at *any* point
//! in its request stream must finish in a byte-identical state to one
//! that ran straight through: same engine schedule, same exact `u128`
//! flow/cost totals, same seq high-water mark, same counters.
//!
//! These tests drive [`TenantSession`] directly — no sockets, no daemons —
//! so every cut point of every plan can be checked exhaustively. The
//! process-level drill (real daemons, a real router, a real `kill -9`)
//! lives in `tests/router_chaos.rs`.

use calib_core::json::ToJson;
use calib_core::{Job, Time};
use calib_difftest::{gen_case_sized, GenParams};
use calib_serve::{Algorithm, CheckpointState, TenantConfig, TenantSession};

/// One client-visible mutating request, pre-serialization.
#[derive(Debug, Clone)]
enum Step {
    Arrive(Vec<Job>),
    Tick(Time),
}

/// The algorithm matrix mirrors `calib-loadgen`'s `tenant_plan`: alg1 and
/// alg2 are single-machine, alg1/alg3 unweighted, alg3 multi-machine.
fn plans() -> Vec<(Algorithm, GenParams)> {
    let base = GenParams {
        max_n: 1, // overridden by the sized generator
        max_t: 8,
        max_g: 60,
        max_p: 1,
        max_weight: 1,
    };
    vec![
        (Algorithm::Alg1, base),
        (
            Algorithm::Alg2,
            GenParams {
                max_weight: 9,
                ..base
            },
        ),
        (Algorithm::Alg3, GenParams { max_p: 3, ..base }),
    ]
}

/// Builds the request stream a serving client would produce: arrivals
/// batched by release time, each batch followed by a tick to its last
/// release — the same shape `calib-loadgen` sends over the wire.
fn build_steps(seed: u64, params: &GenParams, jobs: usize) -> (TenantConfig, Vec<Step>) {
    let case = gen_case_sized(seed, params, jobs);
    let instance = &case.instance;
    let config = TenantConfig {
        machines: instance.machines(),
        cal_len: instance.cal_len(),
        cal_cost: case.cal_cost,
        algorithm: Algorithm::Alg1, // overwritten by the caller
    };
    let mut all: Vec<Job> = instance.jobs().to_vec();
    all.sort_by_key(|j| (j.release, j.id));
    let mut steps = Vec::new();
    let mut i = 0usize;
    while i < all.len() {
        // Two release groups per batch keeps arrivals genuinely ahead of
        // ticks, so cut points land between every interesting phase.
        let mut batch: Vec<Job> = Vec::new();
        let mut groups = 0usize;
        let mut last_release: Time = 0;
        while i < all.len() {
            if batch.last().map(|j: &Job| j.release) != Some(all[i].release) {
                if groups == 2 {
                    break;
                }
                groups += 1;
            }
            last_release = all[i].release;
            batch.push(all[i]);
            i += 1;
        }
        steps.push(Step::Arrive(batch));
        steps.push(Step::Tick(last_release));
    }
    (config, steps)
}

/// Applies `steps[from..]` with their stream positions as seqs, then
/// drains with the seq one past the end.
fn apply(session: &mut TenantSession, steps: &[Step], from: usize) {
    for (k, step) in steps.iter().enumerate().skip(from) {
        let seq = Some(k as u64);
        match step {
            Step::Arrive(jobs) => session
                .arrive(jobs, seq)
                .unwrap_or_else(|e| panic!("arrive #{k}: {} {}", e.code, e.message)),
            Step::Tick(now) => {
                session
                    .tick(*now, seq)
                    .unwrap_or_else(|e| panic!("tick #{k}: {} {}", e.code, e.message));
            }
        }
    }
    session
        .drain(Some(steps.len() as u64))
        .unwrap_or_else(|e| panic!("drain: {} {}", e.code, e.message));
}

/// The byte-level identity oracle: the full checkpoint payload (engine
/// snapshot, counters, exact flow/cost, seq high-water mark) plus the
/// materialized schedule, both as compact JSON.
fn fingerprint(session: &TenantSession) -> (String, String) {
    (
        session.checkpoint_state().to_json().to_string_compact(),
        session.schedule_snapshot().to_json().to_string_compact(),
    )
}

fn fresh(config: TenantConfig) -> TenantSession {
    TenantSession::new("tenant-m", config, None)
        .unwrap_or_else(|e| panic!("session: {} {}", e.code, e.message))
}

/// Straight-through reference run for a plan.
fn baseline(config: TenantConfig, steps: &[Step]) -> (String, String) {
    let mut session = fresh(config);
    apply(&mut session, steps, 0);
    let accounting = session.accounting();
    assert!(
        accounting.checker_ok,
        "baseline schedule rejected: {:?}",
        accounting.violations
    );
    fingerprint(&session)
}

/// Checkpoint/restore at *every* cut point reproduces the straight run
/// byte for byte — the property live migration depends on.
#[test]
fn every_cut_point_is_invisible() {
    for (seed, jobs) in [(11u64, 40usize), (29, 40)] {
        for (algorithm, params) in plans() {
            let (mut config, steps) = build_steps(seed, &params, jobs);
            config.algorithm = algorithm;
            let expected = baseline(config, &steps);
            for cut in 0..=steps.len() {
                let mut source = fresh(config);
                for (k, step) in steps.iter().enumerate().take(cut) {
                    let seq = Some(k as u64);
                    match step {
                        Step::Arrive(jobs) => source.arrive(jobs, seq),
                        Step::Tick(now) => source.tick(*now, seq).map(|_| ()),
                    }
                    .unwrap_or_else(|e| panic!("pre-cut #{k}: {} {}", e.code, e.message));
                }
                let state = source.checkpoint_state();
                let mut dest = TenantSession::restore_from_checkpoint(&state)
                    .unwrap_or_else(|e| panic!("restore @{cut}: {} {}", e.code, e.message));
                assert_eq!(
                    dest.last_seq(),
                    source.last_seq(),
                    "seq high-water mark lost across the {algorithm:?}@{cut} handoff"
                );
                apply(&mut dest, &steps, cut);
                assert_eq!(
                    fingerprint(&dest),
                    expected,
                    "{algorithm:?} seed {seed}: cut @{cut} diverged from the straight run"
                );
            }
        }
    }
}

/// A checkpoint round-trips: restoring and immediately re-checkpointing
/// yields the identical payload, so repeated migrations (A -> B -> A)
/// cannot drift.
#[test]
fn double_handoff_is_idempotent() {
    let (algorithm, params) = plans().remove(1);
    let (mut config, steps) = build_steps(17, &params, 40);
    config.algorithm = algorithm;
    let mut session = fresh(config);
    let cut = steps.len() / 2;
    for (k, step) in steps.iter().enumerate().take(cut) {
        let seq = Some(k as u64);
        match step {
            Step::Arrive(jobs) => session.arrive(jobs, seq),
            Step::Tick(now) => session.tick(*now, seq).map(|_| ()),
        }
        .unwrap_or_else(|e| panic!("pre-cut #{k}: {} {}", e.code, e.message));
    }
    let first = session.checkpoint_state();
    let hop_b = TenantSession::restore_from_checkpoint(&first)
        .unwrap_or_else(|e| panic!("restore B: {} {}", e.code, e.message));
    let second = hop_b.checkpoint_state();
    assert_eq!(
        first.to_json().to_string_compact(),
        second.to_json().to_string_compact(),
        "checkpoint payload drifted across a restore"
    );
    let mut hop_a = TenantSession::restore_from_checkpoint(&second)
        .unwrap_or_else(|e| panic!("restore A: {} {}", e.code, e.message));
    apply(&mut hop_a, &steps, cut);
    let mut straight = fresh(config);
    apply(&mut straight, &steps, 0);
    assert_eq!(
        fingerprint(&hop_a),
        fingerprint(&straight),
        "A -> B -> A double handoff diverged from the straight run"
    );
}

/// The checkpoint wire payload survives serialization: JSON round-trip
/// through `CheckpointState::from_json` (what `adopt` receives) restores
/// to the same state as the in-memory handoff.
#[test]
fn checkpoint_survives_the_wire() {
    let (algorithm, params) = plans().remove(2);
    let (mut config, steps) = build_steps(43, &params, 40);
    config.algorithm = algorithm;
    let mut session = fresh(config);
    let cut = (steps.len() * 2) / 3;
    for (k, step) in steps.iter().enumerate().take(cut) {
        let seq = Some(k as u64);
        match step {
            Step::Arrive(jobs) => session.arrive(jobs, seq),
            Step::Tick(now) => session.tick(*now, seq).map(|_| ()),
        }
        .unwrap_or_else(|e| panic!("pre-cut #{k}: {} {}", e.code, e.message));
    }
    let state = session.checkpoint_state();
    let wire = state.to_json().to_string_compact();
    let parsed = calib_core::json::Json::parse(&wire).expect("checkpoint JSON parses");
    let decoded = CheckpointState::from_json(&parsed)
        .unwrap_or_else(|e| panic!("checkpoint failed the wire round-trip: {e}"));
    let mut via_wire = TenantSession::restore_from_checkpoint(&decoded)
        .unwrap_or_else(|e| panic!("restore from wire: {} {}", e.code, e.message));
    let mut direct = TenantSession::restore_from_checkpoint(&state)
        .unwrap_or_else(|e| panic!("restore direct: {} {}", e.code, e.message));
    apply(&mut via_wire, &steps, cut);
    apply(&mut direct, &steps, cut);
    assert_eq!(
        fingerprint(&via_wire),
        fingerprint(&direct),
        "wire-serialized checkpoint diverged from the in-memory one"
    );
}
