//! Journal-replay determinism: a session recovered from its write-ahead
//! journal is byte-identical to the session that never crashed.
//!
//! The recovery contract rests on engine determinism — a `TenantSession`
//! is a pure function of its accepted request stream, so replaying the
//! journalled stream must reproduce the same schedule (same canonical
//! JSON bytes), the same `u128` flow/cost accounting, and the same `seq`
//! high-water mark, for every algorithm and workload family. The crash
//! point is swept across the journal: recovery from any prefix, followed
//! by live replay of the remaining requests, must converge to the same
//! final state.

use std::io::Write;
use std::path::PathBuf;

use calib_core::json::ToJson;
use calib_difftest::{gen_case_sized, GenParams};
use calib_online::run_online;
use calib_serve::journal::journal_path;
use calib_serve::{
    read_journal, recover, Algorithm, FsyncPolicy, JournalRecord, JournalWriter, TenantConfig,
    TenantSession,
};

/// A unique, self-cleaning scratch directory.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path =
            std::env::temp_dir().join(format!("calib-journal-replay-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// The algorithm sweep with generator bounds matched to each contract.
fn families() -> Vec<(Algorithm, GenParams)> {
    vec![
        (
            Algorithm::Alg1,
            GenParams {
                max_p: 1,
                max_weight: 1,
                ..GenParams::default()
            },
        ),
        (
            Algorithm::Alg2,
            GenParams {
                max_p: 1,
                ..GenParams::default()
            },
        ),
        (
            Algorithm::Alg3,
            GenParams {
                max_weight: 1,
                ..GenParams::default()
            },
        ),
    ]
}

/// Drives a fully journaled session through the whole instance (arrive
/// and tick per release group, then drain), mimicking the server's seq
/// bookkeeping, and returns it.
fn run_journaled_session(
    dir: &std::path::Path,
    tenant: &str,
    algorithm: Algorithm,
    case: &calib_difftest::TestCase,
) -> TenantSession {
    let config = TenantConfig {
        machines: case.instance.machines(),
        cal_len: case.instance.cal_len(),
        cal_cost: case.cal_cost,
        algorithm,
    };
    let mut session = TenantSession::new(tenant, config, None).expect("session");
    let mut seq: u64 = 0;
    session.note_seq(seq);
    let writer = JournalWriter::create(dir, tenant, FsyncPolicy::Off).expect("journal create");
    session.start_journal(writer).expect("journal hello");

    let mut jobs = case.instance.jobs().to_vec();
    jobs.sort_by_key(|j| (j.release, j.id));
    let mut i = 0;
    while i < jobs.len() {
        let release = jobs[i].release;
        let mut batch = Vec::new();
        while i < jobs.len() && jobs[i].release == release {
            batch.push(jobs[i]);
            i += 1;
        }
        seq += 1;
        session.arrive(&batch, Some(seq)).expect("arrive");
        session.note_seq(seq);
        seq += 1;
        session.tick(release, Some(seq)).expect("tick");
        session.note_seq(seq);
    }
    seq += 1;
    session.drain(Some(seq)).expect("drain");
    session.note_seq(seq);
    session
}

/// Applies the mutation records after the crash point to a recovered
/// session — the live requests a reconnecting client would resend.
fn apply_live(session: &mut TenantSession, records: &[JournalRecord]) {
    for record in records {
        match record {
            JournalRecord::Hello { .. } => panic!("hello only opens a journal"),
            JournalRecord::Arrive { jobs, seq } => {
                session.arrive(jobs, *seq).expect("live arrive");
            }
            JournalRecord::Tick { now, seq } => {
                session.tick(*now, *seq).expect("live tick");
            }
            JournalRecord::Drain { seq } => {
                session.drain(*seq).expect("live drain");
            }
        }
        if let Some(s) = record.seq() {
            session.note_seq(s);
        }
    }
}

fn snapshot(session: &TenantSession) -> (String, u128, u128, Option<u64>) {
    let schedule = session.schedule_snapshot().to_json().to_string_compact();
    let acc = session.accounting();
    assert!(acc.checker_ok, "drained schedule must pass the checker");
    (schedule, acc.flow, acc.cost, session.last_seq())
}

/// Recovery from *any* crash point reconverges: for every algorithm and
/// several seeds, replaying a journal prefix and re-applying the rest of
/// the request stream yields byte-identical schedule JSON and identical
/// `u128` accounting to the uninterrupted session — which in turn match
/// the batch engine.
#[test]
fn replay_from_any_crash_point_is_byte_identical() {
    for (algorithm, params) in families() {
        for seed in [3u64, 17, 2017] {
            let case = gen_case_sized(seed, &params, 40);
            let tenant = format!("t-{}-{seed}", algorithm.name());
            let dir = TempDir::new(&format!("full-{}-{seed}", algorithm.name()));

            let live = run_journaled_session(&dir.0, &tenant, algorithm, &case);
            let (want_schedule, want_flow, want_cost, want_seq) = snapshot(&live);

            // The uninterrupted session itself matches the batch engine.
            let batch = run_online(
                &case.instance,
                case.cal_cost,
                algorithm.scheduler().as_mut(),
            );
            assert_eq!(want_flow, batch.flow, "{tenant}: live vs batch flow");
            assert_eq!(want_cost, batch.cost, "{tenant}: live vs batch cost");
            assert_eq!(
                want_schedule,
                batch.schedule.to_json().to_string_compact(),
                "{tenant}: live vs batch schedule bytes"
            );

            let records = read_journal(&journal_path(&dir.0, &tenant)).expect("read journal");
            assert!(
                matches!(records.first(), Some(JournalRecord::Hello { .. })),
                "journal opens with hello"
            );
            let mutations = records.len() - 1;

            // Crash right after the hello, mid-stream, and after the last
            // mutation (a pure-replay recovery with nothing to resend).
            for cut in [0, mutations / 2, mutations] {
                let crash_dir = TempDir::new(&format!("cut{cut}-{}-{seed}", algorithm.name()));
                let mut writer = JournalWriter::create(&crash_dir.0, &tenant, FsyncPolicy::Off)
                    .expect("prefix journal");
                for record in &records[..=cut] {
                    writer.append(record).expect("prefix append");
                }
                drop(writer);
                // A crash tears the tail mid-record; recovery must shrug.
                let path = journal_path(&crash_dir.0, &tenant);
                let mut f = std::fs::OpenOptions::new()
                    .append(true)
                    .open(&path)
                    .expect("reopen journal");
                f.write_all(b"{\"type\":\"tick\",\"now\":9")
                    .expect("torn tail");
                drop(f);

                let mut recovered = recover(&crash_dir.0, &tenant, FsyncPolicy::Off)
                    .expect("recover")
                    .expect("journal present");
                apply_live(&mut recovered, &records[cut + 1..]);

                let (got_schedule, got_flow, got_cost, got_seq) = snapshot(&recovered);
                assert_eq!(
                    got_schedule, want_schedule,
                    "{tenant} cut {cut}: schedule bytes diverge after recovery"
                );
                assert_eq!(got_flow, want_flow, "{tenant} cut {cut}: flow");
                assert_eq!(got_cost, want_cost, "{tenant} cut {cut}: cost");
                assert_eq!(got_seq, want_seq, "{tenant} cut {cut}: last_seq");
            }
        }
    }
}

/// A recovered session keeps journaling: crash *again* after recovery and
/// a second recovery still converges (journal appends compose).
#[test]
fn recovery_is_idempotent_across_repeated_crashes() {
    let (algorithm, params) = (Algorithm::Alg2, families()[1].1);
    let case = gen_case_sized(11, &params, 30);
    let tenant = "double-crash";
    let dir = TempDir::new("double-crash-src");
    let live = run_journaled_session(&dir.0, tenant, algorithm, &case);
    let (want_schedule, want_flow, want_cost, want_seq) = snapshot(&live);

    let records = read_journal(&journal_path(&dir.0, tenant)).expect("read journal");
    let mutations = records.len() - 1;
    let first_cut = mutations / 3;
    let second_cut = (2 * mutations) / 3;

    let crash_dir = TempDir::new("double-crash");
    let mut writer =
        JournalWriter::create(&crash_dir.0, tenant, FsyncPolicy::Tick).expect("prefix journal");
    for record in &records[..=first_cut] {
        writer.append(record).expect("prefix append");
    }
    drop(writer);

    // First recovery re-applies up to the second crash point; its journal
    // appends go to the same file.
    let mut recovered = recover(&crash_dir.0, tenant, FsyncPolicy::Tick)
        .expect("recover")
        .expect("journal present");
    apply_live(&mut recovered, &records[first_cut + 1..=second_cut]);
    drop(recovered);

    // Second recovery sees prefix + appended middle, then finishes live.
    let mut recovered = recover(&crash_dir.0, tenant, FsyncPolicy::Tick)
        .expect("second recover")
        .expect("journal still present");
    apply_live(&mut recovered, &records[second_cut + 1..]);

    let (got_schedule, got_flow, got_cost, got_seq) = snapshot(&recovered);
    assert_eq!(
        got_schedule, want_schedule,
        "schedule bytes after two crashes"
    );
    assert_eq!(got_flow, want_flow);
    assert_eq!(got_cost, want_cost);
    assert_eq!(got_seq, want_seq);
}
