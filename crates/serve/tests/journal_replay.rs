//! Journal-replay determinism: a session recovered from its write-ahead
//! journal is byte-identical to the session that never crashed.
//!
//! The recovery contract rests on engine determinism — a `TenantSession`
//! is a pure function of its accepted request stream, so replaying the
//! journalled stream must reproduce the same schedule (same canonical
//! JSON bytes), the same `u128` flow/cost accounting, and the same `seq`
//! high-water mark, for every algorithm and workload family. The crash
//! point is swept across the journal: recovery from any prefix, followed
//! by live replay of the remaining requests, must converge to the same
//! final state.

use std::io::Write;
use std::path::PathBuf;

use calib_core::json::ToJson;
use calib_difftest::{gen_case_sized, GenParams};
use calib_online::run_online;
use calib_serve::journal::journal_path;
use calib_serve::{
    compact_tmp_path, read_journal, recover, recover_with_report, Algorithm, FsyncPolicy,
    JournalRecord, JournalWriter, TenantConfig, TenantSession,
};

/// A unique, self-cleaning scratch directory.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path =
            std::env::temp_dir().join(format!("calib-journal-replay-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// The algorithm sweep with generator bounds matched to each contract.
fn families() -> Vec<(Algorithm, GenParams)> {
    vec![
        (
            Algorithm::Alg1,
            GenParams {
                max_p: 1,
                max_weight: 1,
                ..GenParams::default()
            },
        ),
        (
            Algorithm::Alg2,
            GenParams {
                max_p: 1,
                ..GenParams::default()
            },
        ),
        (
            Algorithm::Alg3,
            GenParams {
                max_weight: 1,
                ..GenParams::default()
            },
        ),
    ]
}

/// Drives a fully journaled session through the whole instance (arrive
/// and tick per release group, then drain), mimicking the server's seq
/// bookkeeping and per-request `maybe_checkpoint` call, and returns it.
/// `checkpoint_every` arms the cadence policy; `hook` runs after each
/// release group (with its zero-based index) for mid-run compactions.
fn run_journaled_session_with(
    dir: &std::path::Path,
    tenant: &str,
    algorithm: Algorithm,
    case: &calib_difftest::TestCase,
    checkpoint_every: Option<u64>,
    mut hook: impl FnMut(&mut TenantSession, usize),
) -> TenantSession {
    let config = TenantConfig {
        machines: case.instance.machines(),
        cal_len: case.instance.cal_len(),
        cal_cost: case.cal_cost,
        algorithm,
    };
    let mut session = TenantSession::new(tenant, config, None).expect("session");
    let mut seq: u64 = 0;
    session.note_seq(seq);
    let writer = JournalWriter::create(dir, tenant, FsyncPolicy::Off).expect("journal create");
    session.start_journal(writer).expect("journal hello");
    session.set_checkpoint_policy(checkpoint_every, false);

    let mut jobs = case.instance.jobs().to_vec();
    jobs.sort_by_key(|j| (j.release, j.id));
    let mut i = 0;
    let mut group = 0;
    while i < jobs.len() {
        let release = jobs[i].release;
        let mut batch = Vec::new();
        while i < jobs.len() && jobs[i].release == release {
            batch.push(jobs[i]);
            i += 1;
        }
        seq += 1;
        session.arrive(&batch, Some(seq)).expect("arrive");
        session.note_seq(seq);
        session.maybe_checkpoint();
        seq += 1;
        session.tick(release, Some(seq)).expect("tick");
        session.note_seq(seq);
        session.maybe_checkpoint();
        hook(&mut session, group);
        group += 1;
    }
    seq += 1;
    session.drain(Some(seq)).expect("drain");
    session.note_seq(seq);
    session.maybe_checkpoint();
    session
}

fn run_journaled_session(
    dir: &std::path::Path,
    tenant: &str,
    algorithm: Algorithm,
    case: &calib_difftest::TestCase,
) -> TenantSession {
    run_journaled_session_with(dir, tenant, algorithm, case, None, |_, _| {})
}

/// Number of distinct release times — the journal gains one arrive and
/// one tick per group, so mid-run hooks can target the middle.
fn release_groups(case: &calib_difftest::TestCase) -> usize {
    let mut releases: Vec<_> = case.instance.jobs().iter().map(|j| j.release).collect();
    releases.sort_unstable();
    releases.dedup();
    releases.len()
}

/// Applies the mutation records after the crash point to a recovered
/// session — the live requests a reconnecting client would resend.
fn apply_live(session: &mut TenantSession, records: &[JournalRecord]) {
    for record in records {
        match record {
            JournalRecord::Hello { .. } => panic!("hello only opens a journal"),
            JournalRecord::Arrive { jobs, seq } => {
                session.arrive(jobs, *seq).expect("live arrive");
            }
            JournalRecord::Tick { now, seq } => {
                session.tick(*now, *seq).expect("live tick");
            }
            JournalRecord::Drain { seq } => {
                session.drain(*seq).expect("live drain");
            }
            JournalRecord::Checkpoint(state) => {
                // A checkpoint carries no new mutations — only the seq
                // high-water mark it captured.
                if let Some(seq) = state.last_seq {
                    session.note_seq(seq);
                }
            }
        }
        if let Some(s) = record.seq() {
            session.note_seq(s);
        }
    }
}

fn snapshot(session: &TenantSession) -> (String, u128, u128, Option<u64>) {
    let schedule = session.schedule_snapshot().to_json().to_string_compact();
    let acc = session.accounting();
    assert!(acc.checker_ok, "drained schedule must pass the checker");
    (schedule, acc.flow, acc.cost, session.last_seq())
}

/// Recovery from *any* crash point reconverges: for every algorithm and
/// several seeds, replaying a journal prefix and re-applying the rest of
/// the request stream yields byte-identical schedule JSON and identical
/// `u128` accounting to the uninterrupted session — which in turn match
/// the batch engine.
#[test]
fn replay_from_any_crash_point_is_byte_identical() {
    for (algorithm, params) in families() {
        for seed in [3u64, 17, 2017] {
            let case = gen_case_sized(seed, &params, 40);
            let tenant = format!("t-{}-{seed}", algorithm.name());
            let dir = TempDir::new(&format!("full-{}-{seed}", algorithm.name()));

            let live = run_journaled_session(&dir.0, &tenant, algorithm, &case);
            let (want_schedule, want_flow, want_cost, want_seq) = snapshot(&live);

            // The uninterrupted session itself matches the batch engine.
            let batch = run_online(
                &case.instance,
                case.cal_cost,
                algorithm.scheduler().as_mut(),
            );
            assert_eq!(want_flow, batch.flow, "{tenant}: live vs batch flow");
            assert_eq!(want_cost, batch.cost, "{tenant}: live vs batch cost");
            assert_eq!(
                want_schedule,
                batch.schedule.to_json().to_string_compact(),
                "{tenant}: live vs batch schedule bytes"
            );

            let records = read_journal(&journal_path(&dir.0, &tenant)).expect("read journal");
            assert!(
                matches!(records.first(), Some(JournalRecord::Hello { .. })),
                "journal opens with hello"
            );
            let mutations = records.len() - 1;

            // Crash right after the hello, mid-stream, and after the last
            // mutation (a pure-replay recovery with nothing to resend).
            for cut in [0, mutations / 2, mutations] {
                let crash_dir = TempDir::new(&format!("cut{cut}-{}-{seed}", algorithm.name()));
                let mut writer = JournalWriter::create(&crash_dir.0, &tenant, FsyncPolicy::Off)
                    .expect("prefix journal");
                for record in &records[..=cut] {
                    writer.append(record).expect("prefix append");
                }
                drop(writer);
                // A crash tears the tail mid-record; recovery must shrug.
                let path = journal_path(&crash_dir.0, &tenant);
                let mut f = std::fs::OpenOptions::new()
                    .append(true)
                    .open(&path)
                    .expect("reopen journal");
                f.write_all(b"{\"type\":\"tick\",\"now\":9")
                    .expect("torn tail");
                drop(f);

                let mut recovered = recover(&crash_dir.0, &tenant, FsyncPolicy::Off)
                    .expect("recover")
                    .expect("journal present");
                apply_live(&mut recovered, &records[cut + 1..]);

                let (got_schedule, got_flow, got_cost, got_seq) = snapshot(&recovered);
                assert_eq!(
                    got_schedule, want_schedule,
                    "{tenant} cut {cut}: schedule bytes diverge after recovery"
                );
                assert_eq!(got_flow, want_flow, "{tenant} cut {cut}: flow");
                assert_eq!(got_cost, want_cost, "{tenant} cut {cut}: cost");
                assert_eq!(got_seq, want_seq, "{tenant} cut {cut}: last_seq");
            }
        }
    }
}

/// A recovered session keeps journaling: crash *again* after recovery and
/// a second recovery still converges (journal appends compose).
#[test]
fn recovery_is_idempotent_across_repeated_crashes() {
    let (algorithm, params) = (Algorithm::Alg2, families()[1].1);
    let case = gen_case_sized(11, &params, 30);
    let tenant = "double-crash";
    let dir = TempDir::new("double-crash-src");
    let live = run_journaled_session(&dir.0, tenant, algorithm, &case);
    let (want_schedule, want_flow, want_cost, want_seq) = snapshot(&live);

    let records = read_journal(&journal_path(&dir.0, tenant)).expect("read journal");
    let mutations = records.len() - 1;
    let first_cut = mutations / 3;
    let second_cut = (2 * mutations) / 3;

    let crash_dir = TempDir::new("double-crash");
    let mut writer =
        JournalWriter::create(&crash_dir.0, tenant, FsyncPolicy::Tick).expect("prefix journal");
    for record in &records[..=first_cut] {
        writer.append(record).expect("prefix append");
    }
    drop(writer);

    // First recovery re-applies up to the second crash point; its journal
    // appends go to the same file.
    let mut recovered = recover(&crash_dir.0, tenant, FsyncPolicy::Tick)
        .expect("recover")
        .expect("journal present");
    apply_live(&mut recovered, &records[first_cut + 1..=second_cut]);
    drop(recovered);

    // Second recovery sees prefix + appended middle, then finishes live.
    let mut recovered = recover(&crash_dir.0, tenant, FsyncPolicy::Tick)
        .expect("second recover")
        .expect("journal still present");
    apply_live(&mut recovered, &records[second_cut + 1..]);

    let (got_schedule, got_flow, got_cost, got_seq) = snapshot(&recovered);
    assert_eq!(
        got_schedule, want_schedule,
        "schedule bytes after two crashes"
    );
    assert_eq!(got_flow, want_flow);
    assert_eq!(got_cost, want_cost);
    assert_eq!(got_seq, want_seq);
}

/// Crash cuts swept across a *compacted* journal: a mid-run compaction
/// rewrites the journal to `[checkpoint, tail…]`, and recovery from every
/// prefix of that file — including a torn final line — restores from the
/// checkpoint, replays exactly the surviving tail (bounded recovery), and
/// reconverges byte-identically once the remaining requests are resent.
#[test]
fn crash_cuts_across_the_compaction_boundary_reconverge() {
    for (algorithm, params) in families() {
        let case = gen_case_sized(29, &params, 40);
        let tenant = format!("compact-{}", algorithm.name());
        let dir = TempDir::new(&format!("compact-src-{}", algorithm.name()));
        let mid = release_groups(&case) / 2;

        let live = run_journaled_session_with(&dir.0, &tenant, algorithm, &case, None, |s, g| {
            if g == mid {
                assert!(s.checkpoint(true), "mid-run compaction succeeds");
            }
        });
        let (want_schedule, want_flow, want_cost, want_seq) = snapshot(&live);

        let records = read_journal(&journal_path(&dir.0, &tenant)).expect("read journal");
        assert!(
            matches!(records.first(), Some(JournalRecord::Checkpoint(_))),
            "compacted journal opens with a checkpoint"
        );
        let tail = records.len() - 1;
        assert!(tail > 0, "workload continues past the compaction point");

        for cut in 0..=tail {
            let crash_dir = TempDir::new(&format!("compact-cut{cut}-{}", algorithm.name()));
            let mut writer = JournalWriter::create(&crash_dir.0, &tenant, FsyncPolicy::Off)
                .expect("prefix journal");
            for record in &records[..=cut] {
                writer.append(record).expect("prefix append");
            }
            drop(writer);
            // A crash tears the tail mid-record; recovery must shrug.
            let path = journal_path(&crash_dir.0, &tenant);
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .expect("reopen journal");
            f.write_all(b"{\"op\":\"tick\",\"now\":9")
                .expect("torn tail");
            drop(f);

            let (mut recovered, report) =
                recover_with_report(&crash_dir.0, &tenant, FsyncPolicy::Off)
                    .expect("recover")
                    .expect("journal present");
            assert!(
                report.from_checkpoint,
                "{tenant} cut {cut}: recovery starts from the checkpoint"
            );
            assert_eq!(
                report.tail_replayed, cut,
                "{tenant} cut {cut}: recovery work is bounded by the tail"
            );
            assert_eq!(report.records, cut + 1, "{tenant} cut {cut}: records seen");
            apply_live(&mut recovered, &records[cut + 1..]);

            let (got_schedule, got_flow, got_cost, got_seq) = snapshot(&recovered);
            assert_eq!(
                got_schedule, want_schedule,
                "{tenant} cut {cut}: schedule bytes diverge after compacted recovery"
            );
            assert_eq!(got_flow, want_flow, "{tenant} cut {cut}: flow");
            assert_eq!(got_cost, want_cost, "{tenant} cut {cut}: cost");
            assert_eq!(got_seq, want_seq, "{tenant} cut {cut}: last_seq");
        }
    }
}

/// A crash *between* writing the compaction scratch file and the atomic
/// rename leaves an intact old journal plus a complete `.tmp` checkpoint.
/// Recovery must ignore the scratch file (it never became the journal),
/// replay the old journal in full, and clean the scratch up.
#[test]
fn crash_before_compaction_rename_falls_back_to_the_old_journal() {
    let (algorithm, params) = (Algorithm::Alg2, families()[1].1);
    let case = gen_case_sized(37, &params, 30);
    let tenant = "mid-rename";
    let dir = TempDir::new("mid-rename");

    let live = run_journaled_session(&dir.0, tenant, algorithm, &case);
    let (want_schedule, want_flow, want_cost, want_seq) = snapshot(&live);

    // Stage the scratch exactly as an interrupted compaction leaves it: a
    // complete checkpoint line at the tmp path, old journal untouched.
    let path = journal_path(&dir.0, tenant);
    let tmp = compact_tmp_path(&path);
    let record = JournalRecord::Checkpoint(Box::new(live.checkpoint_state()));
    let mut line = record.to_json().to_string_compact();
    line.push('\n');
    std::fs::write(&tmp, line).expect("stage scratch checkpoint");

    let (recovered, report) = recover_with_report(&dir.0, tenant, FsyncPolicy::Off)
        .expect("recover")
        .expect("journal present");
    assert!(
        !report.from_checkpoint,
        "the scratch checkpoint must not be consulted"
    );
    assert!(!tmp.exists(), "stale compaction scratch is removed");

    let (got_schedule, got_flow, got_cost, got_seq) = snapshot(&recovered);
    assert_eq!(got_schedule, want_schedule, "schedule bytes after fallback");
    assert_eq!(got_flow, want_flow);
    assert_eq!(got_cost, want_cost);
    assert_eq!(got_seq, want_seq);
}

/// Compacting twice in a row (and again after drain) is idempotent: the
/// journal stays a single checkpoint record, no scratch file survives,
/// and recovery replays zero tail records to the identical state.
#[test]
fn double_compaction_is_idempotent() {
    let (algorithm, params) = (Algorithm::Alg1, families()[0].1);
    let case = gen_case_sized(53, &params, 30);
    let tenant = "double-compact";
    let dir = TempDir::new("double-compact");
    let mid = release_groups(&case) / 2;

    let live = run_journaled_session_with(&dir.0, tenant, algorithm, &case, None, |s, g| {
        if g == mid {
            assert!(s.checkpoint(true), "first mid-run compaction");
            assert!(s.checkpoint(true), "immediate re-compaction");
        }
    });
    let (want_schedule, want_flow, want_cost, want_seq) = snapshot(&live);

    let path = journal_path(&dir.0, tenant);
    let records = read_journal(&path).expect("read journal");
    assert!(
        matches!(records.first(), Some(JournalRecord::Checkpoint(_))),
        "journal opens with the checkpoint"
    );
    assert!(
        !compact_tmp_path(&path).exists(),
        "no scratch file survives"
    );

    // Compact once more on the crash copy: post-drain, the whole history
    // collapses to one checkpoint and recovery replays nothing.
    let crash_dir = TempDir::new("double-compact-crash");
    let mut writer =
        JournalWriter::create(&crash_dir.0, tenant, FsyncPolicy::Off).expect("copy journal");
    for record in &records {
        writer.append(record).expect("copy append");
    }
    drop(writer);
    let (mut recovered, _) = recover_with_report(&crash_dir.0, tenant, FsyncPolicy::Off)
        .expect("recover copy")
        .expect("journal present");
    assert!(recovered.checkpoint(true), "post-drain compaction");
    assert!(recovered.checkpoint(true), "repeat post-drain compaction");
    drop(recovered);

    let crash_path = journal_path(&crash_dir.0, tenant);
    let compacted = read_journal(&crash_path).expect("read compacted journal");
    assert_eq!(compacted.len(), 1, "journal is exactly one checkpoint");
    assert!(
        matches!(compacted.first(), Some(JournalRecord::Checkpoint(_))),
        "the single record is a checkpoint"
    );

    let (recovered, report) = recover_with_report(&crash_dir.0, tenant, FsyncPolicy::Off)
        .expect("recover compacted")
        .expect("journal present");
    assert!(report.from_checkpoint);
    assert_eq!(report.tail_replayed, 0, "nothing left to replay");

    let (got_schedule, got_flow, got_cost, got_seq) = snapshot(&recovered);
    assert_eq!(got_schedule, want_schedule, "schedule bytes survive");
    assert_eq!(got_flow, want_flow);
    assert_eq!(got_cost, want_cost);
    assert_eq!(got_seq, want_seq);
}

/// A crash can tear an *appended* (non-compacting) checkpoint line just
/// like any other record. Recovery must treat it as a torn tail — fall
/// back to the records before it, never error — and reconverge once the
/// rest of the stream is resent.
#[test]
fn torn_appended_checkpoint_line_falls_back_to_full_replay() {
    let (algorithm, params) = (Algorithm::Alg3, families()[2].1);
    let case = gen_case_sized(61, &params, 30);
    let tenant = "torn-checkpoint";
    let dir = TempDir::new("torn-checkpoint");
    let mid = release_groups(&case) / 2;

    let live = run_journaled_session_with(&dir.0, tenant, algorithm, &case, None, |s, g| {
        if g == mid {
            assert!(s.checkpoint(false), "mid-run appended checkpoint");
        }
    });
    let (want_schedule, want_flow, want_cost, want_seq) = snapshot(&live);

    let records = read_journal(&journal_path(&dir.0, tenant)).expect("read journal");
    let ci = records
        .iter()
        .position(|r| matches!(r, JournalRecord::Checkpoint(_)))
        .expect("appended checkpoint present");
    assert!(ci > 0, "checkpoint sits mid-journal after the hello");

    // Rebuild the journal up to the checkpoint, then tear the checkpoint
    // line itself halfway through.
    let crash_dir = TempDir::new("torn-checkpoint-crash");
    let mut writer =
        JournalWriter::create(&crash_dir.0, tenant, FsyncPolicy::Off).expect("prefix journal");
    for record in &records[..ci] {
        writer.append(record).expect("prefix append");
    }
    drop(writer);
    let line = records[ci].to_json().to_string_compact();
    let torn = &line.as_bytes()[..line.len() / 2];
    let path = journal_path(&crash_dir.0, tenant);
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .expect("reopen journal");
    f.write_all(torn).expect("torn checkpoint line");
    drop(f);

    let (mut recovered, report) = recover_with_report(&crash_dir.0, tenant, FsyncPolicy::Off)
        .expect("recover never errors on a torn checkpoint")
        .expect("journal present");
    assert!(
        !report.from_checkpoint,
        "a torn checkpoint is dropped, not restored from"
    );
    assert_eq!(
        report.records, ci,
        "torn line excluded from the record count"
    );
    apply_live(&mut recovered, &records[ci + 1..]);

    let (got_schedule, got_flow, got_cost, got_seq) = snapshot(&recovered);
    assert_eq!(got_schedule, want_schedule, "schedule bytes after fallback");
    assert_eq!(got_flow, want_flow);
    assert_eq!(got_cost, want_cost);
    assert_eq!(got_seq, want_seq);
}

/// The `--checkpoint-every-n` cadence bounds recovery work: with the
/// policy armed the journal accumulates periodic checkpoints, and the
/// replayed tail after a crash never exceeds the cadence.
#[test]
fn cadence_checkpoints_bound_recovery_to_the_tail() {
    const CADENCE: u64 = 4;
    let (algorithm, params) = (Algorithm::Alg2, families()[1].1);
    let case = gen_case_sized(41, &params, 60);
    let tenant = "cadence";
    let dir = TempDir::new("cadence");

    let live =
        run_journaled_session_with(&dir.0, tenant, algorithm, &case, Some(CADENCE), |_, _| {});
    let (want_schedule, want_flow, want_cost, want_seq) = snapshot(&live);

    let records = read_journal(&journal_path(&dir.0, tenant)).expect("read journal");
    let checkpoints = records
        .iter()
        .filter(|r| matches!(r, JournalRecord::Checkpoint(_)))
        .count();
    assert!(
        checkpoints >= 2,
        "cadence produced periodic checkpoints (got {checkpoints})"
    );

    let (recovered, report) = recover_with_report(&dir.0, tenant, FsyncPolicy::Off)
        .expect("recover")
        .expect("journal present");
    assert!(report.from_checkpoint, "recovery starts from a checkpoint");
    assert!(
        report.tail_replayed <= usize::try_from(CADENCE).expect("cadence fits"),
        "tail {} exceeds the checkpoint cadence {CADENCE}",
        report.tail_replayed
    );

    let (got_schedule, got_flow, got_cost, got_seq) = snapshot(&recovered);
    assert_eq!(
        got_schedule, want_schedule,
        "schedule bytes after cadence recovery"
    );
    assert_eq!(got_flow, want_flow);
    assert_eq!(got_cost, want_cost);
    assert_eq!(got_seq, want_seq);
}
