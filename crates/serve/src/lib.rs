//! # calib-serve
//!
//! A multi-tenant online-scheduling daemon for the paper's Section-3
//! algorithms: clients open tenant sessions over a line-delimited JSON
//! protocol (TCP or stdin), stream job arrivals against a virtual clock,
//! and receive calibration/assignment decisions as they are made — the
//! long-running counterpart of the batch `calib-sim` simulator, driving
//! the *same* incremental engine (`calib_online::EngineSession`), so the
//! daemon's schedules are byte-identical to batch runs and every drained
//! session is validated by the trusted `calib_core::check_schedule`.
//!
//! The daemon is crash-safe: with `--journal-dir`, every accepted
//! mutating request is write-ahead journalled per tenant, disconnected
//! sessions detach instead of finalizing, and `resume` reattaches — or
//! replays the journal after a `kill -9` — byte-identically. Snapshot
//! checkpoints (`--checkpoint-every-n`) and idle-point journal compaction
//! (`--compact-on-idle`) bound that replay to the tail after the latest
//! checkpoint, so a long-lived tenant restarts in O(recent activity)
//! instead of O(history). The client
//! side ([`retry`]) reconnects with seeded exponential backoff and
//! resends un-acked requests idempotently, and [`chaos`] provides a
//! seeded fault-injecting TCP proxy to prove the whole stack under torn
//! writes, duplicated lines, and mid-line disconnects.
//!
//! See `SERVE.md` at the repo root for the protocol catalogue,
//! backpressure and shutdown semantics, the failure model, and an example
//! transcript. The binaries are `calib-serve` (the daemon),
//! `calib-loadgen` (a seeded load generator that replays difftest
//! workload families and checks the daemon's objectives against local
//! batch runs), and `calib-chaos` (the fault proxy).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod admit;
pub mod chaos;
pub mod journal;
pub mod metrics;
pub mod protocol;
pub mod retry;
pub mod server;
pub mod session;

pub use admit::{Admission, AdmitClock, AdmitConfig, ManualClock, RequestClock, Verdict};
pub use chaos::{run_proxy, FaultPlan, ProxyStats};
pub use journal::{
    compact_tmp_path, read_journal, recover, recover_with_report, replay, replay_with_report,
    FsyncPolicy, JournalRecord, JournalWriter, RecoveryReport,
};
pub use metrics::{MetricsSink, ServeMetrics, TenantMetrics};
pub use protocol::{Accounting, CheckpointState, Reply, Request, MAX_LINE_BYTES};
pub use retry::{run_plan, Backoff, ClientConfig, ClientReport, PlanStep, RetryClock, SystemClock};
pub use server::{serve, serve_stream, ServeReport, ServerConfig};
pub use session::{Algorithm, SessionError, SessionMetrics, TenantConfig, TenantSession};
