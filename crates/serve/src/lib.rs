//! # calib-serve
//!
//! A multi-tenant online-scheduling daemon for the paper's Section-3
//! algorithms: clients open tenant sessions over a line-delimited JSON
//! protocol (TCP or stdin), stream job arrivals against a virtual clock,
//! and receive calibration/assignment decisions as they are made — the
//! long-running counterpart of the batch `calib-sim` simulator, driving
//! the *same* incremental engine (`calib_online::EngineSession`), so the
//! daemon's schedules are byte-identical to batch runs and every drained
//! session is validated by the trusted `calib_core::check_schedule`.
//!
//! See `SERVE.md` at the repo root for the protocol catalogue,
//! backpressure and shutdown semantics, and an example transcript. The two
//! binaries are `calib-serve` (the daemon) and `calib-loadgen` (a seeded
//! load generator that replays difftest workload families and checks the
//! daemon's objectives against local batch runs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod protocol;
pub mod server;
pub mod session;

pub use protocol::{Accounting, Reply, Request, MAX_LINE_BYTES};
pub use server::{serve, serve_stream, ServeReport, ServerConfig};
pub use session::{Algorithm, SessionError, TenantConfig, TenantSession};
