//! One tenant: an incremental engine session plus its scheduler and probes.
//!
//! Tenants are fully independent — each owns its own
//! [`EngineSession`], its own boxed [`OnlineScheduler`], and its own atomic
//! [`Counters`] registry — so one tenant's malformed traffic or expensive
//! drain can never corrupt another's schedule (the fault-tolerance tests
//! pin this down). The server serializes all requests of a tenant, so a
//! `TenantSession` itself needs no internal locking.

use std::io::{BufWriter, Write};
use std::sync::Arc;
use std::time::Instant;

use calib_core::json::ToJson;
use calib_core::obs::{Counters, Event, Probe, TraceProbe};
use calib_core::{check_schedule, Cost, Instance, Job, Time};
use calib_online::{
    Alg1, Alg2, Alg3, CalibrateImmediately, Decisions, EngineConfig, EngineError, EngineSession,
    OnlineScheduler,
};

use crate::journal::{JournalRecord, JournalWriter};
use crate::metrics::{ServeMetrics, TenantMetrics};
use crate::protocol::{Accounting, CheckpointState};

/// The scheduling algorithms a tenant can ask for in `hello`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Algorithm 1: unweighted jobs, one machine (3-competitive).
    Alg1,
    /// Algorithm 2: weighted jobs, one machine (12-competitive).
    Alg2,
    /// Algorithm 3: unweighted jobs, `P` machines (12-competitive).
    Alg3,
    /// The calibrate-immediately baseline.
    Immediate,
}

impl Algorithm {
    /// Parses the protocol's `algorithm` string.
    pub fn from_name(name: &str) -> Option<Algorithm> {
        match name {
            "alg1" => Some(Algorithm::Alg1),
            "alg2" => Some(Algorithm::Alg2),
            "alg3" => Some(Algorithm::Alg3),
            "immediate" => Some(Algorithm::Immediate),
            _ => None,
        }
    }

    /// The protocol name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Alg1 => "alg1",
            Algorithm::Alg2 => "alg2",
            Algorithm::Alg3 => "alg3",
            Algorithm::Immediate => "immediate",
        }
    }

    /// A fresh scheduler instance.
    pub fn scheduler(self) -> Box<dyn OnlineScheduler + Send> {
        match self {
            Algorithm::Alg1 => Box::new(Alg1::new()),
            Algorithm::Alg2 => Box::new(Alg2::new()),
            Algorithm::Alg3 => Box::new(Alg3::new()),
            Algorithm::Immediate => Box::new(CalibrateImmediately),
        }
    }
}

/// A counting probe over shared ownership — the serve-layer sibling of
/// `calib_core::obs::CountingProbe`, which borrows its registry and
/// therefore cannot live inside a long-lived owned session.
#[derive(Debug, Clone)]
pub struct SharedCountingProbe(pub Arc<Counters>);

impl Probe for SharedCountingProbe {
    fn record(&mut self, event: &Event) {
        self.0.events(1);
        match event {
            Event::Calibrate { .. } => self.0.calibrations(1),
            Event::Dispatch { .. } => self.0.dispatches(1),
            Event::Reserve { .. } => self.0.reservations(1),
            Event::TimeSkip { .. } => self.0.time_skips(1),
            Event::Wake { .. } => self.0.wakes(1),
            Event::JobArrived { .. } => self.0.arrivals(1),
            Event::JournalSync { .. } => self.0.journal_syncs(1),
            Event::RunComplete { .. } => {}
        }
    }
}

/// The probe stack every tenant session runs under: always-on counters,
/// plus an optional JSON-lines trace (the `--trace-dir` opt-in).
pub type TenantProbe = (
    SharedCountingProbe,
    Option<TraceProbe<BufWriter<std::fs::File>>>,
);

/// Tenant configuration from `hello`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantConfig {
    /// Machine count `P`.
    pub machines: usize,
    /// Calibration length `T`.
    pub cal_len: Time,
    /// Calibration cost `G`.
    pub cal_cost: Cost,
    /// The scheduling algorithm.
    pub algorithm: Algorithm,
}

/// A typed session-layer failure, mapped onto protocol error codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionError {
    /// Stable kebab-case code (shared with [`EngineError::code`]).
    pub code: &'static str,
    /// Human-oriented detail.
    pub message: String,
}

impl SessionError {
    fn new(code: &'static str, message: impl Into<String>) -> SessionError {
        SessionError {
            code,
            message: message.into(),
        }
    }
}

impl From<EngineError> for SessionError {
    fn from(e: EngineError) -> SessionError {
        SessionError {
            code: e.code(),
            message: e.to_string(),
        }
    }
}

/// The registry handles a session records into: the daemon-wide
/// [`ServeMetrics`] plus this tenant's retained [`TenantMetrics`] entry.
#[derive(Debug, Clone)]
pub struct SessionMetrics {
    /// The daemon-wide registry.
    pub global: Arc<ServeMetrics>,
    /// This tenant's entry in it.
    pub tenant: Arc<TenantMetrics>,
}

/// One tenant's live scheduling state.
pub struct TenantSession {
    name: String,
    config: TenantConfig,
    engine: EngineSession<TenantProbe>,
    scheduler: Box<dyn OnlineScheduler + Send>,
    counters: Arc<Counters>,
    /// Virtual-time high-water mark from `tick`s; arrivals strictly before
    /// it are in the past even when the engine itself was idle there.
    now: Option<Time>,
    /// Write-ahead journal; every accepted mutating request is appended
    /// here *before* it reaches the engine.
    journal: Option<JournalWriter>,
    /// Highest request `seq` this session has processed — the duplicate-
    /// suppression and gap-detection high-water mark.
    last_seq: Option<u64>,
    /// Metrics registry handles, attached by the server after `hello` or
    /// recovery; `None` in bare unit-test sessions.
    metrics: Option<SessionMetrics>,
    /// Opt-in checkpoint cadence: once this many mutating records have
    /// been journaled since the last checkpoint, the next
    /// [`TenantSession::maybe_checkpoint`] writes one.
    checkpoint_every: Option<u64>,
    /// When set, a checkpoint opportunity on an idle session *compacts*
    /// the journal (rewrites it as `[checkpoint]`) instead of appending.
    compact_on_idle: bool,
    /// Mutating records journaled since the last checkpoint — the length
    /// of the tail a crash right now would replay.
    records_since_checkpoint: u64,
    /// Exact flow/cost totals carried by the checkpoint this session was
    /// restored from; applied to the metrics registry when it attaches.
    restored_totals: Option<(Cost, Cost)>,
}

impl TenantSession {
    /// Opens a session. `trace` is the optional JSON-lines sink.
    pub fn new(
        name: &str,
        config: TenantConfig,
        trace: Option<BufWriter<std::fs::File>>,
    ) -> Result<TenantSession, SessionError> {
        let counters = Arc::new(Counters::new());
        let probe: TenantProbe = (
            SharedCountingProbe(Arc::clone(&counters)),
            trace.map(|mut writer| {
                // A `session` preamble so offline converters (calib-trace)
                // learn the tenant name and calibration length without
                // side channels. A write error here is deferred like any
                // other trace I/O fault: the next probe write re-fails and
                // surfaces at finalization.
                let meta = calib_core::json::Json::obj([
                    ("type", "session".to_json()),
                    ("tenant", name.to_json()),
                    ("machines", config.machines.to_json()),
                    ("cal_len", config.cal_len.to_json()),
                    ("cal_cost", config.cal_cost.to_json()),
                    ("algorithm", config.algorithm.name().to_json()),
                ]);
                let mut line = meta.to_string_compact();
                line.push('\n');
                writer.write_all(line.as_bytes()).ok();
                TraceProbe::new(writer)
            }),
        );
        let engine = EngineSession::with_probe(
            config.machines,
            config.cal_len,
            config.cal_cost,
            EngineConfig::default(),
            probe,
        )
        .map_err(|e| SessionError::new("bad-config", e.to_string()))?;
        if config.cal_len <= 0 {
            return Err(SessionError::new(
                "bad-config",
                format!("cal_len must be positive, got {}", config.cal_len),
            ));
        }
        Ok(TenantSession {
            name: name.to_string(),
            config,
            engine,
            scheduler: config.algorithm.scheduler(),
            counters,
            now: None,
            journal: None,
            last_seq: None,
            metrics: None,
            checkpoint_every: None,
            compact_on_idle: false,
            records_since_checkpoint: 0,
            restored_totals: None,
        })
    }

    /// Rebuilds a session from a checkpoint payload — the starting point
    /// of tail replay. The engine is restored exactly (its own
    /// consistency checks gate this), the counter registry is re-seeded
    /// from the snapshot, and the scheduler is rebuilt fresh — every
    /// shipped scheduler is stateless, so a fresh instance continues
    /// byte-identically.
    pub fn restore_from_checkpoint(state: &CheckpointState) -> Result<TenantSession, SessionError> {
        if state.engine.cal_len != state.config.cal_len
            || state.engine.cal_cost != state.config.cal_cost
        {
            return Err(SessionError::new(
                "corrupt-snapshot",
                "checkpoint engine state disagrees with the tenant configuration",
            ));
        }
        let counters = Arc::new(Counters::new());
        counters.add_snapshot(state.counters);
        // No trace sink: appending replayed events to a truncated trace
        // would silently duplicate history (same rule as full replay).
        let probe: TenantProbe = (SharedCountingProbe(Arc::clone(&counters)), None);
        let engine = calib_online::EngineSession::restore(&state.engine, probe)?;
        Ok(TenantSession {
            name: state.tenant.clone(),
            config: state.config,
            engine,
            scheduler: state.config.algorithm.scheduler(),
            counters,
            now: state.now,
            journal: None,
            last_seq: state.last_seq,
            metrics: None,
            checkpoint_every: None,
            compact_on_idle: false,
            records_since_checkpoint: 0,
            restored_totals: Some((state.flow, state.cost)),
        })
    }

    /// Attaches the metrics registry handles; journal appends are timed
    /// and counted from here on. A session recovered from a checkpoint
    /// re-seeds its exact flow/cost totals into the registry here.
    pub fn set_metrics(&mut self, metrics: SessionMetrics) {
        if let Some((flow, cost)) = self.restored_totals {
            metrics.tenant.set_totals(flow, cost);
        }
        self.metrics = Some(metrics);
    }

    /// Sets the checkpoint policy (see [`TenantSession::maybe_checkpoint`]).
    /// `every = None` disables cadence checkpoints.
    pub fn set_checkpoint_policy(&mut self, every: Option<u64>, compact_on_idle: bool) {
        self.checkpoint_every = every;
        self.compact_on_idle = compact_on_idle;
    }

    /// Starts write-ahead journaling on a *fresh* session: the opening
    /// `hello` record (carrying this session's current `seq` high-water
    /// mark) is written immediately.
    pub fn start_journal(&mut self, mut writer: JournalWriter) -> std::io::Result<()> {
        writer.append(&JournalRecord::hello(
            &self.name,
            &self.config,
            self.last_seq,
        ))?;
        self.journal = Some(writer);
        Ok(())
    }

    /// Reattaches an append-mode journal to a *replayed* session (the
    /// recovery path) — no record is written.
    pub fn resume_journal(&mut self, writer: JournalWriter) {
        self.journal = Some(writer);
    }

    /// Detaches the journal *without* deleting its files — the eviction
    /// path. The on-disk journal must survive the handoff: if the adopting
    /// shard never installs the checkpoint (crash mid-migration), the
    /// journal tail under a shared `--journal-dir` remains the recovery
    /// fallback. Contrast [`TenantSession::finalize`], which removes the
    /// files because a finished session has nothing left to recover.
    pub(crate) fn detach_journal(&mut self) {
        self.journal = None;
    }

    /// The highest request `seq` processed so far.
    pub fn last_seq(&self) -> Option<u64> {
        self.last_seq
    }

    /// Raises the `seq` high-water mark (never lowers it).
    pub fn note_seq(&mut self, seq: u64) {
        self.last_seq = Some(self.last_seq.map_or(seq, |last| last.max(seq)));
    }

    /// Write-ahead append. A journal I/O failure rejects the request
    /// *before* any engine state changes — the client sees a typed
    /// `journal-io` error and durability is never silently degraded.
    ///
    /// Each append is timed: its wall-clock cost lands in the fsync
    /// histograms (when metrics are attached) and is emitted into the
    /// probe stack as a [`Event::JournalSync`], pinned to the virtual time
    /// the record targets — so Perfetto timelines show durability stalls
    /// on the same clock as the scheduling decisions.
    fn journal_append(&mut self, record: &JournalRecord) -> Result<(), SessionError> {
        let Some(w) = self.journal.as_mut() else {
            return Ok(());
        };
        let synced = w.will_sync(record);
        let started = Instant::now();
        let result = w.append(record);
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        if let Some(m) = self.metrics.as_ref() {
            m.global.record_journal_append(&m.tenant, micros, synced);
        }
        let time = match record {
            JournalRecord::Tick { now, .. } => *now,
            _ => self.now.unwrap_or(0),
        };
        self.engine.probe_mut().record(&Event::JournalSync {
            time,
            micros,
            synced,
        });
        if result.is_ok() {
            self.records_since_checkpoint += 1;
        }
        result.map_err(|e| SessionError::new("journal-io", e.to_string()))
    }

    /// Mutating records journaled since the last checkpoint — the replay
    /// tail a crash right now would cost.
    pub fn records_since_checkpoint(&self) -> u64 {
        self.records_since_checkpoint
    }

    /// Recovery bookkeeping: how long the tail already is when a session
    /// comes back from replay.
    pub(crate) fn set_records_since_checkpoint(&mut self, n: u64) {
        self.records_since_checkpoint = n;
    }

    /// The full checkpoint payload for this session's state right now.
    pub fn checkpoint_state(&self) -> CheckpointState {
        let (flow, cost) = self
            .metrics
            .as_ref()
            .map(|m| m.tenant.totals())
            .or(self.restored_totals)
            .unwrap_or((0, 0));
        CheckpointState {
            tenant: self.name.clone(),
            config: self.config,
            last_seq: self.last_seq,
            now: self.now,
            flow,
            cost,
            counters: self.counters.snapshot(),
            engine: self.engine.snapshot(),
        }
    }

    /// Writes a checkpoint — appended (`compact = false`) or compacting
    /// the journal down to `[checkpoint]` (`compact = true`). Returns
    /// whether it succeeded; failures are counted into the metrics
    /// registry and swallowed, because the old journal remains
    /// authoritative — a failed checkpoint degrades recovery *cost*, not
    /// recovery *correctness*.
    pub fn checkpoint(&mut self, compact: bool) -> bool {
        if self.journal.is_none() {
            return false;
        }
        let record = JournalRecord::Checkpoint(Box::new(self.checkpoint_state()));
        let started = Instant::now();
        let result = if compact {
            let Some(writer) = self.journal.take() else {
                return false;
            };
            let (writer, result) = writer.compact(&record);
            self.journal = Some(writer);
            result
        } else {
            match self.journal.as_mut() {
                Some(w) => w.append_counted(&record),
                None => return false,
            }
        };
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        match result {
            Ok(bytes) => {
                self.records_since_checkpoint = 0;
                if let Some(m) = self.metrics.as_ref() {
                    m.global
                        .record_checkpoint(&m.tenant, micros, bytes, compact);
                }
                true
            }
            Err(_) => {
                if let Some(m) = self.metrics.as_ref() {
                    m.global.record_checkpoint_error();
                }
                false
            }
        }
    }

    /// The server's per-request checkpoint hook: a no-op unless the
    /// session journals, something was journaled since the last
    /// checkpoint, and the policy says now. Idle sessions compact (when
    /// `--compact-on-idle` is set) so drained tenants hold exactly one
    /// record on disk; otherwise the `--checkpoint-every-n` cadence
    /// appends, keeping the replay tail bounded by `n`.
    pub fn maybe_checkpoint(&mut self) {
        if self.journal.is_none() || self.records_since_checkpoint == 0 {
            return;
        }
        if self.compact_on_idle && self.is_idle() {
            self.checkpoint(true);
        } else if self
            .checkpoint_every
            .is_some_and(|n| self.records_since_checkpoint >= n)
        {
            self.checkpoint(false);
        }
    }

    /// The tenant's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tenant's configuration.
    pub fn config(&self) -> &TenantConfig {
        &self.config
    }

    /// The tenant's counter registry (shared with the engine probe).
    pub fn counters(&self) -> &Arc<Counters> {
        &self.counters
    }

    /// The virtual time set by the latest `tick`, if any.
    pub fn now(&self) -> Option<Time> {
        self.now
    }

    /// Buffers a batch of future jobs. `seq` is the request's sequence
    /// number, persisted with the journal record so recovery restores the
    /// duplicate-suppression mark.
    ///
    /// The session-level past-arrival check rejects *before* the journal
    /// write (no state change, nothing to persist); engine-level errors
    /// like `duplicate-job` happen *after* it, which is correct because
    /// they are deterministic — replay reproduces the same partial batch
    /// application and the same error.
    pub fn arrive(&mut self, jobs: &[Job], seq: Option<u64>) -> Result<(), SessionError> {
        if let Some(now) = self.now {
            if let Some(job) = jobs.iter().find(|j| j.release < now) {
                return Err(SessionError::new(
                    "arrival-in-past",
                    format!(
                        "{} released at {} is before the tenant's virtual time {now}",
                        job.id, job.release
                    ),
                ));
            }
        }
        if self.journal.is_some() {
            self.journal_append(&JournalRecord::Arrive {
                jobs: jobs.to_vec(),
                seq,
            })?;
        }
        self.engine.submit(jobs)?;
        Ok(())
    }

    /// Advances virtual time to `now`, returning the decision delta.
    pub fn tick(&mut self, now: Time, seq: Option<u64>) -> Result<Decisions, SessionError> {
        if let Some(prev) = self.now {
            if now < prev {
                return Err(SessionError::new(
                    "time-regression",
                    format!("tick to {now} after {prev}"),
                ));
            }
        }
        self.journal_append(&JournalRecord::Tick { now, seq })?;
        self.now = Some(now);
        let delta = self.engine.step(now, &[], self.scheduler.as_mut())?;
        Ok(delta)
    }

    /// The decisions made since the previous delta, without advancing time.
    pub fn decisions(&mut self) -> Decisions {
        self.engine.take_decisions()
    }

    /// True when no submitted work remains.
    pub fn is_idle(&self) -> bool {
        self.engine.is_idle()
    }

    /// A snapshot of everything scheduled so far, in the engine's
    /// canonical order — the byte-identity witness for replay tests.
    pub fn schedule_snapshot(&self) -> calib_core::Schedule {
        self.engine.schedule_snapshot()
    }

    /// Runs the engine to completion of all submitted work and returns the
    /// decision delta. The session stays open.
    pub fn drain(&mut self, seq: Option<u64>) -> Result<Decisions, SessionError> {
        self.journal_append(&JournalRecord::Drain { seq })?;
        let delta = self.engine.drain(self.scheduler.as_mut())?;
        Ok(delta)
    }

    /// Validated accounting over everything scheduled so far. Runs the
    /// trusted feasibility checker against the submitted jobs; call after
    /// [`TenantSession::drain`] for final numbers.
    pub fn accounting(&self) -> Accounting {
        let jobs = self.engine.submitted_jobs();
        let schedule = self.engine.schedule_snapshot();
        let n = jobs.len();
        let scheduled = schedule.assignments.len();
        let calibrations = schedule.calibrations.len();
        // `Instance::new` only fails on non-positive T / zero machines,
        // which `hello` validation already excluded.
        let (flow, checker_ok, violations) =
            match Instance::new(jobs, self.config.machines, self.config.cal_len) {
                Ok(instance) => {
                    let flow = schedule.total_weighted_flow(&instance);
                    // Partial sessions legitimately have unassigned jobs;
                    // only a *drained* session must pass the full check.
                    match check_schedule(&instance, &schedule) {
                        Ok(()) => (flow, true, Vec::new()),
                        Err(e) => (
                            flow,
                            false,
                            e.violations.iter().map(|v| v.code().to_string()).collect(),
                        ),
                    }
                }
                Err(e) => (0, false, vec![format!("bad-instance: {e}")]),
            };
        Accounting {
            tenant: self.name.clone(),
            jobs: n,
            scheduled,
            calibrations,
            flow,
            cost: self.config.cal_cost * Cost::try_from(calibrations).unwrap_or(Cost::MAX) + flow,
            checker_ok,
            violations,
        }
    }

    /// Drains, validates, and closes the session in one move — the `bye`
    /// and disconnect-cleanup path. The trace sink (if any) is flushed; its
    /// first deferred I/O error is surfaced alongside the accounting. A
    /// journal, if attached, is deleted: a finalized session has nothing
    /// left to recover.
    pub fn finalize(mut self) -> (Accounting, Result<(), std::io::Error>) {
        // Detach the journal first: the closing drain is part of
        // finalization, not a recoverable request.
        let journal = self.journal.take();
        let drain_err = self.drain(None).err();
        let mut accounting = self.accounting();
        if let Some(e) = drain_err {
            accounting.checker_ok = false;
            accounting.violations.push(e.code.to_string());
        }
        let (outcome, probe) = self.engine.finish();
        debug_assert_eq!(outcome.schedule.assignments.len(), accounting.scheduled);
        let mut io_result = match probe.1 {
            Some(trace) => trace.finish().map(|_| ()),
            None => Ok(()),
        };
        if let Some(w) = journal {
            let removed = w.remove_files();
            if io_result.is_ok() {
                io_result = removed;
            }
        }
        (accounting, io_result)
    }

    /// Serializes the tenant's configuration for logs and reports.
    pub fn config_json(&self) -> calib_core::json::Json {
        calib_core::json::Json::obj([
            ("tenant", self.name.as_str().to_json()),
            ("machines", self.config.machines.to_json()),
            ("cal_len", self.config.cal_len.to_json()),
            ("cal_cost", self.config.cal_cost.to_json()),
            ("algorithm", self.config.algorithm.name().to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calib_core::InstanceBuilder;
    use calib_online::run_online;

    fn config(algorithm: Algorithm) -> TenantConfig {
        TenantConfig {
            machines: 1,
            cal_len: 4,
            cal_cost: 6,
            algorithm,
        }
    }

    #[test]
    fn algorithm_names_round_trip() {
        for alg in [
            Algorithm::Alg1,
            Algorithm::Alg2,
            Algorithm::Alg3,
            Algorithm::Immediate,
        ] {
            assert_eq!(Algorithm::from_name(alg.name()), Some(alg));
        }
        assert_eq!(Algorithm::from_name("alg9"), None);
    }

    #[test]
    fn session_matches_batch_objective() {
        let inst = InstanceBuilder::new(4)
            .unit_jobs([0, 1, 2, 9, 9, 20])
            .build()
            .unwrap();
        let batch = run_online(&inst, 6, &mut Alg1::new());

        let mut s = TenantSession::new("t", config(Algorithm::Alg1), None).unwrap();
        s.arrive(inst.jobs(), None).unwrap();
        s.drain(None).unwrap();
        let acc = s.accounting();
        assert!(acc.checker_ok, "violations: {:?}", acc.violations);
        assert_eq!(acc.flow, batch.flow);
        assert_eq!(acc.cost, batch.cost);
        assert_eq!(acc.scheduled, inst.n());
    }

    #[test]
    fn virtual_past_and_duplicates_get_stable_codes() {
        let mut s = TenantSession::new("t", config(Algorithm::Alg1), None).unwrap();
        s.arrive(&[Job::unweighted(0, 5)], None).unwrap();
        s.tick(10, None).unwrap();
        let err = s.arrive(&[Job::unweighted(1, 3)], None).unwrap_err();
        assert_eq!(err.code, "arrival-in-past");
        let err = s.arrive(&[Job::unweighted(0, 50)], None).unwrap_err();
        assert_eq!(err.code, "duplicate-job");
        let err = s.tick(9, None).unwrap_err();
        assert_eq!(err.code, "time-regression");
        // The session still works.
        s.arrive(&[Job::unweighted(2, 30)], None).unwrap();
        s.drain(None).unwrap();
        assert!(s.accounting().checker_ok);
    }

    #[test]
    fn counters_observe_engine_events() {
        let mut s = TenantSession::new("t", config(Algorithm::Alg1), None).unwrap();
        s.arrive(&[Job::unweighted(0, 0), Job::unweighted(1, 1)], None)
            .unwrap();
        s.drain(None).unwrap();
        let snap = s.counters().snapshot();
        assert_eq!(snap.arrivals, 2);
        assert_eq!(snap.dispatches, 2);
        assert!(snap.calibrations >= 1);
    }

    #[test]
    fn finalize_reports_partial_schedules_as_unchecked() {
        let mut s = TenantSession::new("t", config(Algorithm::Alg1), None).unwrap();
        s.arrive(&[Job::unweighted(0, 0)], None).unwrap();
        let (acc, io) = s.finalize();
        assert!(io.is_ok());
        assert!(
            acc.checker_ok,
            "finalize drains first: {:?}",
            acc.violations
        );
        assert_eq!(acc.scheduled, 1);
    }
}
