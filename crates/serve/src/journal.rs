//! Crash-safe write-ahead journaling for tenant sessions.
//!
//! Because a [`TenantSession`] is a deterministic pure function of its
//! accepted request stream (the same property the difftest oracle
//! exploits), an append-only journal of accepted mutating requests is a
//! *complete* crash-recovery mechanism: replaying the journal through a
//! fresh session reconstructs the exact engine state, including the exact
//! `u128` flow/cost accounting. The journal is line-delimited JSON, one
//! record per accepted `hello`/`arrive`/`tick`/`drain`, written *before*
//! the request is applied to the engine (write-ahead ordering), carrying
//! the request's `seq` so recovery also restores the duplicate-suppression
//! high-water mark.
//!
//! Engine-level rejections (e.g. `duplicate-job`, which applies the batch
//! up to the offending job) are themselves deterministic, so journaling a
//! request that the engine later rejects is correct — replay reproduces
//! the same partial state and the same error. Session-level pre-checks
//! (`arrival-in-past`, `time-regression`) reject *before* the journal
//! write and cause no state change, so they never appear in the journal.
//!
//! Durability is tunable per [`FsyncPolicy`]: `off` still survives a
//! `kill -9` (the OS has the bytes) but not power loss; `tick` bounds loss
//! to the work since the last clock advance; `always` fsyncs every record.
//! A torn final line — the crash landed mid-`write` — is ignored on read;
//! a torn line anywhere *else* means external corruption and is an error.

use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use calib_core::json::{FromJson, Json, ToJson};
use calib_core::{Cost, Job, Time};

use crate::protocol::CheckpointState;
use crate::session::{Algorithm, TenantConfig, TenantSession};

/// When journal appends reach the disk platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record — survives power loss, slowest.
    Always,
    /// `fsync` only on `tick` and `drain` records — bounds loss to the
    /// requests since the last clock advance.
    Tick,
    /// Never `fsync`; flush to the OS only. Survives process death
    /// (`kill -9`) but not kernel panic or power loss.
    Off,
}

impl FsyncPolicy {
    /// Parses the CLI spelling.
    pub fn from_name(name: &str) -> Option<FsyncPolicy> {
        match name {
            "always" => Some(FsyncPolicy::Always),
            "tick" => Some(FsyncPolicy::Tick),
            "off" => Some(FsyncPolicy::Off),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Tick => "tick",
            FsyncPolicy::Off => "off",
        }
    }
}

/// One accepted mutating request, as persisted.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// Session open: the full tenant configuration.
    Hello {
        /// Tenant name, for integrity checking against the file name.
        tenant: String,
        /// Machine count `P`.
        machines: usize,
        /// Calibration length `T`.
        cal_len: Time,
        /// Calibration cost `G`.
        cal_cost: Cost,
        /// The scheduling algorithm.
        algorithm: Algorithm,
        /// The request's sequence number, when the client sent one.
        seq: Option<u64>,
    },
    /// A job batch delivered to the engine.
    Arrive {
        /// The batch, verbatim.
        jobs: Vec<Job>,
        /// The request's sequence number.
        seq: Option<u64>,
    },
    /// A virtual-clock advance.
    Tick {
        /// The new virtual time.
        now: Time,
        /// The request's sequence number.
        seq: Option<u64>,
    },
    /// A run-to-completion of all submitted work.
    Drain {
        /// The request's sequence number.
        seq: Option<u64>,
    },
    /// Full session state at one instant. Recovery restores from the
    /// latest valid checkpoint and replays only the records after it, so
    /// restart cost is bounded by the tail length. Boxed: the payload is
    /// orders of magnitude larger than the request records.
    Checkpoint(Box<CheckpointState>),
}

impl JournalRecord {
    /// The record's sequence number, when the client supplied one.
    /// Checkpoints are not requests; they carry the session's `seq`
    /// high-water mark inside their payload instead.
    pub fn seq(&self) -> Option<u64> {
        match self {
            JournalRecord::Hello { seq, .. }
            | JournalRecord::Arrive { seq, .. }
            | JournalRecord::Tick { seq, .. }
            | JournalRecord::Drain { seq } => *seq,
            JournalRecord::Checkpoint(_) => None,
        }
    }

    /// True for records the `tick` fsync policy must sync on. A torn
    /// checkpoint is harmless (recovery falls back to replaying through
    /// it), but syncing keeps the recovery-cost bound durable too.
    pub fn is_sync_point(&self) -> bool {
        matches!(
            self,
            JournalRecord::Tick { .. } | JournalRecord::Drain { .. } | JournalRecord::Checkpoint(_)
        )
    }

    /// Serializes the record as one compact JSON object.
    pub fn to_json(&self) -> Json {
        if let JournalRecord::Checkpoint(state) = self {
            return match state.to_json() {
                Json::Obj(mut fields) => {
                    fields.insert(0, ("op".to_string(), Json::Str("checkpoint".to_string())));
                    Json::Obj(fields)
                }
                other => other,
            };
        }
        let mut fields: Vec<(&'static str, Json)> = match self {
            JournalRecord::Hello {
                tenant,
                machines,
                cal_len,
                cal_cost,
                algorithm,
                ..
            } => vec![
                ("op", "hello".to_json()),
                ("tenant", Json::Str(tenant.clone())),
                ("machines", machines.to_json()),
                ("cal_len", cal_len.to_json()),
                ("cal_cost", cal_cost.to_json()),
                ("algorithm", algorithm.name().to_json()),
            ],
            JournalRecord::Arrive { jobs, .. } => {
                vec![("op", "arrive".to_json()), ("jobs", jobs.to_json())]
            }
            JournalRecord::Tick { now, .. } => {
                vec![("op", "tick".to_json()), ("now", now.to_json())]
            }
            JournalRecord::Drain { .. } => vec![("op", "drain".to_json())],
            // Handled by the early return above.
            JournalRecord::Checkpoint(_) => Vec::new(),
        };
        if let Some(s) = self.seq() {
            fields.push(("seq", s.to_json()));
        }
        Json::obj(fields)
    }

    /// The record's newline-terminated journal line. Checkpoints — whose
    /// serialized size scales with the engine state — bypass the `Json`
    /// tree and serialize directly into the buffer; the output is
    /// byte-identical to `to_json().to_string_compact()` either way.
    pub fn to_line(&self) -> String {
        if let JournalRecord::Checkpoint(state) = self {
            let mut line = String::with_capacity(state.line_capacity_hint());
            line.push_str("{\"op\":\"checkpoint\",");
            state.write_fields(&mut line);
            line.push_str("}\n");
            return line;
        }
        let mut line = self.to_json().to_string_compact();
        line.push('\n');
        line
    }

    /// Parses one journal line.
    pub fn from_json(v: &Json) -> Result<JournalRecord, String> {
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing `op`".to_string())?;
        let seq = v.get("seq").and_then(Json::as_u64);
        match op {
            "hello" => {
                let tenant = v
                    .get("tenant")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "hello record missing `tenant`".to_string())?
                    .to_string();
                let machines = v
                    .get("machines")
                    .and_then(Json::as_u64)
                    .and_then(|m| usize::try_from(m).ok())
                    .ok_or_else(|| "hello record missing `machines`".to_string())?;
                let cal_len = v
                    .get("cal_len")
                    .and_then(Json::as_i64)
                    .ok_or_else(|| "hello record missing `cal_len`".to_string())?;
                let cal_cost = v
                    .get("cal_cost")
                    .and_then(Json::as_u128)
                    .ok_or_else(|| "hello record missing `cal_cost`".to_string())?;
                let algorithm = v
                    .get("algorithm")
                    .and_then(Json::as_str)
                    .and_then(Algorithm::from_name)
                    .ok_or_else(|| "hello record has no known `algorithm`".to_string())?;
                Ok(JournalRecord::Hello {
                    tenant,
                    machines,
                    cal_len,
                    cal_cost,
                    algorithm,
                    seq,
                })
            }
            "arrive" => {
                let jobs_json = v
                    .get("jobs")
                    .ok_or_else(|| "arrive record missing `jobs`".to_string())?;
                let jobs = Vec::<Job>::from_json(jobs_json)
                    .map_err(|e| format!("arrive record has bad `jobs`: {e}"))?;
                Ok(JournalRecord::Arrive { jobs, seq })
            }
            "tick" => {
                let now = v
                    .get("now")
                    .and_then(Json::as_i64)
                    .ok_or_else(|| "tick record missing `now`".to_string())?;
                Ok(JournalRecord::Tick { now, seq })
            }
            "drain" => Ok(JournalRecord::Drain { seq }),
            "checkpoint" => {
                CheckpointState::from_json(v).map(|s| JournalRecord::Checkpoint(Box::new(s)))
            }
            other => Err(format!("unknown journal op `{other}`")),
        }
    }

    /// Builds the opening record from a tenant's configuration.
    pub fn hello(tenant: &str, config: &TenantConfig, seq: Option<u64>) -> JournalRecord {
        JournalRecord::Hello {
            tenant: tenant.to_string(),
            machines: config.machines,
            cal_len: config.cal_len,
            cal_cost: config.cal_cost,
            algorithm: config.algorithm,
            seq,
        }
    }
}

/// Maps a tenant name onto its journal file, using the same conservative
/// charset mapping as the trace files (names go into paths).
pub fn journal_path(dir: &Path, tenant: &str) -> PathBuf {
    let safe: String = tenant
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    dir.join(format!("{safe}.journal.jsonl"))
}

/// The scratch file a compaction writes its checkpoint into before the
/// atomic rename. A crash can leave it behind at any cut point; recovery
/// and clean close both delete it, and its content is never read.
pub fn compact_tmp_path(journal: &Path) -> PathBuf {
    let mut name = journal.as_os_str().to_os_string();
    name.push(".tmp");
    PathBuf::from(name)
}

/// An open per-tenant journal file, appended write-ahead.
#[derive(Debug)]
pub struct JournalWriter {
    path: PathBuf,
    file: BufWriter<File>,
    policy: FsyncPolicy,
}

impl JournalWriter {
    /// Creates (or truncates) the journal for a *fresh* session. A fresh
    /// `hello` for a name with a stale on-disk journal deliberately starts
    /// over — the client chose a new session, not `resume`.
    pub fn create(dir: &Path, tenant: &str, policy: FsyncPolicy) -> io::Result<JournalWriter> {
        std::fs::create_dir_all(dir)?;
        let path = journal_path(dir, tenant);
        let _ = std::fs::remove_file(compact_tmp_path(&path));
        let file = File::create(&path)?;
        Ok(JournalWriter {
            path,
            file: BufWriter::new(file),
            policy,
        })
    }

    /// Reopens an existing journal for appending (the recovery path).
    pub fn open_append(dir: &Path, tenant: &str, policy: FsyncPolicy) -> io::Result<JournalWriter> {
        let path = journal_path(dir, tenant);
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(JournalWriter {
            path,
            file: BufWriter::new(file),
            policy,
        })
    }

    /// The journal's on-disk location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether appending `record` ends in `fsync` under this writer's
    /// policy — exposed so the metrics layer can label the append's
    /// latency sample (and the emitted `journal_sync` trace event) without
    /// duplicating the policy table.
    pub fn will_sync(&self, record: &JournalRecord) -> bool {
        match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::Tick => record.is_sync_point(),
            FsyncPolicy::Off => false,
        }
    }

    /// Appends one record, flushing to the OS and fsyncing per policy.
    /// Must be called *before* the request is applied to the engine.
    pub fn append(&mut self, record: &JournalRecord) -> io::Result<()> {
        self.append_counted(record).map(|_| ())
    }

    /// [`JournalWriter::append`], returning the bytes written — the
    /// checkpoint path reports payload size to the metrics registry.
    pub fn append_counted(&mut self, record: &JournalRecord) -> io::Result<u64> {
        let sync = self.will_sync(record);
        let line = record.to_line();
        self.file.write_all(line.as_bytes())?;
        self.file.flush()?;
        if sync {
            self.file.get_ref().sync_data()?;
        }
        Ok(u64::try_from(line.len()).unwrap_or(u64::MAX))
    }

    /// Rewrites the journal as `[checkpoint]` — everything before the
    /// checkpoint is subsumed by it; records appended afterwards form the
    /// tail.
    ///
    /// Crash-safe at every cut point: the checkpoint is written to a
    /// scratch `.tmp` file (synced unless the policy is `off`) and
    /// published over the journal with one atomic `rename`. Before the
    /// rename the old journal is untouched and authoritative; after it the
    /// new journal is complete. The returned writer keeps appending to the
    /// *renamed* file through the same handle, so no reopen can fail
    /// half-way. On error the original writer comes back unchanged (the
    /// scratch file, if any, is deleted) and appends simply continue
    /// against the old journal.
    pub fn compact(self, checkpoint: &JournalRecord) -> (JournalWriter, io::Result<u64>) {
        let tmp = compact_tmp_path(&self.path);
        let prepared: io::Result<(File, u64)> = (|| {
            let mut file = File::create(&tmp)?;
            let line = checkpoint.to_line();
            file.write_all(line.as_bytes())?;
            if self.policy != FsyncPolicy::Off {
                file.sync_data()?;
            }
            std::fs::rename(&tmp, &self.path)?;
            Ok((file, u64::try_from(line.len()).unwrap_or(u64::MAX)))
        })();
        match prepared {
            Ok((file, bytes)) => (
                JournalWriter {
                    path: self.path,
                    file: BufWriter::new(file),
                    policy: self.policy,
                },
                Ok(bytes),
            ),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                (self, Err(e))
            }
        }
    }

    /// Deletes the journal's on-disk files — the clean-close (`bye`)
    /// path. A stale compaction scratch file goes with it.
    pub fn remove_files(self) -> io::Result<()> {
        // Drop the handle first so removal works on every platform.
        let path = self.path;
        drop(self.file);
        let _ = std::fs::remove_file(compact_tmp_path(&path));
        std::fs::remove_file(path)
    }
}

/// Reads every intact record of a journal file.
///
/// A final line that is unterminated or unparseable is treated as a torn
/// tail from a mid-write crash and ignored; a malformed line anywhere
/// earlier is corruption and an `InvalidData` error.
pub fn read_journal(path: &Path) -> io::Result<Vec<JournalRecord>> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut raw: Vec<Vec<u8>> = Vec::new();
    loop {
        let mut buf = Vec::new();
        let n = reader.read_until(b'\n', &mut buf)?;
        if n == 0 {
            break;
        }
        raw.push(buf);
    }
    let mut records = Vec::with_capacity(raw.len());
    let last = raw.len().saturating_sub(1);
    for (i, buf) in raw.iter().enumerate() {
        let is_tail = i == last;
        let parsed = std::str::from_utf8(buf)
            .ok()
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| {
                Json::parse(s)
                    .map_err(|e| e.to_string())
                    .and_then(|v| JournalRecord::from_json(&v))
            });
        match parsed {
            // An unterminated tail still counts when it parses — the line
            // is complete JSON, only the trailing newline is missing.
            Some(Ok(record)) => records.push(record),
            Some(Err(e)) if is_tail => {
                // Torn tail: the crash landed mid-write. Drop it.
                let _ = e;
            }
            Some(Err(e)) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("corrupt journal line {}: {e}", i + 1),
                ));
            }
            None if is_tail => {}
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("corrupt journal line {}: not UTF-8", i + 1),
                ));
            }
        }
    }
    Ok(records)
}

/// What a recovery actually did — how much of the journal existed versus
/// how much had to be replayed through the engine. The daemon logs this
/// per recovery, and the recovery CI job asserts `tail_replayed` stays
/// bounded by the checkpoint cadence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Intact records read from the journal file.
    pub records: usize,
    /// Records replayed through the engine after the restore point.
    pub tail_replayed: usize,
    /// Whether a checkpoint supplied the starting state (`false` = full
    /// replay from the hello record).
    pub from_checkpoint: bool,
}

fn corrupt(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Applies one post-restore-point record to a replaying session. Engine-
/// level errors are deterministic re-occurrences of errors the live
/// session already reported (and answered), so they are swallowed — the
/// replayed state still matches the live state exactly.
fn apply_record(session: &mut TenantSession, record: &JournalRecord) -> io::Result<()> {
    match record {
        JournalRecord::Hello { .. } => {
            return Err(corrupt("duplicate hello record mid-journal"));
        }
        JournalRecord::Arrive { jobs, seq } => {
            let _ = session.arrive(jobs, None);
            if let Some(s) = *seq {
                session.note_seq(s);
            }
        }
        JournalRecord::Tick { now, seq } => {
            let _ = session.tick(*now, None);
            if let Some(s) = *seq {
                session.note_seq(s);
            }
        }
        JournalRecord::Drain { seq } => {
            let _ = session.drain(None);
            if let Some(s) = *seq {
                session.note_seq(s);
            }
        }
        // A checkpoint in the tail is state the session already has (it
        // was cut *after* this record's restore point would have been);
        // only its `seq` high-water mark matters.
        JournalRecord::Checkpoint(state) => {
            if let Some(s) = state.last_seq {
                session.note_seq(s);
            }
        }
    }
    Ok(())
}

/// Replays intact records through a fresh session, reporting how much
/// work that took.
///
/// The session restarts from the **latest checkpoint that restores
/// cleanly** and replays only the records after it. A checkpoint that
/// fails its consistency checks falls back to the previous one, and
/// ultimately to full replay from the hello record — mirroring the torn-
/// tail rule: recovery degrades to more replay work, it does not error.
/// Returns `None` for an empty journal (crash before the hello record hit
/// the disk).
pub fn replay_with_report(
    records: &[JournalRecord],
) -> io::Result<Option<(TenantSession, RecoveryReport)>> {
    let report = |tail: usize, from_checkpoint: bool| RecoveryReport {
        records: records.len(),
        tail_replayed: tail,
        from_checkpoint,
    };
    // Newest checkpoint first.
    for (i, record) in records.iter().enumerate().rev() {
        let JournalRecord::Checkpoint(state) = record else {
            continue;
        };
        let Ok(mut session) = TenantSession::restore_from_checkpoint(state) else {
            continue;
        };
        let tail = &records[i + 1..];
        for record in tail {
            apply_record(&mut session, record)?;
        }
        session.set_records_since_checkpoint(u64::try_from(tail.len()).unwrap_or(u64::MAX));
        return Ok(Some((session, report(tail.len(), true))));
    }
    // Full replay from the opening hello.
    let Some(first) = records.first() else {
        return Ok(None);
    };
    let JournalRecord::Hello {
        tenant,
        machines,
        cal_len,
        cal_cost,
        algorithm,
        seq,
    } = first
    else {
        return Err(corrupt(
            "journal starts with neither a hello nor a usable checkpoint",
        ));
    };
    let config = TenantConfig {
        machines: *machines,
        cal_len: *cal_len,
        cal_cost: *cal_cost,
        algorithm: *algorithm,
    };
    // Recovered sessions run without a trace sink: appending replayed
    // events to a truncated trace would silently duplicate history.
    let mut session = TenantSession::new(tenant, config, None)
        .map_err(|e| corrupt(&format!("journalled config no longer valid: {}", e.message)))?;
    if let Some(s) = *seq {
        session.note_seq(s);
    }
    let tail = &records[1..];
    for record in tail {
        apply_record(&mut session, record)?;
    }
    session.set_records_since_checkpoint(u64::try_from(records.len()).unwrap_or(u64::MAX));
    Ok(Some((session, report(tail.len(), false))))
}

/// Replays intact records through a fresh session. See
/// [`replay_with_report`] for the checkpoint-selection rules.
pub fn replay(records: &[JournalRecord]) -> io::Result<Option<TenantSession>> {
    Ok(replay_with_report(records)?.map(|(session, _)| session))
}

/// Full recovery: read + replay + reattach an append-mode writer, so the
/// resumed session keeps journaling where the dead process stopped. A
/// stale compaction scratch file (crash before the rename) is deleted —
/// the old journal it would have replaced is still authoritative.
///
/// Returns `Ok(None)` when no journal exists for the tenant.
pub fn recover_with_report(
    dir: &Path,
    tenant: &str,
    policy: FsyncPolicy,
) -> io::Result<Option<(TenantSession, RecoveryReport)>> {
    let path = journal_path(dir, tenant);
    let _ = std::fs::remove_file(compact_tmp_path(&path));
    if !path.exists() {
        return Ok(None);
    }
    let records = read_journal(&path)?;
    let Some((mut session, report)) = replay_with_report(&records)? else {
        return Ok(None);
    };
    if session.name() != tenant {
        return Err(corrupt(&format!(
            "journal `{}` belongs to tenant `{}`, not `{tenant}`",
            path.display(),
            session.name()
        )));
    }
    let writer = JournalWriter::open_append(dir, tenant, policy)?;
    session.resume_journal(writer);
    Ok(Some((session, report)))
}

/// [`recover_with_report`] without the report.
pub fn recover(dir: &Path, tenant: &str, policy: FsyncPolicy) -> io::Result<Option<TenantSession>> {
    Ok(recover_with_report(dir, tenant, policy)?.map(|(session, _)| session))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("calib-journal-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn config() -> TenantConfig {
        TenantConfig {
            machines: 1,
            cal_len: 4,
            cal_cost: 6,
            algorithm: Algorithm::Alg1,
        }
    }

    #[test]
    fn records_round_trip_through_json() {
        let records = vec![
            JournalRecord::hello("t", &config(), Some(0)),
            JournalRecord::Arrive {
                jobs: vec![Job::new(0, 3, 2)],
                seq: Some(1),
            },
            JournalRecord::Tick {
                now: 5,
                seq: Some(2),
            },
            JournalRecord::Drain { seq: None },
        ];
        for r in &records {
            let line = r.to_json().to_string_compact();
            let back = JournalRecord::from_json(&Json::parse(&line).unwrap()).unwrap();
            assert_eq!(&back, r);
        }
    }

    #[test]
    fn write_read_replay_reconstructs_state() {
        let dir = tmp("rt");
        let mut w = JournalWriter::create(&dir, "t", FsyncPolicy::Off).unwrap();
        w.append(&JournalRecord::hello("t", &config(), Some(0)))
            .unwrap();
        w.append(&JournalRecord::Arrive {
            jobs: vec![Job::unweighted(0, 0), Job::unweighted(1, 2)],
            seq: Some(1),
        })
        .unwrap();
        w.append(&JournalRecord::Tick {
            now: 2,
            seq: Some(2),
        })
        .unwrap();
        w.append(&JournalRecord::Drain { seq: Some(3) }).unwrap();
        drop(w);

        let records = read_journal(&journal_path(&dir, "t")).unwrap();
        assert_eq!(records.len(), 4);
        let session = replay(&records).unwrap().unwrap();
        assert_eq!(session.last_seq(), Some(3));
        let acc = session.accounting();
        assert!(acc.checker_ok, "violations: {:?}", acc.violations);
        assert_eq!(acc.scheduled, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_ignored_but_midfile_corruption_is_fatal() {
        let dir = tmp("torn");
        let mut w = JournalWriter::create(&dir, "t", FsyncPolicy::Always).unwrap();
        w.append(&JournalRecord::hello("t", &config(), None))
            .unwrap();
        w.append(&JournalRecord::Tick { now: 1, seq: None })
            .unwrap();
        drop(w);
        let path = journal_path(&dir, "t");
        // Torn tail: a partial record with no newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(br#"{"op":"tick","no"#).unwrap();
        drop(f);
        let records = read_journal(&path).unwrap();
        assert_eq!(records.len(), 2, "torn tail dropped");

        // Corruption mid-file is not a torn tail.
        std::fs::write(
            &path,
            b"{\"op\":\"hello\",\"tenant\":\"t\",\"machines\":1,\"cal_len\":4,\"cal_cost\":6,\"algorithm\":\"alg1\"}\ngarbage\n{\"op\":\"drain\"}\n",
        )
        .unwrap();
        let err = read_journal(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_reports_missing_journal_as_none() {
        let dir = tmp("none");
        assert!(recover(&dir, "ghost", FsyncPolicy::Off).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_paths_stay_inside_the_directory() {
        let dir = PathBuf::from("/journals");
        let p = journal_path(&dir, "../../etc/passwd");
        assert_eq!(p, dir.join("______etc_passwd.journal.jsonl"));
    }

    /// A journaled session with some real state to checkpoint.
    fn journaled_session(dir: &Path) -> TenantSession {
        let mut s = TenantSession::new("t", config(), None).unwrap();
        s.start_journal(JournalWriter::create(dir, "t", FsyncPolicy::Off).unwrap())
            .unwrap();
        s.arrive(&[Job::unweighted(0, 0), Job::unweighted(1, 3)], Some(1))
            .unwrap();
        s.note_seq(1);
        s.tick(4, Some(2)).unwrap();
        s.note_seq(2);
        s
    }

    #[test]
    fn checkpoint_record_round_trips_through_json() {
        let dir = tmp("ckpt-rt");
        let s = journaled_session(&dir);
        let record = JournalRecord::Checkpoint(Box::new(s.checkpoint_state()));
        let line = record.to_json().to_string_compact();
        let back = JournalRecord::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, record);
        assert!(back.is_sync_point());
        assert_eq!(back.seq(), None);
        // The direct writer used on the hot path is byte-identical to the
        // `Json`-tree renderer.
        assert_eq!(record.to_line(), format!("{line}\n"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_rewrites_to_checkpoint_plus_tail() {
        let dir = tmp("compact");
        let mut live = journaled_session(&dir);
        assert!(live.checkpoint(true), "compaction must succeed");
        assert_eq!(live.records_since_checkpoint(), 0);
        // On disk: exactly one (checkpoint) record.
        let path = journal_path(&dir, "t");
        let records = read_journal(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert!(matches!(records[0], JournalRecord::Checkpoint(_)));
        assert!(
            !compact_tmp_path(&path).exists(),
            "scratch file renamed away"
        );

        // The tail keeps appending through the same (renamed) handle.
        live.arrive(&[Job::unweighted(2, 6)], Some(3)).unwrap();
        live.note_seq(3);
        live.tick(7, Some(4)).unwrap();
        live.note_seq(4);
        live.drain(Some(5)).unwrap();
        live.note_seq(5);
        let records = read_journal(&path).unwrap();
        assert_eq!(records.len(), 4, "checkpoint + 3 tail records");

        // Recovery restores from the checkpoint and replays only the tail,
        // byte-identical to the live session.
        let (recovered, report) = replay_with_report(&records).unwrap().unwrap();
        assert!(report.from_checkpoint);
        assert_eq!(report.tail_replayed, 3);
        assert_eq!(recovered.last_seq(), live.last_seq());
        assert_eq!(
            recovered.schedule_snapshot().to_json().to_string_compact(),
            live.schedule_snapshot().to_json().to_string_compact()
        );
        let (ra, la) = (recovered.accounting(), live.accounting());
        assert_eq!((ra.flow, ra.cost), (la.flow, la.cost));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_compaction_scratch_file_is_ignored_and_removed() {
        let dir = tmp("stale-tmp");
        let mut live = journaled_session(&dir);
        live.drain(Some(3)).unwrap();
        let live_schedule = live.schedule_snapshot().to_json().to_string_compact();
        drop(live);
        // Simulate a crash mid-compaction, before the rename: a torn
        // scratch file next to an intact journal.
        let path = journal_path(&dir, "t");
        std::fs::write(compact_tmp_path(&path), b"{\"op\":\"checkpoint\",\"tr").unwrap();
        let (recovered, report) = recover_with_report(&dir, "t", FsyncPolicy::Off)
            .unwrap()
            .unwrap();
        assert!(!report.from_checkpoint, "old journal is authoritative");
        assert!(!compact_tmp_path(&path).exists(), "scratch file cleaned up");
        assert_eq!(
            recovered.schedule_snapshot().to_json().to_string_compact(),
            live_schedule
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unusable_checkpoint_falls_back_to_full_replay() {
        let dir = tmp("bad-ckpt");
        let mut live = journaled_session(&dir);
        // Append a checkpoint whose engine state fails consistency checks.
        let mut state = live.checkpoint_state();
        state.engine.waiting.push(calib_core::JobId(999));
        live.resume_journal({
            let mut w = JournalWriter::open_append(&dir, "t", FsyncPolicy::Off).unwrap();
            w.append(&JournalRecord::Checkpoint(Box::new(state)))
                .unwrap();
            w
        });
        live.drain(Some(3)).unwrap();
        let records = read_journal(&journal_path(&dir, "t")).unwrap();
        let (recovered, report) = replay_with_report(&records).unwrap().unwrap();
        assert!(
            !report.from_checkpoint,
            "corrupt checkpoint must fall back to full replay"
        );
        assert_eq!(report.tail_replayed, records.len() - 1);
        assert_eq!(
            recovered.schedule_snapshot().to_json().to_string_compact(),
            live.schedule_snapshot().to_json().to_string_compact()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
