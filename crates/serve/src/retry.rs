//! Client-side resilience: seeded exponential backoff and a reconnecting,
//! resuming, idempotently-resending protocol client.
//!
//! The driver is a *plan*: the full, `seq`-numbered request script a
//! client intends to send (`calib-loadgen` builds one per tenant). The
//! plan makes resending trivial and exact — after any anomaly the client
//! reconnects, asks the server to `resume` the tenant, learns the
//! server's `last_seq` high-water mark, and resends precisely the
//! un-acked tail. Requests are idempotent on the wire because the server
//! suppresses duplicates by `seq` (answering benignly) and rejects gaps
//! with `seq-gap`, so at-least-once delivery composes into exactly-once
//! application.
//!
//! Backoff delays are computed purely from the attempt counter and a
//! seeded RNG — no wall-clock reads in the decision path — and sleeping
//! goes through the injected [`RetryClock`], so tests drive the whole
//! retry schedule deterministically and instantly.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use calib_core::json::Json;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The sleeping side of retrying, injected so tests can fake time.
pub trait RetryClock {
    /// Blocks the caller for `d`.
    fn sleep(&mut self, d: Duration);
}

/// The production clock: a real `thread::sleep`.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl RetryClock for SystemClock {
    fn sleep(&mut self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// Seeded exponential backoff with jitter.
///
/// Delay for attempt `k` is drawn uniformly from `[cap/2, cap]` where
/// `cap = min(base << k, max)` — "decorrelated-ish" jitter that keeps a
/// reconnect herd from synchronizing, yet is fully deterministic in the
/// seed (no wall-clock input).
#[derive(Debug, Clone)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    attempt: u32,
    rng: StdRng,
}

impl Backoff {
    /// A backoff starting at `base_ms` and saturating at `cap_ms`.
    pub fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Backoff {
        let base_ms = base_ms.max(1);
        Backoff {
            base_ms,
            cap_ms: cap_ms.max(base_ms),
            attempt: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Attempts since the last [`Backoff::reset`].
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// The next delay; grows the attempt counter.
    pub fn next_delay(&mut self) -> Duration {
        let shift = self.attempt.min(16);
        let cap = self
            .base_ms
            .saturating_mul(1u64 << shift)
            .min(self.cap_ms)
            .max(1);
        self.attempt = self.attempt.saturating_add(1);
        let ms = self.rng.gen_range(cap.div_ceil(2)..=cap);
        Duration::from_millis(ms)
    }

    /// Back to the base delay — call after any successful progress.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// One scripted request in a client plan.
#[derive(Debug, Clone)]
pub struct PlanStep {
    /// The step's sequence number; plans must use contiguous seqs starting
    /// anywhere (loadgen starts at 0).
    pub seq: u64,
    /// The full request line, newline included, with `"seq"` embedded.
    pub line: String,
    /// Keep this step's reply (drain/bye accounting) for the caller.
    pub capture: bool,
    /// True for the closing `bye` — if the tenant is gone when we try to
    /// resume and only bye-steps remain, the session closed successfully.
    pub is_bye: bool,
}

impl PlanStep {
    /// A plan step from request fields; appends `seq` and serializes.
    pub fn new(
        seq: u64,
        mut fields: Vec<(&'static str, Json)>,
        capture: bool,
        is_bye: bool,
    ) -> PlanStep {
        use calib_core::json::ToJson;
        fields.push(("seq", seq.to_json()));
        let mut line = Json::obj(fields).to_string_compact();
        line.push('\n');
        PlanStep {
            seq,
            line,
            capture,
            is_bye,
        }
    }
}

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// The tenant this plan drives.
    pub tenant: String,
    /// Pipeline window (in-flight request cap).
    pub window: usize,
    /// Per-request reply deadline; a stalled server surfaces as a typed
    /// failure (and a reconnect), never a hang. `None` waits forever.
    pub deadline: Option<Duration>,
    /// Consecutive connect/resume/read failures tolerated before giving
    /// up (the counter resets on any acked reply).
    pub max_reconnects: u32,
    /// Send `resume` on the *first* connection too — the restart-recovery
    /// path, where the plan was partially applied by a previous process.
    pub resume_on_start: bool,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            tenant: String::new(),
            window: 32,
            deadline: Some(Duration::from_secs(10)),
            max_reconnects: 64,
            resume_on_start: false,
        }
    }
}

/// What [`run_plan`] did.
#[derive(Debug, Default)]
pub struct ClientReport {
    /// True when every plan step was acked.
    pub completed: bool,
    /// Replies matched to plan steps.
    pub replies: u64,
    /// Calibrations + starts observed across all decision deltas.
    pub decisions: u64,
    /// Reconnections performed.
    pub reconnects: u64,
    /// Successful `resumed` handshakes.
    pub resumes: u64,
    /// `tenant-moved` redirects followed (migrations observed mid-stream).
    pub redirects: u64,
    /// Captured replies, keyed by plan seq.
    pub captured: Vec<(u64, Json)>,
    /// Per-acked-reply latencies in microseconds.
    pub latencies_us: Vec<f64>,
    /// Typed overload rejections (`shed`/`rate-limited`) honored via the
    /// server-supplied `retry_after_ms`.
    pub sheds: u64,
    /// Protocol-level failures (typed server errors, final give-up).
    pub errors: Vec<String>,
}

impl ClientReport {
    /// The captured reply for `seq`, if any.
    pub fn captured_for(&self, seq: u64) -> Option<&Json> {
        self.captured
            .iter()
            .find(|(s, _)| *s == seq)
            .map(|(_, v)| v)
    }
}

/// Why the streaming loop stopped.
enum Drive {
    /// Every plan step acked.
    Done,
    /// Connection-level anomaly; reconnect and resume. A server-supplied
    /// retry-after (from a typed `shed`/`rate-limited` rejection) overrides
    /// the exponential backoff for this one sleep.
    Reconnect(String, Option<Duration>),
}

/// What the resume handshake concluded.
enum Resume {
    /// Server restored the session; resend from its `last_seq`.
    Resumed(Option<u64>),
    /// Tenant unknown in memory and on disk.
    Unknown,
    /// Transient failure (still attached, I/O, timeout): back off, retry.
    Retry(String),
}

/// Executes `plan` against the daemon at `addr`, reconnecting, resuming,
/// and resending through any connection-level fault until every step is
/// acked or the retry budget is exhausted.
pub fn run_plan(
    addr: &str,
    cfg: &ClientConfig,
    plan: &[PlanStep],
    backoff: &mut Backoff,
    clock: &mut dyn RetryClock,
) -> ClientReport {
    let mut report = ClientReport::default();
    let mut acked: usize = 0;
    let mut need_resume = cfg.resume_on_start;
    let mut failures: u32 = 0;
    loop {
        if acked >= plan.len() {
            report.completed = true;
            return report;
        }
        // Reconnect budget check happens on failures, not up front, so the
        // first connection is always attempted.
        let stream = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(e) => {
                if give_up(&mut report, &mut failures, cfg, format!("connect: {e}")) {
                    return report;
                }
                clock.sleep(backoff.next_delay());
                continue;
            }
        };
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(cfg.deadline).ok();
        let reader_half = match stream.try_clone() {
            Ok(s) => s,
            Err(e) => {
                if give_up(&mut report, &mut failures, cfg, format!("clone: {e}")) {
                    return report;
                }
                clock.sleep(backoff.next_delay());
                continue;
            }
        };
        let mut reader = BufReader::new(reader_half);
        let mut writer = BufWriter::new(stream);

        if need_resume {
            match do_resume(&mut reader, &mut writer, &cfg.tenant) {
                Resume::Resumed(last_seq) => {
                    report.resumes += 1;
                    acked = recompute_acked(plan, last_seq, &report.captured);
                }
                Resume::Unknown => {
                    if acked == 0 && report.captured.is_empty() {
                        // Nothing was ever applied; start the plan fresh.
                    } else if plan[acked..].iter().all(|s| s.is_bye) {
                        // Only the goodbye ack was lost; the tenant closed.
                        report.completed = true;
                        return report;
                    } else {
                        report
                            .errors
                            .push("resume: session lost (unknown-tenant)".to_string());
                        return report;
                    }
                }
                Resume::Retry(why) => {
                    if give_up(&mut report, &mut failures, cfg, why) {
                        return report;
                    }
                    clock.sleep(backoff.next_delay());
                    continue;
                }
            }
        }
        // Every subsequent connection is a *re*-connection.
        need_resume = true;

        match drive(
            &mut reader,
            &mut writer,
            plan,
            &mut acked,
            cfg,
            &mut report,
            &mut failures,
            backoff,
        ) {
            Drive::Done => {
                report.completed = true;
                return report;
            }
            Drive::Reconnect(why, after) => {
                report.reconnects += 1;
                if give_up(&mut report, &mut failures, cfg, why) {
                    return report;
                }
                // A server-supplied retry-after is authoritative: sleep
                // exactly that long, not the jittered exponential default
                // (which stays un-advanced so a later anomaly restarts the
                // ramp from where it left off).
                match after {
                    Some(d) => clock.sleep(d),
                    None => clock.sleep(backoff.next_delay()),
                }
            }
        }
    }
}

/// Bumps the failure counter; on budget exhaustion records the reason and
/// reports failure.
fn give_up(report: &mut ClientReport, failures: &mut u32, cfg: &ClientConfig, why: String) -> bool {
    *failures += 1;
    if *failures > cfg.max_reconnects {
        report.errors.push(format!(
            "retry budget exhausted ({} failures): {why}",
            failures
        ));
        return true;
    }
    false
}

/// Sends `resume` and interprets the server's answer.
fn do_resume(
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    tenant: &str,
) -> Resume {
    use calib_core::json::ToJson;
    let mut line =
        Json::obj([("type", "resume".to_json()), ("tenant", tenant.to_json())]).to_string_compact();
    line.push('\n');
    if writer.write_all(line.as_bytes()).is_err() || writer.flush().is_err() {
        return Resume::Retry("resume: write failed".to_string());
    }
    let mut reply = String::new();
    match reader.read_line(&mut reply) {
        Ok(0) => return Resume::Retry("resume: connection closed".to_string()),
        Ok(_) => {}
        Err(e) => return Resume::Retry(format!("resume: read: {e}")),
    }
    let Ok(v) = Json::parse(reply.trim()) else {
        return Resume::Retry("resume: unparseable reply".to_string());
    };
    match v.get("type").and_then(Json::as_str) {
        Some("resumed") => Resume::Resumed(v.get("last_seq").and_then(Json::as_u64)),
        Some("error") => match v.get("code").and_then(Json::as_str) {
            Some("unknown-tenant") => Resume::Unknown,
            Some(code) => Resume::Retry(format!("resume: server error `{code}`")),
            None => Resume::Retry("resume: untyped error".to_string()),
        },
        _ => Resume::Retry("resume: unexpected reply type".to_string()),
    }
}

/// Where to restart the plan after a `resumed` handshake: just past the
/// server's high-water mark, rewound to the earliest capture step whose
/// reply we never saw (its duplicate-suppressed resend re-serves the
/// payload — a `drained` duplicate carries the full accounting).
fn recompute_acked(plan: &[PlanStep], last_seq: Option<u64>, captured: &[(u64, Json)]) -> usize {
    let mut acked = match last_seq {
        None => 0,
        Some(s) => plan.iter().position(|p| p.seq > s).unwrap_or(plan.len()),
    };
    for (i, step) in plan.iter().enumerate().take(acked) {
        if step.capture && !captured.iter().any(|(s, _)| *s == step.seq) {
            acked = i;
            break;
        }
    }
    acked
}

/// Streams the un-acked plan tail through the pipeline window, matching
/// replies FIFO by `seq`.
#[allow(clippy::too_many_arguments)]
fn drive(
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    plan: &[PlanStep],
    acked: &mut usize,
    cfg: &ClientConfig,
    report: &mut ClientReport,
    failures: &mut u32,
    backoff: &mut Backoff,
) -> Drive {
    let window = cfg.window.max(1);
    let mut next = *acked;
    let mut in_flight: VecDeque<(usize, Instant)> = VecDeque::new();
    let mut line = String::new();
    loop {
        while next < plan.len() && in_flight.len() < window {
            // `bye` is destructive: the server finalizes the session and
            // deletes its journal. If a pipelined bye lands while an
            // earlier reply (say the drain's) is lost in transit, the next
            // `resume` hears a truthful `unknown-tenant` with non-bye steps
            // still unacked — indistinguishable from real session loss. So
            // a bye only goes out once the window has fully drained; then
            // the sole lossable ack is the bye's own, which the
            // unknown-tenant grace below recovers.
            if plan[next].is_bye && !in_flight.is_empty() {
                break;
            }
            if writer.write_all(plan[next].line.as_bytes()).is_err() || writer.flush().is_err() {
                return Drive::Reconnect("write failed".to_string(), None);
            }
            in_flight.push_back((next, Instant::now()));
            next += 1;
        }
        if in_flight.is_empty() {
            debug_assert!(next >= plan.len());
            return Drive::Done;
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Drive::Reconnect("server closed the connection".to_string(), None),
            Ok(_) => {}
            Err(e) => return Drive::Reconnect(format!("read: {e}"), None),
        }
        let Ok(v) = Json::parse(line.trim()) else {
            return Drive::Reconnect("unparseable reply".to_string(), None);
        };
        let ty = v.get("type").and_then(Json::as_str).unwrap_or("");
        if ty == "pong" || ty == "resumed" {
            // Stray handshake duplicates (an injected fault can double any
            // line); they are outside the plan's seq chain.
            continue;
        }
        let Some(&(front, sent_at)) = in_flight.front() else {
            continue;
        };
        let front_seq = plan[front].seq;
        let Some(reply_seq) = v.get("seq").and_then(Json::as_u64) else {
            // A connection-level error (bad-json from a torn write, a
            // read-timeout warning): the request stream is corrupt.
            return Drive::Reconnect(format!("unsequenced reply: {}", line.trim()), None);
        };
        if reply_seq < front_seq {
            // Stale duplicate of an already-acked reply.
            continue;
        }
        if reply_seq > front_seq {
            // The reply to our front request was lost in transit.
            return Drive::Reconnect(
                format!("reply seq {reply_seq} overtook expected {front_seq}"),
                None,
            );
        }
        in_flight.pop_front();
        report
            .latencies_us
            .push(sent_at.elapsed().as_secs_f64() * 1_000_000.0);
        report.replies += 1;
        if ty == "error" {
            let code = v.get("code").and_then(Json::as_str).unwrap_or("?");
            match code {
                // Recoverable by resynchronizing: an earlier line was
                // lost (`seq-gap`), dropped under backpressure (`busy`),
                // or the tenant migrated to another shard mid-stream
                // (`tenant-moved`) / its shard is momentarily unreachable
                // through the router (`shard-unreachable`) — in all four
                // cases a fresh connection plus `resume` lands the client
                // on the session's current owner at the right seq.
                "seq-gap" | "busy" | "tenant-moved" | "shard-unreachable" => {
                    report.redirects += u64::from(code == "tenant-moved");
                    return Drive::Reconnect(format!("server asked to resync: `{code}`"), None);
                }
                // Overload rejections: the in-flight budget shed this
                // request (`shed`, connection may be dropped) or the
                // weighted token bucket ran dry (`rate-limited`). Both
                // carry an authoritative `retry_after_ms`; honor it
                // exactly, then resynchronize — the rejection did not
                // advance the seq chain, so pipelined successors would
                // land in a `seq-gap` anyway.
                "shed" | "rate-limited" => {
                    report.sheds += 1;
                    let after = v
                        .get("retry_after_ms")
                        .and_then(Json::as_u64)
                        .map(Duration::from_millis);
                    return Drive::Reconnect(format!("server overloaded: `{code}`"), after);
                }
                _ => report
                    .errors
                    .push(format!("server error `{code}` for seq {reply_seq}")),
            }
        } else {
            // Decision deltas sit at top level for tick/decisions replies
            // and under `decisions` for drained ones.
            let delta = v.get("decisions").unwrap_or(&v);
            for key in ["calibrations", "starts"] {
                if let Some(arr) = delta.get(key).and_then(Json::as_arr) {
                    report.decisions += u64::try_from(arr.len()).unwrap_or(0);
                }
            }
            if plan[front].capture {
                report.captured.retain(|(s, _)| *s != front_seq);
                report.captured.push((front_seq, v.clone()));
            }
        }
        *acked = front + 1;
        // Progress: refill the retry budget and cool the backoff.
        *failures = 0;
        backoff.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_in_seed_and_grows_to_cap() {
        let mut a = Backoff::new(10, 1000, 42);
        let mut b = Backoff::new(10, 1000, 42);
        let da: Vec<Duration> = (0..12).map(|_| a.next_delay()).collect();
        let db: Vec<Duration> = (0..12).map(|_| b.next_delay()).collect();
        assert_eq!(da, db, "same seed, same schedule");
        // Every delay respects the jitter envelope of its attempt.
        for (k, d) in da.iter().enumerate() {
            let cap = 10u64.saturating_mul(1 << k.min(16)).min(1000);
            let ms = u64::try_from(d.as_millis()).unwrap_or(u64::MAX);
            assert!(
                ms >= cap.div_ceil(2) && ms <= cap,
                "attempt {k}: {ms}ms vs cap {cap}"
            );
        }
        // Late attempts saturate at the cap envelope.
        let last = da.last().copied().unwrap_or_default().as_millis();
        assert!((500..=1000).contains(&last), "saturated delay: {last}ms");

        let mut c = Backoff::new(10, 1000, 43);
        let dc: Vec<Duration> = (0..12).map(|_| c.next_delay()).collect();
        assert_ne!(da, dc, "different seed, different jitter");
    }

    #[test]
    fn backoff_reset_restarts_the_ramp() {
        let mut b = Backoff::new(8, 4096, 7);
        for _ in 0..6 {
            b.next_delay();
        }
        assert_eq!(b.attempt(), 6);
        b.reset();
        assert_eq!(b.attempt(), 0);
        let d = b.next_delay();
        assert!(d.as_millis() <= 8, "first delay after reset is base-sized");
    }

    #[test]
    fn recompute_acked_rewinds_to_uncaptured_captures() {
        use calib_core::json::ToJson;
        let plan: Vec<PlanStep> = (0..6)
            .map(|i| {
                PlanStep::new(
                    i,
                    vec![("type", "tick".to_json()), ("tenant", "t".to_json())],
                    i == 4, // the drain-like capture step
                    i == 5,
                )
            })
            .collect();
        // Server applied everything through seq 5, but we never saw the
        // capture reply for seq 4: rewind there.
        assert_eq!(recompute_acked(&plan, Some(5), &[]), 4);
        // With the capture in hand, seq 5 onward remains.
        let captured = vec![(4u64, Json::Bool(true))];
        assert_eq!(recompute_acked(&plan, Some(5), &captured), 6);
        // Server never saw anything: start over.
        assert_eq!(recompute_acked(&plan, None, &captured), 0);
        // Partial application: resend from just past last_seq.
        assert_eq!(recompute_acked(&plan, Some(2), &captured), 3);
    }

    /// A deterministic fake clock that records every sleep instead of
    /// blocking.
    struct FakeClock(Vec<Duration>);
    impl RetryClock for FakeClock {
        fn sleep(&mut self, d: Duration) {
            self.0.push(d);
        }
    }

    /// A scripted one-thread server: accepts connections in order, and for
    /// each connection reads request lines and answers from its script
    /// (closing the connection when the script runs out). Returns every
    /// request line received, grouped by connection.
    fn scripted_server(
        listener: std::net::TcpListener,
        scripts: Vec<Vec<&'static str>>,
    ) -> std::thread::JoinHandle<Vec<Vec<String>>> {
        std::thread::spawn(move || {
            let mut received = Vec::new();
            for script in scripts {
                let (stream, _) = listener.accept().expect("accept");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut writer = stream;
                let mut lines = Vec::new();
                for reply in script {
                    let mut line = String::new();
                    if reader.read_line(&mut line).unwrap_or(0) == 0 {
                        break;
                    }
                    lines.push(line.trim().to_string());
                    writer
                        .write_all(reply.as_bytes())
                        .and_then(|()| writer.write_all(b"\n"))
                        .and_then(|()| writer.flush())
                        .expect("reply");
                }
                received.push(lines);
            }
            received
        })
    }

    fn tick_plan(n: u64) -> Vec<PlanStep> {
        use calib_core::json::ToJson;
        (0..n)
            .map(|i| {
                PlanStep::new(
                    i,
                    vec![("type", "tick".to_json()), ("tenant", "t".to_json())],
                    false,
                    false,
                )
            })
            .collect()
    }

    fn one_shot_config() -> ClientConfig {
        ClientConfig {
            tenant: "t".to_string(),
            window: 1, // one request in flight: scripts stay deterministic
            ..ClientConfig::default()
        }
    }

    #[test]
    fn retry_after_overrides_the_backoff_schedule_exactly() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = scripted_server(
            listener,
            vec![
                // Conn 1: rate-limit seq 0 with an exact retry-after.
                vec![r#"{"type":"error","code":"rate-limited","retry_after_ms":37,"seq":0}"#],
                // Conn 2: resume from scratch, ack seq 0, shed seq 1.
                vec![
                    r#"{"type":"resumed","tenant":"t"}"#,
                    r#"{"type":"ok","tenant":"t","seq":0}"#,
                    r#"{"type":"error","code":"shed","retry_after_ms":123,"seq":1}"#,
                ],
                // Conn 3: resume past seq 0, ack the resent seq 1.
                vec![
                    r#"{"type":"resumed","tenant":"t","last_seq":0}"#,
                    r#"{"type":"ok","tenant":"t","seq":1}"#,
                ],
            ],
        );
        let plan = tick_plan(2);
        let mut clock = FakeClock(Vec::new());
        // A backoff whose every jittered delay is far from 37/123ms, so an
        // accidental `next_delay()` call cannot masquerade as the override.
        let mut backoff = Backoff::new(5000, 60000, 9);
        let report = run_plan(&addr, &one_shot_config(), &plan, &mut backoff, &mut clock);
        assert!(report.completed, "errors: {:?}", report.errors);
        assert_eq!(report.sheds, 2);
        assert_eq!(
            clock.0,
            vec![Duration::from_millis(37), Duration::from_millis(123)],
            "each sleep is exactly the server-supplied retry_after_ms"
        );
        assert_eq!(
            backoff.attempt(),
            0,
            "the exponential ramp never advanced: every delay was server-supplied"
        );
        server.join().expect("server thread");
    }

    #[test]
    fn seq_chain_stays_exactly_once_across_a_shed_retry_cycle() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = scripted_server(
            listener,
            vec![
                // Conn 1: apply seq 0, shed seq 1 and drop the connection
                // (the script ends, modeling a journaled shed disconnect).
                vec![
                    r#"{"type":"ok","tenant":"t","seq":0}"#,
                    r#"{"type":"error","code":"shed","retry_after_ms":5,"seq":1}"#,
                ],
                // Conn 2: resume reports last_seq 0; the tail resends.
                vec![
                    r#"{"type":"resumed","tenant":"t","last_seq":0}"#,
                    r#"{"type":"ok","tenant":"t","seq":1}"#,
                    r#"{"type":"ok","tenant":"t","seq":2}"#,
                ],
            ],
        );
        let plan = tick_plan(3);
        let mut clock = FakeClock(Vec::new());
        let mut backoff = Backoff::new(5000, 60000, 9);
        let report = run_plan(&addr, &one_shot_config(), &plan, &mut backoff, &mut clock);
        assert!(report.completed, "errors: {:?}", report.errors);
        assert_eq!(report.sheds, 1);
        assert_eq!(clock.0, vec![Duration::from_millis(5)]);

        let received = server.join().expect("server thread");
        let seqs_of = |lines: &[String]| -> Vec<Option<u64>> {
            lines
                .iter()
                .map(|l| {
                    Json::parse(l)
                        .ok()
                        .and_then(|v| v.get("seq").and_then(Json::as_u64))
                })
                .collect()
        };
        // Conn 1 saw seqs 0 and 1; the shed did not advance the chain.
        assert_eq!(seqs_of(&received[0]), vec![Some(0), Some(1)]);
        // Conn 2: the resume handshake (unsequenced), then the resend
        // starting *exactly* at the shed seq — 0 is never re-applied, 1 is
        // sent exactly once more, and nothing skips ahead.
        assert_eq!(seqs_of(&received[1]), vec![None, Some(1), Some(2)]);
        assert!(received[1][0].contains(r#""type":"resume""#));
    }

    #[test]
    fn fake_clock_collects_the_whole_schedule_without_sleeping() {
        let mut clock = FakeClock(Vec::new());
        let mut backoff = Backoff::new(5, 100, 1);
        for _ in 0..4 {
            let d = backoff.next_delay();
            clock.sleep(d);
        }
        assert_eq!(clock.0.len(), 4);
        assert!(clock.0.iter().all(|d| d.as_millis() <= 100));
    }
}
