//! The wire protocol: line-delimited JSON requests and replies.
//!
//! Every message is one compact JSON object on one line. Requests carry a
//! `type` tag, a `tenant` name (except before `hello`), and an optional
//! client-chosen `seq` number that is echoed verbatim in the matching reply
//! so clients can pipeline requests. The full message catalogue, with
//! examples, lives in `SERVE.md` at the repo root.
//!
//! Error replies carry a stable kebab-case `code` (mirroring
//! `calib_core::Violation::code` and `calib_online::EngineError::code`)
//! plus a human-oriented `message`; clients must branch on the code, never
//! the text.

use calib_core::json::{self, FromJson, Json, ToJson};
use calib_core::obs::CounterSnapshot;
use calib_core::{Assignment, Calibration, Cost, Job, JobId, Time};
use calib_online::{EngineConfig, EngineSnapshot, IntervalSnapshot, MachineSnapshot};

use crate::session::{Algorithm, TenantConfig};

/// Upper bound on one request line, in bytes. A line longer than this is
/// rejected with `line-too-long` before parsing — a malformed client must
/// not make the server buffer without bound.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Error code a daemon answers with when a tenant was evicted to another
/// shard: the tenant is not here any more, and a router in front of the
/// daemon knows where it went. Clients treat it like `busy` — reconnect
/// and resume; the router forwards the resume to the adopting shard.
pub const CODE_TENANT_MOVED: &str = "tenant-moved";

/// Error code a router answers with when the shard owning the addressed
/// tenant cannot be reached (connect failure or read timeout on the
/// backend connection). Typed so clients back off and retry instead of
/// interpreting a hung shard as a dead session.
pub const CODE_SHARD_UNREACHABLE: &str = "shard-unreachable";

/// Error code for a request rejected by the global in-flight budget
/// (`--max-inflight`): the daemon is overloaded and this tenant is at or
/// over its weight-proportional share. Carries `retry_after_ms`; in
/// journaling mode the daemon drops the connection after answering, so the
/// client reconnects and `resume`s once the hinted delay passes.
pub const CODE_SHED: &str = "shed";

/// Error code for a request rejected by the tenant's weighted token
/// bucket (`--rate-per-k`). Carries `retry_after_ms` — the exact virtual
/// time until one full token has refilled; the connection stays open.
pub const CODE_RATE_LIMITED: &str = "rate-limited";

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a tenant session.
    Hello {
        /// Tenant name (registry key; must be new).
        tenant: String,
        /// Machine count `P` (must be ≥ 1).
        machines: usize,
        /// Calibration length `T`.
        cal_len: Time,
        /// Calibration cost `G`.
        cal_cost: Cost,
        /// Algorithm name (`alg1`, `alg2`, `alg3`, `immediate`).
        algorithm: String,
        /// Admission weight (≥ 1, defaults to 1): the tenant's share of
        /// admitted throughput under overload. Kept out of
        /// [`TenantConfig`] deliberately — it tunes *admission*, not the
        /// schedule, so checkpoints and journals stay byte-identical and a
        /// recovered tenant re-declares it (or defaults) on reconnect.
        weight: u64,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// Submit a batch of future jobs.
    Arrive {
        /// Target tenant.
        tenant: String,
        /// The jobs; ids must be session-unique, releases not in the past.
        jobs: Vec<Job>,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// Advance the tenant's virtual clock to `now`.
    Tick {
        /// Target tenant.
        tenant: String,
        /// New virtual time (must not regress).
        now: Time,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// Fetch decisions made since the last delta, without advancing time.
    Decisions {
        /// Target tenant.
        tenant: String,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// Fetch the tenant's counters.
    Stats {
        /// Target tenant.
        tenant: String,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// Run the session to completion of all submitted work.
    Drain {
        /// Target tenant.
        tenant: String,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// Close the tenant session (drains first).
    Bye {
        /// Target tenant.
        tenant: String,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// Reattach to a tenant after a disconnect — or, with `--journal-dir`,
    /// recover it from its on-disk journal after a daemon crash.
    Resume {
        /// Target tenant.
        tenant: String,
        /// Echoed sequence number (exempt from the tenant's `seq` chain).
        seq: Option<u64>,
    },
    /// Liveness probe; answered inline by the reader thread with `pong`,
    /// bypassing tenant queues, so it works even when all workers are busy.
    Ping {
        /// Echoed sequence number (exempt from any `seq` chain).
        seq: Option<u64>,
    },
    /// Metrics snapshot request; tenant-less and answered inline by the
    /// reader thread with a `metrics` reply, like `ping`.
    Metrics {
        /// Echoed sequence number (exempt from any `seq` chain).
        seq: Option<u64>,
    },
    /// Install a migrated tenant from a checkpoint captured on another
    /// shard (the payload of that shard's `evicted` reply). Router-issued;
    /// the restored session starts detached so the tenant's own client can
    /// attach with `resume`.
    Adopt {
        /// Target tenant (must match the checkpoint's own name).
        tenant: String,
        /// The authoritative state cut from the source shard.
        state: Box<CheckpointState>,
        /// Echoed sequence number (exempt from the tenant's `seq` chain).
        seq: Option<u64>,
    },
    /// Drain the tenant's queued requests, capture its checkpoint, and
    /// remove it from this shard, leaving a `tenant-moved` tombstone.
    /// Router-issued; the reply carries the checkpoint for `adopt`.
    Evict {
        /// Target tenant.
        tenant: String,
        /// Echoed sequence number (exempt from the tenant's `seq` chain).
        seq: Option<u64>,
    },
}

impl Request {
    /// The tenant the request addresses (empty for tenant-less `ping`).
    pub fn tenant(&self) -> &str {
        match self {
            Request::Hello { tenant, .. }
            | Request::Arrive { tenant, .. }
            | Request::Tick { tenant, .. }
            | Request::Decisions { tenant, .. }
            | Request::Stats { tenant, .. }
            | Request::Drain { tenant, .. }
            | Request::Bye { tenant, .. }
            | Request::Resume { tenant, .. }
            | Request::Adopt { tenant, .. }
            | Request::Evict { tenant, .. } => tenant,
            Request::Ping { .. } | Request::Metrics { .. } => "",
        }
    }

    /// The request's echoable sequence number.
    pub fn seq(&self) -> Option<u64> {
        match self {
            Request::Hello { seq, .. }
            | Request::Arrive { seq, .. }
            | Request::Tick { seq, .. }
            | Request::Decisions { seq, .. }
            | Request::Stats { seq, .. }
            | Request::Drain { seq, .. }
            | Request::Bye { seq, .. }
            | Request::Resume { seq, .. }
            | Request::Adopt { seq, .. }
            | Request::Evict { seq, .. }
            | Request::Ping { seq }
            | Request::Metrics { seq } => *seq,
        }
    }

    /// Parses one request line (already known to be valid JSON).
    ///
    /// Errors are `(code, message)` pairs ready for an error reply.
    pub fn from_json(v: &Json) -> Result<Request, (&'static str, String)> {
        let bad = |msg: String| ("bad-message", msg);
        let obj_str = |key: &str| -> Result<String, (&'static str, String)> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad(format!("missing or non-string field `{key}`")))
        };
        let obj_u64 = |key: &str| -> Result<u64, (&'static str, String)> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| bad(format!("missing or non-integer field `{key}`")))
        };
        let obj_i64 = |key: &str| -> Result<i64, (&'static str, String)> {
            v.get(key)
                .and_then(Json::as_i64)
                .ok_or_else(|| bad(format!("missing or non-integer field `{key}`")))
        };
        let seq = v.get("seq").and_then(Json::as_u64);
        let ty = obj_str("type")?;
        // `ping` and `metrics` are tenant-less; everything else requires
        // the field.
        if ty == "ping" {
            return Ok(Request::Ping { seq });
        }
        if ty == "metrics" {
            return Ok(Request::Metrics { seq });
        }
        let tenant = obj_str("tenant")?;
        match ty.as_str() {
            "hello" => Ok(Request::Hello {
                tenant,
                machines: usize::try_from(obj_u64("machines")?)
                    .map_err(|_| bad("`machines` out of range".to_string()))?,
                cal_len: obj_i64("cal_len")?,
                cal_cost: Cost::from(obj_u64("cal_cost")?),
                algorithm: obj_str("algorithm")?,
                weight: v.get("weight").and_then(Json::as_u64).unwrap_or(1).max(1),
                seq,
            }),
            "arrive" => {
                let jobs_json = v
                    .get("jobs")
                    .ok_or_else(|| bad("missing field `jobs`".to_string()))?;
                let jobs = Vec::<Job>::from_json(jobs_json)
                    .map_err(|e| bad(format!("bad `jobs` array: {e}")))?;
                Ok(Request::Arrive { tenant, jobs, seq })
            }
            "tick" => Ok(Request::Tick {
                tenant,
                now: obj_i64("now")?,
                seq,
            }),
            "decisions" => Ok(Request::Decisions { tenant, seq }),
            "stats" => Ok(Request::Stats { tenant, seq }),
            "drain" => Ok(Request::Drain { tenant, seq }),
            "bye" => Ok(Request::Bye { tenant, seq }),
            "resume" => Ok(Request::Resume { tenant, seq }),
            "adopt" => {
                let state_json = v
                    .get("state")
                    .ok_or_else(|| bad("missing field `state`".to_string()))?;
                let state = CheckpointState::from_json(state_json)
                    .map_err(|e| ("corrupt-snapshot", format!("bad `state` payload: {e}")))?;
                if state.tenant != tenant {
                    return Err((
                        "bad-message",
                        format!(
                            "adopt addresses `{tenant}` but the checkpoint is for `{}`",
                            state.tenant
                        ),
                    ));
                }
                Ok(Request::Adopt {
                    tenant,
                    state: Box::new(state),
                    seq,
                })
            }
            "evict" => Ok(Request::Evict { tenant, seq }),
            other => Err(("bad-message", format!("unknown request type `{other}`"))),
        }
    }
}

/// Per-tenant final accounting, emitted on `bye`, on disconnect cleanup,
/// and in the daemon's shutdown report. `checker_ok` is the verdict of the
/// trusted `calib_core::check_schedule` run over the session's complete
/// schedule against the submitted jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct Accounting {
    /// Tenant name.
    pub tenant: String,
    /// Jobs submitted over the session's lifetime.
    pub jobs: usize,
    /// Jobs actually scheduled (equals `jobs` iff the session drained).
    pub scheduled: usize,
    /// Calibrations issued.
    pub calibrations: usize,
    /// Total weighted flow of the schedule.
    pub flow: Cost,
    /// Online objective `G·C + flow`.
    pub cost: Cost,
    /// Did the feasibility checker accept the schedule?
    pub checker_ok: bool,
    /// Stable violation codes when it did not.
    pub violations: Vec<String>,
}

impl Accounting {
    /// The accounting as a reply-ready JSON object (without `type`).
    pub fn fields(&self) -> Vec<(&'static str, Json)> {
        vec![
            ("tenant", Json::Str(self.tenant.clone())),
            ("jobs", self.jobs.to_json()),
            ("scheduled", self.scheduled.to_json()),
            ("calibrations", self.calibrations.to_json()),
            ("flow", self.flow.to_json()),
            ("cost", self.cost.to_json()),
            ("checker_ok", Json::Bool(self.checker_ok)),
            (
                "violations",
                Json::Arr(
                    self.violations
                        .iter()
                        .map(|c| Json::Str(c.clone()))
                        .collect(),
                ),
            ),
        ]
    }
}

/// A server reply, one line of JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Request accepted with nothing else to report.
    Ok {
        /// Addressed tenant.
        tenant: String,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// Decisions streamed back after a `tick`, `decisions`, or `drain`.
    Decisions {
        /// Addressed tenant.
        tenant: String,
        /// The tenant's virtual time, if a tick has happened.
        now: Option<Time>,
        /// Calibrations issued since the previous delta.
        calibrations: Vec<Calibration>,
        /// Job starts materialized since the previous delta.
        starts: Vec<Assignment>,
        /// True when the session has no unfinished work left.
        idle: bool,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// Counter snapshot for `stats`.
    Stats {
        /// Addressed tenant.
        tenant: String,
        /// Engine counters (arrivals, dispatches, calibrations, …).
        counters: CounterSnapshot,
        /// Requests queued for the tenant right now.
        queue_depth: usize,
        /// Highest queue depth observed.
        queue_high_water: usize,
        /// Requests dropped with `busy` since the session opened.
        busy_drops: u64,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// Final accounting answering `drain`, plus the decision delta the
    /// drain produced (everything since the last `tick`/`decisions`).
    Drained {
        /// The validated accounting.
        accounting: Accounting,
        /// Calibrations started while draining.
        calibrations: Vec<Calibration>,
        /// Jobs started while draining.
        starts: Vec<Assignment>,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// Final accounting answering `bye`; the tenant is gone afterwards.
    Goodbye {
        /// The validated accounting.
        accounting: Accounting,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// Session reattached (or recovered from its journal) after `resume`.
    /// `last_seq` tells the client exactly which requests were applied, so
    /// it can resend the un-acked tail idempotently.
    Resumed {
        /// Addressed tenant.
        tenant: String,
        /// The session's `seq` high-water mark — everything at or below
        /// this is already applied.
        last_seq: Option<u64>,
        /// The session's virtual time, if a tick has happened.
        now: Option<Time>,
        /// True when the session has no unfinished work left.
        idle: bool,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// Liveness answer to `ping`, carrying monotonic server health
    /// counters.
    Pong {
        /// Connections accepted over the server's lifetime.
        connections: u64,
        /// Connections open right now.
        active_connections: u64,
        /// Tenant sessions open right now.
        tenants: u64,
        /// Requests parsed over the server's lifetime.
        requests: u64,
        /// Requests answered with `busy` over the server's lifetime.
        busy_drops: u64,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// Full daemon metrics snapshot answering a `metrics` request; the
    /// payload is the same JSON object the `--metrics-interval-ms` stream
    /// emits (global counters, latency histograms, per-tenant rows).
    Metrics {
        /// The registry snapshot, already shaped as a JSON object.
        snapshot: Json,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// Migrated tenant installed from a checkpoint, answering `adopt`.
    Adopted {
        /// Addressed tenant.
        tenant: String,
        /// The restored session's `seq` high-water mark, so the router can
        /// confirm the handoff landed at the expected cut.
        last_seq: Option<u64>,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// Checkpoint handed back from `evict`; the tenant is gone from this
    /// shard afterwards (replaced by a `tenant-moved` tombstone).
    Evicted {
        /// The authoritative state cut, ready to feed an `adopt`.
        state: Box<CheckpointState>,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// A typed failure; the session (if any) is still usable unless the
    /// code says otherwise.
    Error {
        /// Stable kebab-case error class.
        code: String,
        /// Human-oriented detail.
        message: String,
        /// Addressed tenant, when one could be determined.
        tenant: Option<String>,
        /// Overload hint (`shed`/`rate-limited`): how long the client
        /// should wait before retrying, overriding its own backoff.
        retry_after_ms: Option<u64>,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
}

fn put_seq(fields: &mut Vec<(&'static str, Json)>, seq: Option<u64>) {
    if let Some(s) = seq {
        fields.push(("seq", s.to_json()));
    }
}

impl Reply {
    /// Builds an error reply.
    pub fn error(
        code: &str,
        message: impl Into<String>,
        tenant: Option<&str>,
        seq: Option<u64>,
    ) -> Reply {
        Reply::Error {
            code: code.to_string(),
            message: message.into(),
            tenant: tenant.map(str::to_string),
            retry_after_ms: None,
            seq,
        }
    }

    /// Builds an overload error reply carrying a `retry_after_ms` hint.
    pub fn error_retry_after(
        code: &str,
        message: impl Into<String>,
        tenant: Option<&str>,
        retry_after_ms: u64,
        seq: Option<u64>,
    ) -> Reply {
        Reply::Error {
            code: code.to_string(),
            message: message.into(),
            tenant: tenant.map(str::to_string),
            retry_after_ms: Some(retry_after_ms),
            seq,
        }
    }

    /// Serializes the reply as one compact JSON line (no trailing newline).
    pub fn to_json(&self) -> Json {
        match self {
            Reply::Ok { tenant, seq } => {
                let mut fields = vec![
                    ("type", Json::Str("ok".to_string())),
                    ("tenant", Json::Str(tenant.clone())),
                ];
                put_seq(&mut fields, *seq);
                Json::obj(fields)
            }
            Reply::Decisions {
                tenant,
                now,
                calibrations,
                starts,
                idle,
                seq,
            } => {
                let mut fields = vec![
                    ("type", Json::Str("decisions".to_string())),
                    ("tenant", Json::Str(tenant.clone())),
                ];
                if let Some(now) = now {
                    fields.push(("now", now.to_json()));
                }
                fields.push(("calibrations", calibrations.to_json()));
                fields.push(("starts", starts.to_json()));
                fields.push(("idle", Json::Bool(*idle)));
                put_seq(&mut fields, *seq);
                Json::obj(fields)
            }
            Reply::Stats {
                tenant,
                counters,
                queue_depth,
                queue_high_water,
                busy_drops,
                seq,
            } => {
                let mut fields = vec![
                    ("type", Json::Str("stats".to_string())),
                    ("tenant", Json::Str(tenant.clone())),
                    ("counters", counters.to_json()),
                    ("queue_depth", queue_depth.to_json()),
                    ("queue_high_water", queue_high_water.to_json()),
                    ("busy_drops", busy_drops.to_json()),
                ];
                put_seq(&mut fields, *seq);
                Json::obj(fields)
            }
            Reply::Drained {
                accounting,
                calibrations,
                starts,
                seq,
            } => {
                let mut fields = vec![("type", Json::Str("drained".to_string()))];
                fields.extend(accounting.fields());
                // Nested: the accounting already claims the top-level
                // `calibrations` key for its count.
                fields.push((
                    "decisions",
                    Json::obj([
                        ("calibrations", calibrations.to_json()),
                        ("starts", starts.to_json()),
                    ]),
                ));
                put_seq(&mut fields, *seq);
                Json::obj(fields)
            }
            Reply::Goodbye { accounting, seq } => {
                let mut fields = vec![("type", Json::Str("goodbye".to_string()))];
                fields.extend(accounting.fields());
                put_seq(&mut fields, *seq);
                Json::obj(fields)
            }
            Reply::Resumed {
                tenant,
                last_seq,
                now,
                idle,
                seq,
            } => {
                let mut fields = vec![
                    ("type", Json::Str("resumed".to_string())),
                    ("tenant", Json::Str(tenant.clone())),
                ];
                if let Some(s) = last_seq {
                    fields.push(("last_seq", s.to_json()));
                }
                if let Some(now) = now {
                    fields.push(("now", now.to_json()));
                }
                fields.push(("idle", Json::Bool(*idle)));
                put_seq(&mut fields, *seq);
                Json::obj(fields)
            }
            Reply::Pong {
                connections,
                active_connections,
                tenants,
                requests,
                busy_drops,
                seq,
            } => {
                let mut fields = vec![
                    ("type", Json::Str("pong".to_string())),
                    ("connections", connections.to_json()),
                    ("active_connections", active_connections.to_json()),
                    ("tenants", tenants.to_json()),
                    ("requests", requests.to_json()),
                    ("busy_drops", busy_drops.to_json()),
                ];
                put_seq(&mut fields, *seq);
                Json::obj(fields)
            }
            Reply::Metrics { snapshot, seq } => {
                // Reuse the snapshot's own fields, but the wire-level `seq`
                // echoes the request (the snapshot's internal counter would
                // otherwise collide with it).
                let mut fields: Vec<(String, Json)> = match snapshot {
                    Json::Obj(pairs) => pairs.iter().filter(|(k, _)| k != "seq").cloned().collect(),
                    other => vec![("snapshot".to_string(), other.clone())],
                };
                if let Some(s) = seq {
                    fields.push(("seq".to_string(), s.to_json()));
                }
                Json::Obj(fields)
            }
            Reply::Adopted {
                tenant,
                last_seq,
                seq,
            } => {
                let mut fields = vec![
                    ("type", Json::Str("adopted".to_string())),
                    ("tenant", Json::Str(tenant.clone())),
                ];
                if let Some(s) = last_seq {
                    fields.push(("last_seq", s.to_json()));
                }
                put_seq(&mut fields, *seq);
                Json::obj(fields)
            }
            Reply::Evicted { state, seq } => {
                let mut fields = vec![
                    ("type", Json::Str("evicted".to_string())),
                    ("tenant", Json::Str(state.tenant.clone())),
                    ("state", state.to_json()),
                ];
                put_seq(&mut fields, *seq);
                Json::obj(fields)
            }
            Reply::Error {
                code,
                message,
                tenant,
                retry_after_ms,
                seq,
            } => {
                let mut fields = vec![
                    ("type", Json::Str("error".to_string())),
                    ("code", Json::Str(code.clone())),
                    ("message", Json::Str(message.clone())),
                ];
                if let Some(t) = tenant {
                    fields.push(("tenant", Json::Str(t.clone())));
                }
                if let Some(ms) = retry_after_ms {
                    fields.push(("retry_after_ms", ms.to_json()));
                }
                put_seq(&mut fields, *seq);
                Json::obj(fields)
            }
        }
    }

    /// The serialized line, newline included.
    pub fn to_line(&self) -> String {
        let mut line = self.to_json().to_string_compact();
        line.push('\n');
        line
    }
}

/// Full `TenantSession` state at one instant — the payload of a journal
/// `checkpoint` record. Recovery rebuilds the session from this and then
/// replays only the records *after* it (the tail), so a long-lived
/// tenant's restart cost is bounded by recent activity instead of its
/// whole history.
///
/// The engine half is a [`calib_online::EngineSnapshot`]; this struct adds
/// the serve-layer state the engine does not know about: the tenant name
/// and configuration, the `seq` high-water mark, the virtual clock, the
/// per-tenant `u128` flow/cost totals, and the counter registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointState {
    /// Tenant name, integrity-checked against the journal's hello record.
    pub tenant: String,
    /// The tenant's configuration (machines, `T`, `G`, algorithm).
    pub config: TenantConfig,
    /// The `seq` duplicate-suppression high-water mark at checkpoint time.
    pub last_seq: Option<u64>,
    /// The session's virtual clock (highest `tick` seen), if any.
    pub now: Option<Time>,
    /// Total weighted flow reported to the metrics registry so far.
    pub flow: Cost,
    /// Online objective `G·C + flow` reported so far.
    pub cost: Cost,
    /// The tenant's counter registry at checkpoint time.
    pub counters: CounterSnapshot,
    /// The complete engine state.
    pub engine: EngineSnapshot,
}

fn pair_json<A: ToJson, B: ToJson>(a: &A, b: &B) -> Json {
    Json::Arr(vec![a.to_json(), b.to_json()])
}

fn opt_usize_json(v: Option<usize>) -> Json {
    match v {
        Some(i) => i.to_json(),
        None => Json::Null,
    }
}

fn engine_config_json(c: &EngineConfig) -> Json {
    Json::obj([
        ("max_steps", c.max_steps.to_json()),
        ("max_decides_per_step", c.max_decides_per_step.to_json()),
        ("time_skip", Json::Bool(c.time_skip)),
    ])
}

fn machine_json(m: &MachineSnapshot) -> Json {
    Json::obj([
        (
            "coverage",
            Json::Arr(m.coverage.iter().map(|(b, e)| pair_json(b, e)).collect()),
        ),
        ("used_until", m.used_until.to_json()),
        (
            "reservations",
            Json::Arr(
                m.reservations
                    .iter()
                    .map(|(slot, job, interval)| {
                        Json::Arr(vec![
                            slot.to_json(),
                            job.to_json(),
                            opt_usize_json(*interval),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn interval_json(iv: &IntervalSnapshot) -> Json {
    Json::obj([
        ("machine", iv.machine.to_json()),
        ("start", iv.start.to_json()),
        (
            "jobs",
            Json::Arr(iv.jobs.iter().map(|(j, s)| pair_json(j, s)).collect()),
        ),
    ])
}

fn engine_json(e: &EngineSnapshot) -> Json {
    let mut fields = vec![
        ("cal_len", e.cal_len.to_json()),
        ("cal_cost", e.cal_cost.to_json()),
        ("config", engine_config_json(&e.config)),
        ("known", e.known.to_json()),
        ("pending", e.pending.to_json()),
        ("waiting", e.waiting.to_json()),
        (
            "machines",
            Json::Arr(e.machines.iter().map(machine_json).collect()),
        ),
        (
            "intervals",
            Json::Arr(e.intervals.iter().map(interval_json).collect()),
        ),
        ("rr_next", e.rr_next.to_json()),
        ("calibrations", e.calibrations.to_json()),
        ("assignments", e.assignments.to_json()),
        (
            "trace",
            Json::Arr(
                e.trace
                    .iter()
                    .map(|(t, label)| pair_json(t, &label.as_str()))
                    .collect(),
            ),
        ),
        ("fuel", e.fuel.to_json()),
        ("clock", e.clock.to_json()),
        ("started", Json::Bool(e.started)),
        ("cal_mark", e.cal_mark.to_json()),
        ("asg_mark", e.asg_mark.to_json()),
    ];
    if let Some(c) = e.cursor {
        fields.push(("cursor", c.to_json()));
    }
    Json::obj(fields)
}

// --- direct checkpoint serialization ---------------------------------
//
// A checkpoint line carries thousands of jobs, assignments, and trace
// events; building the intermediate `Json` tree allocates per key and
// dominates the checkpoint hot path. These writers emit byte-identical
// compact output straight into the line buffer (asserted against the
// tree renderer in the journal tests).

/// Manual decimal formatting: at tens of thousands of integers per
/// checkpoint line, `write!`'s formatting machinery costs several times
/// the digits themselves.
fn push_u128(out: &mut String, mut v: u128) {
    let mut buf = [0u8; 39];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + u8::try_from(v % 10).unwrap_or(0);
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).unwrap_or(""));
}

fn push_i64(out: &mut String, v: i64) {
    if v < 0 {
        out.push('-');
    }
    push_u128(out, u128::from(v.unsigned_abs()));
}

fn push_usize(out: &mut String, v: usize) {
    push_u128(out, u128::try_from(v).unwrap_or(u128::MAX));
}

fn push_bool(out: &mut String, v: bool) {
    out.push_str(if v { "true" } else { "false" });
}

fn write_id_list(out: &mut String, ids: &[JobId]) {
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_u128(out, u128::from(id.0));
    }
}

fn write_machine(out: &mut String, m: &MachineSnapshot) {
    out.push_str("{\"coverage\":[");
    for (i, (b, e)) in m.coverage.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        push_i64(out, *b);
        out.push(',');
        push_i64(out, *e);
        out.push(']');
    }
    out.push_str("],\"used_until\":");
    push_i64(out, m.used_until);
    out.push_str(",\"reservations\":[");
    for (i, (slot, job, interval)) in m.reservations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        push_i64(out, *slot);
        out.push(',');
        push_u128(out, u128::from(job.0));
        out.push(',');
        match interval {
            Some(iv) => push_usize(out, *iv),
            None => out.push_str("null"),
        }
        out.push(']');
    }
    out.push_str("]}");
}

fn write_interval(out: &mut String, iv: &IntervalSnapshot) {
    out.push_str("{\"machine\":");
    push_u128(out, u128::from(iv.machine.0));
    out.push_str(",\"start\":");
    push_i64(out, iv.start);
    out.push_str(",\"jobs\":[");
    for (i, (j, s)) in iv.jobs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        push_u128(out, u128::from(j.0));
        out.push(',');
        push_i64(out, *s);
        out.push(']');
    }
    out.push_str("]}");
}

fn write_engine(out: &mut String, e: &EngineSnapshot) {
    out.push_str("{\"cal_len\":");
    push_i64(out, e.cal_len);
    out.push_str(",\"cal_cost\":");
    push_u128(out, e.cal_cost);
    out.push_str(",\"config\":{\"max_steps\":");
    push_u128(out, u128::from(e.config.max_steps));
    out.push_str(",\"max_decides_per_step\":");
    push_u128(out, u128::from(e.config.max_decides_per_step));
    out.push_str(",\"time_skip\":");
    push_bool(out, e.config.time_skip);
    out.push_str("},\"known\":[");
    for (i, j) in e.known.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"id\":");
        push_u128(out, u128::from(j.id.0));
        out.push_str(",\"release\":");
        push_i64(out, j.release);
        out.push_str(",\"weight\":");
        push_u128(out, u128::from(j.weight));
        out.push('}');
    }
    out.push_str("],\"pending\":[");
    write_id_list(out, &e.pending);
    out.push_str("],\"waiting\":[");
    write_id_list(out, &e.waiting);
    out.push_str("],\"machines\":[");
    for (i, m) in e.machines.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_machine(out, m);
    }
    out.push_str("],\"intervals\":[");
    for (i, iv) in e.intervals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_interval(out, iv);
    }
    out.push_str("],\"rr_next\":");
    push_usize(out, e.rr_next);
    out.push_str(",\"calibrations\":[");
    for (i, c) in e.calibrations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"machine\":");
        push_u128(out, u128::from(c.machine.0));
        out.push_str(",\"start\":");
        push_i64(out, c.start);
        out.push('}');
    }
    out.push_str("],\"assignments\":[");
    for (i, a) in e.assignments.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"job\":");
        push_u128(out, u128::from(a.job.0));
        out.push_str(",\"start\":");
        push_i64(out, a.start);
        out.push_str(",\"machine\":");
        push_u128(out, u128::from(a.machine.0));
        out.push('}');
    }
    out.push_str("],\"trace\":[");
    for (i, (t, label)) in e.trace.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        push_i64(out, *t);
        out.push(',');
        json::write_json_string(out, label);
        out.push(']');
    }
    out.push_str("],\"fuel\":");
    push_u128(out, u128::from(e.fuel));
    out.push_str(",\"clock\":");
    push_i64(out, e.clock);
    out.push_str(",\"started\":");
    push_bool(out, e.started);
    out.push_str(",\"cal_mark\":");
    push_usize(out, e.cal_mark);
    out.push_str(",\"asg_mark\":");
    push_usize(out, e.asg_mark);
    if let Some(c) = e.cursor {
        out.push_str(",\"cursor\":");
        push_i64(out, c);
    }
    out.push('}');
}

/// Typed field accessors that turn a missing/mistyped field into a
/// checkpoint-parse error message naming the field.
struct Fields<'a>(&'a Json);

impl Fields<'_> {
    fn req(&self, key: &str) -> Result<&Json, String> {
        self.0
            .get(key)
            .ok_or_else(|| format!("checkpoint missing `{key}`"))
    }

    fn u64(&self, key: &str) -> Result<u64, String> {
        self.req(key)?
            .as_u64()
            .ok_or_else(|| format!("checkpoint field `{key}` is not a u64"))
    }

    fn usize(&self, key: &str) -> Result<usize, String> {
        usize::try_from(self.u64(key)?)
            .map_err(|_| format!("checkpoint field `{key}` is out of range"))
    }

    fn i64(&self, key: &str) -> Result<i64, String> {
        self.req(key)?
            .as_i64()
            .ok_or_else(|| format!("checkpoint field `{key}` is not an i64"))
    }

    fn u128(&self, key: &str) -> Result<u128, String> {
        self.req(key)?
            .as_u128()
            .ok_or_else(|| format!("checkpoint field `{key}` is not a u128"))
    }

    fn bool(&self, key: &str) -> Result<bool, String> {
        match self.req(key)? {
            Json::Bool(b) => Ok(*b),
            _ => Err(format!("checkpoint field `{key}` is not a bool")),
        }
    }

    fn str(&self, key: &str) -> Result<&str, String> {
        self.req(key)?
            .as_str()
            .ok_or_else(|| format!("checkpoint field `{key}` is not a string"))
    }

    fn arr(&self, key: &str) -> Result<&[Json], String> {
        self.req(key)?
            .as_arr()
            .ok_or_else(|| format!("checkpoint field `{key}` is not an array"))
    }

    fn parsed<T: FromJson>(&self, key: &str) -> Result<T, String> {
        T::from_json(self.req(key)?).map_err(|e| format!("checkpoint field `{key}`: {e}"))
    }
}

fn tuple2<'a>(v: &'a Json, what: &str) -> Result<(&'a Json, &'a Json), String> {
    match v.as_arr() {
        Some([a, b]) => Ok((a, b)),
        _ => Err(format!("checkpoint {what} is not a 2-tuple")),
    }
}

fn time_of(v: &Json, what: &str) -> Result<Time, String> {
    v.as_i64()
        .ok_or_else(|| format!("checkpoint {what} is not a time"))
}

fn machine_from_json(v: &Json) -> Result<MachineSnapshot, String> {
    let f = Fields(v);
    let mut coverage = Vec::new();
    for seg in f.arr("coverage")? {
        let (b, e) = tuple2(seg, "coverage segment")?;
        coverage.push((time_of(b, "coverage start")?, time_of(e, "coverage end")?));
    }
    let mut reservations = Vec::new();
    for r in f.arr("reservations")? {
        let Some([slot, job, interval]) = r.as_arr() else {
            return Err("checkpoint reservation is not a 3-tuple".to_string());
        };
        let interval = match interval {
            Json::Null => None,
            other => Some(
                other
                    .as_u64()
                    .and_then(|i| usize::try_from(i).ok())
                    .ok_or_else(|| "checkpoint reservation interval is not an index".to_string())?,
            ),
        };
        reservations.push((
            time_of(slot, "reservation slot")?,
            JobId::from_json(job).map_err(|e| format!("checkpoint reservation job: {e}"))?,
            interval,
        ));
    }
    Ok(MachineSnapshot {
        coverage,
        used_until: f.i64("used_until")?,
        reservations,
    })
}

fn interval_from_json(v: &Json) -> Result<IntervalSnapshot, String> {
    let f = Fields(v);
    let mut jobs = Vec::new();
    for pair in f.arr("jobs")? {
        let (job, slot) = tuple2(pair, "interval job")?;
        jobs.push((
            JobId::from_json(job).map_err(|e| format!("checkpoint interval job: {e}"))?,
            time_of(slot, "interval slot")?,
        ));
    }
    Ok(IntervalSnapshot {
        machine: f.parsed("machine")?,
        start: f.i64("start")?,
        jobs,
    })
}

fn engine_from_json(v: &Json) -> Result<EngineSnapshot, String> {
    let f = Fields(v);
    let cf = Fields(f.req("config")?);
    let config = EngineConfig {
        max_steps: cf.u64("max_steps")?,
        max_decides_per_step: u32::try_from(cf.u64("max_decides_per_step")?)
            .map_err(|_| "checkpoint `max_decides_per_step` is out of range".to_string())?,
        time_skip: cf.bool("time_skip")?,
    };
    let mut machines = Vec::new();
    for m in f.arr("machines")? {
        machines.push(machine_from_json(m)?);
    }
    let mut intervals = Vec::new();
    for iv in f.arr("intervals")? {
        intervals.push(interval_from_json(iv)?);
    }
    let mut trace = Vec::new();
    for entry in f.arr("trace")? {
        let (t, label) = tuple2(entry, "trace entry")?;
        trace.push((
            time_of(t, "trace time")?,
            label
                .as_str()
                .ok_or_else(|| "checkpoint trace label is not a string".to_string())?
                .to_string(),
        ));
    }
    Ok(EngineSnapshot {
        cal_len: f.i64("cal_len")?,
        cal_cost: f.u128("cal_cost")?,
        config,
        known: f.parsed("known")?,
        pending: f.parsed("pending")?,
        waiting: f.parsed("waiting")?,
        machines,
        intervals,
        rr_next: f.usize("rr_next")?,
        calibrations: f.parsed("calibrations")?,
        assignments: f.parsed("assignments")?,
        trace,
        fuel: f.u64("fuel")?,
        clock: f.i64("clock")?,
        started: f.bool("started")?,
        cursor: match v.get("cursor") {
            None | Some(Json::Null) => None,
            Some(c) => Some(time_of(c, "cursor")?),
        },
        cal_mark: f.usize("cal_mark")?,
        asg_mark: f.usize("asg_mark")?,
    })
}

impl CheckpointState {
    /// Serializes the checkpoint as one JSON object (without the journal
    /// record's `op` tag).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("tenant", Json::Str(self.tenant.clone())),
            ("machines", self.config.machines.to_json()),
            ("cal_len", self.config.cal_len.to_json()),
            ("cal_cost", self.config.cal_cost.to_json()),
            ("algorithm", self.config.algorithm.name().to_json()),
            ("flow", self.flow.to_json()),
            ("total_cost", self.cost.to_json()),
            ("counters", self.counters.to_json()),
            ("engine", engine_json(&self.engine)),
        ];
        if let Some(s) = self.last_seq {
            fields.push(("last_seq", s.to_json()));
        }
        if let Some(n) = self.now {
            fields.push(("now", n.to_json()));
        }
        Json::obj(fields)
    }

    /// Appends the checkpoint's JSON fields — no surrounding braces — to
    /// `out`, byte-identical to [`CheckpointState::to_json`] rendered
    /// compactly. The journal prepends its `op` tag and the braces; the
    /// direct write skips the `Json` tree whose per-key allocations
    /// dominate the checkpoint hot path.
    pub(crate) fn write_fields(&self, out: &mut String) {
        out.push_str("\"tenant\":");
        json::write_json_string(out, &self.tenant);
        out.push_str(",\"machines\":");
        push_usize(out, self.config.machines);
        out.push_str(",\"cal_len\":");
        push_i64(out, self.config.cal_len);
        out.push_str(",\"cal_cost\":");
        push_u128(out, self.config.cal_cost);
        out.push_str(",\"algorithm\":\"");
        out.push_str(self.config.algorithm.name());
        out.push_str("\",\"flow\":");
        push_u128(out, self.flow);
        out.push_str(",\"total_cost\":");
        push_u128(out, self.cost);
        out.push_str(",\"counters\":");
        out.push_str(&self.counters.to_json().to_string_compact());
        out.push_str(",\"engine\":");
        write_engine(out, &self.engine);
        if let Some(s) = self.last_seq {
            out.push_str(",\"last_seq\":");
            push_u128(out, u128::from(s));
        }
        if let Some(n) = self.now {
            out.push_str(",\"now\":");
            push_i64(out, n);
        }
    }

    /// A capacity estimate for the serialized line, so the hot path's
    /// buffer grows once instead of doubling through megabyte territory.
    pub(crate) fn line_capacity_hint(&self) -> usize {
        let e = &self.engine;
        512 + 48
            * (e.known.len()
                + e.pending.len()
                + e.waiting.len()
                + e.calibrations.len()
                + e.assignments.len()
                + e.trace.len()
                + e.intervals.len())
    }

    /// Parses a checkpoint payload, validating every field — a checkpoint
    /// that fails here is treated by recovery as if it were torn (fall
    /// back to an earlier checkpoint or full replay), never trusted.
    pub fn from_json(v: &Json) -> Result<CheckpointState, String> {
        let f = Fields(v);
        let algorithm = Algorithm::from_name(f.str("algorithm")?)
            .ok_or_else(|| "checkpoint has no known `algorithm`".to_string())?;
        Ok(CheckpointState {
            tenant: f.str("tenant")?.to_string(),
            config: TenantConfig {
                machines: f.usize("machines")?,
                cal_len: f.i64("cal_len")?,
                cal_cost: f.u128("cal_cost")?,
                algorithm,
            },
            last_seq: v.get("last_seq").and_then(Json::as_u64),
            now: v.get("now").and_then(Json::as_i64),
            flow: f.u128("flow")?,
            cost: f.u128("total_cost")?,
            counters: CounterSnapshot::from_json(f.req("counters")?),
            engine: engine_from_json(f.req("engine")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calib_core::JobId;

    fn parse(line: &str) -> Result<Request, (&'static str, String)> {
        let v = Json::parse(line).expect("test line must be valid JSON");
        Request::from_json(&v)
    }

    #[test]
    fn parses_the_full_catalogue() {
        let hello = parse(
            r#"{"type":"hello","tenant":"a","machines":2,"cal_len":5,"cal_cost":10,"algorithm":"alg3","seq":1}"#,
        )
        .unwrap();
        assert_eq!(
            hello,
            Request::Hello {
                tenant: "a".into(),
                machines: 2,
                cal_len: 5,
                cal_cost: 10,
                algorithm: "alg3".into(),
                weight: 1,
                seq: Some(1),
            }
        );
        let weighted = parse(
            r#"{"type":"hello","tenant":"w","machines":1,"cal_len":5,"cal_cost":10,"algorithm":"alg1","weight":4}"#,
        )
        .unwrap();
        match weighted {
            Request::Hello { weight, .. } => assert_eq!(weight, 4),
            other => panic!("wrong parse: {other:?}"),
        }
        // weight 0 clamps to 1 — a zero-weight tenant would never admit.
        let clamped = parse(
            r#"{"type":"hello","tenant":"z","machines":1,"cal_len":5,"cal_cost":10,"algorithm":"alg1","weight":0}"#,
        )
        .unwrap();
        match clamped {
            Request::Hello { weight, .. } => assert_eq!(weight, 1),
            other => panic!("wrong parse: {other:?}"),
        }
        let arrive =
            parse(r#"{"type":"arrive","tenant":"a","jobs":[{"id":0,"release":3,"weight":2}]}"#)
                .unwrap();
        match arrive {
            Request::Arrive { jobs, seq, .. } => {
                assert_eq!(jobs, vec![Job::new(0, 3, 2)]);
                assert_eq!(seq, None);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert_eq!(
            parse(r#"{"type":"tick","tenant":"a","now":9}"#).unwrap(),
            Request::Tick {
                tenant: "a".into(),
                now: 9,
                seq: None
            }
        );
        for ty in ["decisions", "stats", "drain", "bye", "resume"] {
            let req = parse(&format!(r#"{{"type":"{ty}","tenant":"a"}}"#)).unwrap();
            assert_eq!(req.tenant(), "a");
        }
        // `ping` is the one tenant-less request.
        let ping = parse(r#"{"type":"ping","seq":9}"#).unwrap();
        assert_eq!(ping, Request::Ping { seq: Some(9) });
        assert_eq!(ping.tenant(), "");
    }

    #[test]
    fn rejects_malformed_requests_with_stable_codes() {
        let (code, _) = parse(r#"{"type":"warp","tenant":"a"}"#).unwrap_err();
        assert_eq!(code, "bad-message");
        let (code, msg) = parse(r#"{"type":"tick","tenant":"a"}"#).unwrap_err();
        assert_eq!(code, "bad-message");
        assert!(msg.contains("`now`"), "{msg}");
        let (code, _) = parse(r#"{"type":"hello","machines":1}"#).unwrap_err();
        assert_eq!(code, "bad-message");
    }

    #[test]
    fn parses_the_migration_vocabulary() {
        let evict = parse(r#"{"type":"evict","tenant":"a","seq":3}"#).unwrap();
        assert_eq!(
            evict,
            Request::Evict {
                tenant: "a".into(),
                seq: Some(3)
            }
        );

        // `adopt` without a payload is malformed; with an unparseable
        // payload it is a corrupt snapshot (the validating parser ran).
        let (code, msg) = parse(r#"{"type":"adopt","tenant":"a"}"#).unwrap_err();
        assert_eq!(code, "bad-message");
        assert!(msg.contains("`state`"), "{msg}");
        let (code, _) = parse(r#"{"type":"adopt","tenant":"a","state":{}}"#).unwrap_err();
        assert_eq!(code, "corrupt-snapshot");
    }

    #[test]
    fn replies_round_trip_through_json() {
        let reply = Reply::Decisions {
            tenant: "a".into(),
            now: Some(7),
            calibrations: vec![Calibration {
                machine: calib_core::MachineId(0),
                start: 7,
            }],
            starts: vec![Assignment::new(JobId(3), 8, calib_core::MachineId(0))],
            idle: false,
            seq: Some(4),
        };
        let v = Json::parse(reply.to_line().trim()).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("decisions"));
        assert_eq!(v.get("now").unwrap().as_i64(), Some(7));
        assert_eq!(v.get("seq").unwrap().as_u64(), Some(4));
        let starts = Vec::<Assignment>::from_json(v.get("starts").unwrap()).unwrap();
        assert_eq!(starts[0].start, 8);

        let err = Reply::error("busy", "queue full", Some("a"), None);
        let v = Json::parse(err.to_line().trim()).unwrap();
        assert_eq!(v.get("code").unwrap().as_str(), Some("busy"));
        assert!(v.get("seq").is_none());
        assert!(v.get("retry_after_ms").is_none(), "hint only when typed");

        let shed = Reply::error_retry_after(CODE_SHED, "over budget", Some("a"), 7, Some(3));
        let v = Json::parse(shed.to_line().trim()).unwrap();
        assert_eq!(v.get("code").unwrap().as_str(), Some(CODE_SHED));
        assert_eq!(v.get("retry_after_ms").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("seq").unwrap().as_u64(), Some(3));

        let resumed = Reply::Resumed {
            tenant: "a".into(),
            last_seq: Some(41),
            now: Some(12),
            idle: true,
            seq: Some(0),
        };
        let v = Json::parse(resumed.to_line().trim()).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("resumed"));
        assert_eq!(v.get("last_seq").unwrap().as_u64(), Some(41));
        assert_eq!(v.get("idle").unwrap(), &Json::Bool(true));

        let pong = Reply::Pong {
            connections: 3,
            active_connections: 1,
            tenants: 2,
            requests: 99,
            busy_drops: 0,
            seq: Some(7),
        };
        let v = Json::parse(pong.to_line().trim()).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("pong"));
        assert_eq!(v.get("requests").unwrap().as_u64(), Some(99));
        assert_eq!(v.get("seq").unwrap().as_u64(), Some(7));
    }
}
