//! The wire protocol: line-delimited JSON requests and replies.
//!
//! Every message is one compact JSON object on one line. Requests carry a
//! `type` tag, a `tenant` name (except before `hello`), and an optional
//! client-chosen `seq` number that is echoed verbatim in the matching reply
//! so clients can pipeline requests. The full message catalogue, with
//! examples, lives in `SERVE.md` at the repo root.
//!
//! Error replies carry a stable kebab-case `code` (mirroring
//! `calib_core::Violation::code` and `calib_online::EngineError::code`)
//! plus a human-oriented `message`; clients must branch on the code, never
//! the text.

use calib_core::json::{FromJson, Json, ToJson};
use calib_core::obs::CounterSnapshot;
use calib_core::{Assignment, Calibration, Cost, Job, Time};

/// Upper bound on one request line, in bytes. A line longer than this is
/// rejected with `line-too-long` before parsing — a malformed client must
/// not make the server buffer without bound.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a tenant session.
    Hello {
        /// Tenant name (registry key; must be new).
        tenant: String,
        /// Machine count `P` (must be ≥ 1).
        machines: usize,
        /// Calibration length `T`.
        cal_len: Time,
        /// Calibration cost `G`.
        cal_cost: Cost,
        /// Algorithm name (`alg1`, `alg2`, `alg3`, `immediate`).
        algorithm: String,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// Submit a batch of future jobs.
    Arrive {
        /// Target tenant.
        tenant: String,
        /// The jobs; ids must be session-unique, releases not in the past.
        jobs: Vec<Job>,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// Advance the tenant's virtual clock to `now`.
    Tick {
        /// Target tenant.
        tenant: String,
        /// New virtual time (must not regress).
        now: Time,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// Fetch decisions made since the last delta, without advancing time.
    Decisions {
        /// Target tenant.
        tenant: String,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// Fetch the tenant's counters.
    Stats {
        /// Target tenant.
        tenant: String,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// Run the session to completion of all submitted work.
    Drain {
        /// Target tenant.
        tenant: String,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// Close the tenant session (drains first).
    Bye {
        /// Target tenant.
        tenant: String,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// Reattach to a tenant after a disconnect — or, with `--journal-dir`,
    /// recover it from its on-disk journal after a daemon crash.
    Resume {
        /// Target tenant.
        tenant: String,
        /// Echoed sequence number (exempt from the tenant's `seq` chain).
        seq: Option<u64>,
    },
    /// Liveness probe; answered inline by the reader thread with `pong`,
    /// bypassing tenant queues, so it works even when all workers are busy.
    Ping {
        /// Echoed sequence number (exempt from any `seq` chain).
        seq: Option<u64>,
    },
    /// Metrics snapshot request; tenant-less and answered inline by the
    /// reader thread with a `metrics` reply, like `ping`.
    Metrics {
        /// Echoed sequence number (exempt from any `seq` chain).
        seq: Option<u64>,
    },
}

impl Request {
    /// The tenant the request addresses (empty for tenant-less `ping`).
    pub fn tenant(&self) -> &str {
        match self {
            Request::Hello { tenant, .. }
            | Request::Arrive { tenant, .. }
            | Request::Tick { tenant, .. }
            | Request::Decisions { tenant, .. }
            | Request::Stats { tenant, .. }
            | Request::Drain { tenant, .. }
            | Request::Bye { tenant, .. }
            | Request::Resume { tenant, .. } => tenant,
            Request::Ping { .. } | Request::Metrics { .. } => "",
        }
    }

    /// The request's echoable sequence number.
    pub fn seq(&self) -> Option<u64> {
        match self {
            Request::Hello { seq, .. }
            | Request::Arrive { seq, .. }
            | Request::Tick { seq, .. }
            | Request::Decisions { seq, .. }
            | Request::Stats { seq, .. }
            | Request::Drain { seq, .. }
            | Request::Bye { seq, .. }
            | Request::Resume { seq, .. }
            | Request::Ping { seq }
            | Request::Metrics { seq } => *seq,
        }
    }

    /// Parses one request line (already known to be valid JSON).
    ///
    /// Errors are `(code, message)` pairs ready for an error reply.
    pub fn from_json(v: &Json) -> Result<Request, (&'static str, String)> {
        let bad = |msg: String| ("bad-message", msg);
        let obj_str = |key: &str| -> Result<String, (&'static str, String)> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad(format!("missing or non-string field `{key}`")))
        };
        let obj_u64 = |key: &str| -> Result<u64, (&'static str, String)> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| bad(format!("missing or non-integer field `{key}`")))
        };
        let obj_i64 = |key: &str| -> Result<i64, (&'static str, String)> {
            v.get(key)
                .and_then(Json::as_i64)
                .ok_or_else(|| bad(format!("missing or non-integer field `{key}`")))
        };
        let seq = v.get("seq").and_then(Json::as_u64);
        let ty = obj_str("type")?;
        // `ping` and `metrics` are tenant-less; everything else requires
        // the field.
        if ty == "ping" {
            return Ok(Request::Ping { seq });
        }
        if ty == "metrics" {
            return Ok(Request::Metrics { seq });
        }
        let tenant = obj_str("tenant")?;
        match ty.as_str() {
            "hello" => Ok(Request::Hello {
                tenant,
                machines: usize::try_from(obj_u64("machines")?)
                    .map_err(|_| bad("`machines` out of range".to_string()))?,
                cal_len: obj_i64("cal_len")?,
                cal_cost: Cost::from(obj_u64("cal_cost")?),
                algorithm: obj_str("algorithm")?,
                seq,
            }),
            "arrive" => {
                let jobs_json = v
                    .get("jobs")
                    .ok_or_else(|| bad("missing field `jobs`".to_string()))?;
                let jobs = Vec::<Job>::from_json(jobs_json)
                    .map_err(|e| bad(format!("bad `jobs` array: {e}")))?;
                Ok(Request::Arrive { tenant, jobs, seq })
            }
            "tick" => Ok(Request::Tick {
                tenant,
                now: obj_i64("now")?,
                seq,
            }),
            "decisions" => Ok(Request::Decisions { tenant, seq }),
            "stats" => Ok(Request::Stats { tenant, seq }),
            "drain" => Ok(Request::Drain { tenant, seq }),
            "bye" => Ok(Request::Bye { tenant, seq }),
            "resume" => Ok(Request::Resume { tenant, seq }),
            other => Err(("bad-message", format!("unknown request type `{other}`"))),
        }
    }
}

/// Per-tenant final accounting, emitted on `bye`, on disconnect cleanup,
/// and in the daemon's shutdown report. `checker_ok` is the verdict of the
/// trusted `calib_core::check_schedule` run over the session's complete
/// schedule against the submitted jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct Accounting {
    /// Tenant name.
    pub tenant: String,
    /// Jobs submitted over the session's lifetime.
    pub jobs: usize,
    /// Jobs actually scheduled (equals `jobs` iff the session drained).
    pub scheduled: usize,
    /// Calibrations issued.
    pub calibrations: usize,
    /// Total weighted flow of the schedule.
    pub flow: Cost,
    /// Online objective `G·C + flow`.
    pub cost: Cost,
    /// Did the feasibility checker accept the schedule?
    pub checker_ok: bool,
    /// Stable violation codes when it did not.
    pub violations: Vec<String>,
}

impl Accounting {
    /// The accounting as a reply-ready JSON object (without `type`).
    pub fn fields(&self) -> Vec<(&'static str, Json)> {
        vec![
            ("tenant", Json::Str(self.tenant.clone())),
            ("jobs", self.jobs.to_json()),
            ("scheduled", self.scheduled.to_json()),
            ("calibrations", self.calibrations.to_json()),
            ("flow", self.flow.to_json()),
            ("cost", self.cost.to_json()),
            ("checker_ok", Json::Bool(self.checker_ok)),
            (
                "violations",
                Json::Arr(
                    self.violations
                        .iter()
                        .map(|c| Json::Str(c.clone()))
                        .collect(),
                ),
            ),
        ]
    }
}

/// A server reply, one line of JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Request accepted with nothing else to report.
    Ok {
        /// Addressed tenant.
        tenant: String,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// Decisions streamed back after a `tick`, `decisions`, or `drain`.
    Decisions {
        /// Addressed tenant.
        tenant: String,
        /// The tenant's virtual time, if a tick has happened.
        now: Option<Time>,
        /// Calibrations issued since the previous delta.
        calibrations: Vec<Calibration>,
        /// Job starts materialized since the previous delta.
        starts: Vec<Assignment>,
        /// True when the session has no unfinished work left.
        idle: bool,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// Counter snapshot for `stats`.
    Stats {
        /// Addressed tenant.
        tenant: String,
        /// Engine counters (arrivals, dispatches, calibrations, …).
        counters: CounterSnapshot,
        /// Requests queued for the tenant right now.
        queue_depth: usize,
        /// Highest queue depth observed.
        queue_high_water: usize,
        /// Requests dropped with `busy` since the session opened.
        busy_drops: u64,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// Final accounting answering `drain`, plus the decision delta the
    /// drain produced (everything since the last `tick`/`decisions`).
    Drained {
        /// The validated accounting.
        accounting: Accounting,
        /// Calibrations started while draining.
        calibrations: Vec<Calibration>,
        /// Jobs started while draining.
        starts: Vec<Assignment>,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// Final accounting answering `bye`; the tenant is gone afterwards.
    Goodbye {
        /// The validated accounting.
        accounting: Accounting,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// Session reattached (or recovered from its journal) after `resume`.
    /// `last_seq` tells the client exactly which requests were applied, so
    /// it can resend the un-acked tail idempotently.
    Resumed {
        /// Addressed tenant.
        tenant: String,
        /// The session's `seq` high-water mark — everything at or below
        /// this is already applied.
        last_seq: Option<u64>,
        /// The session's virtual time, if a tick has happened.
        now: Option<Time>,
        /// True when the session has no unfinished work left.
        idle: bool,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// Liveness answer to `ping`, carrying monotonic server health
    /// counters.
    Pong {
        /// Connections accepted over the server's lifetime.
        connections: u64,
        /// Connections open right now.
        active_connections: u64,
        /// Tenant sessions open right now.
        tenants: u64,
        /// Requests parsed over the server's lifetime.
        requests: u64,
        /// Requests answered with `busy` over the server's lifetime.
        busy_drops: u64,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// Full daemon metrics snapshot answering a `metrics` request; the
    /// payload is the same JSON object the `--metrics-interval-ms` stream
    /// emits (global counters, latency histograms, per-tenant rows).
    Metrics {
        /// The registry snapshot, already shaped as a JSON object.
        snapshot: Json,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
    /// A typed failure; the session (if any) is still usable unless the
    /// code says otherwise.
    Error {
        /// Stable kebab-case error class.
        code: String,
        /// Human-oriented detail.
        message: String,
        /// Addressed tenant, when one could be determined.
        tenant: Option<String>,
        /// Echoed sequence number.
        seq: Option<u64>,
    },
}

fn put_seq(fields: &mut Vec<(&'static str, Json)>, seq: Option<u64>) {
    if let Some(s) = seq {
        fields.push(("seq", s.to_json()));
    }
}

impl Reply {
    /// Builds an error reply.
    pub fn error(
        code: &str,
        message: impl Into<String>,
        tenant: Option<&str>,
        seq: Option<u64>,
    ) -> Reply {
        Reply::Error {
            code: code.to_string(),
            message: message.into(),
            tenant: tenant.map(str::to_string),
            seq,
        }
    }

    /// Serializes the reply as one compact JSON line (no trailing newline).
    pub fn to_json(&self) -> Json {
        match self {
            Reply::Ok { tenant, seq } => {
                let mut fields = vec![
                    ("type", Json::Str("ok".to_string())),
                    ("tenant", Json::Str(tenant.clone())),
                ];
                put_seq(&mut fields, *seq);
                Json::obj(fields)
            }
            Reply::Decisions {
                tenant,
                now,
                calibrations,
                starts,
                idle,
                seq,
            } => {
                let mut fields = vec![
                    ("type", Json::Str("decisions".to_string())),
                    ("tenant", Json::Str(tenant.clone())),
                ];
                if let Some(now) = now {
                    fields.push(("now", now.to_json()));
                }
                fields.push(("calibrations", calibrations.to_json()));
                fields.push(("starts", starts.to_json()));
                fields.push(("idle", Json::Bool(*idle)));
                put_seq(&mut fields, *seq);
                Json::obj(fields)
            }
            Reply::Stats {
                tenant,
                counters,
                queue_depth,
                queue_high_water,
                busy_drops,
                seq,
            } => {
                let mut fields = vec![
                    ("type", Json::Str("stats".to_string())),
                    ("tenant", Json::Str(tenant.clone())),
                    ("counters", counters.to_json()),
                    ("queue_depth", queue_depth.to_json()),
                    ("queue_high_water", queue_high_water.to_json()),
                    ("busy_drops", busy_drops.to_json()),
                ];
                put_seq(&mut fields, *seq);
                Json::obj(fields)
            }
            Reply::Drained {
                accounting,
                calibrations,
                starts,
                seq,
            } => {
                let mut fields = vec![("type", Json::Str("drained".to_string()))];
                fields.extend(accounting.fields());
                // Nested: the accounting already claims the top-level
                // `calibrations` key for its count.
                fields.push((
                    "decisions",
                    Json::obj([
                        ("calibrations", calibrations.to_json()),
                        ("starts", starts.to_json()),
                    ]),
                ));
                put_seq(&mut fields, *seq);
                Json::obj(fields)
            }
            Reply::Goodbye { accounting, seq } => {
                let mut fields = vec![("type", Json::Str("goodbye".to_string()))];
                fields.extend(accounting.fields());
                put_seq(&mut fields, *seq);
                Json::obj(fields)
            }
            Reply::Resumed {
                tenant,
                last_seq,
                now,
                idle,
                seq,
            } => {
                let mut fields = vec![
                    ("type", Json::Str("resumed".to_string())),
                    ("tenant", Json::Str(tenant.clone())),
                ];
                if let Some(s) = last_seq {
                    fields.push(("last_seq", s.to_json()));
                }
                if let Some(now) = now {
                    fields.push(("now", now.to_json()));
                }
                fields.push(("idle", Json::Bool(*idle)));
                put_seq(&mut fields, *seq);
                Json::obj(fields)
            }
            Reply::Pong {
                connections,
                active_connections,
                tenants,
                requests,
                busy_drops,
                seq,
            } => {
                let mut fields = vec![
                    ("type", Json::Str("pong".to_string())),
                    ("connections", connections.to_json()),
                    ("active_connections", active_connections.to_json()),
                    ("tenants", tenants.to_json()),
                    ("requests", requests.to_json()),
                    ("busy_drops", busy_drops.to_json()),
                ];
                put_seq(&mut fields, *seq);
                Json::obj(fields)
            }
            Reply::Metrics { snapshot, seq } => {
                // Reuse the snapshot's own fields, but the wire-level `seq`
                // echoes the request (the snapshot's internal counter would
                // otherwise collide with it).
                let mut fields: Vec<(String, Json)> = match snapshot {
                    Json::Obj(pairs) => pairs.iter().filter(|(k, _)| k != "seq").cloned().collect(),
                    other => vec![("snapshot".to_string(), other.clone())],
                };
                if let Some(s) = seq {
                    fields.push(("seq".to_string(), s.to_json()));
                }
                Json::Obj(fields)
            }
            Reply::Error {
                code,
                message,
                tenant,
                seq,
            } => {
                let mut fields = vec![
                    ("type", Json::Str("error".to_string())),
                    ("code", Json::Str(code.clone())),
                    ("message", Json::Str(message.clone())),
                ];
                if let Some(t) = tenant {
                    fields.push(("tenant", Json::Str(t.clone())));
                }
                put_seq(&mut fields, *seq);
                Json::obj(fields)
            }
        }
    }

    /// The serialized line, newline included.
    pub fn to_line(&self) -> String {
        let mut line = self.to_json().to_string_compact();
        line.push('\n');
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calib_core::JobId;

    fn parse(line: &str) -> Result<Request, (&'static str, String)> {
        let v = Json::parse(line).expect("test line must be valid JSON");
        Request::from_json(&v)
    }

    #[test]
    fn parses_the_full_catalogue() {
        let hello = parse(
            r#"{"type":"hello","tenant":"a","machines":2,"cal_len":5,"cal_cost":10,"algorithm":"alg3","seq":1}"#,
        )
        .unwrap();
        assert_eq!(
            hello,
            Request::Hello {
                tenant: "a".into(),
                machines: 2,
                cal_len: 5,
                cal_cost: 10,
                algorithm: "alg3".into(),
                seq: Some(1),
            }
        );
        let arrive =
            parse(r#"{"type":"arrive","tenant":"a","jobs":[{"id":0,"release":3,"weight":2}]}"#)
                .unwrap();
        match arrive {
            Request::Arrive { jobs, seq, .. } => {
                assert_eq!(jobs, vec![Job::new(0, 3, 2)]);
                assert_eq!(seq, None);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert_eq!(
            parse(r#"{"type":"tick","tenant":"a","now":9}"#).unwrap(),
            Request::Tick {
                tenant: "a".into(),
                now: 9,
                seq: None
            }
        );
        for ty in ["decisions", "stats", "drain", "bye", "resume"] {
            let req = parse(&format!(r#"{{"type":"{ty}","tenant":"a"}}"#)).unwrap();
            assert_eq!(req.tenant(), "a");
        }
        // `ping` is the one tenant-less request.
        let ping = parse(r#"{"type":"ping","seq":9}"#).unwrap();
        assert_eq!(ping, Request::Ping { seq: Some(9) });
        assert_eq!(ping.tenant(), "");
    }

    #[test]
    fn rejects_malformed_requests_with_stable_codes() {
        let (code, _) = parse(r#"{"type":"warp","tenant":"a"}"#).unwrap_err();
        assert_eq!(code, "bad-message");
        let (code, msg) = parse(r#"{"type":"tick","tenant":"a"}"#).unwrap_err();
        assert_eq!(code, "bad-message");
        assert!(msg.contains("`now`"), "{msg}");
        let (code, _) = parse(r#"{"type":"hello","machines":1}"#).unwrap_err();
        assert_eq!(code, "bad-message");
    }

    #[test]
    fn replies_round_trip_through_json() {
        let reply = Reply::Decisions {
            tenant: "a".into(),
            now: Some(7),
            calibrations: vec![Calibration {
                machine: calib_core::MachineId(0),
                start: 7,
            }],
            starts: vec![Assignment::new(JobId(3), 8, calib_core::MachineId(0))],
            idle: false,
            seq: Some(4),
        };
        let v = Json::parse(reply.to_line().trim()).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("decisions"));
        assert_eq!(v.get("now").unwrap().as_i64(), Some(7));
        assert_eq!(v.get("seq").unwrap().as_u64(), Some(4));
        let starts = Vec::<Assignment>::from_json(v.get("starts").unwrap()).unwrap();
        assert_eq!(starts[0].start, 8);

        let err = Reply::error("busy", "queue full", Some("a"), None);
        let v = Json::parse(err.to_line().trim()).unwrap();
        assert_eq!(v.get("code").unwrap().as_str(), Some("busy"));
        assert!(v.get("seq").is_none());

        let resumed = Reply::Resumed {
            tenant: "a".into(),
            last_seq: Some(41),
            now: Some(12),
            idle: true,
            seq: Some(0),
        };
        let v = Json::parse(resumed.to_line().trim()).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("resumed"));
        assert_eq!(v.get("last_seq").unwrap().as_u64(), Some(41));
        assert_eq!(v.get("idle").unwrap(), &Json::Bool(true));

        let pong = Reply::Pong {
            connections: 3,
            active_connections: 1,
            tenants: 2,
            requests: 99,
            busy_drops: 0,
            seq: Some(7),
        };
        let v = Json::parse(pong.to_line().trim()).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("pong"));
        assert_eq!(v.get("requests").unwrap().as_u64(), Some(99));
        assert_eq!(v.get("seq").unwrap().as_u64(), Some(7));
    }
}
