//! A seeded fault-injecting TCP proxy for chaos-testing the daemon.
//!
//! [`run_proxy`] sits between a client and the daemon and, per relayed
//! line, draws from a seeded RNG to decide whether to pass the line
//! through or inject a fault: disconnect mid-line, truncate the line
//! (torn write without the newline), duplicate it, tear it across two
//! flushes, or delay it. Fault rates are expressed per ten thousand
//! lines so low rates stay integral, and every draw derives from
//! [`FaultPlan::seed`] plus the connection id and direction — the same
//! plan against the same traffic replays the same fault schedule.
//!
//! Client→server faults exercise the server's seq-gap detection and
//! bad-json handling; server→client faults exercise the client's
//! duplicate suppression and lost-reply resync. Truncation is only
//! injected client→server: a truncated *reply* is indistinguishable
//! from a lost one (the client resyncs either way), while a truncated
//! *request* must surface as `seq-gap` or `bad-json` server-side.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fault rates (per 10 000 relayed lines) and the master seed.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Master seed; per-connection, per-direction RNGs derive from it.
    pub seed: u64,
    /// Rate of mid-line disconnects (both directions).
    pub disconnect_per_10k: u32,
    /// Rate of newline-less truncations (client→server only).
    pub truncate_per_10k: u32,
    /// Rate of whole-line duplications (both directions).
    pub duplicate_per_10k: u32,
    /// Rate of torn-but-complete writes: two flushes with a pause.
    pub torn_per_10k: u32,
    /// Rate of per-line delays (both directions).
    pub delay_per_10k: u32,
    /// How long a delayed line waits.
    pub delay_ms: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            disconnect_per_10k: 0,
            truncate_per_10k: 0,
            duplicate_per_10k: 0,
            torn_per_10k: 0,
            delay_per_10k: 0,
            delay_ms: 5,
        }
    }
}

/// Live counters for everything the proxy relayed or injected.
#[derive(Debug, Default)]
pub struct ProxyStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Lines relayed (including faulted ones).
    pub lines: AtomicU64,
    /// Mid-line disconnects injected.
    pub disconnects: AtomicU64,
    /// Truncations injected.
    pub truncations: AtomicU64,
    /// Duplications injected.
    pub duplicates: AtomicU64,
    /// Torn writes injected.
    pub torn: AtomicU64,
    /// Delays injected.
    pub delays: AtomicU64,
}

impl ProxyStats {
    /// Total faults injected across all kinds.
    pub fn faults(&self) -> u64 {
        self.disconnects.load(Ordering::Relaxed)
            + self.truncations.load(Ordering::Relaxed)
            + self.duplicates.load(Ordering::Relaxed)
            + self.torn.load(Ordering::Relaxed)
            + self.delays.load(Ordering::Relaxed)
    }
}

/// What the per-line draw decided.
enum Fault {
    None,
    Disconnect,
    Truncate,
    Duplicate,
    Torn,
    Delay,
}

/// One relay direction's fault configuration.
struct Lane {
    rng: StdRng,
    plan: FaultPlan,
    /// Truncation only makes sense client→server (see module docs).
    allow_truncate: bool,
}

impl Lane {
    fn draw(&mut self) -> Fault {
        let r: u32 = self.rng.gen_range(0..10_000u32);
        let p = &self.plan;
        let mut edge = p.disconnect_per_10k;
        if r < edge {
            return Fault::Disconnect;
        }
        edge = edge.saturating_add(p.truncate_per_10k);
        if r < edge {
            return if self.allow_truncate {
                Fault::Truncate
            } else {
                Fault::Duplicate
            };
        }
        edge = edge.saturating_add(p.duplicate_per_10k);
        if r < edge {
            return Fault::Duplicate;
        }
        edge = edge.saturating_add(p.torn_per_10k);
        if r < edge {
            return Fault::Torn;
        }
        edge = edge.saturating_add(p.delay_per_10k);
        if r < edge {
            return Fault::Delay;
        }
        Fault::None
    }
}

/// Runs the proxy accept loop on `listener`, relaying each connection to
/// `upstream` through the fault plan, until `stop` is set. Connection
/// threads are detached; callers stop the world by setting `stop` and
/// letting in-flight sessions drain or break.
pub fn run_proxy(
    listener: TcpListener,
    upstream: String,
    plan: FaultPlan,
    stop: Arc<AtomicBool>,
    stats: Arc<ProxyStats>,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut conn_id: u64 = 0;
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((client, _peer)) => {
                conn_id += 1;
                stats.connections.fetch_add(1, Ordering::Relaxed);
                let upstream = upstream.clone();
                let stats = Arc::clone(&stats);
                let id = conn_id;
                std::thread::spawn(move || {
                    relay_connection(client, &upstream, plan, id, &stats);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Odd bias constants so the two directions of one connection get
/// unrelated RNG streams.
const DIR_C2S: u64 = 0x5DEECE66D;
const DIR_S2C: u64 = 0xB5297A4D;

fn lane_seed(plan: &FaultPlan, conn_id: u64, dir: u64) -> u64 {
    plan.seed ^ conn_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ dir
}

fn relay_connection(
    client: TcpStream,
    upstream: &str,
    plan: FaultPlan,
    conn_id: u64,
    stats: &Arc<ProxyStats>,
) {
    let Ok(server) = TcpStream::connect(upstream) else {
        client.shutdown(Shutdown::Both).ok();
        return;
    };
    client.set_nodelay(true).ok();
    server.set_nodelay(true).ok();
    let (Ok(client_r), Ok(server_r)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    let c2s = Lane {
        rng: StdRng::seed_from_u64(lane_seed(&plan, conn_id, DIR_C2S)),
        plan,
        allow_truncate: true,
    };
    let s2c = Lane {
        rng: StdRng::seed_from_u64(lane_seed(&plan, conn_id, DIR_S2C)),
        plan,
        allow_truncate: false,
    };
    let stats_up = Arc::clone(stats);
    let up = std::thread::spawn(move || {
        relay_lines(client_r, server, c2s, &stats_up);
    });
    relay_lines(server_r, client, s2c, stats);
    up.join().ok();
}

/// Relays newline-delimited lines from `from` to `to`, injecting faults
/// per the lane's draws. Returns when either side closes or a disconnect
/// fault fires.
fn relay_lines(from: TcpStream, mut to: TcpStream, mut lane: Lane, stats: &Arc<ProxyStats>) {
    let mut reader = BufReader::new(from);
    let mut line: Vec<u8> = Vec::new();
    loop {
        line.clear();
        match reader.read_until(b'\n', &mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        stats.lines.fetch_add(1, Ordering::Relaxed);
        match lane.draw() {
            Fault::None => {
                if to.write_all(&line).is_err() {
                    break;
                }
            }
            Fault::Disconnect => {
                stats.disconnects.fetch_add(1, Ordering::Relaxed);
                // Leak a prefix so the peer sees a mid-line cut, then
                // kill both directions of the relay.
                let cut = lane.rng.gen_range(0..=line.len());
                to.write_all(&line[..cut]).ok();
                to.shutdown(Shutdown::Both).ok();
                reader.get_ref().shutdown(Shutdown::Both).ok();
                break;
            }
            Fault::Truncate => {
                stats.truncations.fetch_add(1, Ordering::Relaxed);
                // Drop the tail *and* the newline but keep relaying: with
                // cut = 0 the line vanishes entirely (a pure gap); any
                // other cut glues a fragment onto the next line (bad
                // json). Both must be recoverable.
                let cut = lane.rng.gen_range(0..line.len().max(1));
                if to.write_all(&line[..cut]).is_err() {
                    break;
                }
            }
            Fault::Duplicate => {
                stats.duplicates.fetch_add(1, Ordering::Relaxed);
                if to.write_all(&line).is_err() || to.write_all(&line).is_err() {
                    break;
                }
            }
            Fault::Torn => {
                stats.torn.fetch_add(1, Ordering::Relaxed);
                // Two flushes with a pause: the bytes all arrive, but in
                // separate segments — readers must not assume one read
                // yields one line.
                let half = line.len() / 2;
                if to.write_all(&line[..half]).is_err() || to.flush().is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
                if to.write_all(&line[half..]).is_err() {
                    break;
                }
            }
            Fault::Delay => {
                stats.delays.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(lane.plan.delay_ms));
                if to.write_all(&line).is_err() {
                    break;
                }
            }
        }
        if to.flush().is_err() {
            break;
        }
    }
    // Half-close so the peer's relay thread unblocks promptly.
    to.shutdown(Shutdown::Both).ok();
    reader.get_ref().shutdown(Shutdown::Both).ok();
    // Drain-read suppresses RST-on-close races for unread bytes.
    let mut sink = [0u8; 512];
    let from = reader.into_inner();
    let _ = (&from).read(&mut sink);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpListener;

    /// An echo server that prefixes each line with `ack:`.
    fn spawn_echo() -> (std::net::SocketAddr, Arc<AtomicBool>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind echo");
        let addr = listener.local_addr().expect("echo addr");
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        listener.set_nonblocking(true).expect("nonblocking");
        std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        std::thread::spawn(move || {
                            let Ok(read_half) = stream.try_clone() else {
                                return;
                            };
                            let mut w = stream;
                            let reader = BufReader::new(read_half);
                            for line in reader.lines() {
                                let Ok(line) = line else { break };
                                if writeln!(w, "ack:{line}").is_err() {
                                    break;
                                }
                            }
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });
        (addr, stop)
    }

    fn spawn_proxy(
        upstream: std::net::SocketAddr,
        plan: FaultPlan,
    ) -> (std::net::SocketAddr, Arc<AtomicBool>, Arc<ProxyStats>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
        let addr = listener.local_addr().expect("proxy addr");
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ProxyStats::default());
        let stop2 = Arc::clone(&stop);
        let stats2 = Arc::clone(&stats);
        std::thread::spawn(move || {
            run_proxy(listener, upstream.to_string(), plan, stop2, stats2).ok();
        });
        (addr, stop, stats)
    }

    #[test]
    fn clean_plan_relays_lines_untouched() {
        let (echo, echo_stop) = spawn_echo();
        let (proxy, proxy_stop, stats) = spawn_proxy(echo, FaultPlan::default());
        let mut conn = TcpStream::connect(proxy).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(5))).ok();
        let mut reader = BufReader::new(conn.try_clone().expect("clone"));
        for i in 0..50 {
            writeln!(conn, "msg-{i}").expect("write");
            let mut reply = String::new();
            reader.read_line(&mut reply).expect("read");
            assert_eq!(reply.trim(), format!("ack:msg-{i}"));
        }
        assert_eq!(stats.faults(), 0, "clean plan injects nothing");
        assert!(stats.lines.load(Ordering::Relaxed) >= 100);
        proxy_stop.store(true, Ordering::Relaxed);
        echo_stop.store(true, Ordering::Relaxed);
    }

    #[test]
    fn duplicate_fault_doubles_lines_deterministically() {
        let plan = FaultPlan {
            seed: 7,
            duplicate_per_10k: 10_000, // duplicate every line
            ..FaultPlan::default()
        };
        let (echo, echo_stop) = spawn_echo();
        let (proxy, proxy_stop, stats) = spawn_proxy(echo, plan);
        let mut conn = TcpStream::connect(proxy).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(5))).ok();
        let mut reader = BufReader::new(conn.try_clone().expect("clone"));
        writeln!(conn, "hello").expect("write");
        // c2s duplicates the request, s2c duplicates each reply: 4 acks.
        for _ in 0..4 {
            let mut reply = String::new();
            reader.read_line(&mut reply).expect("read");
            assert_eq!(reply.trim(), "ack:hello");
        }
        assert!(stats.duplicates.load(Ordering::Relaxed) >= 2);
        proxy_stop.store(true, Ordering::Relaxed);
        echo_stop.store(true, Ordering::Relaxed);
    }

    #[test]
    fn disconnect_fault_severs_the_connection() {
        let plan = FaultPlan {
            seed: 3,
            disconnect_per_10k: 10_000, // disconnect on the first line
            ..FaultPlan::default()
        };
        let (echo, echo_stop) = spawn_echo();
        let (proxy, proxy_stop, stats) = spawn_proxy(echo, plan);
        let mut conn = TcpStream::connect(proxy).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(5))).ok();
        writeln!(conn, "doomed").expect("write");
        let mut reader = BufReader::new(conn);
        let mut reply = String::new();
        // Either an EOF (clean cut) or a connection-reset error.
        match reader.read_line(&mut reply) {
            Ok(0) | Err(_) => {}
            Ok(_) => panic!("expected the proxy to cut the connection, got: {reply:?}"),
        }
        assert!(stats.disconnects.load(Ordering::Relaxed) >= 1);
        proxy_stop.store(true, Ordering::Relaxed);
        echo_stop.store(true, Ordering::Relaxed);
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let plan = FaultPlan {
            seed: 99,
            disconnect_per_10k: 200,
            duplicate_per_10k: 400,
            torn_per_10k: 300,
            delay_per_10k: 100,
            ..FaultPlan::default()
        };
        let draws = |seed_offset: u64| -> Vec<u32> {
            let mut lane = Lane {
                rng: StdRng::seed_from_u64(lane_seed(&plan, 1 + seed_offset, DIR_C2S)),
                plan,
                allow_truncate: true,
            };
            (0..200)
                .map(|_| match lane.draw() {
                    Fault::None => 0,
                    Fault::Disconnect => 1,
                    Fault::Truncate => 2,
                    Fault::Duplicate => 3,
                    Fault::Torn => 4,
                    Fault::Delay => 5,
                })
                .collect()
        };
        assert_eq!(draws(0), draws(0), "identical lanes draw identically");
        assert_ne!(draws(0), draws(1), "different connections diverge");
    }
}
