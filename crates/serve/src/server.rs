//! The multi-tenant server: connection readers, a fixed worker pool, and
//! bounded per-tenant queues.
//!
//! ## Threading model
//!
//! * One reader thread per connection parses request lines and routes them
//!   into the addressed tenant's inbox. `hello` is handled inline (it only
//!   touches the registry); everything else is queued.
//! * A fixed pool of worker threads drains tenant inboxes. A tenant is
//!   *scheduled* (pushed onto the global ready list) when its inbox goes
//!   from empty to non-empty, and a worker owns the tenant until the inbox
//!   is empty again — so each tenant's requests are processed strictly in
//!   arrival order, one at a time, while distinct tenants run in parallel
//!   across the pool.
//! * Replies go through a per-connection mutexed writer; reader threads
//!   write `busy` and parse errors directly, workers write everything else.
//!
//! ## Backpressure
//!
//! Each tenant inbox holds at most [`ServerConfig::queue_cap`] requests.
//! A request arriving at a full inbox is answered immediately with a
//! `busy` error and dropped — the server never buffers without bound, and
//! a flooding client only ever hurts itself.
//!
//! ## Shutdown and disconnects
//!
//! Pure-std safe Rust cannot install signal handlers, so shutdown is
//! cooperative: when every connection has closed and every tenant session
//! is gone (all `bye`d or cleaned up after a disconnect), a server started
//! with [`ServerConfig::exit_when_idle`] stops accepting and returns a
//! [`ServeReport`] of all final accountings.
//!
//! What a disconnect-without-`bye` means depends on
//! [`ServerConfig::journal_dir`]. Without journaling, the session is
//! drained, validated, and accounted exactly like a `bye` — an abrupt
//! client cannot leave half-open state behind. With journaling, the
//! disconnect may be a transient network fault: the session is *detached*
//! (kept in memory, its journal on disk) and waits for a `resume`; a
//! detached tenant also keeps an `exit_when_idle` server alive. `resume`
//! for a tenant absent from memory falls back to journal replay, which is
//! how a restarted daemon recovers the sessions a crash orphaned.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use calib_core::json::Json;

use crate::admit::{Admission, AdmitConfig, RequestClock, Verdict};
use crate::journal::{self, FsyncPolicy, JournalRecord, JournalWriter};
use crate::metrics::{MetricsSink, ServeMetrics, TenantMetrics};
use crate::protocol::{
    Accounting, CheckpointState, Reply, Request, CODE_RATE_LIMITED, CODE_SHED, CODE_TENANT_MOVED,
    MAX_LINE_BYTES,
};
use crate::session::{Algorithm, SessionError, SessionMetrics, TenantConfig, TenantSession};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining tenant inboxes.
    pub workers: usize,
    /// Per-tenant inbox capacity; the `busy` threshold.
    pub queue_cap: usize,
    /// Stop accepting and return once at least one connection has been
    /// served and no connections or tenants remain.
    pub exit_when_idle: bool,
    /// Directory for per-tenant JSON-lines engine traces (opt-in).
    pub trace_dir: Option<PathBuf>,
    /// Directory for per-tenant write-ahead journals. Enables crash
    /// recovery and switches disconnect handling from synthetic
    /// finalization to detach-and-await-`resume`.
    pub journal_dir: Option<PathBuf>,
    /// When journal appends reach the disk (see [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
    /// Read timeout applied to accepted TCP sockets; a connection that
    /// sends nothing for this long gets a typed `read-timeout` error and
    /// is disconnected. Ignored by [`serve_stream`] (no socket).
    pub read_timeout: Option<Duration>,
    /// Admission cap on concurrently open tenant sessions; `hello` beyond
    /// it is answered with `tenant-limit`.
    pub max_tenants: usize,
    /// Cadence of the periodic metrics-snapshot stream; `None` disables
    /// it. Snapshots only flow when [`ServerConfig::metrics_sink`] is also
    /// set.
    pub metrics_interval: Option<Duration>,
    /// Where periodic snapshots (and one final authoritative snapshot at
    /// shutdown) are written, one JSON line each.
    pub metrics_sink: Option<MetricsSink>,
    /// Append a checkpoint record after this many journaled mutating
    /// records per tenant, bounding crash-replay to the tail since the
    /// last checkpoint. `None` disables cadence checkpoints.
    pub checkpoint_every: Option<u64>,
    /// Compact a tenant's journal down to `[checkpoint]` whenever a
    /// checkpoint opportunity finds the session idle (drained).
    pub compact_on_idle: bool,
    /// Where per-recovery report lines
    /// (`{"type":"recovered","tenant":…,"records":…,"tail_replayed":…,
    /// "from_checkpoint":…}`) are written — the recovery-smoke CI job
    /// parses these to assert replay stays tail-bounded.
    pub recovery_log: Option<MetricsSink>,
    /// Weighted admission control and load shedding (`--max-inflight`,
    /// `--rate-per-k`, `--rate-burst`); all-off by default. See
    /// [`crate::admit`] for the decision model.
    pub admit: AdmitConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_cap: 64,
            exit_when_idle: true,
            trace_dir: None,
            journal_dir: None,
            fsync: FsyncPolicy::Tick,
            read_timeout: None,
            max_tenants: 1024,
            metrics_interval: None,
            metrics_sink: None,
            checkpoint_every: None,
            compact_on_idle: false,
            recovery_log: None,
            admit: AdmitConfig::default(),
        }
    }
}

/// What the server did, returned when it exits.
#[derive(Debug, Default)]
pub struct ServeReport {
    /// Final accounting of every tenant, in finalization order.
    pub accountings: Vec<Accounting>,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Requests answered with `busy`.
    pub busy_drops: u64,
    /// Sessions detached after a disconnect-without-`bye` (journaling on).
    pub detaches: u64,
    /// Successful `resume` reattachments (including recoveries).
    pub resumes: u64,
    /// Sessions rebuilt from an on-disk journal.
    pub recovered: u64,
    /// Trace-sink I/O errors surfaced when sessions finalized (a partial
    /// or lost `--trace-dir` file; the schedule itself is unaffected).
    pub trace_io_errors: u64,
    /// Requests rejected with `shed` (in-flight budget breach).
    pub sheds: u64,
    /// Requests rejected with `rate-limited` (token bucket empty).
    pub rate_limited: u64,
    /// Connections dropped after a shed — forced disconnects, distinct
    /// from voluntary `bye` closes.
    pub shed_disconnects: u64,
}

impl ServeReport {
    /// True when every tenant's schedule passed the feasibility checker.
    pub fn all_ok(&self) -> bool {
        self.accountings.iter().all(|a| a.checker_ok)
    }
}

/// A shared, mutex-guarded line sink for one connection's replies.
struct ReplySink {
    writer: Mutex<Option<Box<dyn Write + Send>>>,
}

impl ReplySink {
    fn new(writer: Box<dyn Write + Send>) -> ReplySink {
        ReplySink {
            writer: Mutex::new(Some(writer)),
        }
    }

    /// A sink that discards everything — used for synthetic cleanup
    /// requests after a disconnect.
    fn null() -> ReplySink {
        ReplySink {
            writer: Mutex::new(None),
        }
    }

    /// Writes one reply line. Write errors mean the peer is gone; the sink
    /// shuts itself off and the reader thread notices on its side.
    fn send(&self, reply: &Reply) {
        // The writer lock IS the reply serialization point — it must span
        // the whole line write so concurrent replies never interleave.
        // lint:allow(lock-discipline): deliberate hold across the write
        let mut guard = match self.writer.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(w) = guard.as_mut() {
            let line = reply.to_line();
            if w.write_all(line.as_bytes()).is_err() || w.flush().is_err() {
                *guard = None;
            }
        }
    }
}

struct Inbox {
    queue: VecDeque<(Request, Arc<ReplySink>)>,
    /// A worker currently owns this tenant (it stays un-scheduled until
    /// the inbox empties).
    running: bool,
    high_water: usize,
}

struct Tenant {
    name: String,
    /// Connection currently attached to the tenant; `None` while detached
    /// after a disconnect (journaling mode), awaiting `resume`.
    conn: Mutex<Option<u64>>,
    inbox: Mutex<Inbox>,
    /// This tenant's entry in the daemon-wide registry (retained there
    /// even after the session closes).
    metrics: Arc<TenantMetrics>,
    /// `None` once finalized.
    session: Mutex<Option<TenantSession>>,
}

impl Tenant {
    /// `conn: None` registers the tenant detached — the `adopt` path, where
    /// the installing connection is a router's control channel and the
    /// tenant's own client attaches later with `resume`.
    fn new(
        name: &str,
        conn: Option<u64>,
        session: TenantSession,
        metrics: Arc<TenantMetrics>,
    ) -> Tenant {
        Tenant {
            name: name.to_string(),
            conn: Mutex::new(conn),
            inbox: Mutex::new(Inbox {
                queue: VecDeque::new(),
                running: false,
                high_water: 0,
            }),
            metrics,
            session: Mutex::new(Some(session)),
        }
    }
}

struct Shared {
    config: ServerConfig,
    tenants: Mutex<HashMap<String, Arc<Tenant>>>,
    ready: Mutex<VecDeque<Arc<Tenant>>>,
    ready_cv: Condvar,
    /// Wakes the periodic snapshot thread early on shutdown, so a long
    /// `--metrics-interval-ms` never delays server exit.
    metrics_wake: (Mutex<()>, Condvar),
    shutdown: AtomicBool,
    /// Tombstones for tenants evicted to another shard. A request for a
    /// tombstoned name answers `tenant-moved` instead of `unknown-tenant`,
    /// and — critically — the `resume` journal-recovery fallback is
    /// disabled for it: resurrecting an evicted tenant from a shared
    /// `--journal-dir` would fork its history (split brain). Cleared when
    /// the name is adopted back or reopened with a fresh `hello`.
    moved: Mutex<HashSet<String>>,
    accountings: Mutex<Vec<Accounting>>,
    /// The daemon-wide metrics registry — the single home for every
    /// server-lifetime counter (connections, requests, decisions, drops,
    /// journal latency, …). `ping`, `metrics`, the periodic snapshot
    /// stream, and the final [`ServeReport`] all read from here.
    metrics: Arc<ServeMetrics>,
    /// Weighted admission control: token buckets and the in-flight
    /// budget, refilled by the deterministic request-count clock. A no-op
    /// fast path when [`AdmitConfig::enabled`] is false.
    admission: Admission,
}

impl Shared {
    fn new(config: ServerConfig) -> Shared {
        let admission = Admission::new(config.admit, Arc::new(RequestClock::new()));
        Shared {
            config,
            tenants: Mutex::new(HashMap::new()),
            ready: Mutex::new(VecDeque::new()),
            ready_cv: Condvar::new(),
            metrics_wake: (Mutex::new(()), Condvar::new()),
            shutdown: AtomicBool::new(false),
            moved: Mutex::new(HashSet::new()),
            accountings: Mutex::new(Vec::new()),
            metrics: Arc::new(ServeMetrics::new()),
            admission,
        }
    }

    /// Opens (or reopens) session-scoped metrics for `name` and attaches
    /// the registry handles to `session`.
    fn attach_metrics(&self, name: &str, session: &mut TenantSession) -> Arc<TenantMetrics> {
        let tenant = self.metrics.tenant(name);
        tenant.open.store(true, Ordering::Relaxed);
        session.set_metrics(SessionMetrics {
            global: Arc::clone(&self.metrics),
            tenant: Arc::clone(&tenant),
        });
        tenant
    }

    fn lock_tenants(&self) -> std::sync::MutexGuard<'_, HashMap<String, Arc<Tenant>>> {
        match self.tenants.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// True if `name` is tombstoned as migrated to another shard. The
    /// `moved` guard lives and dies inside this helper, so callers never
    /// hold it across replies or other locks.
    fn tenant_moved(&self, name: &str) -> bool {
        lock(&self.moved).contains(name)
    }

    /// Pushes `tenant` onto the ready list if no worker owns it.
    fn schedule(&self, tenant: &Arc<Tenant>) {
        let should_push = {
            let mut inbox = lock(&tenant.inbox);
            if inbox.running || inbox.queue.is_empty() {
                false
            } else {
                inbox.running = true;
                true
            }
        };
        if should_push {
            lock(&self.ready).push_back(Arc::clone(tenant));
            self.ready_cv.notify_one();
        }
    }

    /// Queues one request for `tenant`, applying admission control and
    /// backpressure. Returns `false` when the server decided to drop the
    /// connection (a shed in journaling mode, where the session detaches
    /// safely and the client reconnects with `resume`).
    fn enqueue(&self, tenant: &Arc<Tenant>, req: Request, sink: &Arc<ReplySink>) -> bool {
        // Admission gates only the work-bearing requests; control traffic
        // (resume/decisions/stats/bye) always passes so overloaded
        // tenants can still observe, drain, and leave.
        let gated = self.admission.config().enabled() && admission_gated(&req);
        if gated {
            match self.admission.admit(&tenant.name) {
                Verdict::Admit => self.metrics.record_admitted(&tenant.metrics),
                Verdict::RateLimited { retry_after_ms } => {
                    self.metrics.record_rate_limited(&tenant.metrics);
                    sink.send(&Reply::error_retry_after(
                        CODE_RATE_LIMITED,
                        "token bucket empty; retry after the hinted delay",
                        Some(&tenant.name),
                        retry_after_ms,
                        req.seq(),
                    ));
                    return true;
                }
                Verdict::Shed { retry_after_ms } => {
                    // Actually shedding load means dropping the
                    // connection, which is only safe when the session can
                    // detach and await `resume` (journaling on);
                    // otherwise the typed error alone is the signal.
                    let disconnect = self.config.journal_dir.is_some();
                    self.metrics.record_shed(&tenant.metrics, disconnect);
                    sink.send(&Reply::error_retry_after(
                        CODE_SHED,
                        "in-flight budget breached; reconnect after the hinted delay",
                        Some(&tenant.name),
                        retry_after_ms,
                        req.seq(),
                    ));
                    return !disconnect;
                }
            }
        }
        let cap = self.config.queue_cap.max(1);
        let accepted = {
            let mut inbox = lock(&tenant.inbox);
            if inbox.queue.len() >= cap {
                false
            } else {
                inbox.queue.push_back((req.clone(), Arc::clone(sink)));
                inbox.high_water = inbox.high_water.max(inbox.queue.len());
                tenant
                    .metrics
                    .set_queue_depth(u64::try_from(inbox.queue.len()).unwrap_or(u64::MAX));
                true
            }
        };
        if accepted {
            self.schedule(tenant);
        } else {
            // A busy drop strands the in-flight slot the admit took.
            if gated {
                self.admission.complete(&tenant.name);
            }
            tenant.metrics.busy_drops.fetch_add(1, Ordering::Relaxed);
            self.metrics.busy_drops.fetch_add(1, Ordering::Relaxed);
            sink.send(&Reply::error(
                "busy",
                format!("tenant queue full ({cap} requests)"),
                Some(&tenant.name),
                req.seq(),
            ));
        }
        true
    }

    /// Force-queues a synthetic cleanup request, ignoring the cap (cleanup
    /// must not be droppable).
    fn enqueue_cleanup(&self, tenant: &Arc<Tenant>, req: Request) {
        {
            let mut inbox = lock(&tenant.inbox);
            inbox.queue.push_back((req, Arc::new(ReplySink::null())));
        }
        self.schedule(tenant);
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The requests admission control gates: the work-bearing mutations. An
/// admitted one holds an in-flight slot until its worker finishes it.
fn admission_gated(req: &Request) -> bool {
    matches!(
        req,
        Request::Arrive { .. } | Request::Tick { .. } | Request::Drain { .. }
    )
}

/// Runs the protocol over one already-connected byte stream (the `--stdin`
/// transport and the unit tests use this directly). Returns when the input
/// reaches EOF; sessions opened on the stream are finalized (or, with
/// journaling on, left detached with their journals recoverable on disk).
pub fn serve_stream(
    input: impl Read,
    output: Box<dyn Write + Send>,
    config: ServerConfig,
) -> ServeReport {
    let shared = Arc::new(Shared::new(config));
    let workers = shared.config.workers.max(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let shared = Arc::clone(&shared);
            scope.spawn(move || worker_loop(&shared));
        }
        spawn_metrics_thread(&shared, scope);
        shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
        shared
            .metrics
            .active_connections
            .fetch_add(1, Ordering::Relaxed);
        run_connection(&shared, 0, input, output);
        shared
            .metrics
            .active_connections
            .fetch_sub(1, Ordering::Relaxed);
        drain_and_stop(&shared);
    });
    final_snapshot(&shared);
    report(&shared)
}

/// Serves TCP connections until idle (see the module docs for the shutdown
/// contract). The listener must already be bound; it is switched to
/// non-blocking so the accept loop can observe the idle condition.
pub fn serve(listener: TcpListener, config: ServerConfig) -> io::Result<ServeReport> {
    listener.set_nonblocking(true)?;
    let shared = Arc::new(Shared::new(config));
    let workers = shared.config.workers.max(1);
    std::thread::scope(|scope| -> io::Result<()> {
        for _ in 0..workers {
            let shared = Arc::clone(&shared);
            scope.spawn(move || worker_loop(&shared));
        }
        spawn_metrics_thread(&shared, scope);
        loop {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    let conn = shared.metrics.connections.fetch_add(1, Ordering::Relaxed) + 1;
                    shared
                        .metrics
                        .active_connections
                        .fetch_add(1, Ordering::Relaxed);
                    let shared = Arc::clone(&shared);
                    scope.spawn(move || {
                        stream.set_nodelay(true).ok();
                        if let Some(timeout) = shared.config.read_timeout {
                            stream.set_read_timeout(Some(timeout)).ok();
                        }
                        let write_half: Box<dyn Write + Send> = match stream.try_clone() {
                            Ok(s) => Box::new(BufWriter::new(s)),
                            Err(_) => Box::new(io::sink()),
                        };
                        run_connection(&shared, conn, stream, write_half);
                        shared
                            .metrics
                            .active_connections
                            .fetch_sub(1, Ordering::Relaxed);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    let idle = shared.config.exit_when_idle
                        && shared.metrics.connections.load(Ordering::Relaxed) > 0
                        && shared.metrics.active_connections.load(Ordering::Relaxed) == 0
                        && shared.lock_tenants().is_empty();
                    if idle {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
        drain_and_stop(&shared);
        Ok(())
    })?;
    final_snapshot(&shared);
    Ok(report(&shared))
}

/// Starts the periodic snapshot thread when both a cadence and a sink are
/// configured. The thread sleeps on a condvar that `drain_and_stop`
/// signals, so even a long interval never delays server exit.
fn spawn_metrics_thread<'scope>(
    shared: &Arc<Shared>,
    scope: &'scope std::thread::Scope<'scope, '_>,
) {
    let (Some(interval), Some(sink)) = (
        shared.config.metrics_interval,
        shared.config.metrics_sink.clone(),
    ) else {
        return;
    };
    let shared = Arc::clone(shared);
    scope.spawn(move || {
        // metrics_wake is the flusher's own condvar mutex; only this thread
        // holds it, and snapshots are written between timed waits by design.
        // lint:allow(lock-discipline): flusher-private condvar mutex
        let mut guard = lock(&shared.metrics_wake.0);
        while !shared.shutdown.load(Ordering::SeqCst) {
            let (g, timed_out) = match shared.metrics_wake.1.wait_timeout(guard, interval) {
                Ok((g, r)) => (g, r.timed_out()),
                Err(poisoned) => {
                    let (g, r) = poisoned.into_inner();
                    (g, r.timed_out())
                }
            };
            guard = g;
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            if timed_out {
                sink.write_snapshot(&shared.metrics.snapshot_json());
            }
        }
    });
}

/// Writes one authoritative snapshot after all workers have exited, so
/// stream consumers always end on totals that include every finalization.
fn final_snapshot(shared: &Shared) {
    if let Some(sink) = shared.config.metrics_sink.as_ref() {
        sink.write_snapshot(&shared.metrics.snapshot_json());
    }
}

/// Signals workers to finish queued work and exit, then wakes them (and
/// the snapshot thread, which may be mid-interval).
fn drain_and_stop(shared: &Shared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    shared.ready_cv.notify_all();
    // Hold the wake mutex across the notify: the snapshot thread checks
    // the flag only while holding it, so this cannot race into a
    // full-interval sleep after shutdown.
    let _guard = lock(&shared.metrics_wake.0);
    shared.metrics_wake.1.notify_all();
}

fn report(shared: &Shared) -> ServeReport {
    let m = &shared.metrics;
    ServeReport {
        accountings: std::mem::take(&mut lock(&shared.accountings)),
        connections: m.connections.load(Ordering::Relaxed),
        busy_drops: m.busy_drops.load(Ordering::Relaxed),
        detaches: m.detaches.load(Ordering::Relaxed),
        resumes: m.resumes.load(Ordering::Relaxed),
        recovered: m.recovered.load(Ordering::Relaxed),
        trace_io_errors: m.trace_io_errors.load(Ordering::Relaxed),
        sheds: m.sheds.load(Ordering::Relaxed),
        rate_limited: m.rate_limited.load(Ordering::Relaxed),
        shed_disconnects: m.shed_disconnects.load(Ordering::Relaxed),
    }
}

/// Reads request lines from one connection until EOF, routing them.
fn run_connection(shared: &Shared, conn: u64, input: impl Read, output: Box<dyn Write + Send>) {
    let sink = Arc::new(ReplySink::new(output));
    let mut reader = BufReader::new(input);
    let mut line = String::new();
    loop {
        line.clear();
        // A hand-rolled bounded read_line: a peer streaming an endless
        // line must not balloon the buffer.
        match read_bounded_line(&mut reader, &mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                sink.send(&Reply::error("line-too-long", e.to_string(), None, None));
                continue;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                ) =>
            {
                // The socket read timeout fired: tell the (possibly hung)
                // peer why it is being dropped, then disconnect.
                sink.send(&Reply::error(
                    "read-timeout",
                    "no complete request line within the read timeout; disconnecting",
                    None,
                    None,
                ));
                break;
            }
            Err(_) => break,
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let parsed = match Json::parse(trimmed) {
            Ok(v) => v,
            Err(e) => {
                sink.send(&Reply::error("bad-json", e.to_string(), None, None));
                continue;
            }
        };
        let request = match Request::from_json(&parsed) {
            Ok(r) => r,
            Err((code, message)) => {
                sink.send(&Reply::error(code, message, None, None));
                continue;
            }
        };
        shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
        // Advance the admission clock: one virtual millisecond per parsed
        // request line, so token refill tracks offered load.
        shared.admission.observe();
        if !route(shared, conn, request, &sink) {
            // The server shed this client; the typed reply is already out.
            break;
        }
    }
    cleanup_connection(shared, conn);
}

/// Reads one `\n`-terminated line, rejecting lines over [`MAX_LINE_BYTES`].
fn read_bounded_line(reader: &mut impl BufRead, line: &mut String) -> io::Result<usize> {
    let mut taken = reader.take(u64::try_from(MAX_LINE_BYTES).unwrap_or(u64::MAX));
    let n = taken.read_line(line)?;
    if n >= MAX_LINE_BYTES && !line.ends_with('\n') {
        // Discard the rest of the oversized line before reporting.
        let reader = taken.get_mut();
        loop {
            let buf = reader.fill_buf()?;
            if buf.is_empty() {
                break;
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    reader.consume(i + 1);
                    break;
                }
                None => {
                    let len = buf.len();
                    reader.consume(len);
                }
            }
        }
        line.clear();
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("request line exceeds {MAX_LINE_BYTES} bytes"),
        ));
    }
    Ok(n)
}

/// Routes one parsed request. Returns `false` when the connection should
/// be dropped (the server shed this client).
fn route(shared: &Shared, conn: u64, request: Request, sink: &Arc<ReplySink>) -> bool {
    // `ping` is answered inline by the reader, bypassing tenant queues —
    // the liveness probe must work even when every worker is busy.
    if let Request::Ping { seq } = &request {
        sink.send(&Reply::Pong {
            connections: shared.metrics.connections.load(Ordering::Relaxed),
            active_connections: shared.metrics.active_connections.load(Ordering::Relaxed),
            tenants: u64::try_from(shared.lock_tenants().len()).unwrap_or(u64::MAX),
            requests: shared.metrics.requests.load(Ordering::Relaxed),
            busy_drops: shared.metrics.busy_drops.load(Ordering::Relaxed),
            seq: *seq,
        });
        return true;
    }

    // `metrics` is likewise answered inline by the reader: a full-registry
    // snapshot is lock-light and must stay readable while workers grind.
    if let Request::Metrics { seq } = &request {
        sink.send(&Reply::Metrics {
            snapshot: shared.metrics.snapshot_json(),
            seq: *seq,
        });
        return true;
    }

    if let Request::Resume { tenant, seq } = &request {
        route_resume(shared, conn, tenant, *seq, request.clone(), sink);
        return true;
    }

    if let Request::Hello {
        tenant,
        machines,
        cal_len,
        cal_cost,
        algorithm,
        weight,
        seq,
    } = &request
    {
        let Some(algorithm) = Algorithm::from_name(algorithm) else {
            sink.send(&Reply::error(
                "unknown-algorithm",
                format!("no algorithm named `{algorithm}`"),
                Some(tenant),
                *seq,
            ));
            return true;
        };
        // Write-ahead registration — the tenant map entry must not become
        // visible before its journal and trace files exist, so file
        // creation happens under the map lock.
        // lint:allow(lock-discipline): registration is write-ahead
        let mut tenants = shared.lock_tenants();
        if let Some(existing) = tenants.get(tenant.as_str()) {
            // A resent/duplicated hello is benign when the seq chain proves
            // this exact request was already applied; anything else is a
            // genuine name collision.
            let already_applied = match (*seq, lock(&existing.session).as_ref()) {
                (Some(s), Some(session)) => session.last_seq().is_some_and(|last| s <= last),
                _ => false,
            };
            drop(tenants);
            if already_applied {
                sink.send(&Reply::Ok {
                    tenant: tenant.clone(),
                    seq: *seq,
                });
            } else {
                sink.send(&Reply::error(
                    "duplicate-tenant",
                    format!("tenant `{tenant}` already exists"),
                    Some(tenant),
                    *seq,
                ));
            }
            return true;
        }
        if tenants.len() >= shared.config.max_tenants {
            let cap = shared.config.max_tenants;
            drop(tenants);
            sink.send(&Reply::error(
                "tenant-limit",
                format!("server is at its tenant cap ({cap}); retry after sessions close"),
                Some(tenant),
                *seq,
            ));
            return true;
        }
        // Only a genuinely new tenant may touch its trace file — a duplicate
        // hello must not truncate the live tenant's trace.
        let trace = open_trace(shared, tenant);
        let config = TenantConfig {
            machines: *machines,
            cal_len: *cal_len,
            cal_cost: *cal_cost,
            algorithm,
        };
        let mut session = match TenantSession::new(tenant, config, trace) {
            Ok(s) => s,
            Err(SessionError { code, message }) => {
                drop(tenants);
                sink.send(&Reply::error(code, message, Some(tenant), *seq));
                return true;
            }
        };
        if let Some(s) = *seq {
            session.note_seq(s);
        }
        // Write-ahead: the hello record must be durable before the tenant
        // is registered and acked. The registry lock is held across this
        // file create — hellos are rare and racing hellos for one name
        // must not truncate each other's journal.
        if let Some(dir) = shared.config.journal_dir.as_ref() {
            let started = JournalWriter::create(dir, tenant, shared.config.fsync)
                .and_then(|w| session.start_journal(w));
            if let Err(e) = started {
                drop(tenants);
                sink.send(&Reply::error(
                    "journal-io",
                    format!("cannot open journal: {e}"),
                    Some(tenant),
                    *seq,
                ));
                return true;
            }
            session.set_checkpoint_policy(
                shared.config.checkpoint_every,
                shared.config.compact_on_idle,
            );
        }
        let t_metrics = shared.attach_metrics(tenant, &mut session);
        tenants.insert(
            tenant.clone(),
            Arc::new(Tenant::new(tenant, Some(conn), session, t_metrics)),
        );
        drop(tenants);
        // A fresh hello is an explicitly new session for this name; any
        // stale migration tombstone is superseded.
        lock(&shared.moved).remove(tenant.as_str());
        // The tenant's fair-share weight lives only in the admission layer:
        // it shapes token refill and the shed order, never scheduling state,
        // so checkpoints and migrations stay byte-identical.
        shared.admission.register(tenant, *weight);
        sink.send(&Reply::Ok {
            tenant: tenant.clone(),
            seq: *seq,
        });
        return true;
    }

    // `adopt` is handled inline like `hello`: it only touches the registry
    // and must not race other registrations for the same name.
    let request = match request {
        Request::Adopt { state, seq, .. } => {
            route_adopt(shared, *state, seq, sink);
            return true;
        }
        other => other,
    };

    let tenant = {
        let tenants = shared.lock_tenants();
        tenants.get(request.tenant()).cloned()
    };
    match tenant {
        Some(t) => shared.enqueue(&t, request, sink),
        None => {
            let reply = if shared.tenant_moved(request.tenant()) {
                Reply::error(
                    CODE_TENANT_MOVED,
                    format!(
                        "tenant `{}` was migrated to another shard",
                        request.tenant()
                    ),
                    Some(request.tenant()),
                    request.seq(),
                )
            } else {
                Reply::error(
                    "unknown-tenant",
                    format!("no tenant named `{}`", request.tenant()),
                    Some(request.tenant()),
                    request.seq(),
                )
            };
            sink.send(&reply);
            true
        }
    }
}

/// Handles `adopt`: installs a migrated tenant from the checkpoint another
/// shard's `evict` handed back. Registration mirrors `hello` — write-ahead
/// under the map lock — with two differences: the session is restored from
/// the checkpoint instead of created fresh, and the tenant starts
/// *detached* (`conn = None`) so the tenant's own client, not the router's
/// control connection, attaches to it with `resume`.
fn route_adopt(shared: &Shared, state: CheckpointState, seq: Option<u64>, sink: &Arc<ReplySink>) {
    let name = state.tenant.clone();
    let tenant = name.as_str();
    // Write-ahead registration, same contract as `hello`: the map entry
    // must not become visible before the re-seeded journal exists.
    // lint:allow(lock-discipline): registration is write-ahead
    let mut tenants = shared.lock_tenants();
    if let Some(existing) = tenants.get(tenant) {
        // A re-delivered adopt (router retry, or an A→B→A double hop
        // landing where the tenant already lives) is benign when the live
        // session is at or past the checkpoint's cut.
        let (already_applied, last_seq) = match lock(&existing.session).as_ref() {
            Some(session) => (session.last_seq() >= state.last_seq, session.last_seq()),
            None => (false, None),
        };
        drop(tenants);
        if already_applied {
            sink.send(&Reply::Adopted {
                tenant: name,
                last_seq,
                seq,
            });
        } else {
            sink.send(&Reply::error(
                "duplicate-tenant",
                format!("tenant `{tenant}` already exists and is behind the checkpoint"),
                Some(tenant),
                seq,
            ));
        }
        return;
    }
    if tenants.len() >= shared.config.max_tenants {
        let cap = shared.config.max_tenants;
        drop(tenants);
        sink.send(&Reply::error(
            "tenant-limit",
            format!("server is at its tenant cap ({cap}); retry after sessions close"),
            Some(tenant),
            seq,
        ));
        return;
    }
    let mut session = match TenantSession::restore_from_checkpoint(&state) {
        Ok(s) => s,
        Err(SessionError { code, message }) => {
            drop(tenants);
            sink.send(&Reply::error(code, message, Some(tenant), seq));
            return;
        }
    };
    let last_seq = session.last_seq();
    // Re-seed the journal as `[checkpoint]` — exactly the shape compaction
    // writes — so a crash on this shard recovers from the handoff cut. The
    // create truncates any stale journal the name left behind under a
    // shared `--journal-dir` (the source shard closed its handle at evict;
    // the checkpoint being installed supersedes that file's tail).
    if let Some(dir) = shared.config.journal_dir.as_ref() {
        let record = JournalRecord::Checkpoint(Box::new(state));
        let created = JournalWriter::create(dir, tenant, shared.config.fsync).and_then(|mut w| {
            w.append(&record)?;
            Ok(w)
        });
        match created {
            Ok(w) => session.resume_journal(w),
            Err(e) => {
                drop(tenants);
                sink.send(&Reply::error(
                    "journal-io",
                    format!("cannot re-seed journal: {e}"),
                    Some(tenant),
                    seq,
                ));
                return;
            }
        }
        session.set_checkpoint_policy(
            shared.config.checkpoint_every,
            shared.config.compact_on_idle,
        );
    }
    let t_metrics = shared.attach_metrics(tenant, &mut session);
    tenants.insert(
        name.clone(),
        Arc::new(Tenant::new(tenant, None, session, t_metrics)),
    );
    drop(tenants);
    lock(&shared.moved).remove(tenant);
    shared.metrics.adoptions.fetch_add(1, Ordering::Relaxed);
    sink.send(&Reply::Adopted {
        tenant: name,
        last_seq,
        seq,
    });
}

/// Handles `resume`: reattach a live (possibly detached) tenant to this
/// connection, or fall back to journal recovery for a tenant a crash (or
/// idle-exit) removed from memory. The `resumed` reply itself is produced
/// by a worker so it serializes after any still-queued requests.
fn route_resume(
    shared: &Shared,
    conn: u64,
    tenant: &str,
    seq: Option<u64>,
    request: Request,
    sink: &Arc<ReplySink>,
) {
    let existing = {
        let tenants = shared.lock_tenants();
        tenants.get(tenant).cloned()
    };
    if let Some(t) = existing {
        let attached = {
            let mut owner = lock(&t.conn);
            match *owner {
                Some(c) if c != conn => false,
                _ => {
                    *owner = Some(conn);
                    true
                }
            }
        };
        if !attached {
            // Transient: the previous connection's reader has not finished
            // cleanup yet. The client backs off and retries.
            sink.send(&Reply::error(
                "tenant-attached",
                format!("tenant `{tenant}` is still attached to another connection"),
                Some(tenant),
                seq,
            ));
            return;
        }
        shared.metrics.resumes.fetch_add(1, Ordering::Relaxed);
        t.metrics.reconnects.fetch_add(1, Ordering::Relaxed);
        shared.enqueue(&t, request, sink);
        return;
    }

    // An evicted tenant must not be resurrected from a shared
    // `--journal-dir` — the adopting shard owns it now, and replaying the
    // superseded journal here would fork its history (split brain). The
    // client reconnects and the router routes its resume to the new owner.
    if shared.tenant_moved(tenant) {
        sink.send(&Reply::error(
            CODE_TENANT_MOVED,
            format!("tenant `{tenant}` was migrated to another shard"),
            Some(tenant),
            seq,
        ));
        return;
    }

    // Not in memory: recover from the journal, if journaling is on.
    let Some(dir) = shared.config.journal_dir.clone() else {
        sink.send(&Reply::error(
            "unknown-tenant",
            format!("no tenant named `{tenant}` and journaling is off"),
            Some(tenant),
            seq,
        ));
        return;
    };
    match journal::recover_with_report(&dir, tenant, shared.config.fsync) {
        Ok(Some((session, report))) => {
            let mut tenants = shared.lock_tenants();
            if tenants.contains_key(tenant) {
                // Lost a race with a concurrent resume; retryable.
                drop(tenants);
                sink.send(&Reply::error(
                    "tenant-attached",
                    format!("tenant `{tenant}` was concurrently resumed"),
                    Some(tenant),
                    seq,
                ));
                return;
            }
            if tenants.len() >= shared.config.max_tenants {
                let cap = shared.config.max_tenants;
                drop(tenants);
                sink.send(&Reply::error(
                    "tenant-limit",
                    format!("server is at its tenant cap ({cap}); retry after sessions close"),
                    Some(tenant),
                    seq,
                ));
                return;
            }
            let mut session = session;
            session.set_checkpoint_policy(
                shared.config.checkpoint_every,
                shared.config.compact_on_idle,
            );
            let t_metrics = shared.attach_metrics(tenant, &mut session);
            let t = Arc::new(Tenant::new(tenant, Some(conn), session, t_metrics));
            tenants.insert(tenant.to_string(), Arc::clone(&t));
            drop(tenants);
            if let Some(log) = shared.config.recovery_log.as_ref() {
                log.write_snapshot(&Json::obj([
                    ("type", Json::Str("recovered".to_string())),
                    ("tenant", Json::Str(tenant.to_string())),
                    (
                        "records",
                        Json::UInt(report.records.try_into().unwrap_or(0)),
                    ),
                    (
                        "tail_replayed",
                        Json::UInt(report.tail_replayed.try_into().unwrap_or(0)),
                    ),
                    ("from_checkpoint", Json::Bool(report.from_checkpoint)),
                ]));
            }
            shared.metrics.recovered.fetch_add(1, Ordering::Relaxed);
            shared.metrics.resumes.fetch_add(1, Ordering::Relaxed);
            t.metrics.reconnects.fetch_add(1, Ordering::Relaxed);
            shared.enqueue(&t, request, sink);
        }
        Ok(None) => sink.send(&Reply::error(
            "unknown-tenant",
            format!("no tenant named `{tenant}` in memory or on disk"),
            Some(tenant),
            seq,
        )),
        Err(e) => sink.send(&Reply::error(
            "journal-io",
            format!("journal recovery failed: {e}"),
            Some(tenant),
            seq,
        )),
    }
}

fn open_trace(shared: &Shared, tenant: &str) -> Option<BufWriter<std::fs::File>> {
    let dir = shared.config.trace_dir.as_ref()?;
    // Tenant names go into a path; keep only a conservative charset.
    let safe: String = tenant
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    std::fs::create_dir_all(dir).ok()?;
    let file = std::fs::File::create(dir.join(format!("{safe}.jsonl"))).ok()?;
    Some(BufWriter::new(file))
}

/// Handles every tenant attached to the closing connection. Without
/// journaling, each is finalized as if it had sent `bye` — a disconnect
/// must not leak sessions or skip validation. With journaling, the
/// disconnect may be transient, so the tenant is detached instead and
/// waits (in memory, journal on disk) for a `resume`.
fn cleanup_connection(shared: &Shared, conn: u64) {
    let owned: Vec<Arc<Tenant>> = {
        let tenants = shared.lock_tenants();
        tenants
            .values()
            .filter(|t| *lock(&t.conn) == Some(conn))
            .cloned()
            .collect()
    };
    for tenant in owned {
        if shared.config.journal_dir.is_some() {
            *lock(&tenant.conn) = None;
            shared.metrics.detaches.fetch_add(1, Ordering::Relaxed);
        } else {
            let name = tenant.name.clone();
            shared.enqueue_cleanup(
                &tenant,
                Request::Bye {
                    tenant: name,
                    seq: None,
                },
            );
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let tenant = {
            let mut ready = lock(&shared.ready);
            loop {
                if let Some(t) = ready.pop_front() {
                    break Some(t);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                ready = match shared.ready_cv.wait(ready) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        let Some(tenant) = tenant else { return };
        loop {
            let next = {
                let mut inbox = lock(&tenant.inbox);
                match inbox.queue.pop_front() {
                    Some(env) => {
                        tenant
                            .metrics
                            .set_queue_depth(u64::try_from(inbox.queue.len()).unwrap_or(u64::MAX));
                        Some(env)
                    }
                    None => {
                        inbox.running = false;
                        None
                    }
                }
            };
            let Some((request, sink)) = next else { break };
            // An admitted work-bearing request holds its in-flight slot
            // until the worker finishes it, whatever the outcome.
            let gated = admission_gated(&request);
            process(shared, &tenant, request, &sink);
            if gated {
                shared.admission.complete(&tenant.name);
            }
        }
    }
}

/// What the seq-chain check decided for one queued request.
enum SeqCheck {
    /// In order (or unsequenced): process normally.
    Proceed,
    /// At or below the high-water mark: already applied, answer benignly
    /// without re-executing mutations.
    Duplicate,
    /// Skips ahead: at least one earlier request was lost in transit.
    Gap {
        /// The lost-ahead request's seq.
        got: u64,
        /// The session's current high-water mark.
        last: u64,
    },
}

fn check_seq(request: &Request, session: &TenantSession) -> SeqCheck {
    // `resume` is the resynchronization point itself and sits outside the
    // chain; so do unsequenced requests (tests, hand-driven sessions) and
    // router-issued `evict`s (the router is not the tenant's client).
    if matches!(request, Request::Resume { .. } | Request::Evict { .. }) {
        return SeqCheck::Proceed;
    }
    match (request.seq(), session.last_seq()) {
        (Some(got), Some(last)) if got <= last => SeqCheck::Duplicate,
        (Some(got), Some(last)) if last.checked_add(1).is_none_or(|next| got > next) => {
            SeqCheck::Gap { got, last }
        }
        _ => SeqCheck::Proceed,
    }
}

/// The benign answer to an already-applied request: acknowledge without
/// re-executing mutations (re-running a tick/drain would consume decision
/// deltas the original reply already delivered). A duplicated `drain`
/// re-serves the full accounting — it is the reply a crash most plausibly
/// lost, and the client needs it.
fn duplicate_reply(request: &Request, session: &TenantSession, name: &str) -> Reply {
    let seq = request.seq();
    match request {
        Request::Tick { .. } | Request::Decisions { .. } => Reply::Decisions {
            tenant: name.to_string(),
            now: session.now(),
            calibrations: Vec::new(),
            starts: Vec::new(),
            idle: session.is_idle(),
            seq,
        },
        Request::Drain { .. } => Reply::Drained {
            accounting: session.accounting(),
            calibrations: Vec::new(),
            starts: Vec::new(),
            seq,
        },
        _ => Reply::Ok {
            tenant: name.to_string(),
            seq,
        },
    }
}

/// Handles one queued request against the tenant's session, timing it into
/// the daemon-wide request histogram.
fn process(shared: &Shared, tenant: &Arc<Tenant>, request: Request, sink: &Arc<ReplySink>) {
    let started = Instant::now();
    tenant.metrics.requests.fetch_add(1, Ordering::Relaxed);
    process_inner(shared, tenant, request, sink);
    let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    shared.metrics.request_micros.record(micros);
}

fn process_inner(shared: &Shared, tenant: &Arc<Tenant>, request: Request, sink: &Arc<ReplySink>) {
    let seq = request.seq();
    // Write-ahead logging — the journal append must land before the
    // in-memory session state mutates, and both must be atomic with
    // respect to other requests on this tenant.
    // lint:allow(lock-discipline): session mutation is write-ahead
    let mut session_slot = lock(&tenant.session);
    let Some(session) = session_slot.as_mut() else {
        // Closed while this request sat in the queue (bye, disconnect
        // cleanup, or an evict ahead of it in the inbox won the race). A
        // migrated-away tenant answers with its redirect code so the
        // client reconnects and resumes against the new owner.
        drop(session_slot);
        if shared.tenant_moved(&tenant.name) {
            sink.send(&Reply::error(
                CODE_TENANT_MOVED,
                format!("tenant `{}` was migrated to another shard", tenant.name),
                Some(&tenant.name),
                seq,
            ));
        } else {
            sink.send(&Reply::error(
                "unknown-tenant",
                format!("tenant `{}` is closed", tenant.name),
                Some(&tenant.name),
                seq,
            ));
        }
        return;
    };
    let name = tenant.name.clone();
    match check_seq(&request, session) {
        SeqCheck::Proceed => {}
        // `stats` is a pure read; serving it fresh is harmless and more
        // useful than a synthesized echo.
        SeqCheck::Duplicate if !matches!(request, Request::Stats { .. }) => {
            let reply = duplicate_reply(&request, session, &name);
            drop(session_slot);
            sink.send(&reply);
            return;
        }
        SeqCheck::Duplicate => {}
        SeqCheck::Gap { got, last } => {
            drop(session_slot);
            sink.send(&Reply::error(
                "seq-gap",
                format!(
                    "request seq {got} skips ahead of the session's last seq {last}; \
                     a request line was lost — resend from seq {}",
                    last.saturating_add(1)
                ),
                Some(&tenant.name),
                seq,
            ));
            return;
        }
    }
    let is_resume = matches!(request, Request::Resume { .. });
    let mutating = matches!(
        request,
        Request::Arrive { .. } | Request::Tick { .. } | Request::Drain { .. }
    );
    let reply = match request {
        Request::Hello { .. } => Reply::error(
            "duplicate-tenant",
            "hello on an open session",
            Some(&name),
            seq,
        ),
        Request::Ping { .. } => {
            // Unreachable: pings are answered inline by the reader.
            Reply::error("bad-message", "ping is never queued", None, seq)
        }
        Request::Metrics { .. } => {
            // Unreachable: metrics requests are answered inline by the reader.
            Reply::error("bad-message", "metrics is never queued", None, seq)
        }
        Request::Adopt { .. } => {
            // Unreachable: adopt is handled inline like hello.
            Reply::error("bad-message", "adopt is never queued", None, seq)
        }
        Request::Resume { .. } => Reply::Resumed {
            tenant: name,
            last_seq: session.last_seq(),
            now: session.now(),
            idle: session.is_idle(),
            seq,
        },
        Request::Arrive { jobs, .. } => match session.arrive(&jobs, seq) {
            Ok(()) => Reply::Ok { tenant: name, seq },
            Err(e) => Reply::error(e.code, e.message, Some(&tenant.name), seq),
        },
        Request::Tick { now, .. } => match session.tick(now, seq) {
            Ok(delta) => {
                let n = delta.calibrations.len().saturating_add(delta.starts.len());
                shared
                    .metrics
                    .record_decisions(&tenant.metrics, u64::try_from(n).unwrap_or(u64::MAX));
                Reply::Decisions {
                    tenant: name,
                    now: Some(now),
                    calibrations: delta.calibrations,
                    starts: delta.starts,
                    idle: session.is_idle(),
                    seq,
                }
            }
            Err(e) => Reply::error(e.code, e.message, Some(&tenant.name), seq),
        },
        Request::Decisions { .. } => {
            let delta = session.decisions();
            let n = delta.calibrations.len().saturating_add(delta.starts.len());
            shared
                .metrics
                .record_decisions(&tenant.metrics, u64::try_from(n).unwrap_or(u64::MAX));
            Reply::Decisions {
                tenant: name,
                now: session.now(),
                calibrations: delta.calibrations,
                starts: delta.starts,
                idle: session.is_idle(),
                seq,
            }
        }
        Request::Stats { .. } => {
            let (queue_depth, queue_high_water) = {
                let inbox = lock(&tenant.inbox);
                (inbox.queue.len(), inbox.high_water)
            };
            Reply::Stats {
                tenant: name,
                counters: session.counters().snapshot(),
                queue_depth,
                queue_high_water,
                busy_drops: tenant.metrics.busy_drops.load(Ordering::Relaxed),
                seq,
            }
        }
        Request::Drain { .. } => match session.drain(seq) {
            Ok(delta) => {
                let n = delta.calibrations.len().saturating_add(delta.starts.len());
                shared
                    .metrics
                    .record_decisions(&tenant.metrics, u64::try_from(n).unwrap_or(u64::MAX));
                let accounting = session.accounting();
                tenant.metrics.set_totals(accounting.flow, accounting.cost);
                Reply::Drained {
                    accounting,
                    calibrations: delta.calibrations,
                    starts: delta.starts,
                    seq,
                }
            }
            Err(e) => Reply::error(e.code, e.message, Some(&tenant.name), seq),
        },
        Request::Evict { .. } => {
            let session = session_slot.take();
            let Some(mut s) = session else { return };
            // The inbox is FIFO and the worker owns the tenant, so every
            // request queued before the evict has been applied: this
            // checkpoint is the exact cut the destination must adopt.
            let state = s.checkpoint_state();
            // Detach (not delete) the journal: under a shared
            // `--journal-dir` its tail is the recovery fallback if the
            // destination never installs the checkpoint.
            s.detach_journal();
            drop(s);
            drop(session_slot);
            // Tombstone first, then unregister — there must be no window
            // in which the name is neither live nor tombstoned, or a
            // racing `resume` could resurrect it from the shared journal.
            lock(&shared.moved).insert(tenant.name.clone());
            shared.lock_tenants().remove(&tenant.name);
            shared.admission.deregister(&tenant.name);
            tenant.metrics.open.store(false, Ordering::Relaxed);
            shared.metrics.evictions.fetch_add(1, Ordering::Relaxed);
            sink.send(&Reply::Evicted {
                state: Box::new(state),
                seq,
            });
            return;
        }
        Request::Bye { .. } => {
            let session = session_slot.take();
            drop(session_slot);
            shared.lock_tenants().remove(&tenant.name);
            shared.admission.deregister(&tenant.name);
            let accounting = match session {
                Some(s) => {
                    let (accounting, trace_io) = s.finalize();
                    if trace_io.is_err() {
                        shared
                            .metrics
                            .trace_io_errors
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    accounting
                }
                None => return,
            };
            tenant.metrics.set_totals(accounting.flow, accounting.cost);
            tenant.metrics.open.store(false, Ordering::Relaxed);
            lock(&shared.accountings).push(accounting.clone());
            sink.send(&Reply::Goodbye { accounting, seq });
            return;
        }
    };
    // Advance the seq chain for every definitively-answered request —
    // including typed rejections, which re-reject deterministically if the
    // client ever resends them. `resume` stays outside the chain.
    if !is_resume {
        if let (Some(s), Some(session)) = (seq, session_slot.as_mut()) {
            session.note_seq(s);
        }
    }
    // Checkpoint opportunity: after a mutating request is applied and its
    // seq noted, the session is at a journal-consistent point. Policy
    // decides whether anything is actually written.
    if mutating {
        if let Some(session) = session_slot.as_mut() {
            session.maybe_checkpoint();
        }
    }
    drop(session_slot);
    sink.send(&reply);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives `serve_stream` with a scripted input and captures the output.
    fn transcript(lines: &[&str]) -> Vec<Json> {
        let input = lines.join("\n") + "\n";
        let out = Arc::new(Mutex::new(Vec::<u8>::new()));
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                lock(&self.0).extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let report = serve_stream(
            input.as_bytes(),
            Box::new(SharedBuf(Arc::clone(&out))),
            ServerConfig {
                workers: 2,
                ..Default::default()
            },
        );
        assert!(report.all_ok(), "accountings: {:?}", report.accountings);
        let bytes = lock(&out).clone();
        String::from_utf8(bytes)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .collect()
    }

    #[test]
    fn hello_arrive_tick_bye_happy_path() {
        let replies = transcript(&[
            r#"{"type":"hello","tenant":"a","machines":1,"cal_len":4,"cal_cost":6,"algorithm":"alg1","seq":0}"#,
            r#"{"type":"arrive","tenant":"a","jobs":[{"id":0,"release":0,"weight":1}],"seq":1}"#,
            r#"{"type":"tick","tenant":"a","now":50,"seq":2}"#,
            r#"{"type":"bye","tenant":"a","seq":3}"#,
        ]);
        let types: Vec<&str> = replies
            .iter()
            .map(|r| r.get("type").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(types, vec!["ok", "ok", "decisions", "goodbye"]);
        // Replies echo seq in order.
        for (i, r) in replies.iter().enumerate() {
            assert_eq!(
                r.get("seq").unwrap().as_u64(),
                Some(u64::try_from(i).unwrap())
            );
        }
        let goodbye = &replies[3];
        assert_eq!(goodbye.get("checker_ok").unwrap(), &Json::Bool(true));
        assert_eq!(goodbye.get("jobs").unwrap().as_u64(), Some(1));
        assert_eq!(goodbye.get("scheduled").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn protocol_faults_do_not_poison_other_tenants() {
        let replies = transcript(&[
            r#"{"type":"hello","tenant":"good","machines":1,"cal_len":3,"cal_cost":2,"algorithm":"alg1"}"#,
            r#"{"type":"hello","tenant":"bad","machines":1,"cal_len":3,"cal_cost":2,"algorithm":"alg1"}"#,
            r#"this is not json"#,
            r#"{"type":"hello","tenant":"bad","machines":1,"cal_len":3,"cal_cost":2,"algorithm":"alg1"}"#,
            r#"{"type":"hello","tenant":"ugly","machines":1,"cal_len":3,"cal_cost":2,"algorithm":"alg7"}"#,
            r#"{"type":"tick","tenant":"ghost","now":3}"#,
            r#"{"type":"arrive","tenant":"bad","jobs":[{"id":0,"release":1,"weight":1},{"id":0,"release":2,"weight":1}]}"#,
            r#"{"type":"arrive","tenant":"good","jobs":[{"id":0,"release":1,"weight":1}]}"#,
            r#"{"type":"bye","tenant":"bad"}"#,
            r#"{"type":"bye","tenant":"good"}"#,
        ]);
        // Two workers may interleave replies across tenants, so assert by
        // content, not position.
        let count = |key: &str, value: &str| {
            replies
                .iter()
                .filter(|r| r.get(key).and_then(Json::as_str) == Some(value))
                .count()
        };
        assert_eq!(count("type", "ok"), 3, "2 hellos + 1 good arrive");
        for code in [
            "bad-json",
            "duplicate-tenant",
            "unknown-algorithm",
            "unknown-tenant",
            "duplicate-job",
        ] {
            assert_eq!(count("code", code), 1, "expected one `{code}`: {replies:?}");
        }
        // Both surviving tenants close cleanly and validate.
        let goodbyes: Vec<&Json> = replies
            .iter()
            .filter(|r| r.get("type").and_then(Json::as_str) == Some("goodbye"))
            .collect();
        assert_eq!(goodbyes.len(), 2);
        for g in goodbyes {
            assert_eq!(g.get("checker_ok").unwrap(), &Json::Bool(true));
        }
    }

    #[test]
    fn disconnect_without_bye_finalizes_sessions() {
        // No bye: EOF after arrive. The report must still carry a checked
        // accounting for the tenant.
        let input = [
            r#"{"type":"hello","tenant":"drop","machines":1,"cal_len":3,"cal_cost":1,"algorithm":"alg1"}"#,
            r#"{"type":"arrive","tenant":"drop","jobs":[{"id":0,"release":0,"weight":1},{"id":1,"release":1,"weight":1}]}"#,
        ]
        .join("\n")
            + "\n";
        let report = serve_stream(
            input.as_bytes(),
            Box::new(io::sink()),
            ServerConfig::default(),
        );
        assert_eq!(report.accountings.len(), 1);
        let acc = &report.accountings[0];
        assert_eq!(acc.tenant, "drop");
        assert_eq!(acc.scheduled, 2);
        assert!(acc.checker_ok, "violations: {:?}", acc.violations);
    }

    #[test]
    fn oversized_lines_are_rejected_not_buffered() {
        let huge = format!(
            r#"{{"type":"hello","tenant":"{}","machines":1,"cal_len":3,"cal_cost":1,"algorithm":"alg1"}}"#,
            "x".repeat(MAX_LINE_BYTES)
        );
        let input = format!(
            "{huge}\n{}\n{}\n",
            r#"{"type":"hello","tenant":"a","machines":1,"cal_len":3,"cal_cost":1,"algorithm":"alg1"}"#,
            r#"{"type":"bye","tenant":"a"}"#
        );
        let out = Arc::new(Mutex::new(Vec::<u8>::new()));
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                lock(&self.0).extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        serve_stream(
            input.as_bytes(),
            Box::new(SharedBuf(Arc::clone(&out))),
            ServerConfig::default(),
        );
        let bytes = lock(&out).clone();
        let text = String::from_utf8(bytes).unwrap();
        let replies: Vec<Json> = text.lines().map(|l| Json::parse(l).unwrap()).collect();
        assert_eq!(
            replies[0].get("code").and_then(Json::as_str),
            Some("line-too-long")
        );
        // The stream recovers: the next request succeeds.
        assert_eq!(replies[1].get("type").and_then(Json::as_str), Some("ok"));
        assert_eq!(
            replies[2].get("type").and_then(Json::as_str),
            Some("goodbye")
        );
    }
}
