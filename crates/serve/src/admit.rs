//! Weighted admission control and load shedding.
//!
//! Under overload the daemon must degrade *proportionally to tenant
//! weight* — weight is the paper's fairness currency (total **weighted**
//! flow time), so it governs admission under contention exactly as it
//! governs scheduling. Two independent mechanisms compose here:
//!
//! * **Weighted token buckets** (`--rate-per-k`): each tenant owns an
//!   integer bucket refilled in proportion to its weight. A request that
//!   finds the bucket empty is answered `rate-limited` with a
//!   deterministic `retry_after_ms`, and the connection stays open.
//! * **A global in-flight budget** (`--max-inflight`): when the total
//!   number of admitted-but-unprocessed requests reaches the budget,
//!   tenants at or over their weight-proportional share are *shed* — a
//!   typed `shed` error carrying `retry_after_ms`, after which the server
//!   drops the connection (journaling mode only, where sessions detach
//!   safely and `resume` reattaches). Tenants still under their share are
//!   admitted through a breach, so shedding removes lowest-weight traffic
//!   first with overshoot bounded by the tenant count.
//!
//! All arithmetic is integer-exact — token balances are tracked in
//! *millitokens* so weighted refill never rounds — and the refill clock
//! is **virtual**: the injectable [`AdmitClock`] decides what a
//! millisecond is. The daemon uses [`RequestClock`], which advances one
//! virtual millisecond per parsed request line, making every admission
//! decision a pure function of the request stream (no wall clock in the
//! decision path, so seeded overload runs assert exact integer counts).
//! Tests use [`ManualClock`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The virtual time source for token-bucket refill, injected so the
/// decision path never reads a wall clock.
pub trait AdmitClock: Send + Sync {
    /// Current virtual time in milliseconds.
    fn now_ms(&self) -> u64;
    /// Hook called once per observed request line; clocks that derive
    /// time from load advance here.
    fn observe(&self) {}
}

/// The daemon's default clock: one virtual millisecond per observed
/// request line. Refill is then proportional to *offered load*, which is
/// exactly what weighted fairness under overload needs — at any offered
/// rate, admitted throughput converges to weight proportions.
#[derive(Debug, Default)]
pub struct RequestClock {
    ticks: AtomicU64,
}

impl RequestClock {
    /// A clock starting at virtual time zero.
    pub fn new() -> RequestClock {
        RequestClock::default()
    }
}

impl AdmitClock for RequestClock {
    fn now_ms(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    fn observe(&self) {
        self.ticks.fetch_add(1, Ordering::Relaxed);
    }
}

/// A hand-driven clock for deterministic unit tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A clock pinned at virtual time zero until advanced.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Advances virtual time by `ms` milliseconds.
    pub fn advance_ms(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::Relaxed);
    }
}

impl AdmitClock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

/// Admission-control knobs. Both mechanisms default to off; an
/// [`Admission`] built from an all-off config admits everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmitConfig {
    /// Global budget on admitted-but-unprocessed requests; breaching it
    /// sheds tenants at or over their weight-proportional share.
    /// `None` disables the budget.
    pub max_inflight: Option<u64>,
    /// Base token-bucket refill: tokens granted per 1000 virtual
    /// milliseconds *per weight unit*. `None` disables rate limiting.
    pub rate_per_k: Option<u64>,
    /// Base bucket capacity in tokens, scaled by tenant weight.
    pub burst: u64,
}

impl Default for AdmitConfig {
    fn default() -> Self {
        AdmitConfig {
            max_inflight: None,
            rate_per_k: None,
            burst: 8,
        }
    }
}

impl AdmitConfig {
    /// True when at least one mechanism is configured.
    pub fn enabled(&self) -> bool {
        self.max_inflight.is_some() || self.rate_per_k.is_some()
    }
}

/// One admission decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Process the request; an in-flight slot is held until
    /// [`Admission::complete`].
    Admit,
    /// Token bucket empty: reject softly, connection stays open.
    RateLimited {
        /// Virtual milliseconds until one full token has refilled.
        retry_after_ms: u64,
    },
    /// In-flight budget breached and this tenant is at or over its
    /// weighted share: reject and (in journaling mode) drop the client.
    Shed {
        /// Deterministic come-back hint derived from queue pressure.
        retry_after_ms: u64,
    },
}

/// A token costs this many millitokens; refill per virtual millisecond is
/// `rate_per_k * weight` millitokens, so `rate_per_k` tokens arrive per
/// 1000 virtual milliseconds per weight unit — all integer-exact.
const MILLI: u64 = 1000;

#[derive(Debug)]
struct TenantAdmit {
    weight: u64,
    /// Token balance in millitokens, capped at `burst * weight * MILLI`.
    millitokens: u64,
    /// Virtual time of the last refill.
    refilled_at_ms: u64,
    /// Admitted requests not yet completed by a worker.
    inflight: u64,
}

#[derive(Debug, Default)]
struct AdmitState {
    tenants: HashMap<String, TenantAdmit>,
    total_inflight: u64,
    total_weight: u64,
}

/// The admission controller: weighted token buckets plus the global
/// in-flight budget, behind one leaf mutex (`admit.state` in the
/// DESIGN.md lock order — acquired and released standalone, never held
/// across another lock or I/O).
pub struct Admission {
    config: AdmitConfig,
    clock: Arc<dyn AdmitClock>,
    state: Mutex<AdmitState>,
}

impl std::fmt::Debug for Admission {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Admission")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Admission {
    /// A controller over `config` refilling from `clock`.
    pub fn new(config: AdmitConfig, clock: Arc<dyn AdmitClock>) -> Admission {
        Admission {
            config,
            clock,
            state: Mutex::new(AdmitState::default()),
        }
    }

    /// The knobs this controller runs with.
    pub fn config(&self) -> &AdmitConfig {
        &self.config
    }

    /// Advances load-derived clocks by one observed request.
    pub fn observe(&self) {
        self.clock.observe();
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, AdmitState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Registers (or re-weights) a tenant. Weight is clamped to at least
    /// 1; the bucket starts full at the new capacity.
    pub fn register(&self, tenant: &str, weight: u64) {
        let weight = weight.max(1);
        let now = self.clock.now_ms();
        let cap = self
            .config
            .burst
            .saturating_mul(weight)
            .saturating_mul(MILLI);
        let mut state = self.lock_state();
        match state.tenants.get_mut(tenant) {
            Some(entry) => {
                let old_weight = entry.weight;
                entry.weight = weight;
                entry.millitokens = entry.millitokens.min(cap);
                state.total_weight = state
                    .total_weight
                    .saturating_sub(old_weight)
                    .saturating_add(weight);
            }
            None => {
                state.tenants.insert(
                    tenant.to_string(),
                    TenantAdmit {
                        weight,
                        millitokens: cap,
                        refilled_at_ms: now,
                        inflight: 0,
                    },
                );
                state.total_weight = state.total_weight.saturating_add(weight);
            }
        }
    }

    /// Removes a tenant, releasing its weight and any in-flight slots it
    /// still holds (late [`Admission::complete`] calls become no-ops).
    pub fn deregister(&self, tenant: &str) {
        let mut state = self.lock_state();
        if let Some(entry) = state.tenants.remove(tenant) {
            state.total_weight = state.total_weight.saturating_sub(entry.weight);
            state.total_inflight = state.total_inflight.saturating_sub(entry.inflight);
        }
    }

    /// Decides one gated request for `tenant`. An unregistered tenant
    /// (recovered without a fresh `hello`) is registered at weight 1
    /// first. On [`Verdict::Admit`] an in-flight slot is held until
    /// [`Admission::complete`].
    pub fn admit(&self, tenant: &str) -> Verdict {
        if !self.config.enabled() {
            return Verdict::Admit;
        }
        let now = self.clock.now_ms();
        let burst = self.config.burst;
        let mut state = self.lock_state();
        if !state.tenants.contains_key(tenant) {
            state.tenants.insert(
                tenant.to_string(),
                TenantAdmit {
                    weight: 1,
                    millitokens: burst.saturating_mul(MILLI),
                    refilled_at_ms: now,
                    inflight: 0,
                },
            );
            state.total_weight = state.total_weight.saturating_add(1);
        }
        let total_weight = state.total_weight.max(1);
        let total_inflight = state.total_inflight;
        let Some(entry) = state.tenants.get_mut(tenant) else {
            return Verdict::Admit;
        };

        // Rate check first: refill to `now`, then require one whole token.
        if let Some(rate) = self.config.rate_per_k {
            let per_ms = rate.saturating_mul(entry.weight).max(1);
            let cap = burst.saturating_mul(entry.weight).saturating_mul(MILLI);
            let elapsed = now.saturating_sub(entry.refilled_at_ms);
            entry.millitokens = entry
                .millitokens
                .saturating_add(elapsed.saturating_mul(per_ms))
                .min(cap);
            entry.refilled_at_ms = now;
            if entry.millitokens < MILLI {
                let deficit = MILLI - entry.millitokens;
                return Verdict::RateLimited {
                    retry_after_ms: deficit.div_ceil(per_ms).max(1),
                };
            }
        }

        // In-flight budget: on a breach, only tenants strictly under
        // their weight-proportional share squeeze through.
        if let Some(max) = self.config.max_inflight {
            if total_inflight >= max {
                let share = max
                    .saturating_mul(entry.weight)
                    .checked_div(total_weight)
                    .unwrap_or(0)
                    .max(1);
                if entry.inflight >= share {
                    // Come back once roughly your share of the backlog
                    // has drained — heavier tenants get shorter hints.
                    let retry_after_ms = 1 + total_inflight / share;
                    return Verdict::Shed { retry_after_ms };
                }
            }
        }

        if self.config.rate_per_k.is_some() {
            entry.millitokens = entry.millitokens.saturating_sub(MILLI);
        }
        entry.inflight = entry.inflight.saturating_add(1);
        state.total_inflight = state.total_inflight.saturating_add(1);
        Verdict::Admit
    }

    /// Releases the in-flight slot [`Admission::admit`] took. A no-op for
    /// deregistered tenants (their slots were released wholesale).
    pub fn complete(&self, tenant: &str) {
        if !self.config.enabled() {
            return;
        }
        let mut state = self.lock_state();
        if let Some(entry) = state.tenants.get_mut(tenant) {
            if entry.inflight > 0 {
                entry.inflight -= 1;
                state.total_inflight = state.total_inflight.saturating_sub(1);
            }
        }
    }

    /// Admitted-but-unprocessed requests right now (tests and probes).
    pub fn total_inflight(&self) -> u64 {
        self.lock_state().total_inflight
    }

    /// The registered weight for `tenant`, if any.
    pub fn weight_of(&self, tenant: &str) -> Option<u64> {
        self.lock_state().tenants.get(tenant).map(|t| t.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admission(config: AdmitConfig) -> (Admission, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        (Admission::new(config, Arc::clone(&clock) as _), clock)
    }

    #[test]
    fn disabled_config_admits_everything() {
        let (adm, _clock) = admission(AdmitConfig::default());
        for _ in 0..10_000 {
            assert_eq!(adm.admit("t"), Verdict::Admit);
        }
        assert_eq!(adm.total_inflight(), 0, "disabled path holds no slots");
    }

    #[test]
    fn bucket_drains_to_rate_limited_and_refills_exactly() {
        let cfg = AdmitConfig {
            rate_per_k: Some(1000), // 1 token per virtual ms per weight
            burst: 4,
            max_inflight: None,
        };
        let (adm, clock) = admission(cfg);
        adm.register("t", 1);
        // Burst capacity: exactly 4 tokens before the clock moves.
        for i in 0..4 {
            assert_eq!(adm.admit("t"), Verdict::Admit, "burst admit {i}");
        }
        let verdict = adm.admit("t");
        assert_eq!(verdict, Verdict::RateLimited { retry_after_ms: 1 });
        // One virtual ms refills exactly one token at rate 1000/k.
        clock.advance_ms(1);
        assert_eq!(adm.admit("t"), Verdict::Admit);
        assert_eq!(adm.admit("t"), Verdict::RateLimited { retry_after_ms: 1 });
    }

    #[test]
    fn refill_is_weight_proportional_and_integer_exact() {
        // rate 250/k: weight 4 earns 1 token per ms, weight 1 per 4 ms.
        let cfg = AdmitConfig {
            rate_per_k: Some(250),
            burst: 1,
            max_inflight: None,
        };
        let (adm, clock) = admission(cfg);
        adm.register("heavy", 4);
        adm.register("light", 1);
        // Drain both bursts.
        assert_eq!(adm.admit("heavy"), Verdict::Admit); // heavy burst = 1 token... weight-scaled: 4
        for _ in 0..3 {
            assert_eq!(adm.admit("heavy"), Verdict::Admit);
        }
        assert_eq!(adm.admit("light"), Verdict::Admit);
        assert!(matches!(adm.admit("heavy"), Verdict::RateLimited { .. }));
        assert!(matches!(adm.admit("light"), Verdict::RateLimited { .. }));
        // Over 40 virtual ms, heavy earns 40 tokens, light earns 10 —
        // exactly weight-proportional, no rounding drift.
        let mut admitted = (0u64, 0u64);
        for _ in 0..40 {
            clock.advance_ms(1);
            while adm.admit("heavy") == Verdict::Admit {
                admitted.0 += 1;
            }
            while adm.admit("light") == Verdict::Admit {
                admitted.1 += 1;
            }
        }
        assert_eq!(admitted, (40, 10));
    }

    #[test]
    fn rate_limited_retry_after_is_the_exact_refill_time() {
        let cfg = AdmitConfig {
            rate_per_k: Some(1), // 1 millitoken per ms at weight 1
            burst: 1,
            max_inflight: None,
        };
        let (adm, clock) = admission(cfg);
        adm.register("t", 1);
        assert_eq!(adm.admit("t"), Verdict::Admit);
        // Empty bucket: a full token is 1000 millitokens away.
        assert_eq!(
            adm.admit("t"),
            Verdict::RateLimited {
                retry_after_ms: 1000
            }
        );
        clock.advance_ms(400);
        assert_eq!(
            adm.admit("t"),
            Verdict::RateLimited {
                retry_after_ms: 600
            }
        );
        clock.advance_ms(600);
        assert_eq!(adm.admit("t"), Verdict::Admit);
    }

    #[test]
    fn budget_breach_sheds_over_share_tenants_only() {
        let cfg = AdmitConfig {
            max_inflight: Some(10),
            rate_per_k: None,
            burst: 8,
        };
        let (adm, _clock) = admission(cfg);
        adm.register("heavy", 4); // share = 10*4/5 = 8
        adm.register("light", 1); // share = 10*1/5 = 2
                                  // Light fills the whole budget.
        for _ in 0..10 {
            assert_eq!(adm.admit("light"), Verdict::Admit);
        }
        assert_eq!(adm.total_inflight(), 10);
        // Budget breached: light is far over its share of 2 — shed, with
        // the documented pressure hint 1 + total/share = 1 + 10/2.
        assert_eq!(adm.admit("light"), Verdict::Shed { retry_after_ms: 6 });
        // Heavy is under its share of 8: admitted through the breach.
        assert_eq!(adm.admit("heavy"), Verdict::Admit);
        // Completions drain light below the budget again.
        for _ in 0..6 {
            adm.complete("light");
        }
        assert_eq!(adm.admit("light"), Verdict::Admit);
    }

    #[test]
    fn deregister_releases_weight_and_slots() {
        let cfg = AdmitConfig {
            max_inflight: Some(4),
            rate_per_k: None,
            burst: 8,
        };
        let (adm, _clock) = admission(cfg);
        adm.register("a", 1);
        adm.register("b", 1);
        for _ in 0..4 {
            assert_eq!(adm.admit("a"), Verdict::Admit);
        }
        // The budget is breached, but `b` is under its share of 2: it is
        // admitted through the breach (bounded overshoot) until it
        // reaches the share, then shed.
        assert_eq!(adm.admit("b"), Verdict::Admit);
        assert_eq!(adm.admit("b"), Verdict::Admit);
        assert!(matches!(adm.admit("b"), Verdict::Shed { .. }));
        adm.deregister("a");
        assert_eq!(adm.total_inflight(), 2, "b's slots survive a's exit");
        assert_eq!(adm.admit("b"), Verdict::Admit);
        // Late completions for the departed tenant change nothing.
        adm.complete("a");
        assert_eq!(adm.total_inflight(), 3);
    }

    #[test]
    fn unregistered_tenants_default_to_weight_one() {
        let cfg = AdmitConfig {
            max_inflight: Some(8),
            rate_per_k: None,
            burst: 8,
        };
        let (adm, _clock) = admission(cfg);
        assert_eq!(adm.admit("ghost"), Verdict::Admit);
        assert_eq!(adm.weight_of("ghost"), Some(1));
    }

    #[test]
    fn request_clock_ticks_once_per_observed_request() {
        let clock = RequestClock::new();
        assert_eq!(clock.now_ms(), 0);
        for _ in 0..5 {
            clock.observe();
        }
        assert_eq!(clock.now_ms(), 5);
    }

    #[test]
    fn reregister_adjusts_weight_without_double_counting() {
        let cfg = AdmitConfig {
            max_inflight: Some(10),
            rate_per_k: None,
            burst: 8,
        };
        let (adm, _clock) = admission(cfg);
        adm.register("t", 2);
        adm.register("t", 4);
        assert_eq!(adm.weight_of("t"), Some(4));
        // total_weight is 4, not 6: the share math sees one tenant.
        for _ in 0..10 {
            assert_eq!(adm.admit("t"), Verdict::Admit);
        }
        // share = 10*4/4 = 10, inflight = 10 >= share → shed.
        assert!(matches!(adm.admit("t"), Verdict::Shed { .. }));
    }
}
