//! Seeded load generator and correctness client for `calib-serve`.
//!
//! ```text
//! calib-loadgen --addr 127.0.0.1:PORT --tenants 8 --jobs 5000 --seed 7
//!               [--tick-every N] [--window W] [--deadline-ms N]
//!               [--max-reconnects N] [--backoff-base-ms N] [--backoff-cap-ms N]
//!               [--resume-on-start] [--park] [--router] [--weights W1,W2,..]
//! ```
//!
//! Each tenant runs on its own connection and thread: it draws a sized
//! instance from the difftest workload-family generator (algorithms cycle
//! alg1 → alg2 → alg3 across tenants, with machine/weight bounds matched
//! to each algorithm's contract), compiles the whole session into a
//! `seq`-numbered request plan, and executes it through the resilient
//! plan runner ([`calib_serve::run_plan`]) — which reconnects with seeded
//! exponential backoff, resumes the tenant, and idempotently resends
//! un-acked requests through any connection fault or daemon restart.
//! Finally it checks the daemon's drained accounting: feasibility-checker
//! verdict AND exact integer equality of flow/cost against a local batch
//! `run_online` of the identical instance. Any divergence is a bug by the
//! engine-determinism contract.
//!
//! `--park` submits each tenant's whole instance but skips the final
//! drain/bye, leaving the sessions detached (and journaled, if the daemon
//! runs with `--journal-dir`). `--resume-on-start` makes the very first
//! connection open with `resume` — the daemon-restart recovery path,
//! where a previous loadgen run (or a crashed daemon restarted from its
//! journal) already applied a prefix of the plan. Together they script a
//! deterministic crash/recovery drill: park, `kill -9` the daemon,
//! restart it on the same journal directory, then resume and drain —
//! CI's `chaos-smoke` job does exactly this.
//!
//! `--weights W1,W2,..` assigns admission weights round-robin across
//! tenants (tenant i gets `Wi mod len`; default 1): each tenant's `hello`
//! carries its weight, which governs the daemon's weighted token-bucket
//! refill and fair-share shed order under `--max-inflight`/`--rate-per-k`.
//! The summary counts `sheds`: typed `shed`/`rate-limited` rejections the
//! clients honored by sleeping the server-supplied `retry_after_ms`.
//!
//! `--router` declares that `--addr` points at a `calib-router` front-end
//! instead of a single daemon — the wire protocol is identical, so the
//! flag only tags the summary line (`"router":true`). Either way the
//! summary counts `redirects`: `tenant-moved` answers followed through a
//! reconnect, i.e. live migrations this client rode through mid-stream.
//!
//! Prints one JSON summary line (throughput, latency percentiles via
//! `calib_sim::stats`, reconnect/resume counts, mismatch counts). Exit
//! status: 0 clean, 1 for any mismatch/violation/protocol error, 2 for
//! usage or connection errors.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use calib_core::json::{Json, ToJson};
use calib_core::{Instance, Job, Time};
use calib_difftest::{gen_case_sized, GenParams};
use calib_online::{run_online, OnlineScheduler};
use calib_serve::{run_plan, Algorithm, Backoff, ClientConfig, PlanStep, SystemClock};
use calib_sim::stats::Summary;

struct Args {
    addr: String,
    tenants: usize,
    jobs: usize,
    seed: u64,
    tick_every: usize,
    window: usize,
    deadline_ms: u64,
    max_reconnects: u32,
    backoff_base_ms: u64,
    backoff_cap_ms: u64,
    resume_on_start: bool,
    park: bool,
    router: bool,
    weights: Vec<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: String::new(),
        tenants: 3,
        jobs: 200,
        seed: 7,
        tick_every: 64,
        window: 32,
        deadline_ms: 10_000,
        max_reconnects: 64,
        backoff_base_ms: 5,
        backoff_cap_ms: 500,
        resume_on_start: false,
        park: false,
        router: false,
        weights: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--tenants" => {
                args.tenants = value("--tenants")?
                    .parse()
                    .map_err(|e| format!("--tenants: {e}"))?;
            }
            "--jobs" => {
                args.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--tick-every" => {
                args.tick_every = value("--tick-every")?
                    .parse()
                    .map_err(|e| format!("--tick-every: {e}"))?;
            }
            "--window" => {
                args.window = value("--window")?
                    .parse()
                    .map_err(|e| format!("--window: {e}"))?;
            }
            "--deadline-ms" => {
                args.deadline_ms = value("--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?;
            }
            "--max-reconnects" => {
                args.max_reconnects = value("--max-reconnects")?
                    .parse()
                    .map_err(|e| format!("--max-reconnects: {e}"))?;
            }
            "--backoff-base-ms" => {
                args.backoff_base_ms = value("--backoff-base-ms")?
                    .parse()
                    .map_err(|e| format!("--backoff-base-ms: {e}"))?;
            }
            "--backoff-cap-ms" => {
                args.backoff_cap_ms = value("--backoff-cap-ms")?
                    .parse()
                    .map_err(|e| format!("--backoff-cap-ms: {e}"))?;
            }
            "--resume-on-start" => args.resume_on_start = true,
            "--weights" => {
                args.weights = value("--weights")?
                    .split(',')
                    .map(|w| w.trim().parse::<u64>().map(|w| w.max(1)))
                    .collect::<Result<Vec<u64>, _>>()
                    .map_err(|e| format!("--weights: {e}"))?;
            }
            "--park" => args.park = true,
            "--router" => args.router = true,
            "--help" | "-h" => {
                return Err("usage: calib-loadgen --addr HOST:PORT [--tenants N] \
                     [--jobs N] [--seed S] [--tick-every N] [--window W] \
                     [--deadline-ms N] [--max-reconnects N] [--backoff-base-ms N] \
                     [--backoff-cap-ms N] [--resume-on-start] [--park] [--router] \
                     [--weights W1,W2,..]"
                    .to_string());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.addr.is_empty() {
        return Err("--addr HOST:PORT is required".to_string());
    }
    args.tenants = args.tenants.max(1);
    args.jobs = args.jobs.max(1);
    args.tick_every = args.tick_every.max(1);
    args.window = args.window.clamp(1, 64);
    Ok(args)
}

/// The algorithm the i-th tenant exercises, with generator bounds matched
/// to its contract (alg1/alg2 are single-machine; alg1/alg3 unweighted).
fn tenant_plan(i: usize) -> (Algorithm, GenParams) {
    let base = GenParams {
        max_n: 1, // overridden by the sized generator
        max_t: 8,
        max_g: 60,
        max_p: 1,
        max_weight: 1,
    };
    match i % 3 {
        0 => (Algorithm::Alg1, base),
        1 => (
            Algorithm::Alg2,
            GenParams {
                max_weight: 9,
                ..base
            },
        ),
        _ => (Algorithm::Alg3, GenParams { max_p: 3, ..base }),
    }
}

fn fresh_scheduler(alg: Algorithm) -> Box<dyn OnlineScheduler + Send> {
    alg.scheduler()
}

/// Compiles a tenant's whole session into a contiguous-seq request plan:
/// hello, then arrive/tick pairs batching `tick_every` release groups per
/// clock advance (never splitting a release group — its tail would arrive
/// after `tick` already passed the release), then drain (captured), bye.
/// In `park` mode the plan stops before the drain (no drain seq), leaving
/// the session open for a later `--resume-on-start` run to finish.
fn build_plan(
    name: &str,
    algorithm: Algorithm,
    cal_cost: u128,
    weight: u64,
    instance: &Instance,
    tick_every: usize,
    park: bool,
) -> (Vec<PlanStep>, Option<u64>) {
    let mut steps: Vec<PlanStep> = Vec::new();
    let mut seq: u64 = 0;
    let mut push =
        |fields: Vec<(&'static str, Json)>, capture: bool, is_bye: bool, seq: &mut u64| {
            steps.push(PlanStep::new(*seq, fields, capture, is_bye));
            *seq += 1;
        };
    push(
        vec![
            ("type", "hello".to_json()),
            ("tenant", name.to_json()),
            ("machines", instance.machines().to_json()),
            ("cal_len", instance.cal_len().to_json()),
            ("cal_cost", cal_cost.to_json()),
            ("algorithm", algorithm.name().to_json()),
            ("weight", weight.to_json()),
        ],
        false,
        false,
        &mut seq,
    );

    let mut all: Vec<Job> = instance.jobs().to_vec();
    all.sort_by_key(|j| (j.release, j.id));
    let mut i = 0usize;
    while i < all.len() {
        let mut batch: Vec<Job> = Vec::new();
        let mut groups = 0usize;
        let mut last_release: Option<Time> = None;
        while i < all.len() {
            let release = all[i].release;
            if last_release != Some(release) {
                if groups == tick_every {
                    break;
                }
                groups += 1;
                last_release = Some(release);
            }
            batch.push(all[i]);
            i += 1;
        }
        let upto = last_release.unwrap_or(0);
        push(
            vec![
                ("type", "arrive".to_json()),
                ("tenant", name.to_json()),
                ("jobs", batch.to_json()),
            ],
            false,
            false,
            &mut seq,
        );
        push(
            vec![
                ("type", "tick".to_json()),
                ("tenant", name.to_json()),
                ("now", upto.to_json()),
            ],
            false,
            false,
            &mut seq,
        );
    }

    if park {
        return (steps, None);
    }
    let drain_seq = seq;
    push(
        vec![("type", "drain".to_json()), ("tenant", name.to_json())],
        true,
        false,
        &mut seq,
    );
    push(
        vec![("type", "bye".to_json()), ("tenant", name.to_json())],
        false,
        true,
        &mut seq,
    );
    (steps, Some(drain_seq))
}

/// What one tenant thread produced.
struct TenantOutcome {
    decisions: u64,
    reconnects: u64,
    resumes: u64,
    redirects: u64,
    sheds: u64,
    latencies_us: Vec<f64>,
    errors: Vec<String>,
}

fn run_tenant(
    addr: &str,
    name: &str,
    seed: u64,
    jobs: usize,
    plan_index: usize,
    args: &Args,
) -> TenantOutcome {
    let (algorithm, params) = tenant_plan(plan_index);
    let case = gen_case_sized(seed, &params, jobs);
    let instance: &Instance = &case.instance;

    // The local ground truth: the batch engine on the identical instance.
    let expected = run_online(instance, case.cal_cost, fresh_scheduler(algorithm).as_mut());

    let weight = match args.weights.as_slice() {
        [] => 1,
        ws => ws[plan_index % ws.len()],
    };
    let (plan, drain_seq) = build_plan(
        name,
        algorithm,
        case.cal_cost,
        weight,
        instance,
        args.tick_every,
        args.park,
    );
    let cfg = ClientConfig {
        tenant: name.to_string(),
        window: args.window,
        deadline: if args.deadline_ms == 0 {
            None
        } else {
            Some(Duration::from_millis(args.deadline_ms))
        },
        max_reconnects: args.max_reconnects,
        resume_on_start: args.resume_on_start,
    };
    // Backoff seeds differ per tenant so a shared fault never herds the
    // reconnecting clients onto the same schedule.
    let mut backoff = Backoff::new(
        args.backoff_base_ms,
        args.backoff_cap_ms,
        seed ^ 0xBACC_0FF5,
    );
    let mut clock = SystemClock;
    let report = run_plan(addr, &cfg, &plan, &mut backoff, &mut clock);

    let mut errors: Vec<String> = report
        .errors
        .iter()
        .map(|e| format!("{name}: {e}"))
        .collect();
    if !report.completed {
        errors.push(format!("{name}: plan did not complete"));
    } else if let Some(drain_seq) = drain_seq {
        if let Some(reply) = report.captured_for(drain_seq) {
            check_accounting(reply, name, expected.flow, expected.cost, &mut errors);
        } else {
            errors.push(format!("{name}: no drain reply captured"));
        }
    }
    TenantOutcome {
        decisions: report.decisions,
        reconnects: report.reconnects,
        resumes: report.resumes,
        redirects: report.redirects,
        sheds: report.sheds,
        latencies_us: report.latencies_us,
        errors,
    }
}

fn check_accounting(
    reply: &Json,
    name: &str,
    expected_flow: u128,
    expected_cost: u128,
    errors: &mut Vec<String>,
) {
    if reply.get("type").and_then(Json::as_str) != Some("drained") {
        errors.push(format!("{name}: drain did not return a `drained` reply"));
        return;
    }
    if reply.get("checker_ok") != Some(&Json::Bool(true)) {
        errors.push(format!(
            "{name}: feasibility checker rejected the drained schedule: {:?}",
            reply.get("violations")
        ));
    }
    let flow = reply.get("flow").and_then(Json::as_u128);
    let cost = reply.get("cost").and_then(Json::as_u128);
    if flow != Some(expected_flow) {
        errors.push(format!(
            "{name}: flow mismatch: daemon {flow:?}, batch {expected_flow}"
        ));
    }
    if cost != Some(expected_cost) {
        errors.push(format!(
            "{name}: objective mismatch: daemon {cost:?}, batch {expected_cost}"
        ));
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let started = Instant::now();
    let outcomes: Vec<TenantOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.tenants)
            .map(|i| {
                let args = &args;
                scope.spawn(move || {
                    let name = format!("tenant-{i}");
                    let seed = args
                        .seed
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(u64::try_from(i).unwrap_or(0));
                    run_tenant(&args.addr, &name, seed, args.jobs, i, args)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| TenantOutcome {
                    decisions: 0,
                    reconnects: 0,
                    resumes: 0,
                    redirects: 0,
                    sheds: 0,
                    latencies_us: Vec::new(),
                    errors: vec!["tenant thread panicked".to_string()],
                })
            })
            .collect()
    });
    let wall = started.elapsed().as_secs_f64();

    let decisions: u64 = outcomes.iter().map(|o| o.decisions).sum();
    let reconnects: u64 = outcomes.iter().map(|o| o.reconnects).sum();
    let resumes: u64 = outcomes.iter().map(|o| o.resumes).sum();
    let redirects: u64 = outcomes.iter().map(|o| o.redirects).sum();
    let sheds: u64 = outcomes.iter().map(|o| o.sheds).sum();
    let mut latencies: Vec<f64> = Vec::new();
    let mut errors: Vec<String> = Vec::new();
    for o in &outcomes {
        latencies.extend_from_slice(&o.latencies_us);
        errors.extend(o.errors.iter().cloned());
    }
    let latency = Summary::from_values(&latencies);
    let per_sec = if wall > 0.0 {
        decisions as f64 / wall
    } else {
        0.0
    };

    let mut fields = vec![
        ("type", Json::Str("loadgen".to_string())),
        ("tenants", args.tenants.to_json()),
        ("jobs_per_tenant", args.jobs.to_json()),
        ("seed", args.seed.to_json()),
        ("decisions", decisions.to_json()),
        ("wall_secs", wall.to_json()),
        ("decisions_per_sec", per_sec.to_json()),
        ("requests", latencies.len().to_json()),
        ("reconnects", reconnects.to_json()),
        ("resumes", resumes.to_json()),
        ("redirects", redirects.to_json()),
        ("sheds", sheds.to_json()),
        ("router", Json::Bool(args.router)),
        ("errors", errors.len().to_json()),
    ];
    if let Some(s) = &latency {
        fields.push((
            "latency_us",
            Json::obj([
                ("mean", s.mean.to_json()),
                ("p50", s.p50.to_json()),
                ("p95", s.p95.to_json()),
                ("max", s.max.to_json()),
            ]),
        ));
    }
    println!("{}", Json::obj(fields).to_string_compact());
    for e in &errors {
        eprintln!("loadgen: {e}");
    }
    if errors.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
