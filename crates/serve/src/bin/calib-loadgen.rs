//! Seeded load generator and correctness client for `calib-serve`.
//!
//! ```text
//! calib-loadgen --addr 127.0.0.1:PORT --tenants 8 --jobs 5000 --seed 7
//!               [--tick-every N] [--window W]
//! ```
//!
//! Each tenant runs on its own connection and thread: it draws a sized
//! instance from the difftest workload-family generator (algorithms cycle
//! alg1 → alg2 → alg3 across tenants, with machine/weight bounds matched
//! to each algorithm's contract), replays the arrivals in release order
//! against the daemon's virtual clock with pipelined requests, drains, and
//! finally checks the daemon's accounting — feasibility-checker verdict
//! AND exact integer equality of flow/cost against a local batch
//! `run_online` of the identical instance. Any divergence is a bug by the
//! engine-determinism contract.
//!
//! Prints one JSON summary line (throughput, latency percentiles via
//! `calib_sim::stats`, mismatch counts). Exit status: 0 clean, 1 for any
//! mismatch/violation/protocol error, 2 for usage or connection errors.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Instant;

use calib_core::json::{Json, ToJson};
use calib_core::{Instance, Job, Time};
use calib_difftest::{gen_case_sized, GenParams};
use calib_online::{run_online, OnlineScheduler};
use calib_serve::Algorithm;
use calib_sim::stats::Summary;

struct Args {
    addr: String,
    tenants: usize,
    jobs: usize,
    seed: u64,
    tick_every: usize,
    window: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: String::new(),
        tenants: 3,
        jobs: 200,
        seed: 7,
        tick_every: 64,
        window: 32,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--tenants" => {
                args.tenants = value("--tenants")?
                    .parse()
                    .map_err(|e| format!("--tenants: {e}"))?;
            }
            "--jobs" => {
                args.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--tick-every" => {
                args.tick_every = value("--tick-every")?
                    .parse()
                    .map_err(|e| format!("--tick-every: {e}"))?;
            }
            "--window" => {
                args.window = value("--window")?
                    .parse()
                    .map_err(|e| format!("--window: {e}"))?;
            }
            "--help" | "-h" => {
                return Err("usage: calib-loadgen --addr HOST:PORT [--tenants N] \
                     [--jobs N] [--seed S] [--tick-every N] [--window W]"
                    .to_string());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.addr.is_empty() {
        return Err("--addr HOST:PORT is required".to_string());
    }
    args.tenants = args.tenants.max(1);
    args.jobs = args.jobs.max(1);
    args.tick_every = args.tick_every.max(1);
    args.window = args.window.clamp(1, 64);
    Ok(args)
}

/// The algorithm the i-th tenant exercises, with generator bounds matched
/// to its contract (alg1/alg2 are single-machine; alg1/alg3 unweighted).
fn tenant_plan(i: usize) -> (Algorithm, GenParams) {
    let base = GenParams {
        max_n: 1, // overridden by the sized generator
        max_t: 8,
        max_g: 60,
        max_p: 1,
        max_weight: 1,
    };
    match i % 3 {
        0 => (Algorithm::Alg1, base),
        1 => (
            Algorithm::Alg2,
            GenParams {
                max_weight: 9,
                ..base
            },
        ),
        _ => (Algorithm::Alg3, GenParams { max_p: 3, ..base }),
    }
}

fn fresh_scheduler(alg: Algorithm) -> Box<dyn OnlineScheduler + Send> {
    alg.scheduler()
}

/// What one tenant thread produced.
struct TenantOutcome {
    decisions: u64,
    latencies_us: Vec<f64>,
    errors: Vec<String>,
}

struct Pipe {
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
    next_seq: u64,
    /// In-flight `(seq, sent-at)`, FIFO — replies come back in order.
    in_flight: std::collections::VecDeque<(u64, Instant)>,
    window: usize,
    latencies_us: Vec<f64>,
    decisions: u64,
    errors: Vec<String>,
    /// Reply to the final request, once it has drained.
    last_reply: Option<Json>,
}

impl Pipe {
    fn connect(addr: &str, window: usize) -> std::io::Result<Pipe> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Pipe {
            writer: BufWriter::new(stream),
            reader,
            next_seq: 0,
            in_flight: std::collections::VecDeque::new(),
            window,
            latencies_us: Vec::new(),
            decisions: 0,
            errors: Vec::new(),
            last_reply: None,
        })
    }

    /// Sends one request object (seq appended automatically), reading
    /// replies whenever the pipeline window is full.
    fn send(&mut self, mut fields: Vec<(&'static str, Json)>) -> std::io::Result<()> {
        let seq = self.next_seq;
        self.next_seq += 1;
        fields.push(("seq", seq.to_json()));
        let mut line = Json::obj(fields).to_string_compact();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        self.in_flight.push_back((seq, Instant::now()));
        while self.in_flight.len() >= self.window {
            self.read_one()?;
        }
        Ok(())
    }

    /// Blocks until every outstanding reply has been read.
    fn settle(&mut self) -> std::io::Result<()> {
        while !self.in_flight.is_empty() {
            self.read_one()?;
        }
        Ok(())
    }

    fn read_one(&mut self) -> std::io::Result<()> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-session",
            ));
        }
        let Some((seq, sent)) = self.in_flight.pop_front() else {
            self.errors.push("unsolicited reply".to_string());
            return Ok(());
        };
        self.latencies_us
            .push(sent.elapsed().as_secs_f64() * 1_000_000.0);
        let reply = match Json::parse(line.trim()) {
            Ok(v) => v,
            Err(e) => {
                self.errors.push(format!("unparseable reply: {e}"));
                return Ok(());
            }
        };
        if reply.get("seq").and_then(Json::as_u64) != Some(seq) {
            self.errors
                .push(format!("reply out of order (expected seq {seq}): {line}"));
        }
        if reply.get("type").and_then(Json::as_str) == Some("error") {
            let code = reply
                .get("code")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string();
            self.errors.push(format!("server error `{code}`: {line}"));
        }
        // `decisions`/`tick` replies carry the arrays at top level;
        // `drained` nests its final delta under `decisions`.
        let delta = reply.get("decisions").unwrap_or(&reply);
        for key in ["calibrations", "starts"] {
            if let Some(arr) = delta.get(key).and_then(Json::as_arr) {
                self.decisions += u64::try_from(arr.len()).unwrap_or(0);
            }
        }
        self.last_reply = Some(reply);
        Ok(())
    }
}

fn run_tenant(
    addr: &str,
    name: &str,
    seed: u64,
    jobs: usize,
    plan_index: usize,
    args: &Args,
) -> TenantOutcome {
    let (algorithm, params) = tenant_plan(plan_index);
    let case = gen_case_sized(seed, &params, jobs);
    let instance: &Instance = &case.instance;

    // The local ground truth: the batch engine on the identical instance.
    let expected = run_online(instance, case.cal_cost, fresh_scheduler(algorithm).as_mut());

    let fail = |msg: String| TenantOutcome {
        decisions: 0,
        latencies_us: Vec::new(),
        errors: vec![msg],
    };
    let mut pipe = match Pipe::connect(addr, args.window) {
        Ok(p) => p,
        Err(e) => return fail(format!("{name}: connect: {e}")),
    };

    let io_result = (|| -> std::io::Result<()> {
        pipe.send(vec![
            ("type", "hello".to_json()),
            ("tenant", name.to_json()),
            ("machines", instance.machines().to_json()),
            ("cal_len", instance.cal_len().to_json()),
            ("cal_cost", case.cal_cost.to_json()),
            ("algorithm", algorithm.name().to_json()),
        ])?;

        // Replay arrivals in release order (instance job order is id order,
        // not arrival order), grouped by release, `tick_every` release
        // groups per clock advance.
        let mut all: Vec<Job> = instance.jobs().to_vec();
        all.sort_by_key(|j| (j.release, j.id));
        let mut i = 0usize;
        while i < all.len() {
            let mut batch: Vec<Job> = Vec::new();
            let mut groups = 0usize;
            let mut last_release: Option<Time> = None;
            while i < all.len() {
                let release = all[i].release;
                if last_release != Some(release) {
                    // Never split a release group across chunks: its tail
                    // would arrive after `tick` already passed the release.
                    if groups == args.tick_every {
                        break;
                    }
                    groups += 1;
                    last_release = Some(release);
                }
                batch.push(all[i]);
                i += 1;
            }
            let upto = last_release.unwrap_or(0);
            pipe.send(vec![
                ("type", "arrive".to_json()),
                ("tenant", name.to_json()),
                ("jobs", batch.to_json()),
            ])?;
            pipe.send(vec![
                ("type", "tick".to_json()),
                ("tenant", name.to_json()),
                ("now", upto.to_json()),
            ])?;
        }

        pipe.send(vec![
            ("type", "drain".to_json()),
            ("tenant", name.to_json()),
        ])?;
        pipe.settle()?;

        // The drained accounting must match the batch run exactly.
        if let Some(reply) = pipe.last_reply.take() {
            check_accounting(&reply, name, expected.flow, expected.cost, &mut pipe.errors);
        } else {
            pipe.errors.push(format!("{name}: no drain reply"));
        }

        pipe.send(vec![("type", "bye".to_json()), ("tenant", name.to_json())])?;
        pipe.settle()?;
        Ok(())
    })();

    if let Err(e) = io_result {
        pipe.errors.push(format!("{name}: {e}"));
    }
    TenantOutcome {
        decisions: pipe.decisions,
        latencies_us: pipe.latencies_us,
        errors: pipe.errors,
    }
}

fn check_accounting(
    reply: &Json,
    name: &str,
    expected_flow: u128,
    expected_cost: u128,
    errors: &mut Vec<String>,
) {
    if reply.get("type").and_then(Json::as_str) != Some("drained") {
        errors.push(format!("{name}: drain did not return a `drained` reply"));
        return;
    }
    if reply.get("checker_ok") != Some(&Json::Bool(true)) {
        errors.push(format!(
            "{name}: feasibility checker rejected the drained schedule: {:?}",
            reply.get("violations")
        ));
    }
    let flow = reply.get("flow").and_then(Json::as_u128);
    let cost = reply.get("cost").and_then(Json::as_u128);
    if flow != Some(expected_flow) {
        errors.push(format!(
            "{name}: flow mismatch: daemon {flow:?}, batch {expected_flow}"
        ));
    }
    if cost != Some(expected_cost) {
        errors.push(format!(
            "{name}: objective mismatch: daemon {cost:?}, batch {expected_cost}"
        ));
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let started = Instant::now();
    let outcomes: Vec<TenantOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.tenants)
            .map(|i| {
                let args = &args;
                scope.spawn(move || {
                    let name = format!("tenant-{i}");
                    let seed = args
                        .seed
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(u64::try_from(i).unwrap_or(0));
                    run_tenant(&args.addr, &name, seed, args.jobs, i, args)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| TenantOutcome {
                    decisions: 0,
                    latencies_us: Vec::new(),
                    errors: vec!["tenant thread panicked".to_string()],
                })
            })
            .collect()
    });
    let wall = started.elapsed().as_secs_f64();

    let decisions: u64 = outcomes.iter().map(|o| o.decisions).sum();
    let mut latencies: Vec<f64> = Vec::new();
    let mut errors: Vec<String> = Vec::new();
    for o in &outcomes {
        latencies.extend_from_slice(&o.latencies_us);
        errors.extend(o.errors.iter().cloned());
    }
    let latency = Summary::from_values(&latencies);
    let per_sec = if wall > 0.0 {
        decisions as f64 / wall
    } else {
        0.0
    };

    let mut fields = vec![
        ("type", Json::Str("loadgen".to_string())),
        ("tenants", args.tenants.to_json()),
        ("jobs_per_tenant", args.jobs.to_json()),
        ("seed", args.seed.to_json()),
        ("decisions", decisions.to_json()),
        ("wall_secs", wall.to_json()),
        ("decisions_per_sec", per_sec.to_json()),
        ("requests", latencies.len().to_json()),
        ("errors", errors.len().to_json()),
    ];
    if let Some(s) = &latency {
        fields.push((
            "latency_us",
            Json::obj([
                ("mean", s.mean.to_json()),
                ("p50", s.p50.to_json()),
                ("p95", s.p95.to_json()),
                ("max", s.max.to_json()),
            ]),
        ));
    }
    println!("{}", Json::obj(fields).to_string_compact());
    for e in &errors {
        eprintln!("loadgen: {e}");
    }
    if errors.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
