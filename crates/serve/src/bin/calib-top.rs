//! A live terminal view of a running `calib-serve` daemon.
//!
//! ```text
//! calib-top --addr HOST:PORT [--interval-ms N] [--iterations N] [--once]
//!           [--check]
//! ```
//!
//! Polls the daemon's tenant-less `metrics` request over TCP and renders
//! the registry as a per-tenant table: decisions per second (from
//! successive polls), inbox queue depth and high water, reconnects, busy
//! drops, and fsync latency percentiles, plus a daemon-wide header line.
//! `--once` prints a single snapshot without clearing the screen (for
//! scripts); `--iterations N` stops after N polls; `--check` additionally
//! verifies that the daemon-wide decision counter equals the sum of the
//! per-tenant counters and fails loudly when it does not.
//!
//! Pointing `--addr` at a `calib-router` works unchanged: the router's
//! merged snapshot carries the same `global`/`per_tenant` shape, plus a
//! `per_shard` array and router counters that render as an extra header
//! and per-shard table. `--check` then also verifies the merged global
//! totals equal the sum over shards (and fails if any shard was
//! unreachable during the merge).
//!
//! Exit status: 0 on success, 1 when `--check` finds an inconsistent
//! snapshot, 2 on usage or connection errors.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use calib_core::json::Json;

struct Args {
    addr: String,
    interval: Duration,
    iterations: Option<u64>,
    once: bool,
    check: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut addr = None;
    let mut interval_ms: u64 = 1000;
    let mut iterations = None;
    let mut once = false;
    let mut check = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")?),
            "--interval-ms" => {
                interval_ms = value("--interval-ms")?
                    .parse()
                    .map_err(|e| format!("--interval-ms: {e}"))?;
            }
            "--iterations" => {
                iterations = Some(
                    value("--iterations")?
                        .parse()
                        .map_err(|e| format!("--iterations: {e}"))?,
                );
            }
            "--once" => once = true,
            "--check" => check = true,
            "--help" | "-h" => {
                return Err("usage: calib-top --addr HOST:PORT [--interval-ms N] \
                     [--iterations N] [--once] [--check]"
                    .to_string());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args {
        addr: addr.ok_or("--addr HOST:PORT is required")?,
        interval: Duration::from_millis(interval_ms.max(1)),
        iterations,
        once,
        check,
    })
}

fn field_u64(v: &Json, key: &str) -> u64 {
    v.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn field_u128(v: &Json, key: &str) -> u128 {
    v.get(key).and_then(Json::as_u128).unwrap_or(0)
}

/// `p50/p95/p99` of a serialized histogram, as a compact `a/b/c` cell.
fn percentile_cell(v: Option<&Json>) -> String {
    match v {
        Some(h) => format!(
            "{}/{}/{}",
            field_u64(h, "p50"),
            field_u64(h, "p95"),
            field_u64(h, "p99")
        ),
        None => "-".to_string(),
    }
}

/// Whole decisions per second from a counter delta over `elapsed`.
fn rate_per_sec(delta: u64, elapsed: Duration) -> u64 {
    let millis = u64::try_from(elapsed.as_millis())
        .unwrap_or(u64::MAX)
        .max(1);
    delta.saturating_mul(1000) / millis
}

/// One poll: previous per-tenant decision counters keyed by tenant name,
/// so rates survive tenants appearing and disappearing between frames.
struct Frame {
    at: Instant,
    decisions: Vec<(String, u64)>,
    global_decisions: u64,
}

fn render(snapshot: &Json, prev: Option<&Frame>, now: Instant, out: &mut impl Write) {
    let g = snapshot.get("global");
    let global_line = match g {
        Some(g) => format!(
            "conns {}/{} open | requests {} | decisions {} | busy {} | shed {} (dropped {}) | rate-ltd {} | detach {} | resume {} | trace-io-err {}",
            field_u64(g, "active_connections"),
            field_u64(g, "connections"),
            field_u64(g, "requests"),
            field_u64(g, "decisions"),
            field_u64(g, "busy_drops"),
            field_u64(g, "sheds"),
            field_u64(g, "shed_disconnects"),
            field_u64(g, "rate_limited"),
            field_u64(g, "detaches"),
            field_u64(g, "resumes"),
            field_u64(g, "trace_io_errors"),
        ),
        None => "no global counters in snapshot".to_string(),
    };
    let _ = writeln!(out, "calib-top | {global_line}");
    let _ = writeln!(
        out,
        "fsync us p50/p95/p99 {} | request us p50/p95/p99 {}",
        percentile_cell(snapshot.get("fsync_micros")),
        percentile_cell(snapshot.get("request_micros")),
    );
    render_router(snapshot, out);
    let _ = writeln!(
        out,
        "{:<16} {:>4} {:>10} {:>7} {:>6} {:>6} {:>6} {:>5} {:>8} {:>5} {:>5} {:>14} {:>12} {:>12}",
        "TENANT",
        "OPEN",
        "DECISIONS",
        "D/S",
        "QDEPTH",
        "QHIGH",
        "RECONN",
        "BUSY",
        "ADMITTED",
        "SHED",
        "RATE",
        "FSYNC-P50/95/99",
        "FLOW",
        "COST"
    );
    let Some(rows) = snapshot.get("per_tenant").and_then(Json::as_arr) else {
        let _ = writeln!(out, "(no tenants)");
        return;
    };
    for row in rows {
        let name = row
            .get("tenant")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        let decisions = field_u64(row, "decisions");
        let rate = prev
            .and_then(|f| {
                f.decisions
                    .iter()
                    .find(|(n, _)| *n == name)
                    .map(|(_, d)| rate_per_sec(decisions.saturating_sub(*d), now - f.at))
            })
            .map_or("-".to_string(), |r| r.to_string());
        let open = match row.get("open") {
            Some(Json::Bool(true)) => "yes",
            Some(Json::Bool(false)) => "no",
            _ => "?",
        };
        let _ = writeln!(
            out,
            "{:<16} {:>4} {:>10} {:>7} {:>6} {:>6} {:>6} {:>5} {:>8} {:>5} {:>5} {:>14} {:>12} {:>12}",
            name,
            open,
            decisions,
            rate,
            field_u64(row, "queue_depth"),
            field_u64(row, "queue_high_water"),
            field_u64(row, "reconnects"),
            field_u64(row, "busy_drops"),
            field_u64(row, "admitted"),
            field_u64(row, "sheds"),
            field_u64(row, "rate_limited"),
            percentile_cell(row.get("fsync_micros")),
            field_u128(row, "flow"),
            field_u128(row, "cost"),
        );
    }
}

/// Extra header and per-shard table for snapshots that came through a
/// `calib-router` (they carry `router` and `per_shard` objects a plain
/// daemon never emits); a no-op for single-daemon snapshots.
fn render_router(snapshot: &Json, out: &mut impl Write) {
    if let Some(r) = snapshot.get("router") {
        let _ = writeln!(
            out,
            "router | forwarded {} | placements {} | migrations {} (failed {}) | busy {} | unreachable {} | migrate us p50/p95/p99 {}",
            field_u64(r, "forwarded_requests"),
            field_u64(r, "placements"),
            field_u64(r, "migrations"),
            field_u64(r, "migration_failures"),
            field_u64(r, "busy_rejects"),
            field_u64(r, "shard_unreachable"),
            percentile_cell(snapshot.get("migration_micros")),
        );
    }
    let Some(shards) = snapshot.get("per_shard").and_then(Json::as_arr) else {
        return;
    };
    let _ = writeln!(
        out,
        "{:<6} {:<22} {:>7} {:>7} {:>10} {:>10} {:>6}",
        "SHARD", "ADDR", "PLACED", "OPEN", "REQUESTS", "DECISIONS", "BUSY"
    );
    for row in shards {
        let addr = row.get("addr").and_then(Json::as_str).unwrap_or("?");
        if let Some(err) = row.get("error").and_then(Json::as_str) {
            let _ = writeln!(out, "{:<6} {:<22} {err}", field_u64(row, "shard"), addr);
            continue;
        }
        let g = row.get("global");
        let cell = |key: &str| g.map_or(0, |g| field_u64(g, key));
        let _ = writeln!(
            out,
            "{:<6} {:<22} {:>7} {:>7} {:>10} {:>10} {:>6}",
            field_u64(row, "shard"),
            addr,
            field_u64(row, "placements"),
            cell("tenants_open"),
            cell("requests"),
            cell("decisions"),
            cell("busy_drops"),
        );
    }
}

/// The counters whose daemon-wide total must equal the per-tenant sum.
/// `shed_disconnects` is deliberately distinct from voluntary-`bye`
/// accounting — a shed drop must never launder into ordinary churn.
const SUM_CHECKED: [&str; 5] = [
    "decisions",
    "admitted",
    "sheds",
    "rate_limited",
    "shed_disconnects",
];

/// `--check`: the registry retains closed tenants precisely so this holds.
fn check_consistent(snapshot: &Json) -> Result<(), String> {
    let g = snapshot
        .get("global")
        .ok_or("snapshot has no `global` object")?;
    for key in SUM_CHECKED {
        let global = field_u64(g, key);
        let per_tenant: u64 = snapshot
            .get("per_tenant")
            .and_then(Json::as_arr)
            .map(|rows| rows.iter().map(|r| field_u64(r, key)).sum())
            .unwrap_or(0);
        if global != per_tenant {
            return Err(format!(
                "global {key} {global} != per-tenant sum {per_tenant}"
            ));
        }
    }
    let global = field_u64(g, "decisions");
    // Through a router the merged global is built by summing the shard
    // snapshots — re-derive it from `per_shard` and demand equality, so
    // a shard dropped from the merge cannot hide.
    if let Some(shards) = snapshot.get("per_shard").and_then(Json::as_arr) {
        if let Some(row) = shards.iter().find(|r| r.get("error").is_some()) {
            return Err(format!(
                "shard {} was unreachable during the merge",
                field_u64(row, "shard")
            ));
        }
        let per_shard: u64 = shards
            .iter()
            .map(|r| r.get("global").map_or(0, |g| field_u64(g, "decisions")))
            .sum();
        if global != per_shard {
            return Err(format!(
                "router global decisions {global} != per-shard sum {per_shard}"
            ));
        }
    }
    Ok(())
}

fn run(args: &Args) -> Result<(), (u8, String)> {
    let usage = |e: std::io::Error| (2u8, format!("cannot reach {}: {e}", args.addr));
    let stream = TcpStream::connect(&args.addr).map_err(usage)?;
    let mut reader = BufReader::new(stream.try_clone().map_err(usage)?);
    let mut writer = BufWriter::new(stream);
    let iterations = if args.once {
        1
    } else {
        args.iterations.unwrap_or(u64::MAX)
    };
    let mut prev: Option<Frame> = None;
    let stdout = std::io::stdout();
    for i in 0..iterations {
        let request = format!("{{\"type\":\"metrics\",\"seq\":{i}}}\n");
        writer
            .write_all(request.as_bytes())
            .and_then(|()| writer.flush())
            .map_err(|e| (2, format!("send failed: {e}")))?;
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| (2, format!("read failed: {e}")))?;
        if n == 0 {
            return Err((2, "daemon closed the connection".to_string()));
        }
        let snapshot =
            Json::parse(line.trim()).map_err(|e| (2, format!("bad metrics reply: {e}")))?;
        if snapshot.get("type").and_then(Json::as_str) == Some("error") {
            return Err((2, format!("daemon error: {}", line.trim())));
        }
        let now = Instant::now();
        let mut out = stdout.lock();
        if !args.once && i > 0 {
            // Clear and home between frames so the table repaints in place.
            let _ = write!(out, "\x1b[2J\x1b[H");
        }
        render(&snapshot, prev.as_ref(), now, &mut out);
        let _ = out.flush();
        drop(out);
        if args.check {
            check_consistent(&snapshot).map_err(|msg| (1, format!("check failed: {msg}")))?;
        }
        let decisions = snapshot
            .get("per_tenant")
            .and_then(Json::as_arr)
            .map(|rows| {
                rows.iter()
                    .map(|r| {
                        (
                            r.get("tenant")
                                .and_then(Json::as_str)
                                .unwrap_or("?")
                                .to_string(),
                            field_u64(r, "decisions"),
                        )
                    })
                    .collect()
            })
            .unwrap_or_default();
        prev = Some(Frame {
            at: now,
            decisions,
            global_decisions: snapshot
                .get("global")
                .map(|g| field_u64(g, "decisions"))
                .unwrap_or(0),
        });
        if i + 1 < iterations {
            std::thread::sleep(args.interval);
        }
    }
    if args.check {
        if let Some(f) = prev.as_ref() {
            let per_tenant: u64 = f.decisions.iter().map(|(_, d)| d).sum();
            if f.global_decisions != per_tenant {
                return Err((
                    1,
                    format!(
                        "check failed: global decisions {} != per-tenant sum {per_tenant}",
                        f.global_decisions
                    ),
                ));
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err((code, msg)) => {
            eprintln!("calib-top: {msg}");
            ExitCode::from(code)
        }
    }
}
