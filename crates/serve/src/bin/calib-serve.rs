//! The scheduling daemon.
//!
//! ```text
//! calib-serve --listen 127.0.0.1:0 [--workers N] [--queue-cap N]
//!             [--trace-dir DIR] [--journal-dir DIR] [--fsync always|tick|off]
//!             [--checkpoint-every-n N] [--compact-on-idle]
//!             [--read-timeout-ms N] [--max-tenants N] [--run-forever]
//!             [--metrics-interval-ms N] [--max-inflight N]
//!             [--rate-per-k N] [--rate-burst N]
//! calib-serve --stdin [--workers N] [--queue-cap N] [--trace-dir DIR]
//! ```
//!
//! With `--journal-dir`, every accepted mutating request is write-ahead
//! journalled per tenant and sessions survive daemon crashes: restart the
//! daemon with the same directory and clients `resume` their tenants.
//! `--checkpoint-every-n N` appends a full-state checkpoint record every
//! `N` journaled records (0 disables) and `--compact-on-idle` rewrites an
//! idle tenant's journal down to a single checkpoint — both bound crash
//! recovery to replaying the tail after the latest checkpoint, and each
//! recovery prints one `{"type":"recovered",...}` line (stdout in TCP
//! mode, stderr in `--stdin` mode) reporting how many records were
//! replayed.
//! `--read-timeout-ms` (default 30000 in TCP mode, 0 disables) bounds how
//! long an accepted socket may sit idle before the daemon sends a typed
//! `read-timeout` error and disconnects; it is always off in `--stdin`
//! mode so interactive use never times out.
//! `--max-inflight N` caps work-bearing requests (arrive/tick/drain) in
//! flight daemon-wide; over the cap, over-fair-share tenants are shed with
//! a typed `shed` error carrying `retry_after_ms`. `--rate-per-k N` grants
//! each tenant `N x weight` tokens per 1000 observed requests (the
//! admission clock is virtual: one tick per request line, no wall clock);
//! an empty bucket answers `rate-limited` with the exact refill time.
//! `--rate-burst N` sizes the bucket at `N x weight` tokens (default 8).
//! Both mechanisms are off by default (0 disables); see SERVE.md
//! "Overload & admission".
//!
//! In TCP mode the daemon prints one `{"type":"listening","addr":...}`
//! line to stdout once the socket is bound (bind port 0 to let the OS
//! pick), serves until idle (every connection closed, every tenant gone),
//! then prints one `{"type":"accounting",...}` line per tenant and a final
//! `{"type":"served",...}` summary. In `--stdin` mode the protocol runs
//! over stdin/stdout and the accounting goes to stderr.
//!
//! Exit status: 0 when every tenant's final schedule passed the
//! feasibility checker, 1 when any failed, 2 on usage or I/O errors.

use std::io::Write;
use std::net::TcpListener;
use std::process::ExitCode;
use std::time::Duration;

use calib_core::json::{Json, ToJson};
use calib_serve::{serve, serve_stream, FsyncPolicy, MetricsSink, ServeReport, ServerConfig};

struct Args {
    listen: Option<String>,
    stdin: bool,
    read_timeout_ms: Option<u64>,
    config: ServerConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: None,
        stdin: false,
        read_timeout_ms: None,
        config: ServerConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--listen" => args.listen = Some(value("--listen")?),
            "--stdin" => args.stdin = true,
            "--workers" => {
                args.config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue-cap" => {
                args.config.queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?;
            }
            "--trace-dir" => {
                args.config.trace_dir = Some(value("--trace-dir")?.into());
            }
            "--journal-dir" => {
                args.config.journal_dir = Some(value("--journal-dir")?.into());
            }
            "--fsync" => {
                let name = value("--fsync")?;
                args.config.fsync = FsyncPolicy::from_name(&name)
                    .ok_or_else(|| format!("--fsync: unknown policy `{name}`"))?;
            }
            "--checkpoint-every-n" => {
                let n: u64 = value("--checkpoint-every-n")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every-n: {e}"))?;
                // 0 disables, like --metrics-interval-ms.
                args.config.checkpoint_every = (n > 0).then_some(n);
            }
            "--compact-on-idle" => args.config.compact_on_idle = true,
            "--read-timeout-ms" => {
                args.read_timeout_ms = Some(
                    value("--read-timeout-ms")?
                        .parse()
                        .map_err(|e| format!("--read-timeout-ms: {e}"))?,
                );
            }
            "--max-tenants" => {
                args.config.max_tenants = value("--max-tenants")?
                    .parse()
                    .map_err(|e| format!("--max-tenants: {e}"))?;
            }
            "--run-forever" => args.config.exit_when_idle = false,
            "--max-inflight" => {
                let n: u64 = value("--max-inflight")?
                    .parse()
                    .map_err(|e| format!("--max-inflight: {e}"))?;
                // 0 disables, like --checkpoint-every-n.
                args.config.admit.max_inflight = (n > 0).then_some(n);
            }
            "--rate-per-k" => {
                let n: u64 = value("--rate-per-k")?
                    .parse()
                    .map_err(|e| format!("--rate-per-k: {e}"))?;
                args.config.admit.rate_per_k = (n > 0).then_some(n);
            }
            "--rate-burst" => {
                args.config.admit.burst = value("--rate-burst")?
                    .parse()
                    .map_err(|e| format!("--rate-burst: {e}"))?;
            }
            "--metrics-interval-ms" => {
                let ms: u64 = value("--metrics-interval-ms")?
                    .parse()
                    .map_err(|e| format!("--metrics-interval-ms: {e}"))?;
                // 0 disables the stream (the `metrics` wire request still
                // works either way).
                args.config.metrics_interval = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--help" | "-h" => {
                return Err("usage: calib-serve --listen ADDR | --stdin \
                     [--workers N] [--queue-cap N] [--trace-dir DIR] \
                     [--journal-dir DIR] [--fsync always|tick|off] \
                     [--checkpoint-every-n N] [--compact-on-idle] \
                     [--read-timeout-ms N] [--max-tenants N] [--run-forever] \
                     [--metrics-interval-ms N] [--max-inflight N] \
                     [--rate-per-k N] [--rate-burst N]"
                    .to_string());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.stdin == args.listen.is_some() {
        return Err("pass exactly one of --listen ADDR or --stdin".to_string());
    }
    // TCP sockets get a generous idle timeout by default so a stalled
    // client cannot pin a reader thread forever; 0 disables. Stdin mode
    // never times out (interactive use).
    let effective = args.read_timeout_ms.unwrap_or(30_000);
    if !args.stdin && effective > 0 {
        args.config.read_timeout = Some(Duration::from_millis(effective));
    }
    Ok(args)
}

fn print_report(report: &ServeReport, mut out: impl Write) {
    for acc in &report.accountings {
        let mut fields = vec![("type", Json::Str("accounting".to_string()))];
        fields.extend(acc.fields());
        let _ = writeln!(out, "{}", Json::obj(fields).to_string_compact());
    }
    let summary = Json::obj([
        ("type", Json::Str("served".to_string())),
        ("tenants", report.accountings.len().to_json()),
        ("connections", report.connections.to_json()),
        ("busy_drops", report.busy_drops.to_json()),
        ("sheds", report.sheds.to_json()),
        ("rate_limited", report.rate_limited.to_json()),
        ("shed_disconnects", report.shed_disconnects.to_json()),
        ("detaches", report.detaches.to_json()),
        ("resumes", report.resumes.to_json()),
        ("recovered", report.recovered.to_json()),
        ("trace_io_errors", report.trace_io_errors.to_json()),
        ("all_ok", Json::Bool(report.all_ok())),
    ]);
    let _ = writeln!(out, "{}", summary.to_string_compact());
    let _ = out.flush();
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut config = args.config;
    if config.metrics_interval.is_some() {
        // Replies own stdout in stdin mode, so snapshots go to stderr
        // there; in TCP mode stdout is the daemon's log channel.
        config.metrics_sink = Some(if args.stdin {
            MetricsSink::stderr()
        } else {
            MetricsSink::stdout()
        });
    }
    if config.journal_dir.is_some() {
        // Recovery reports share the log channel with metrics snapshots.
        config.recovery_log = Some(if args.stdin {
            MetricsSink::stderr()
        } else {
            MetricsSink::stdout()
        });
    }

    let report = if args.stdin {
        let stdout = Box::new(std::io::stdout());
        serve_stream(std::io::stdin().lock(), stdout, config)
    } else {
        let addr = args.listen.as_deref().unwrap_or("127.0.0.1:0");
        let listener = match TcpListener::bind(addr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("cannot bind {addr}: {e}");
                return ExitCode::from(2);
            }
        };
        match listener.local_addr() {
            Ok(local) => {
                let line = Json::obj([
                    ("type", Json::Str("listening".to_string())),
                    ("addr", Json::Str(local.to_string())),
                ]);
                println!("{}", line.to_string_compact());
                let _ = std::io::stdout().flush();
            }
            Err(e) => {
                eprintln!("cannot read local addr: {e}");
                return ExitCode::from(2);
            }
        }
        match serve(listener, config) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("serve failed: {e}");
                return ExitCode::from(2);
            }
        }
    };

    if args.stdin {
        // Replies own stdout in stdin mode; accounting goes to stderr.
        print_report(&report, std::io::stderr());
    } else {
        print_report(&report, std::io::stdout());
    }
    if report.all_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
