//! A seeded fault-injecting TCP proxy for chaos-testing `calib-serve`.
//!
//! ```text
//! calib-chaos --listen 127.0.0.1:0 --upstream HOST:PORT [--seed N]
//!             [--disconnect-per-10k N] [--truncate-per-10k N]
//!             [--duplicate-per-10k N] [--torn-per-10k N]
//!             [--delay-per-10k N] [--delay-ms N]
//! ```
//!
//! Prints one `{"type":"proxying","addr":...,"upstream":...}` line once
//! bound, then relays until killed. Fault rates are per ten thousand
//! relayed lines; all zero by default (a transparent proxy). The same
//! seed against the same traffic injects the same fault schedule.
//!
//! On SIGTERM/kill the proxy simply dies — in-flight connections break,
//! which is itself the fault under test; clients reconnect directly or
//! through a restarted proxy.

use std::io::Write;
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use calib_core::json::Json;
use calib_serve::{run_proxy, FaultPlan, ProxyStats};

struct Args {
    listen: String,
    upstream: String,
    plan: FaultPlan,
}

fn parse_args() -> Result<Args, String> {
    let mut listen = "127.0.0.1:0".to_string();
    let mut upstream: Option<String> = None;
    let mut plan = FaultPlan::default();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        let parse_u32 =
            |name: &str, v: String| v.parse::<u32>().map_err(|e| format!("{name}: {e}"));
        match arg.as_str() {
            "--listen" => listen = value("--listen")?,
            "--upstream" => upstream = Some(value("--upstream")?),
            "--seed" => {
                plan.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--disconnect-per-10k" => {
                plan.disconnect_per_10k =
                    parse_u32("--disconnect-per-10k", value("--disconnect-per-10k")?)?;
            }
            "--truncate-per-10k" => {
                plan.truncate_per_10k =
                    parse_u32("--truncate-per-10k", value("--truncate-per-10k")?)?;
            }
            "--duplicate-per-10k" => {
                plan.duplicate_per_10k =
                    parse_u32("--duplicate-per-10k", value("--duplicate-per-10k")?)?;
            }
            "--torn-per-10k" => {
                plan.torn_per_10k = parse_u32("--torn-per-10k", value("--torn-per-10k")?)?;
            }
            "--delay-per-10k" => {
                plan.delay_per_10k = parse_u32("--delay-per-10k", value("--delay-per-10k")?)?;
            }
            "--delay-ms" => {
                plan.delay_ms = value("--delay-ms")?
                    .parse()
                    .map_err(|e| format!("--delay-ms: {e}"))?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: calib-chaos --upstream HOST:PORT [--listen ADDR] [--seed N] \
                     [--disconnect-per-10k N] [--truncate-per-10k N] [--duplicate-per-10k N] \
                     [--torn-per-10k N] [--delay-per-10k N] [--delay-ms N]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let upstream = upstream.ok_or_else(|| "--upstream HOST:PORT is required".to_string())?;
    Ok(Args {
        listen,
        upstream,
        plan,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let listener = match TcpListener::bind(&args.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", args.listen);
            return ExitCode::from(2);
        }
    };
    match listener.local_addr() {
        Ok(local) => {
            let line = Json::obj([
                ("type", Json::Str("proxying".to_string())),
                ("addr", Json::Str(local.to_string())),
                ("upstream", Json::Str(args.upstream.clone())),
            ]);
            println!("{}", line.to_string_compact());
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("cannot read local addr: {e}");
            return ExitCode::from(2);
        }
    }
    let stop = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ProxyStats::default());
    match run_proxy(listener, args.upstream, args.plan, stop, stats) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("proxy failed: {e}");
            ExitCode::from(2)
        }
    }
}
