//! The daemon-wide metrics registry.
//!
//! One [`ServeMetrics`] lives for the whole server run. Hot paths touch
//! only relaxed atomics ([`LogHistogram`] included — it is an array of
//! atomic buckets), so recording is lock-free; the only mutex guards the
//! tenant map and the per-tenant `flow`/`cost` totals, which change a few
//! times per *session*, not per request.
//!
//! Per-tenant entries are **retained after `bye`** and reused if the same
//! tenant name reopens. That makes the headline invariant hold at every
//! instant: the global `decisions` counter equals the sum of the
//! per-tenant `decisions` counters, including tenants that already closed
//! — `calib-top --check` and the `obs-smoke` CI job both assert it.
//!
//! Snapshots serialize as one-line JSON (`{"type":"metrics","seq":…}`),
//! the same shape the `metrics` wire request returns, the
//! `--metrics-interval-ms` stream emits, and `calib-trace --metrics`
//! renders as counter tracks. `seq` is a monotonic snapshot counter — the
//! stream stays wall-clock-free, so converted traces are deterministic.
//! `flow` and `cost` are exact `u128` totals (`Json::UInt`), matching the
//! engine's exact arithmetic; everything else is `u64`.

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use calib_core::json::{Json, ToJson};
use calib_core::obs::LogHistogram;
use calib_core::Cost;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Cumulative counters for one tenant name (across reopenings).
#[derive(Debug, Default)]
pub struct TenantMetrics {
    /// Calibration + start decisions delivered in replies.
    pub decisions: AtomicU64,
    /// Requests processed by workers for this tenant.
    pub requests: AtomicU64,
    /// Requests answered with `busy` and dropped.
    pub busy_drops: AtomicU64,
    /// Requests admitted through admission control (only counted when a
    /// controller is configured — the denominator of the fairness ratio).
    pub admitted: AtomicU64,
    /// Requests rejected with `shed` (in-flight budget breach).
    pub sheds: AtomicU64,
    /// Requests rejected with `rate-limited` (token bucket empty).
    pub rate_limited: AtomicU64,
    /// Connections the server dropped after shedding this tenant —
    /// forced disconnects, distinct from voluntary `bye` closes.
    pub shed_disconnects: AtomicU64,
    /// Successful `resume` attachments (reconnects and recoveries).
    pub reconnects: AtomicU64,
    /// Inbox depth right now (gauge).
    pub queue_depth: AtomicU64,
    /// Highest inbox depth ever observed.
    pub queue_high_water: AtomicU64,
    /// True while a live session exists for this name.
    pub open: AtomicBool,
    /// Wall-clock journal-append cost for this tenant, microseconds.
    pub fsync_micros: LogHistogram,
    /// Checkpoint records written for this tenant (appends + compactions).
    pub checkpoints: AtomicU64,
    /// Exact running totals from the latest accounting (drain/bye).
    totals: Mutex<(Cost, Cost)>,
}

impl TenantMetrics {
    /// Records the exact `(flow, cost)` totals from an accounting.
    pub fn set_totals(&self, flow: Cost, cost: Cost) {
        *lock(&self.totals) = (flow, cost);
    }

    /// The exact `(flow, cost)` totals last recorded.
    pub fn totals(&self) -> (Cost, Cost) {
        *lock(&self.totals)
    }

    /// Updates the inbox-depth gauge and its high-water mark.
    pub fn set_queue_depth(&self, depth: u64) {
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.queue_high_water.fetch_max(depth, Ordering::Relaxed);
    }

    fn to_json(&self, name: &str) -> Json {
        let (flow, cost) = self.totals();
        Json::obj([
            ("tenant", Json::Str(name.to_string())),
            ("open", Json::Bool(self.open.load(Ordering::Relaxed))),
            (
                "decisions",
                self.decisions.load(Ordering::Relaxed).to_json(),
            ),
            ("requests", self.requests.load(Ordering::Relaxed).to_json()),
            (
                "busy_drops",
                self.busy_drops.load(Ordering::Relaxed).to_json(),
            ),
            ("admitted", self.admitted.load(Ordering::Relaxed).to_json()),
            ("sheds", self.sheds.load(Ordering::Relaxed).to_json()),
            (
                "rate_limited",
                self.rate_limited.load(Ordering::Relaxed).to_json(),
            ),
            (
                "shed_disconnects",
                self.shed_disconnects.load(Ordering::Relaxed).to_json(),
            ),
            (
                "reconnects",
                self.reconnects.load(Ordering::Relaxed).to_json(),
            ),
            (
                "queue_depth",
                self.queue_depth.load(Ordering::Relaxed).to_json(),
            ),
            (
                "queue_high_water",
                self.queue_high_water.load(Ordering::Relaxed).to_json(),
            ),
            ("flow", Json::UInt(flow)),
            ("cost", Json::UInt(cost)),
            ("fsync_micros", self.fsync_micros.snapshot().to_json()),
            (
                "checkpoints",
                self.checkpoints.load(Ordering::Relaxed).to_json(),
            ),
        ])
    }
}

/// The daemon-wide registry: global counters, latency histograms, and the
/// retained per-tenant map.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Connections accepted over the server's lifetime.
    pub connections: AtomicU64,
    /// Connections open right now (gauge).
    pub active_connections: AtomicU64,
    /// Request lines parsed.
    pub requests: AtomicU64,
    /// Calibration + start decisions delivered, all tenants.
    pub decisions: AtomicU64,
    /// Requests answered with `busy`.
    pub busy_drops: AtomicU64,
    /// Requests admitted through admission control, all tenants.
    pub admitted: AtomicU64,
    /// Requests rejected with `shed`, all tenants.
    pub sheds: AtomicU64,
    /// Requests rejected with `rate-limited`, all tenants.
    pub rate_limited: AtomicU64,
    /// Connections dropped after a shed — forced disconnects, counted
    /// separately from voluntary `bye` closes and plain detaches.
    pub shed_disconnects: AtomicU64,
    /// Sessions detached after a disconnect-without-`bye`.
    pub detaches: AtomicU64,
    /// Successful `resume` attachments.
    pub resumes: AtomicU64,
    /// Sessions rebuilt from an on-disk journal.
    pub recovered: AtomicU64,
    /// Trace-sink I/O errors surfaced at finalization.
    pub trace_io_errors: AtomicU64,
    /// Write-ahead journal appends.
    pub journal_appends: AtomicU64,
    /// Journal appends that ended in `fsync`.
    pub journal_syncs: AtomicU64,
    /// Checkpoint records written (appended or via compaction).
    pub checkpoints: AtomicU64,
    /// Journal compactions (checkpoint + truncate via atomic rename).
    pub compactions: AtomicU64,
    /// Serialized checkpoint payload bytes written.
    pub checkpoint_bytes: AtomicU64,
    /// Checkpoint/compaction attempts that failed on I/O (the old journal
    /// stays authoritative, so these degrade recovery cost, not safety).
    pub checkpoint_io_errors: AtomicU64,
    /// Migrated tenants installed from a checkpoint via `adopt`.
    pub adoptions: AtomicU64,
    /// Tenants drained, checkpointed, and removed via `evict`.
    pub evictions: AtomicU64,
    /// Worker time per processed request, microseconds.
    pub request_micros: LogHistogram,
    /// Wall-clock journal-append cost, microseconds, all tenants.
    pub fsync_micros: LogHistogram,
    /// Wall-clock checkpoint write cost (serialize + write + rename),
    /// microseconds.
    pub checkpoint_micros: LogHistogram,
    /// Monotonic snapshot sequence number.
    snapshots: AtomicU64,
    tenants: Mutex<BTreeMap<String, Arc<TenantMetrics>>>,
}

impl ServeMetrics {
    /// A fresh registry.
    pub fn new() -> ServeMetrics {
        ServeMetrics::default()
    }

    /// The metrics entry for `name`, created on first use and **reused**
    /// when a closed tenant name reopens — cumulative counters never
    /// reset, so global totals always equal per-tenant sums.
    pub fn tenant(&self, name: &str) -> Arc<TenantMetrics> {
        let mut tenants = lock(&self.tenants);
        Arc::clone(
            tenants
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(TenantMetrics::default())),
        )
    }

    /// Counts `n` decisions against both the global total and `tenant`'s.
    pub fn record_decisions(&self, tenant: &TenantMetrics, n: u64) {
        if n > 0 {
            self.decisions.fetch_add(n, Ordering::Relaxed);
            tenant.decisions.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records one journal append: its wall-clock cost in both histograms
    /// (global and per-tenant) and the append/sync counters.
    pub fn record_journal_append(&self, tenant: &TenantMetrics, micros: u64, synced: bool) {
        self.journal_appends.fetch_add(1, Ordering::Relaxed);
        if synced {
            self.journal_syncs.fetch_add(1, Ordering::Relaxed);
        }
        self.fsync_micros.record(micros);
        tenant.fsync_micros.record(micros);
    }

    /// Records one successful checkpoint write: latency, payload size, and
    /// whether it compacted the journal (rewrote it as `[checkpoint]`)
    /// rather than appending.
    pub fn record_checkpoint(
        &self,
        tenant: &TenantMetrics,
        micros: u64,
        bytes: u64,
        compacted: bool,
    ) {
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        if compacted {
            self.compactions.fetch_add(1, Ordering::Relaxed);
        }
        self.checkpoint_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.checkpoint_micros.record(micros);
        tenant.checkpoints.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one failed checkpoint/compaction attempt.
    pub fn record_checkpoint_error(&self) {
        self.checkpoint_io_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one admitted request against both the global total and
    /// `tenant`'s — the invariant `global == Σ per-tenant` must hold for
    /// every admission counter, like `decisions`.
    pub fn record_admitted(&self, tenant: &TenantMetrics) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
        tenant.admitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one `shed` rejection; `disconnected` adds the forced-drop
    /// counter on top (journaling mode drops the connection after the
    /// typed reply).
    pub fn record_shed(&self, tenant: &TenantMetrics, disconnected: bool) {
        self.sheds.fetch_add(1, Ordering::Relaxed);
        tenant.sheds.fetch_add(1, Ordering::Relaxed);
        if disconnected {
            self.shed_disconnects.fetch_add(1, Ordering::Relaxed);
            tenant.shed_disconnects.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one `rate-limited` rejection.
    pub fn record_rate_limited(&self, tenant: &TenantMetrics) {
        self.rate_limited.fetch_add(1, Ordering::Relaxed);
        tenant.rate_limited.fetch_add(1, Ordering::Relaxed);
    }

    /// Open sessions right now.
    pub fn open_tenants(&self) -> u64 {
        let tenants = lock(&self.tenants);
        let open = tenants
            .values()
            .filter(|t| t.open.load(Ordering::Relaxed))
            .count();
        u64::try_from(open).unwrap_or(u64::MAX)
    }

    /// Serializes one snapshot, advancing the monotonic `seq`.
    ///
    /// Shape: `{"type":"metrics","seq":N,"global":{…u64 totals…},
    /// "request_micros":{…},"fsync_micros":{…},"per_tenant":[…]}`.
    /// The per-tenant array is sorted by name and includes closed tenants
    /// (their counters stay in the sums).
    pub fn snapshot_json(&self) -> Json {
        let seq = self.snapshots.fetch_add(1, Ordering::Relaxed);
        let global = Json::obj([
            (
                "connections",
                self.connections.load(Ordering::Relaxed).to_json(),
            ),
            (
                "active_connections",
                self.active_connections.load(Ordering::Relaxed).to_json(),
            ),
            ("requests", self.requests.load(Ordering::Relaxed).to_json()),
            (
                "decisions",
                self.decisions.load(Ordering::Relaxed).to_json(),
            ),
            (
                "busy_drops",
                self.busy_drops.load(Ordering::Relaxed).to_json(),
            ),
            ("admitted", self.admitted.load(Ordering::Relaxed).to_json()),
            ("sheds", self.sheds.load(Ordering::Relaxed).to_json()),
            (
                "rate_limited",
                self.rate_limited.load(Ordering::Relaxed).to_json(),
            ),
            (
                "shed_disconnects",
                self.shed_disconnects.load(Ordering::Relaxed).to_json(),
            ),
            ("detaches", self.detaches.load(Ordering::Relaxed).to_json()),
            ("resumes", self.resumes.load(Ordering::Relaxed).to_json()),
            (
                "recovered",
                self.recovered.load(Ordering::Relaxed).to_json(),
            ),
            (
                "trace_io_errors",
                self.trace_io_errors.load(Ordering::Relaxed).to_json(),
            ),
            (
                "journal_appends",
                self.journal_appends.load(Ordering::Relaxed).to_json(),
            ),
            (
                "journal_syncs",
                self.journal_syncs.load(Ordering::Relaxed).to_json(),
            ),
            (
                "checkpoints",
                self.checkpoints.load(Ordering::Relaxed).to_json(),
            ),
            (
                "compactions",
                self.compactions.load(Ordering::Relaxed).to_json(),
            ),
            (
                "checkpoint_bytes",
                self.checkpoint_bytes.load(Ordering::Relaxed).to_json(),
            ),
            (
                "checkpoint_io_errors",
                self.checkpoint_io_errors.load(Ordering::Relaxed).to_json(),
            ),
            (
                "adoptions",
                self.adoptions.load(Ordering::Relaxed).to_json(),
            ),
            (
                "evictions",
                self.evictions.load(Ordering::Relaxed).to_json(),
            ),
            ("tenants_open", self.open_tenants().to_json()),
        ]);
        let per_tenant: Vec<Json> = {
            let tenants = lock(&self.tenants);
            tenants.iter().map(|(name, t)| t.to_json(name)).collect()
        };
        Json::obj([
            ("type", Json::Str("metrics".to_string())),
            ("seq", seq.to_json()),
            ("global", global),
            ("request_micros", self.request_micros.snapshot().to_json()),
            ("fsync_micros", self.fsync_micros.snapshot().to_json()),
            (
                "checkpoint_micros",
                self.checkpoint_micros.snapshot().to_json(),
            ),
            ("per_tenant", Json::Arr(per_tenant)),
        ])
    }
}

/// A shared, clonable line sink for the periodic metrics stream.
///
/// Write errors shut the sink off (like the server's reply sinks): a dead
/// metrics consumer must never take the daemon down.
#[derive(Clone)]
pub struct MetricsSink(Arc<Mutex<Option<Box<dyn Write + Send>>>>);

impl fmt::Debug for MetricsSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("MetricsSink")
    }
}

impl MetricsSink {
    /// A sink over any line-oriented writer.
    pub fn new(writer: Box<dyn Write + Send>) -> MetricsSink {
        MetricsSink(Arc::new(Mutex::new(Some(writer))))
    }

    /// A sink writing to stderr (the `--stdin` transport, where stdout
    /// carries protocol replies).
    pub fn stderr() -> MetricsSink {
        MetricsSink::new(Box::new(std::io::stderr()))
    }

    /// A sink writing to stdout (the TCP transport).
    pub fn stdout() -> MetricsSink {
        MetricsSink::new(Box::new(std::io::stdout()))
    }

    /// Writes one snapshot line (newline appended).
    pub fn write_snapshot(&self, snapshot: &Json) {
        // The sink lock serializes whole snapshot lines onto the shared
        // writer — it must span the write.
        // lint:allow(lock-discipline): deliberate hold across the write
        let mut guard = lock(&self.0);
        if let Some(w) = guard.as_mut() {
            let mut line = snapshot.to_string_compact();
            line.push('\n');
            if w.write_all(line.as_bytes()).is_err() || w.flush().is_err() {
                *guard = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_entries_are_retained_and_reused() {
        let m = ServeMetrics::new();
        let a1 = m.tenant("a");
        a1.decisions.fetch_add(5, Ordering::Relaxed);
        a1.open.store(false, Ordering::Relaxed);
        // Same name later: same counters, nothing reset.
        let a2 = m.tenant("a");
        assert!(Arc::ptr_eq(&a1, &a2));
        assert_eq!(a2.decisions.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn global_decisions_equal_per_tenant_sum() {
        let m = Arc::new(ServeMetrics::new());
        std::thread::scope(|scope| {
            for name in ["a", "b", "c"] {
                let m = Arc::clone(&m);
                scope.spawn(move || {
                    let t = m.tenant(name);
                    for i in 0..1000u64 {
                        m.record_decisions(&t, i % 3);
                    }
                });
            }
        });
        let snapshot = m.snapshot_json();
        let global = snapshot
            .get("global")
            .and_then(|g| g.get("decisions"))
            .and_then(Json::as_u64)
            .unwrap();
        let sum: u64 = snapshot
            .get("per_tenant")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|t| t.get("decisions").and_then(Json::as_u64).unwrap())
            .sum();
        assert_eq!(global, sum);
        assert_eq!(global, 3 * 999);
    }

    #[test]
    fn admission_counters_keep_the_sum_invariant() {
        let m = ServeMetrics::new();
        let a = m.tenant("a");
        let b = m.tenant("b");
        for _ in 0..8 {
            m.record_admitted(&a);
        }
        m.record_admitted(&b);
        m.record_shed(&a, true);
        m.record_shed(&b, false);
        m.record_rate_limited(&b);
        let snap = m.snapshot_json();
        let global = snap.get("global").unwrap();
        for key in ["admitted", "sheds", "rate_limited", "shed_disconnects"] {
            let g = global.get(key).and_then(Json::as_u64).unwrap();
            let sum: u64 = snap
                .get("per_tenant")
                .and_then(Json::as_arr)
                .unwrap()
                .iter()
                .map(|t| t.get(key).and_then(Json::as_u64).unwrap())
                .sum();
            assert_eq!(g, sum, "global {key} must equal the per-tenant sum");
        }
        assert_eq!(global.get("sheds").and_then(Json::as_u64), Some(2));
        assert_eq!(
            global.get("shed_disconnects").and_then(Json::as_u64),
            Some(1),
            "only the disconnecting shed counts as a forced drop"
        );
    }

    #[test]
    fn snapshot_seq_is_monotonic_and_shape_is_stable() {
        let m = ServeMetrics::new();
        let t = m.tenant("t");
        t.set_totals(u128::MAX, u128::MAX);
        m.record_journal_append(&t, 150, true);
        let s0 = m.snapshot_json();
        let s1 = m.snapshot_json();
        assert_eq!(s0.get("seq").and_then(Json::as_u64), Some(0));
        assert_eq!(s1.get("seq").and_then(Json::as_u64), Some(1));
        assert_eq!(s0.get("type").and_then(Json::as_str), Some("metrics"));
        // u128 totals survive the JSON round trip exactly.
        let line = s0.to_string_compact();
        let back = Json::parse(&line).unwrap();
        let tenant0 = &back.get("per_tenant").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(tenant0.get("flow").and_then(Json::as_u128), Some(u128::MAX));
        assert_eq!(
            back.get("global")
                .and_then(|g| g.get("journal_syncs"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            back.get("fsync_micros")
                .and_then(|h| h.get("count"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn sink_survives_a_dead_writer() {
        struct Dead;
        impl Write for Dead {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "gone"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = MetricsSink::new(Box::new(Dead));
        let m = ServeMetrics::new();
        // Both writes are absorbed; the second hits the shut-off sink.
        sink.write_snapshot(&m.snapshot_json());
        sink.write_snapshot(&m.snapshot_json());
    }
}
