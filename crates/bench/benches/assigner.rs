//! Criterion bench for the Observation 2.1 greedy assigner (experiment E7):
//! throughput of optimal job-to-slot assignment given calibration times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use calib_core::{assign_greedy, Time};
use calib_workloads::{arrivals, make_instance, WeightModel};

fn bench_assigner(c: &mut Criterion) {
    let mut group = c.benchmark_group("assigner");
    for &n in &[1000usize, 10_000, 100_000] {
        let inst = make_instance(
            arrivals::poisson(21, n, 0.8, true),
            WeightModel::Uniform { max: 16 },
            21,
            1,
            16,
        );
        // One calibration per 8 jobs, spread across the release span.
        let max_r = inst.max_release().unwrap();
        let k = (n / 8).max(1) as Time;
        let times: Vec<Time> = (0..k).map(|i| i * (max_r / k).max(1)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| black_box(assign_greedy(inst, &times)));
        });
    }
    group.finish();
}

fn bench_assigner_multi_machine(c: &mut Criterion) {
    let mut group = c.benchmark_group("assigner_multi");
    let n = 10_000;
    for &p in &[1usize, 4, 16] {
        let inst = make_instance(
            arrivals::bursty(n / 20, 20, 25, false),
            WeightModel::Unit,
            22,
            p,
            10,
        );
        let times: Vec<Time> = (0..(n / 10) as Time).map(|i| i * 12).collect();
        group.bench_with_input(BenchmarkId::new("machines", p), &inst, |b, inst| {
            b.iter(|| black_box(assign_greedy(inst, &times)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_assigner, bench_assigner_multi_machine);
criterion_main!(benches);
