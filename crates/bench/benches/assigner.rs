//! Bench for the Observation 2.1 greedy assigner (experiment E7):
//! throughput of optimal job-to-slot assignment given calibration times.

use calib_bench::harness::Bench;
use calib_core::{assign_greedy, Time};
use calib_workloads::{arrivals, make_instance, WeightModel};

fn main() {
    let mut b = Bench::new("assigner");

    for &n in &[1000usize, 10_000, 100_000] {
        let inst = make_instance(
            arrivals::poisson(21, n, 0.8, true),
            WeightModel::Uniform { max: 16 },
            21,
            1,
            16,
        );
        // One calibration per 8 jobs, spread across the release span.
        let max_r = inst.max_release().unwrap();
        let k = (n / 8).max(1) as Time;
        let times: Vec<Time> = (0..k).map(|i| i * (max_r / k).max(1)).collect();
        b.bench(&format!("poisson/{n}"), || assign_greedy(&inst, &times));
    }

    let n = 10_000;
    for &p in &[1usize, 4, 16] {
        let inst = make_instance(
            arrivals::bursty(n / 20, 20, 25, false),
            WeightModel::Unit,
            22,
            p,
            10,
        );
        let times: Vec<Time> = (0..(n / 10) as Time).map(|i| i * 12).collect();
        b.bench(&format!("multi/machines/{p}"), || {
            assign_greedy(&inst, &times)
        });
    }

    b.finish();
}
