//! Criterion benches for the online algorithms: throughput of full runs on
//! the standard workload families (engine + algorithm, end to end).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use calib_online::{run_online, Alg1, Alg2, Alg3};
use calib_workloads::{arrivals, make_instance, WeightModel};

fn bench_alg1(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg1");
    for &n in &[100usize, 1000, 10_000] {
        let inst = make_instance(
            arrivals::poisson(7, n, 0.5, true),
            WeightModel::Unit,
            7,
            1,
            8,
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| black_box(run_online(inst, 40, &mut Alg1::new()).cost));
        });
    }
    group.finish();
}

fn bench_alg2(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg2");
    for &n in &[100usize, 1000, 10_000] {
        let inst = make_instance(
            arrivals::poisson(8, n, 0.5, true),
            WeightModel::Pareto { alpha: 1.2, cap: 64 },
            8,
            1,
            8,
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| black_box(run_online(inst, 40, &mut Alg2::new()).cost));
        });
    }
    group.finish();
}

fn bench_alg3(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg3");
    for &p in &[2usize, 4, 8] {
        let inst = make_instance(
            arrivals::bursty(50, 20, 60, false),
            WeightModel::Unit,
            9,
            p,
            10,
        );
        group.bench_with_input(BenchmarkId::new("machines", p), &inst, |b, inst| {
            b.iter(|| black_box(run_online(inst, 30, &mut Alg3::new()).cost));
        });
    }
    group.finish();
}

fn bench_engine_skipping(c: &mut Criterion) {
    // Sparse workload with huge dead stretches: event skipping should make
    // the run orders of magnitude cheaper than slot-by-slot stepping.
    use calib_online::{run_online_with, EngineConfig};
    let inst = make_instance(
        (0..60).map(|i| i * 5_000).collect(),
        WeightModel::Unit,
        10,
        1,
        16,
    );
    let mut group = c.benchmark_group("engine_skipping");
    group.sample_size(10);
    group.bench_function("skip", |b| {
        b.iter(|| {
            black_box(
                run_online_with(&inst, 40, &mut Alg1::new(), EngineConfig::default()).cost,
            )
        })
    });
    group.bench_function("no_skip", |b| {
        b.iter(|| {
            black_box(
                run_online_with(&inst, 40, &mut Alg1::new(), EngineConfig::no_skip()).cost,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_alg1, bench_alg2, bench_alg3, bench_engine_skipping);
criterion_main!(benches);
