//! Benches for the online algorithms: throughput of full runs on the
//! standard workload families (engine + algorithm, end to end).

use calib_bench::harness::Bench;
use calib_online::{run_online, run_online_with, Alg1, Alg2, Alg3, EngineConfig};
use calib_workloads::{arrivals, make_instance, WeightModel};

fn main() {
    let mut b = Bench::new("alg_online");

    for &n in &[100usize, 1000, 10_000] {
        let inst = make_instance(
            arrivals::poisson(7, n, 0.5, true),
            WeightModel::Unit,
            7,
            1,
            8,
        );
        b.bench(&format!("alg1/{n}"), || {
            run_online(&inst, 40, &mut Alg1::new()).cost
        });
    }

    for &n in &[100usize, 1000, 10_000] {
        let inst = make_instance(
            arrivals::poisson(8, n, 0.5, true),
            WeightModel::Pareto {
                alpha: 1.2,
                cap: 64,
            },
            8,
            1,
            8,
        );
        b.bench(&format!("alg2/{n}"), || {
            run_online(&inst, 40, &mut Alg2::new()).cost
        });
    }

    for &p in &[2usize, 4, 8] {
        let inst = make_instance(
            arrivals::bursty(50, 20, 60, false),
            WeightModel::Unit,
            9,
            p,
            10,
        );
        b.bench(&format!("alg3/machines/{p}"), || {
            run_online(&inst, 30, &mut Alg3::new()).cost
        });
    }

    // Sparse workload with huge dead stretches: event skipping should make
    // the run orders of magnitude cheaper than slot-by-slot stepping.
    let sparse = make_instance(
        (0..60).map(|i| i * 5_000).collect(),
        WeightModel::Unit,
        10,
        1,
        16,
    );
    b.bench("engine_skipping/skip", || {
        run_online_with(&sparse, 40, &mut Alg1::new(), EngineConfig::default()).cost
    });
    b.bench("engine_skipping/no_skip", || {
        run_online_with(&sparse, 40, &mut Alg1::new(), EngineConfig::no_skip()).cost
    });

    b.finish();
}
