//! Bench for the offline dynamic program (Theorem 4.7) — the runtime
//! series behind experiment E6.

use calib_bench::harness::Bench;
use calib_offline::solve_offline;
use calib_workloads::{arrivals, make_instance, WeightModel};

fn main() {
    let mut b = Bench::new("offline_dp");

    for &n in &[20usize, 40, 80] {
        let inst = make_instance(
            arrivals::poisson(11, n, 0.6, true),
            WeightModel::Uniform { max: 9 },
            11,
            1,
            4,
        );
        let budget = n.div_ceil(4);
        b.bench(&format!("by_n/{n}"), || {
            solve_offline(&inst, budget).unwrap().unwrap().flow
        });
    }

    let n = 40;
    let inst = make_instance(
        arrivals::poisson(12, n, 0.6, true),
        WeightModel::Uniform { max: 9 },
        12,
        1,
        4,
    );
    for &k in &[10usize, 20, 40] {
        b.bench(&format!("by_budget/{k}"), || {
            solve_offline(&inst, k).unwrap().unwrap().flow
        });
    }

    b.finish();
}
