//! Criterion bench for the offline dynamic program (Theorem 4.7) —
//! the runtime series behind experiment E6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use calib_offline::solve_offline;
use calib_workloads::{arrivals, make_instance, WeightModel};

fn bench_dp_by_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline_dp_n");
    group.sample_size(10);
    for &n in &[20usize, 40, 80] {
        let inst = make_instance(
            arrivals::poisson(11, n, 0.6, true),
            WeightModel::Uniform { max: 9 },
            11,
            1,
            4,
        );
        let budget = n.div_ceil(4);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| black_box(solve_offline(inst, budget).unwrap().unwrap().flow));
        });
    }
    group.finish();
}

fn bench_dp_by_budget(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline_dp_k");
    group.sample_size(10);
    let n = 40;
    let inst = make_instance(
        arrivals::poisson(12, n, 0.6, true),
        WeightModel::Uniform { max: 9 },
        12,
        1,
        4,
    );
    for &k in &[10usize, 20, 40] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &inst, |b, inst| {
            b.iter(|| black_box(solve_offline(inst, k).unwrap().unwrap().flow));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dp_by_n, bench_dp_by_budget);
criterion_main!(benches);
