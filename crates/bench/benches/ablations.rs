//! Bench comparing ablated variants head-to-head (experiment E10's runtime
//! side): the variants cost the same asymptotically; this bench documents
//! that enabling the paper's extra rules is computationally free.

use calib_bench::harness::Bench;
use calib_online::{run_alg3_practical, run_online, Alg1, Alg2, Alg3};
use calib_workloads::{arrivals, make_instance, WeightModel};

fn main() {
    let mut b = Bench::new("ablations");

    let stair = make_instance(
        arrivals::staircase(40, 15, true),
        WeightModel::Unit,
        31,
        1,
        6,
    );
    b.bench("alg1/immediate_on", || {
        run_online(&stair, 25, &mut Alg1::new()).cost
    });
    b.bench("alg1/immediate_off", || {
        run_online(&stair, 25, &mut Alg1::without_immediate_rule()).cost
    });

    let weighted = make_instance(
        arrivals::poisson(32, 2000, 0.4, true),
        WeightModel::Pareto {
            alpha: 1.3,
            cap: 50,
        },
        32,
        1,
        6,
    );
    b.bench("alg2/heaviest_first", || {
        run_online(&weighted, 25, &mut Alg2::new()).cost
    });
    b.bench("alg2/lightest_first", || {
        run_online(&weighted, 25, &mut Alg2::lightest_first()).cost
    });

    let multi = make_instance(
        arrivals::bursty(60, 10, 30, false),
        WeightModel::Unit,
        33,
        4,
        8,
    );
    b.bench("alg3/spec", || {
        run_online(&multi, 20, &mut Alg3::new()).cost
    });
    b.bench("alg3/practical", || run_alg3_practical(&multi, 20).cost);

    b.finish();
}
