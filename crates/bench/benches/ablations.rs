//! Criterion bench comparing ablated variants head-to-head (experiment
//! E10's runtime side): the variants cost the same asymptotically; this
//! bench documents that enabling the paper's extra rules is computationally
//! free.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use calib_online::{run_alg3_practical, run_online, Alg1, Alg2, Alg3};
use calib_workloads::{arrivals, make_instance, WeightModel};

fn bench_alg1_variants(c: &mut Criterion) {
    let inst = make_instance(
        arrivals::staircase(40, 15, true),
        WeightModel::Unit,
        31,
        1,
        6,
    );
    let mut group = c.benchmark_group("ablate_alg1");
    group.bench_function("immediate_on", |b| {
        b.iter(|| black_box(run_online(&inst, 25, &mut Alg1::new()).cost))
    });
    group.bench_function("immediate_off", |b| {
        b.iter(|| black_box(run_online(&inst, 25, &mut Alg1::without_immediate_rule()).cost))
    });
    group.finish();
}

fn bench_alg2_variants(c: &mut Criterion) {
    let inst = make_instance(
        arrivals::poisson(32, 2000, 0.4, true),
        WeightModel::Pareto { alpha: 1.3, cap: 50 },
        32,
        1,
        6,
    );
    let mut group = c.benchmark_group("ablate_alg2");
    group.bench_function("heaviest_first", |b| {
        b.iter(|| black_box(run_online(&inst, 25, &mut Alg2::new()).cost))
    });
    group.bench_function("lightest_first", |b| {
        b.iter(|| black_box(run_online(&inst, 25, &mut Alg2::lightest_first()).cost))
    });
    group.finish();
}

fn bench_alg3_variants(c: &mut Criterion) {
    let inst = make_instance(
        arrivals::bursty(60, 10, 30, false),
        WeightModel::Unit,
        33,
        4,
        8,
    );
    let mut group = c.benchmark_group("ablate_alg3");
    group.bench_function("spec", |b| {
        b.iter(|| black_box(run_online(&inst, 20, &mut Alg3::new()).cost))
    });
    group.bench_function("practical", |b| {
        b.iter(|| black_box(run_alg3_practical(&inst, 20).cost))
    });
    group.finish();
}

criterion_group!(benches, bench_alg1_variants, bench_alg2_variants, bench_alg3_variants);
criterion_main!(benches);
