//! Bench for the simplex substrate on the Figure 1 LPs (experiment E8's
//! runtime side).

use calib_bench::harness::Bench;
use calib_lp::lp_lower_bound;
use calib_workloads::{arrivals, make_instance, WeightModel};

fn main() {
    let mut b = Bench::new("lp_solver");

    for &n in &[4usize, 6, 8] {
        let inst = make_instance(
            arrivals::uniform_spread(41, n, 2 * n as i64, true),
            WeightModel::Unit,
            41,
            1,
            3,
        );
        b.bench(&format!("flow_lp/{n}"), || {
            lp_lower_bound(&inst, 5).unwrap()
        });
    }

    for &p in &[1usize, 2, 3] {
        let inst = make_instance(
            arrivals::bursty(3, 2, 4, false),
            WeightModel::Unit,
            42,
            p,
            3,
        );
        b.bench(&format!("flow_lp/machines/{p}"), || {
            lp_lower_bound(&inst, 5).unwrap()
        });
    }

    b.finish();
}
