//! Criterion bench for the simplex substrate on the Figure 1 LPs
//! (experiment E8's runtime side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use calib_lp::lp_lower_bound;
use calib_workloads::{arrivals, make_instance, WeightModel};

fn bench_flow_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_lp");
    group.sample_size(10);
    for &n in &[4usize, 6, 8] {
        let inst = make_instance(
            arrivals::uniform_spread(41, n, 2 * n as i64, true),
            WeightModel::Unit,
            41,
            1,
            3,
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| black_box(lp_lower_bound(inst, 5).unwrap()));
        });
    }
    group.finish();
}

fn bench_flow_lp_machines(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_lp_machines");
    group.sample_size(10);
    for &p in &[1usize, 2, 3] {
        let inst = make_instance(
            arrivals::bursty(3, 2, 4, false),
            WeightModel::Unit,
            42,
            p,
            3,
        );
        group.bench_with_input(BenchmarkId::new("machines", p), &inst, |b, inst| {
            b.iter(|| black_box(lp_lower_bound(inst, 5).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flow_lp, bench_flow_lp_machines);
criterion_main!(benches);
