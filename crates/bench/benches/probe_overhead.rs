//! Probe-cost bench: the observability layer's acceptance criterion.
//!
//! `noop_explicit` must sit within noise of `plain` — `NoopProbe` disables
//! every emission site at compile time (`Probe::ENABLED = false`), so the
//! un-probed engine and the `NoopProbe`-probed engine are the same machine
//! code. `counting` and `recording` then show what actually *using* the
//! layer costs.

use calib_bench::harness::Bench;
use calib_core::obs::{Counters, CountingProbe, NoopProbe, RecordingProbe};
use calib_online::{run_online, run_online_probed, Alg3, EngineConfig};
use calib_workloads::{arrivals, make_instance, WeightModel};

fn main() {
    let mut b = Bench::new("probe_overhead");

    let inst = make_instance(
        arrivals::poisson(17, 2000, 0.6, true),
        WeightModel::Uniform { max: 9 },
        17,
        4,
        10,
    );
    let g = 40;

    b.bench("plain", || run_online(&inst, g, &mut Alg3::new()).cost);
    b.bench("noop_explicit", || {
        run_online_probed(
            &inst,
            g,
            &mut Alg3::new(),
            EngineConfig::default(),
            &mut NoopProbe,
        )
        .cost
    });
    let counters = Counters::new();
    b.bench("counting", || {
        let mut probe = CountingProbe::new(&counters);
        run_online_probed(
            &inst,
            g,
            &mut Alg3::new(),
            EngineConfig::default(),
            &mut probe,
        )
        .cost
    });
    b.bench("recording", || {
        let mut probe = RecordingProbe::new();
        let cost = run_online_probed(
            &inst,
            g,
            &mut Alg3::new(),
            EngineConfig::default(),
            &mut probe,
        )
        .cost;
        assert!(!probe.events.is_empty());
        cost
    });

    b.finish();
}
