//! Serve-layer throughput: what the daemon costs over the bare engine.
//!
//! Three layers, measured separately so a regression is attributable:
//!
//! * `batch_run` / `session_ticked` — the engine itself, batch vs the
//!   re-entrant `EngineSession` stepped once per distinct release (the
//!   daemon's access pattern). These must stay close: the session IS the
//!   batch loop, just re-entrant.
//! * `protocol_parse` / `protocol_serialize` — wire-format costs per
//!   message, on a representative `arrive` line.
//! * `serve_stream_session` — a full in-process daemon pass (hello →
//!   arrive/tick per release → drain → bye) through `serve_stream`, the
//!   same code path TCP connections use minus the socket.
//! * `serve_stream_journaled` — the same pass with the write-ahead
//!   journal on (`fsync off`, so the number is the serialization and
//!   buffered-write overhead, not the disk's sync latency).
//! * `serve_stream_checkpointed` — the journaled pass plus cadence
//!   checkpoints and idle compaction; the gate bounds its ratio over
//!   `serve_stream_journaled` so recovery-bounding stays cheap.
//! * `serve_stream_admitted` — the journaled pass with admission control
//!   armed but never firing (huge budget and refill, so every request
//!   admits); the gate bounds its ratio over `serve_stream_journaled` so
//!   the per-request admission gate stays in the noise.
//! * `metrics_overhead` — the same pass as `serve_stream_session` but with
//!   the periodic metrics snapshot stream enabled. The bench gate holds
//!   the `metrics_overhead / serve_stream_session` ratio under a tight
//!   bound: always-on counters plus the snapshot thread must stay in the
//!   noise of the serve path.

use calib_bench::harness::Bench;
use calib_core::json::{Json, ToJson};
use calib_core::{Instance, Job};
use calib_difftest::{gen_case_sized, GenParams};
use calib_online::{run_online, Alg2, EngineConfig, EngineSession};
use calib_serve::{
    serve_stream, AdmitConfig, Algorithm, FsyncPolicy, MetricsSink, Request, ServerConfig,
};

/// The daemon's arrival pattern: jobs grouped by release, ascending.
fn release_groups(instance: &Instance) -> Vec<(i64, Vec<Job>)> {
    let mut jobs = instance.jobs().to_vec();
    jobs.sort_by_key(|j| (j.release, j.id));
    let mut groups: Vec<(i64, Vec<Job>)> = Vec::new();
    for job in jobs {
        match groups.last_mut() {
            Some((r, batch)) if *r == job.release => batch.push(job),
            _ => groups.push((job.release, vec![job])),
        }
    }
    groups
}

fn transcript(instance: &Instance, cal_cost: u128, groups: &[(i64, Vec<Job>)]) -> String {
    let mut lines = vec![Json::obj([
        ("type", "hello".to_json()),
        ("tenant", "bench".to_json()),
        ("machines", instance.machines().to_json()),
        ("cal_len", instance.cal_len().to_json()),
        ("cal_cost", cal_cost.to_json()),
        ("algorithm", Algorithm::Alg2.name().to_json()),
    ])
    .to_string_compact()];
    for (release, batch) in groups {
        lines.push(
            Json::obj([
                ("type", "arrive".to_json()),
                ("tenant", "bench".to_json()),
                ("jobs", batch.to_json()),
            ])
            .to_string_compact(),
        );
        lines.push(
            Json::obj([
                ("type", "tick".to_json()),
                ("tenant", "bench".to_json()),
                ("now", release.to_json()),
            ])
            .to_string_compact(),
        );
    }
    lines.push(r#"{"type":"drain","tenant":"bench"}"#.to_string());
    lines.push(r#"{"type":"bye","tenant":"bench"}"#.to_string());
    lines.join("\n") + "\n"
}

fn main() {
    let mut b = Bench::new("serve");

    let params = GenParams {
        max_p: 1,
        max_t: 8,
        max_g: 60,
        max_n: 1,
        max_weight: 9,
    };
    let case = gen_case_sized(2017, &params, 1500);
    let instance = &case.instance;
    let groups = release_groups(instance);

    b.bench("batch_run", || {
        run_online(instance, case.cal_cost, &mut Alg2::new()).cost
    });

    b.bench("session_ticked", || {
        let mut session = EngineSession::new(
            instance.machines(),
            instance.cal_len(),
            case.cal_cost,
            EngineConfig::default(),
        )
        .expect("machines >= 1");
        let mut scheduler = Alg2::new();
        let mut decisions = 0usize;
        for (release, batch) in &groups {
            decisions += session
                .step(*release, batch, &mut scheduler)
                .expect("bench instance is well-formed")
                .len();
        }
        decisions += session
            .drain(&mut scheduler)
            .expect("drain cannot fail on a well-formed instance")
            .len();
        let (outcome, _) = session.finish();
        assert!(decisions >= instance.n());
        outcome.cost
    });

    let mut sample_jobs: Vec<Job> = groups.iter().flat_map(|(_, b)| b.clone()).collect();
    sample_jobs.truncate(32);
    let arrive_line = Json::obj([
        ("type", "arrive".to_json()),
        ("tenant", "bench".to_json()),
        ("jobs", sample_jobs.to_json()),
        ("seq", 7u64.to_json()),
    ])
    .to_string_compact();

    b.bench("protocol_parse", || {
        let json = Json::parse(&arrive_line).expect("line is valid");
        let req = Request::from_json(&json).expect("line is a valid request");
        match req {
            Request::Arrive { jobs, .. } => jobs.len(),
            _ => unreachable!("line is an arrive"),
        }
    });

    let parsed = Json::parse(&arrive_line).expect("line is valid");
    b.bench("protocol_serialize", || parsed.to_string_compact().len());

    let script = transcript(instance, case.cal_cost, &groups);
    b.bench("serve_stream_session", || {
        let report = serve_stream(
            script.as_bytes(),
            Box::new(std::io::sink()),
            ServerConfig {
                workers: 1,
                queue_cap: 1_000_000,
                ..Default::default()
            },
        );
        assert!(report.all_ok());
        report.accountings.len()
    });

    // Same stream with the snapshot thread running and a live sink. The
    // interval is shorter than a pass, so snapshot serialization is *in*
    // the measurement, not just the registry's atomics.
    b.bench("metrics_overhead", || {
        let report = serve_stream(
            script.as_bytes(),
            Box::new(std::io::sink()),
            ServerConfig {
                workers: 1,
                queue_cap: 1_000_000,
                metrics_interval: Some(std::time::Duration::from_millis(2)),
                metrics_sink: Some(MetricsSink::new(Box::new(std::io::sink()))),
                ..Default::default()
            },
        );
        assert!(report.all_ok());
        report.accountings.len()
    });

    // Same stream with journaling on. The clean `bye` deletes the journal
    // each pass, so the directory never accumulates.
    let journal_dir =
        std::env::temp_dir().join(format!("calib-bench-journal-{}", std::process::id()));
    std::fs::create_dir_all(&journal_dir).expect("create journal dir");
    b.bench("serve_stream_journaled", || {
        let report = serve_stream(
            script.as_bytes(),
            Box::new(std::io::sink()),
            ServerConfig {
                workers: 1,
                queue_cap: 1_000_000,
                journal_dir: Some(journal_dir.clone()),
                fsync: FsyncPolicy::Off,
                ..Default::default()
            },
        );
        assert!(report.all_ok());
        report.accountings.len()
    });

    // The journaled stream plus cadence checkpoints and idle compaction —
    // the recovery-bounding machinery. The bench gate holds the
    // `serve_stream_checkpointed / serve_stream_journaled` ratio under
    // 1.05×: a full-state snapshot every 1024 records (a few per pass
    // here) must stay near the noise of the journaled path.
    b.bench("serve_stream_checkpointed", || {
        let report = serve_stream(
            script.as_bytes(),
            Box::new(std::io::sink()),
            ServerConfig {
                workers: 1,
                queue_cap: 1_000_000,
                journal_dir: Some(journal_dir.clone()),
                fsync: FsyncPolicy::Off,
                checkpoint_every: Some(1024),
                compact_on_idle: true,
                ..Default::default()
            },
        );
        assert!(report.all_ok());
        report.accountings.len()
    });

    // The journaled stream with the admission gate armed but sized so no
    // request is ever shed or rate-limited: the measurement is the pure
    // bookkeeping cost of the gate (one leaf-mutex admit per work-bearing
    // request plus a complete per processed request). The bench gate
    // holds `serve_stream_admitted / serve_stream_journaled` under 1.03×.
    b.bench("serve_stream_admitted", || {
        let report = serve_stream(
            script.as_bytes(),
            Box::new(std::io::sink()),
            ServerConfig {
                workers: 1,
                queue_cap: 1_000_000,
                journal_dir: Some(journal_dir.clone()),
                fsync: FsyncPolicy::Off,
                admit: AdmitConfig {
                    max_inflight: Some(1_000_000),
                    rate_per_k: Some(1_000_000),
                    burst: 1_000_000,
                },
                ..Default::default()
            },
        );
        assert!(report.all_ok());
        report.accountings.len()
    });
    std::fs::remove_dir_all(&journal_dir).ok();

    b.finish();
}
