//! # calib-bench
//!
//! Benchmarks and experiment binaries for the calibration-scheduling
//! reproduction. The benches in `benches/` run on the in-repo [`harness`]
//! (warmup + sampled timing, `BENCH_*.json` output — no external bench
//! framework); the `e*` binaries in `src/bin/` print the DESIGN.md §3
//! experiment tables (the paper has no empirical tables of its own, so
//! these regenerate every *quantitative claim* instead — see EXPERIMENTS.md
//! for recorded output).
//!
//! Run all tables with `cargo run --release -p calib-bench --bin <e*>` and
//! all benches with `cargo bench -p calib-bench`; every binary accepts
//! `--quick` to shrink the sweep.

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod harness;

/// Shared quick-mode switch: pass `--quick` to any experiment binary to
/// shrink the sweep (used in CI-style smoke runs).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}
