//! # calib-bench
//!
//! Benchmarks and experiment binaries for the calibration-scheduling
//! reproduction. Criterion benches live in `benches/`; the `e*` binaries in
//! `src/bin/` print the DESIGN.md §3 experiment tables (the paper has no
//! empirical tables of its own, so these regenerate every *quantitative
//! claim* instead — see EXPERIMENTS.md for recorded output).
//!
//! Run all tables with `cargo run --release -p calib-bench --bin <e*>`;
//! every binary accepts `--quick` to shrink the sweep.

/// Shared quick-mode switch: pass `--quick` to any experiment binary to
/// shrink the sweep (used in CI-style smoke runs).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}
