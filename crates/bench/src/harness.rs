//! A small self-contained measurement harness (no external bench framework).
//!
//! Each `benches/*.rs` target builds a [`Bench`] suite, times closures with
//! warmup + repeated samples, prints a human-readable line per measurement,
//! and on [`Bench::finish`] writes the whole suite as machine-readable JSON
//! to `BENCH_<suite>.json` (override the directory with `BENCH_OUT_DIR`).
//!
//! Timing strategy: one calibration call picks an iteration count so each
//! sample spans at least ~1 ms (cheap closures are batched, expensive ones
//! run once per sample), then `samples` samples are taken and summarized by
//! min/median/mean/max nanoseconds per call.

use std::hint::black_box;
use std::time::Instant;

use calib_core::json::Json;

/// Target wall-clock per sample; cheap closures are batched up to this.
const TARGET_SAMPLE_NS: u64 = 1_000_000;
/// Cap on the batching factor, so calibration mispredictions stay bounded.
const MAX_ITERS: u64 = 10_000;

/// Median ns of a fixed deterministic CPU workload (seeded xorshift fill +
/// sort + fold), stamped into each suite file as `gate_reference_ns` so the
/// bench gate can divide out machine-speed differences between the machine
/// that recorded the baseline and the one producing fresh results. Measured
/// at suite-write time, so the stamp reflects the same machine state (turbo,
/// contention, throttling) as the suite's own medians. The workload mixes
/// branchy and memory work to track the benched algorithms better than a
/// pure ALU spin.
pub fn reference_workload_ns() -> u64 {
    fn once() -> u64 {
        let mut state = 0x2017_c0ffee_u64;
        let mut xs: Vec<u64> = (0..4096)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            })
            .collect();
        xs.sort_unstable();
        xs.iter().fold(0u64, |acc, x| acc.rotate_left(1) ^ x)
    }
    // Warm up, then take the *minimum* over many batched samples: the min is
    // the most stable estimator of raw machine speed under scheduler noise,
    // and any low bias cancels because both sides of the ratio use it.
    black_box(once());
    (0..15)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..32 {
                black_box(once());
            }
            (start.elapsed().as_nanos() as u64 / 32).max(1)
        })
        .min()
        .expect("at least one sample")
        .max(1)
}

/// One timed closure's summary statistics (nanoseconds per call).
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Measurement label within the suite.
    pub name: String,
    /// Fastest sample.
    pub min_ns: u64,
    /// Median sample.
    pub median_ns: u64,
    /// Mean over samples.
    pub mean_ns: u64,
    /// Slowest sample.
    pub max_ns: u64,
    /// Number of samples taken.
    pub samples: u32,
    /// Iterations batched per sample.
    pub iters: u64,
}

impl Measurement {
    /// JSON object form, one field per statistic.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("min_ns", Json::UInt(self.min_ns as u128)),
            ("median_ns", Json::UInt(self.median_ns as u128)),
            ("mean_ns", Json::UInt(self.mean_ns as u128)),
            ("max_ns", Json::UInt(self.max_ns as u128)),
            ("samples", Json::UInt(self.samples as u128)),
            ("iters", Json::UInt(self.iters as u128)),
        ])
    }
}

/// A named suite of measurements, written out as `BENCH_<suite>.json`.
pub struct Bench {
    suite: &'static str,
    samples: u32,
    results: Vec<Measurement>,
}

impl Bench {
    /// A new suite. `--quick` (see [`crate::quick_mode`]) shrinks sampling.
    pub fn new(suite: &'static str) -> Self {
        let samples = if crate::quick_mode() { 5 } else { 15 };
        println!("suite {suite} ({samples} samples/measurement)");
        Bench {
            suite,
            samples,
            results: Vec::new(),
        }
    }

    /// Overrides the per-measurement sample count.
    pub fn samples(mut self, samples: u32) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// Times `f`, prints one summary line, and records the measurement.
    pub fn bench<R, F: FnMut() -> R>(&mut self, name: &str, mut f: F) -> &Measurement {
        // Calibrate: batch cheap closures so one sample spans ~1 ms.
        let start = Instant::now();
        black_box(f());
        let once_ns = (start.elapsed().as_nanos() as u64).max(1);
        let iters = (TARGET_SAMPLE_NS / once_ns).clamp(1, MAX_ITERS);

        // One warmup sample beyond calibration, then the real samples.
        for _ in 0..iters {
            black_box(f());
        }
        let mut per_call: Vec<u64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                (start.elapsed().as_nanos() as u64 / iters).max(1)
            })
            .collect();
        per_call.sort_unstable();

        let samples = self.samples;
        let m = Measurement {
            name: name.to_string(),
            min_ns: per_call[0],
            median_ns: per_call[per_call.len() / 2],
            mean_ns: per_call.iter().sum::<u64>() / samples as u64,
            max_ns: per_call[per_call.len() - 1],
            samples,
            iters,
        };
        println!(
            "  {:<40} median {:>12} ns/call  (min {}, max {}, x{} batched)",
            m.name, m.median_ns, m.min_ns, m.max_ns, m.iters
        );
        self.results.push(m);
        self.results.last().expect("just pushed")
    }

    /// The measurements recorded so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Suite JSON: `{"suite": ..., "results": [...]}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("suite", Json::Str(self.suite.into())),
            (
                "results",
                Json::Arr(self.results.iter().map(|m| m.to_json()).collect()),
            ),
        ])
    }

    /// Writes `BENCH_<suite>.json` (into `BENCH_OUT_DIR` when set, else the
    /// working directory) and reports where it went. The file additionally
    /// carries a `gate_reference_ns` stamp (see [`reference_workload_ns`])
    /// timed here, alongside the suite's own measurements, so the bench gate
    /// can normalize away machine-speed differences.
    pub fn finish(self) {
        let dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| ".".into());
        let path = format!("{dir}/BENCH_{}.json", self.suite);
        let mut json = self.to_json();
        if let Json::Obj(fields) = &mut json {
            fields.push((
                "gate_reference_ns".into(),
                Json::UInt(reference_workload_ns() as u128),
            ));
        }
        match std::fs::write(&path, json.to_string_pretty()) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_serializes() {
        let mut b = Bench::new("selftest").samples(3);
        b.bench("square", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        let m = &b.results()[0];
        assert!(m.min_ns <= m.median_ns && m.median_ns <= m.max_ns);
        assert!(m.iters >= 1);
        let j = b.to_json();
        assert_eq!(j.get("suite").and_then(|s| s.as_str()), Some("selftest"));
        assert_eq!(j.get("results").unwrap().as_arr().unwrap().len(), 1);
    }
}
