//! E11: threshold-multiplier sensitivity around the paper's constants.

use calib_sim::experiments::sensitivity::{run, SensitivityConfig};

fn main() {
    let mut cfg = SensitivityConfig::default();
    if calib_bench::quick_mode() {
        cfg.n = 14;
        cfg.seeds = 2;
        cfg.cal_costs = vec![40];
        cfg.factors = vec![(1, 4), (1, 1), (4, 1)];
    }
    let (_, table) = run(&cfg);
    println!("{}", table.render());
}
