//! Runs every experiment table in quick mode — a one-command smoke
//! regeneration of the full EXPERIMENTS.md suite (E1–E12).

use calib_sim::experiments as ex;

fn main() {
    // E1 / E2.
    let mut e1 = ex::ratio::RatioConfig::e1();
    e1.n = 14;
    e1.seeds = 2;
    e1.cal_costs = vec![4, 30];
    e1.cal_lens = vec![3];
    println!("{}", ex::ratio::run(&e1).1.render());

    let mut e2 = ex::ratio::RatioConfig::e2();
    e2.n = 14;
    e2.seeds = 2;
    e2.cal_costs = vec![4, 30];
    e2.cal_lens = vec![3];
    println!("{}", ex::ratio::run(&e2).1.render());

    // E3.
    let e3 = ex::multi::MultiConfig {
        machines: vec![1, 2],
        n: 6,
        seeds: 1,
        cal_costs: vec![3, 9],
        ..Default::default()
    };
    println!("{}", ex::multi::run(&e3).1.render());

    // E4.
    let e4 = ex::lower_bound::LowerBoundConfig {
        params: vec![(4, 4), (64, 32), (1024, 512), (2, 1024)],
    };
    println!("{}", ex::lower_bound::run(&e4).1.render());

    // E5.
    let e5 = ex::optr_gap::OptrConfig {
        n: 6,
        seeds: 3,
        ..Default::default()
    };
    println!("{}", ex::optr_gap::run(&e5).1.render());

    // E6.
    let e6 = ex::dp_scaling::DpScalingConfig {
        sizes: vec![10, 20, 40],
        reps: 1,
        ..Default::default()
    };
    println!("{}", ex::dp_scaling::run(&e6).2.render());

    // E8.
    let e8 = ex::lp_gap::LpGapConfig {
        n: 5,
        seeds: 2,
        ..Default::default()
    };
    println!("{}", ex::lp_gap::run(&e8).1.render());

    // E10.
    let e10 = ex::ablations::AblationConfig {
        n: 15,
        seeds: 2,
        cal_lens: vec![3],
        cal_costs: vec![8, 40],
        ..Default::default()
    };
    println!("{}", ex::ablations::run(&e10).1.render());

    // E11.
    let e11 = ex::sensitivity::SensitivityConfig {
        n: 14,
        seeds: 2,
        cal_costs: vec![40],
        factors: vec![(1, 4), (1, 1), (4, 1)],
        ..Default::default()
    };
    println!("{}", ex::sensitivity::run(&e11).1.render());

    // E12.
    let e12 = ex::weighted_multi::WeightedMultiConfig {
        machines: vec![1, 2],
        n: 5,
        seeds: 1,
        ..Default::default()
    };
    println!("{}", ex::weighted_multi::run(&e12).1.render());

    // E13.
    let e13 = ex::randomized::RandomizedConfig {
        params: vec![(10, 100), (20, 400)],
        trials: 60,
    };
    println!("{}", ex::randomized::run(&e13).1.render());
}
