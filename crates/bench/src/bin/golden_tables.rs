//! Regenerates the committed golden tables under `results/` in a fully
//! deterministic form.
//!
//! Experiments run with the same quick-mode configurations as
//! `all_experiments`, but wall-clock columns (`ms`, `median sec`) are
//! stripped and the one timing-derived title (E6's fitted exponent) is
//! replaced, so the output depends only on the code and the seeds. CI
//! reruns this binary and `git diff --exit-code results/` — any drift in a
//! quantitative claim fails the build until the goldens are deliberately
//! regenerated and reviewed.
//!
//! Usage: `cargo run --release -p calib-bench --bin golden_tables [out_dir]`
//! (default `results/` at the workspace root).

use std::fs;
use std::path::{Path, PathBuf};

use calib_sim::experiments as ex;
use calib_sim::Table;

fn out_dir() -> PathBuf {
    match std::env::args().nth(1) {
        Some(dir) => PathBuf::from(dir),
        None => Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results"),
    }
}

fn write(dir: &Path, name: &str, table: &Table) {
    let path = dir.join(name);
    fs::write(&path, table.render()).unwrap_or_else(|e| panic!("writing {path:?}: {e}"));
    println!("wrote {}", path.display());
}

fn main() {
    let dir = out_dir();
    fs::create_dir_all(&dir).expect("create output dir");

    // E1 / E2 (quick-mode configs mirroring `all_experiments`).
    let mut e1 = ex::ratio::RatioConfig::e1();
    e1.n = 14;
    e1.seeds = 2;
    e1.cal_costs = vec![4, 30];
    e1.cal_lens = vec![3];
    write(
        &dir,
        "e1_alg1_ratio.txt",
        &ex::ratio::run(&e1).1.without_columns(&["ms"]),
    );

    let mut e2 = ex::ratio::RatioConfig::e2();
    e2.n = 14;
    e2.seeds = 2;
    e2.cal_costs = vec![4, 30];
    e2.cal_lens = vec![3];
    write(
        &dir,
        "e2_alg2_ratio.txt",
        &ex::ratio::run(&e2).1.without_columns(&["ms"]),
    );

    // E3.
    let e3 = ex::multi::MultiConfig {
        machines: vec![1, 2],
        n: 6,
        seeds: 1,
        cal_costs: vec![3, 9],
        ..Default::default()
    };
    write(&dir, "e3_alg3_ratio.txt", &ex::multi::run(&e3).1);

    // E4.
    let e4 = ex::lower_bound::LowerBoundConfig {
        params: vec![(4, 4), (64, 32), (1024, 512), (2, 1024)],
    };
    write(&dir, "e4_lower_bound.txt", &ex::lower_bound::run(&e4).1);

    // E5.
    let e5 = ex::optr_gap::OptrConfig {
        n: 6,
        seeds: 3,
        ..Default::default()
    };
    write(&dir, "e5_optr_gap.txt", &ex::optr_gap::run(&e5).1);

    // E6: the fit exponent and per-size timings are wall-clock dependent.
    let e6 = ex::dp_scaling::DpScalingConfig {
        sizes: vec![10, 20, 40],
        reps: 1,
        ..Default::default()
    };
    let table = ex::dp_scaling::run(&e6)
        .2
        .without_columns(&["median sec"])
        .with_title("E6: offline DP scaling (paper O(K n^3))");
    write(&dir, "e6_dp_scaling.txt", &table);

    // E8.
    let e8 = ex::lp_gap::LpGapConfig {
        n: 5,
        seeds: 2,
        ..Default::default()
    };
    write(
        &dir,
        "e8_lp_bounds.txt",
        &ex::lp_gap::run(&e8).1.without_columns(&["ms"]),
    );

    // E10.
    let e10 = ex::ablations::AblationConfig {
        n: 15,
        seeds: 2,
        cal_lens: vec![3],
        cal_costs: vec![8, 40],
        ..Default::default()
    };
    write(&dir, "e10_ablations.txt", &ex::ablations::run(&e10).1);

    // E11.
    let e11 = ex::sensitivity::SensitivityConfig {
        n: 14,
        seeds: 2,
        cal_costs: vec![40],
        factors: vec![(1, 4), (1, 1), (4, 1)],
        ..Default::default()
    };
    write(&dir, "e11_sensitivity.txt", &ex::sensitivity::run(&e11).1);

    // E12.
    let e12 = ex::weighted_multi::WeightedMultiConfig {
        machines: vec![1, 2],
        n: 5,
        seeds: 1,
        ..Default::default()
    };
    write(
        &dir,
        "e12_weighted_multi.txt",
        &ex::weighted_multi::run(&e12).1,
    );

    // E13.
    let e13 = ex::randomized::RandomizedConfig {
        params: vec![(10, 100), (20, 400)],
        trials: 60,
    };
    write(&dir, "e13_randomized.txt", &ex::randomized::run(&e13).1);
}
