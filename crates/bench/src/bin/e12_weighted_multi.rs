//! E12 (extension): weighted multi-machine heuristic vs the weighted
//! Figure 1 LP lower bound. No theorem in the paper covers this setting;
//! the table records measured certified ratios.
//!
//! The default sweep is kept small (P ≤ 2, n = 5): the weighted Figure-1
//! LPs at P = 3 take minutes per point on the dense simplex substrate.
//! Pass `--full` for the complete sweep.

use calib_sim::experiments::weighted_multi::{run, WeightedMultiConfig};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let mut cfg = WeightedMultiConfig::default();
    if !full {
        cfg.machines = vec![1, 2];
        cfg.n = 5;
        cfg.seeds = 1;
    }
    let (cells, table) = run(&cfg);
    println!("{}", table.render());
    let worst = cells
        .iter()
        .flat_map(|c| c.certified_ratios.iter().copied())
        .fold(0.0f64, f64::max);
    println!("worst certified ratio: {worst:.3} (no proven bound — extension)");
}
