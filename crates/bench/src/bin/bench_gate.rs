//! Bench regression gate: compares freshly produced `BENCH_*.json` files
//! against the committed baseline under `results/bench_baseline/` and fails
//! when any suite's median slows down past the threshold.
//!
//! Per measurement, the score is `fresh.median_ns / baseline.median_ns`;
//! per suite, the score is the *median* of those ratios — robust to one
//! noisy measurement, sensitive to a suite-wide slowdown. The default
//! threshold (1.25, i.e. >25% slower) leaves headroom for shared-runner
//! jitter; genuine regressions from algorithmic changes are well past it.
//!
//! Baselines may be recorded on a different machine than the gate runs on
//! (committed once, checked on CI runners), so raw `median_ns` comparisons
//! would conflate machine speed with regressions. To cancel that, the bench
//! harness stamps every suite file with `gate_reference_ns` — a fixed
//! reference workload timed right when the suite was benched (see
//! `calib_bench::harness::reference_workload_ns`) — and the gate divides
//! each suite score by the machine-speed ratio `fresh_ref / baseline_ref`.
//! Only the *relative* slowdown vs the reference workload is gated.
//!
//! ```text
//! cargo run --release -p calib-bench --bin bench_gate -- --fresh-dir crates/bench
//! cargo run --release -p calib-bench --bin bench_gate -- --update   # refresh baseline
//! ```
//!
//! Exit status: 0 on pass, 1 on regression, 2 on usage/IO errors.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use calib_core::json::Json;

struct Options {
    baseline_dir: PathBuf,
    fresh_dir: PathBuf,
    threshold: f64,
    update: bool,
}

const USAGE: &str = "\
bench_gate: compare fresh BENCH_*.json against the committed baseline

OPTIONS:
    --baseline-dir <dir>  committed baseline [default: results/bench_baseline]
    --fresh-dir <dir>     freshly generated files [default: crates/bench]
    --threshold <float>   max allowed suite median ratio [default: 1.25]
    --update              copy fresh files over the baseline instead of gating
";

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn parse_args() -> Result<Options, String> {
    let root = workspace_root();
    let mut opts = Options {
        baseline_dir: root.join("results/bench_baseline"),
        fresh_dir: root.join("crates/bench"),
        threshold: 1.25,
        update: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--baseline-dir" => opts.baseline_dir = PathBuf::from(value("--baseline-dir")?),
            "--fresh-dir" => opts.fresh_dir = PathBuf::from(value("--fresh-dir")?),
            "--threshold" => {
                let v = value("--threshold")?;
                opts.threshold = v
                    .parse()
                    .map_err(|_| format!("`{v}` is not a valid threshold"))?;
            }
            "--update" => opts.update = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// One parsed suite file: measurement medians plus the optional
/// `gate_reference_ns` stamp written by `--update`.
struct Suite {
    /// `(measurement name, median_ns)` pairs.
    medians: Vec<(String, u64)>,
    /// `(measurement name, min_ns)` pairs (used by the intra-suite
    /// overhead checks, where the min is the stable estimator).
    mins: Vec<(String, u64)>,
    /// Reference-workload timing on the machine that produced this file.
    reference_ns: Option<u64>,
}

fn read_suite(path: &Path) -> Result<Suite, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let json = Json::parse(&text).map_err(|e| format!("parsing {}: {e}", path.display()))?;
    let results = json
        .field("results")
        .map_err(|e| format!("{}: {e}", path.display()))?
        .as_arr()
        .ok_or_else(|| format!("{}: `results` must be an array", path.display()))?;
    let mut out = Vec::new();
    let mut mins = Vec::new();
    for r in results {
        let name = r
            .field("name")
            .map_err(|e| format!("{}: {e}", path.display()))?
            .as_str()
            .ok_or_else(|| format!("{}: `name` must be a string", path.display()))?
            .to_string();
        let median = r
            .field("median_ns")
            .map_err(|e| format!("{}: {e}", path.display()))?
            .as_u64()
            .ok_or_else(|| format!("{}: `median_ns` must be a u64", path.display()))?;
        if let Some(min) = r.get("min_ns").and_then(|v| v.as_u64()) {
            mins.push((name.clone(), min));
        }
        out.push((name, median));
    }
    let reference_ns = json.get("gate_reference_ns").and_then(|v| v.as_u64());
    Ok(Suite {
        medians: out,
        mins,
        reference_ns,
    })
}

/// All `BENCH_*.json` files in `dir`, keyed by file name.
fn suite_files(dir: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let mut out: Vec<(String, PathBuf)> = fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter_map(|p| {
            let name = p.file_name()?.to_str()?.to_string();
            (name.starts_with("BENCH_") && name.ends_with(".json")).then_some((name, p))
        })
        .collect();
    out.sort();
    Ok(out)
}

fn median_of(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

fn run() -> Result<bool, String> {
    let opts = parse_args()?;

    if opts.update {
        fs::create_dir_all(&opts.baseline_dir)
            .map_err(|e| format!("creating {}: {e}", opts.baseline_dir.display()))?;
        let fresh = suite_files(&opts.fresh_dir)?;
        if fresh.is_empty() {
            return Err(format!(
                "no BENCH_*.json under {} — run `cargo bench -p calib-bench -- --quick` first",
                opts.fresh_dir.display()
            ));
        }
        for (name, path) in fresh {
            if read_suite(&path)?.reference_ns.is_none() {
                println!(
                    "WARN {name}: no gate_reference_ns stamp (stale format?) — \
                     re-run `cargo bench -p calib-bench -- --quick` to regenerate"
                );
            }
            let dest = opts.baseline_dir.join(&name);
            fs::copy(&path, &dest).map_err(|e| format!("copying {name}: {e}"))?;
            println!("baseline <- {name}");
        }
        return Ok(true);
    }

    let baseline = suite_files(&opts.baseline_dir)?;
    if baseline.is_empty() {
        return Err(format!(
            "no baseline under {} — run with --update to create one",
            opts.baseline_dir.display()
        ));
    }

    let mut ok = true;
    for (name, base_path) in &baseline {
        let fresh_path = opts.fresh_dir.join(name);
        if !fresh_path.exists() {
            println!("FAIL {name}: missing from {}", opts.fresh_dir.display());
            ok = false;
            continue;
        }
        let base = read_suite(base_path)?;
        let fresh = read_suite(&fresh_path)?;
        // Cancel machine-speed differences: a 2x-slower machine makes both
        // the suite medians and the reference workload ~2x slower, so the
        // normalized score only moves on relative regressions. Both stamps
        // were timed by the harness right when their suite was benched, so
        // each reflects the machine state its medians were measured under.
        let machine_ratio = match (fresh.reference_ns, base.reference_ns) {
            (Some(fresh_ref), Some(base_ref)) if base_ref > 0 && fresh_ref > 0 => {
                fresh_ref as f64 / base_ref as f64
            }
            _ => {
                println!(
                    "WARN {name}: missing gate_reference_ns stamp (fresh: {:?}, baseline: \
                     {:?}) — comparing raw cross-machine timings",
                    fresh.reference_ns, base.reference_ns
                );
                1.0
            }
        };
        let mut ratios = Vec::new();
        let mut detail = Vec::new();
        for (bench, base_median) in &base.medians {
            match fresh.medians.iter().find(|(n, _)| n == bench) {
                Some((_, fresh_median)) if *base_median > 0 => {
                    let r = *fresh_median as f64 / *base_median as f64;
                    ratios.push(r);
                    detail.push(format!(
                        "{bench}: {base_median} -> {fresh_median} ({r:.2}x raw)"
                    ));
                }
                Some(_) => {} // zero baseline median: skip rather than divide
                None => {
                    println!("FAIL {name}: measurement `{bench}` disappeared");
                    ok = false;
                }
            }
        }
        if ratios.is_empty() {
            println!("FAIL {name}: no comparable measurements");
            ok = false;
            continue;
        }
        let score = median_of(ratios) / machine_ratio;
        if score > opts.threshold {
            ok = false;
            println!(
                "FAIL {name}: normalized suite median ratio {score:.2}x > {:.2}x \
                 (machine ratio {machine_ratio:.2}x)",
                opts.threshold
            );
            for d in detail {
                println!("     {d}");
            }
        } else {
            println!(
                "PASS {name}: normalized suite median ratio {score:.2}x \
                 (machine ratio {machine_ratio:.2}x)"
            );
        }
    }
    if !overhead_checks(&opts.fresh_dir)? {
        ok = false;
    }
    Ok(ok)
}

/// Intra-suite overhead bounds: both medians come from the same fresh run
/// on the same machine, so these are compared raw — no baseline and no
/// machine-speed normalization. Each entry is
/// `(suite file, measurement, baseline measurement, max ratio)`.
const OVERHEAD_CHECKS: [(&str, &str, &str, f64); 3] = [
    // The always-on metrics registry plus a live 2ms snapshot stream must
    // stay within 2% of the plain serve path.
    (
        "BENCH_serve.json",
        "metrics_overhead",
        "serve_stream_session",
        1.02,
    ),
    // Cadence checkpoints + idle compaction must stay within 5% of the
    // plain journaled path (fsync off on both sides).
    (
        "BENCH_serve.json",
        "serve_stream_checkpointed",
        "serve_stream_journaled",
        1.05,
    ),
    // The admission gate (armed, never firing) must stay within 3% of
    // the plain journaled path: one leaf-mutex check per work request.
    (
        "BENCH_serve.json",
        "serve_stream_admitted",
        "serve_stream_journaled",
        1.03,
    ),
];

fn overhead_checks(fresh_dir: &Path) -> Result<bool, String> {
    let mut ok = true;
    for (file, num, den, max_ratio) in OVERHEAD_CHECKS {
        let path = fresh_dir.join(file);
        if !path.exists() {
            println!("FAIL {file}: missing, cannot check `{num}` overhead");
            ok = false;
            continue;
        }
        let suite = read_suite(&path)?;
        // The *minimum* sample, not the median: scheduler noise is strictly
        // additive, so the min is the stable estimator of intrinsic cost on
        // both sides of the ratio (median jitter at this measurement's
        // scale is larger than the bound being enforced).
        let min = |name: &str| suite.mins.iter().find(|(n, _)| n == name).map(|(_, m)| *m);
        let (Some(num_ns), Some(den_ns)) = (min(num), min(den)) else {
            println!("FAIL {file}: `{num}` or `{den}` measurement is missing");
            ok = false;
            continue;
        };
        if den_ns == 0 {
            println!("FAIL {file}: `{den}` median is zero");
            ok = false;
            continue;
        }
        let ratio = num_ns as f64 / den_ns as f64;
        if ratio > max_ratio {
            println!(
                "FAIL {file}: `{num}` is {ratio:.3}x of `{den}` \
                 ({num_ns} vs {den_ns} ns), over the {max_ratio:.2}x bound"
            );
            ok = false;
        } else {
            println!(
                "PASS {file}: `{num}` is {ratio:.3}x of `{den}` \
                 (bound {max_ratio:.2}x)"
            );
        }
    }
    Ok(ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("bench gate failed: see FAIL lines above");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
