//! E5: the Lemma 3.4 release-order restriction — `OPT_r` with doubled
//! budget never has more flow than OPT (hard invariant), and the
//! same-budget gap is reported.

use calib_sim::experiments::optr_gap::{run, OptrConfig};

fn main() {
    let mut cfg = OptrConfig::default();
    if calib_bench::quick_mode() {
        cfg.n = 6;
        cfg.seeds = 3;
        cfg.cal_lens = vec![2, 3];
    }
    let (cells, table) = run(&cfg);
    println!("{}", table.render());
    let worst_double = cells
        .iter()
        .flat_map(|c| c.double_budget_gaps.iter().copied())
        .fold(0.0f64, f64::max);
    println!("max flow(OPT_r, 2K)/flow(OPT, K): {worst_double:.4} (Lemma 3.4: <= 1)");
    assert!(worst_double <= 1.0 + 1e-9, "Lemma 3.4 violated");
}
