//! E1: Algorithm 1 competitive ratio vs exact OPT (Theorem 3.3: ≤ 3).

use calib_sim::experiments::ratio::{run, RatioConfig};

fn main() {
    let mut cfg = RatioConfig::e1();
    if calib_bench::quick_mode() {
        cfg.n = 14;
        cfg.seeds = 2;
        cfg.cal_costs = vec![4, 30];
        cfg.cal_lens = vec![3];
    }
    let (cells, table) = run(&cfg);
    println!("{}", table.render());
    let worst = cells
        .iter()
        .flat_map(|c| c.ratios.iter().copied())
        .fold(0.0f64, f64::max);
    println!("worst observed ratio: {worst:.4} (theorem bound: 3)");
    assert!(worst <= 3.0 + 1e-9, "Theorem 3.3 violated");
}
