//! E10: ablations of the paper's design choices (immediate-calibration
//! rule, extraction order, spec-vs-practical Algorithm 3 assignment).

use calib_sim::experiments::ablations::{run, AblationConfig};

fn main() {
    let mut cfg = AblationConfig::default();
    if calib_bench::quick_mode() {
        cfg.n = 15;
        cfg.seeds = 2;
        cfg.cal_lens = vec![3];
        cfg.cal_costs = vec![8, 40];
    }
    let (rows, table) = run(&cfg);
    println!("{}", table.render());
    for r in rows.iter().filter(|r| r.ablation.starts_with("A2")) {
        assert!(
            r.ratio() >= 1.0 - 1e-9,
            "heaviest-first extraction should dominate (DESIGN.md §5)"
        );
    }
}
