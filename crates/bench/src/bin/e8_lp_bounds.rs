//! E8: integrality gap of the Figure 1 LP relaxation against exact OPT
//! (weak duality: gap ≥ 1; the table shows how tight the E3 certificate is).

use calib_sim::experiments::lp_gap::{run, LpGapConfig};

fn main() {
    let mut cfg = LpGapConfig::default();
    if calib_bench::quick_mode() {
        cfg.n = 5;
        cfg.seeds = 2;
        cfg.cal_lens = vec![2, 3];
    }
    let (cells, table) = run(&cfg);
    println!("{}", table.render());
    let worst = cells
        .iter()
        .flat_map(|c| c.gaps.iter().copied())
        .fold(0.0f64, f64::max);
    println!("max integrality gap OPT/LP: {worst:.4}");
    assert!(
        cells
            .iter()
            .flat_map(|c| c.gaps.iter())
            .all(|&g| g >= 1.0 - 1e-6),
        "weak duality violated"
    );
}
