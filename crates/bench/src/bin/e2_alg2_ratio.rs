//! E2: Algorithm 2 competitive ratio vs exact OPT (Theorem 3.8: ≤ 12),
//! across several weight models.

use calib_sim::experiments::ratio::{run, RatioConfig};
use calib_workloads::WeightModel;

fn main() {
    let quick = calib_bench::quick_mode();
    let models = [
        ("uniform(1..20)", WeightModel::Uniform { max: 20 }),
        (
            "pareto(1.1)",
            WeightModel::Pareto {
                alpha: 1.1,
                cap: 100,
            },
        ),
        (
            "bimodal(100@5%)",
            WeightModel::Bimodal {
                heavy: 100,
                p_heavy: 0.05,
            },
        ),
    ];
    let mut worst = 0.0f64;
    for (label, weights) in models {
        let mut cfg = RatioConfig::e2();
        cfg.weights = weights;
        if quick {
            cfg.n = 14;
            cfg.seeds = 2;
            cfg.cal_costs = vec![4, 30];
            cfg.cal_lens = vec![3];
        }
        let (cells, table) = run(&cfg);
        println!("--- weights: {label} ---");
        println!("{}", table.render());
        worst = worst.max(
            cells
                .iter()
                .flat_map(|c| c.ratios.iter().copied())
                .fold(0.0f64, f64::max),
        );
    }
    println!("worst observed ratio: {worst:.4} (theorem bound: 12)");
    assert!(worst <= 12.0 + 1e-9, "Theorem 3.8 violated");

    // The intermediate claim: 6-competitive against the release-ordered
    // optimum (exact OPT_r needs brute force, so small n).
    let optr_cfg = calib_sim::experiments::optr_gap::OptrConfig {
        n: if quick { 6 } else { 8 },
        seeds: if quick { 2 } else { 5 },
        ..Default::default()
    };
    let (ratios, table) = calib_sim::experiments::optr_gap::alg2_vs_optr(&optr_cfg);
    println!("{}", table.render());
    let worst_r = ratios.iter().copied().fold(0.0f64, f64::max);
    assert!(
        worst_r <= 6.0 + 1e-9,
        "Alg2 vs OPT_r bound violated: {worst_r}"
    );
}
