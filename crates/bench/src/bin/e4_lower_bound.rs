//! E4: the Lemma 3.1 adversary — measured ratios approach the paper's
//! lower bound of 2 as the parameters grow.

use calib_sim::experiments::lower_bound::{run, LowerBoundConfig};

fn main() {
    let mut cfg = LowerBoundConfig::default();
    if calib_bench::quick_mode() {
        cfg.params.truncate(4);
    }
    let (rows, table) = run(&cfg);
    println!("{}", table.render());
    let best = rows.iter().map(|r| r.ratio).fold(0.0f64, f64::max);
    println!("strongest adversary ratio achieved: {best:.4} (paper: -> 2 - o(1))");
    assert!(best > 1.5, "adversary should approach 2");
}
