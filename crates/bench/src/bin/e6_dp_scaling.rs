//! E6: offline DP runtime scaling (Theorem 4.7: `O(K n³)`; our memoized
//! implementation is `O(n⁴)` worst-case — the fitted exponent shows where
//! real instances land).

use calib_sim::experiments::dp_scaling::{run, DpScalingConfig};

fn main() {
    let mut cfg = DpScalingConfig::default();
    if calib_bench::quick_mode() {
        cfg.sizes = vec![10, 20, 40];
        cfg.reps = 1;
    }
    let (_, exponent, table) = run(&cfg);
    println!("{}", table.render());
    println!("fitted runtime exponent: n^{exponent:.2} (paper algorithm: O(K n^3))");
}
