//! E3: Algorithm 3 on P machines vs the Figure 1 LP lower bound
//! (Theorem 3.10: ≤ 12; the LP makes the measured ratio a certified upper
//! estimate of the true one).

use calib_sim::experiments::multi::{run, MultiConfig};

fn main() {
    let mut cfg = MultiConfig::default();
    if calib_bench::quick_mode() {
        cfg.machines = vec![1, 2];
        cfg.n = 6;
        cfg.seeds = 1;
        cfg.cal_costs = vec![3, 9];
    }
    let (cells, table) = run(&cfg);
    println!("{}", table.render());
    let worst = cells
        .iter()
        .flat_map(|c| c.certified_ratios.iter().copied())
        .fold(0.0f64, f64::max);
    println!("worst certified ALG/LP ratio: {worst:.4} (theorem bound: 12)");
    assert!(worst <= 12.0 + 1e-9, "Theorem 3.10 violated (certified)");
}
