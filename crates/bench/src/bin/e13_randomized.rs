//! E13 (extension): a randomized calibration trigger against the
//! deterministic 2 − o(1) lower bound, oblivious-adversary setting.

use calib_sim::experiments::randomized::{run, RandomizedConfig};

fn main() {
    let mut cfg = RandomizedConfig::default();
    if calib_bench::quick_mode() {
        cfg.params.truncate(2);
        cfg.trials = 60;
    }
    let (rows, table) = run(&cfg);
    println!("{}", table.render());
    if let Some(best) = rows
        .iter()
        .filter(|r| r.instance_kind.starts_with("branch1"))
        .map(|r| r.rand_mean_ratio)
        .min_by(|a, b| a.partial_cmp(b).unwrap())
    {
        println!(
            "best randomized expected ratio on branch-1: {best:.3} \
             (deterministic floor 2 - o(1); classical randomized ski rental: e/(e-1) ≈ 1.582)"
        );
    }
}
