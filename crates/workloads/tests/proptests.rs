//! Property-based tests for the workload generators.

use proptest::prelude::*;

use calib_workloads::{arrivals, make_instance, Trace, WeightModel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Poisson arrivals: deterministic in the seed, sorted, distinct when
    /// requested, and arrivals never run backwards.
    #[test]
    fn poisson_invariants(seed in 0u64..1000, n in 1usize..80, rate in 0.05f64..3.0) {
        let a = arrivals::poisson(seed, n, rate, true);
        let b = arrivals::poisson(seed, n, rate, true);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), n);
        prop_assert!(a.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(a[0] >= 0);
        let loose = arrivals::poisson(seed, n, rate, false);
        prop_assert!(loose.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Bursty arrivals: exact count, burst boundaries respected.
    #[test]
    fn bursty_invariants(bursts in 1usize..10, size in 1usize..8, gap in 8i64..50) {
        let r = arrivals::bursty(bursts, size, gap, true);
        prop_assert_eq!(r.len(), bursts * size);
        for (i, &t) in r.iter().enumerate() {
            let b = i / size;
            let k = i % size;
            prop_assert_eq!(t, b as i64 * gap + k as i64);
        }
    }

    /// Uniform spread: bounded, sorted, distinct when requested.
    #[test]
    fn uniform_invariants(seed in 0u64..1000, n in 1usize..40) {
        let horizon = 3 * n as i64;
        let r = arrivals::uniform_spread(seed, n, horizon, true);
        prop_assert_eq!(r.len(), n);
        prop_assert!(r.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(r.iter().all(|&t| (0..=horizon).contains(&t)));
    }

    /// Weight models: deterministic, positive, within declared bounds.
    #[test]
    fn weight_model_invariants(seed in 0u64..1000, n in 1usize..60, max in 1u64..50) {
        for model in [
            WeightModel::Unit,
            WeightModel::Uniform { max },
            WeightModel::Pareto { alpha: 1.1, cap: max },
            WeightModel::Bimodal { heavy: max, p_heavy: 0.3 },
        ] {
            let w = model.sample(seed, n);
            prop_assert_eq!(w.len(), n);
            prop_assert!(w.iter().all(|&x| x >= 1 && x <= max.max(1)), "{model:?}: {w:?}");
            prop_assert_eq!(&w, &model.sample(seed, n));
        }
    }

    /// make_instance + trace JSON round trip preserves everything.
    #[test]
    fn trace_round_trip(seed in 0u64..500, n in 1usize..30, machines in 1usize..4) {
        let inst = make_instance(
            arrivals::poisson(seed, n, 0.5, machines == 1),
            WeightModel::Uniform { max: 9 },
            seed,
            machines,
            4,
        );
        let trace = Trace::new("prop", seed, 7, inst);
        let back = Trace::from_json(&trace.to_json().unwrap()).unwrap();
        prop_assert_eq!(back, trace);
    }
}
