//! Weight distributions for weighted-flow experiments (E2, E10).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use calib_core::Weight;

/// Weight model for generated jobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightModel {
    /// All weights 1 (Algorithms 1 and 3).
    Unit,
    /// Uniform integer weights in `[1, max]`.
    Uniform {
        /// Inclusive upper bound.
        max: Weight,
    },
    /// Discrete Pareto-like heavy tail: `P(w >= x) ∝ x^(-alpha)`, capped at
    /// `cap`. Small `alpha` → heavier tail.
    Pareto {
        /// Tail exponent (> 0).
        alpha: f64,
        /// Inclusive cap on sampled weights.
        cap: Weight,
    },
    /// Two classes: weight `heavy` with probability `p_heavy`, else 1 —
    /// models rare urgent jobs among routine ones.
    Bimodal {
        /// The heavy class's weight.
        heavy: Weight,
        /// Probability of the heavy class.
        p_heavy: f64,
    },
}

impl WeightModel {
    /// Samples `n` weights deterministically from `seed`.
    pub fn sample(&self, seed: u64, n: usize) -> Vec<Weight> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_5eed);
        (0..n).map(|_| self.sample_one(&mut rng)).collect()
    }

    fn sample_one(&self, rng: &mut StdRng) -> Weight {
        match *self {
            WeightModel::Unit => 1,
            WeightModel::Uniform { max } => rng.gen_range(1..=max.max(1)),
            WeightModel::Pareto { alpha, cap } => {
                assert!(alpha > 0.0);
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                // Inverse CDF of continuous Pareto with x_min = 1.
                let x = u.powf(-1.0 / alpha);
                (x.floor() as Weight).clamp(1, cap.max(1))
            }
            WeightModel::Bimodal { heavy, p_heavy } => {
                if rng.gen_bool(p_heavy.clamp(0.0, 1.0)) {
                    heavy.max(1)
                } else {
                    1
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_is_all_ones() {
        assert!(WeightModel::Unit.sample(1, 100).iter().all(|&w| w == 1));
    }

    #[test]
    fn uniform_in_range_and_deterministic() {
        let a = WeightModel::Uniform { max: 9 }.sample(5, 200);
        let b = WeightModel::Uniform { max: 9 }.sample(5, 200);
        assert_eq!(a, b);
        assert!(a.iter().all(|&w| (1..=9).contains(&w)));
        // All values should appear over 200 samples.
        for w in 1..=9u64 {
            assert!(a.contains(&w), "weight {w} never sampled");
        }
    }

    #[test]
    fn pareto_is_heavy_tailed_but_capped() {
        let w = WeightModel::Pareto {
            alpha: 0.8,
            cap: 1000,
        }
        .sample(9, 500);
        assert!(w.iter().all(|&x| (1..=1000).contains(&x)));
        let big = w.iter().filter(|&&x| x >= 100).count();
        assert!(big > 0, "heavy tail should produce some large weights");
        let ones = w.iter().filter(|&&x| x == 1).count();
        assert!(ones > 100, "mode should still be small weights");
    }

    #[test]
    fn bimodal_mixes_classes() {
        let w = WeightModel::Bimodal {
            heavy: 50,
            p_heavy: 0.2,
        }
        .sample(3, 400);
        let heavy = w.iter().filter(|&&x| x == 50).count();
        assert!(
            heavy > 30 && heavy < 160,
            "heavy count {heavy} out of plausible range"
        );
        assert!(w.iter().all(|&x| x == 1 || x == 50));
    }
}
