//! Instance/trace (de)serialization — reproducible experiment inputs.
//!
//! A [`Trace`] bundles an [`Instance`] with the generator metadata that
//! produced it, so any experiment row can be regenerated or shared as JSON
//! (via `calib_core::json`, the workspace's dependency-free JSON layer).

use calib_core::{Cost, FromJson, Instance, Json, JsonError, ToJson};

/// A reproducible workload: the instance plus its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Human-readable generator description, e.g. "poisson(rate=0.3)".
    pub family: String,
    /// Seed used by the generator.
    pub seed: u64,
    /// Calibration cost the experiment intends to use (informational).
    pub cal_cost: Cost,
    /// The generated instance itself.
    pub instance: Instance,
}

impl Trace {
    /// Bundles an instance with its provenance.
    pub fn new(family: impl Into<String>, seed: u64, cal_cost: Cost, instance: Instance) -> Self {
        Trace {
            family: family.into(),
            seed,
            cal_cost,
            instance,
        }
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> Result<String, JsonError> {
        let v = Json::obj([
            ("family", self.family.to_json()),
            ("seed", self.seed.to_json()),
            ("cal_cost", self.cal_cost.to_json()),
            ("instance", self.instance.to_json()),
        ]);
        Ok(v.to_string_pretty())
    }

    /// Parses from JSON.
    pub fn from_json(s: &str) -> Result<Trace, JsonError> {
        let v = Json::parse(s)?;
        Ok(Trace {
            family: String::from_json(v.field("family")?)?,
            seed: u64::from_json(v.field("seed")?)?,
            cal_cost: Cost::from_json(v.field("cal_cost")?)?,
            instance: Instance::from_json(v.field("instance")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calib_core::InstanceBuilder;

    #[test]
    fn json_round_trip() {
        let inst = InstanceBuilder::new(4)
            .machines(2)
            .job(0, 3)
            .job(5, 1)
            .build()
            .unwrap();
        let trace = Trace::new("bursty(2x1)", 99, 17, inst);
        let json = trace.to_json().unwrap();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(back, trace);
        assert!(json.contains("bursty"));
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(Trace::from_json("{\"family\": 3}").is_err());
        assert!(Trace::from_json("not json").is_err());
    }

    #[test]
    fn huge_cal_cost_round_trips_exactly() {
        let inst = InstanceBuilder::new(2).unit_job(0).build().unwrap();
        let trace = Trace::new("adversarial", 0, u128::MAX, inst);
        let back = Trace::from_json(&trace.to_json().unwrap()).unwrap();
        assert_eq!(back.cal_cost, u128::MAX);
    }
}
