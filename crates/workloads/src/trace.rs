//! Instance/trace (de)serialization — reproducible experiment inputs.
//!
//! A [`Trace`] bundles an [`Instance`] with the generator metadata that
//! produced it, so any experiment row can be regenerated or shared as JSON.

use serde::{Deserialize, Serialize};

use calib_core::{Cost, Instance};

/// A reproducible workload: the instance plus its provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Human-readable generator description, e.g. "poisson(rate=0.3)".
    pub family: String,
    /// Seed used by the generator.
    pub seed: u64,
    /// Calibration cost the experiment intends to use (informational).
    pub cal_cost: Cost,
    /// The generated instance itself.
    pub instance: Instance,
}

impl Trace {
    /// Bundles an instance with its provenance.
    pub fn new(family: impl Into<String>, seed: u64, cal_cost: Cost, instance: Instance) -> Self {
        Trace { family: family.into(), seed, cal_cost, instance }
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Parses from JSON.
    pub fn from_json(s: &str) -> serde_json::Result<Trace> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calib_core::InstanceBuilder;

    #[test]
    fn json_round_trip() {
        let inst = InstanceBuilder::new(4)
            .machines(2)
            .job(0, 3)
            .job(5, 1)
            .build()
            .unwrap();
        let trace = Trace::new("bursty(2x1)", 99, 17, inst);
        let json = trace.to_json().unwrap();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(back, trace);
        assert!(json.contains("bursty"));
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(Trace::from_json("{\"family\": 3}").is_err());
    }
}
