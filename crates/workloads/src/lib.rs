//! # calib-workloads
//!
//! Synthetic workload generation for the calibration-scheduling experiment
//! suite. The paper's bounds are worst-case and distribution-free; these
//! families exercise the regimes its proofs identify as interesting
//! (bursts that reward grouping, trains that punish waiting, heavy-tailed
//! weights that stress the weighted rules). See DESIGN.md §4 for why
//! synthetic workloads are the right substitution for this paper.
//!
//! ```
//! use calib_workloads::{make_instance, WeightModel};
//!
//! let inst = make_instance(
//!     calib_workloads::arrivals::bursty(3, 4, 50, true),
//!     WeightModel::Uniform { max: 9 },
//!     7,    // seed for the weights
//!     1,    // machines
//!     5,    // T
//! );
//! assert_eq!(inst.n(), 12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod arrivals;
pub mod trace;
pub mod weights;

pub use trace::Trace;
pub use weights::WeightModel;

use calib_core::{Instance, Job, Time};

/// Assembles an [`Instance`] from arrival times and a weight model.
pub fn make_instance(
    releases: Vec<Time>,
    weights: WeightModel,
    seed: u64,
    machines: usize,
    cal_len: Time,
) -> Instance {
    let w = weights.sample(seed, releases.len());
    let jobs: Vec<Job> = releases
        .into_iter()
        .zip(w)
        .enumerate()
        .map(|(i, (r, weight))| Job::new(i as u32, r, weight))
        .collect();
    Instance::new(jobs, machines, cal_len).expect("generator parameters are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn make_instance_assembles() {
        let inst = make_instance(arrivals::job_train(5), WeightModel::Unit, 0, 1, 3);
        assert_eq!(inst.n(), 5);
        assert!(inst.is_unweighted());
        assert!(inst.is_normalized());
    }

    #[test]
    fn make_instance_weighted_multi_machine() {
        let inst = make_instance(
            arrivals::bursty(2, 3, 10, false),
            WeightModel::Bimodal {
                heavy: 10,
                p_heavy: 0.5,
            },
            3,
            2,
            4,
        );
        assert_eq!(inst.n(), 6);
        assert_eq!(inst.machines(), 2);
    }
}
