//! Arrival-process generators.
//!
//! The paper's guarantees are worst-case; the experiment suite exercises
//! them with synthetic families that stress different regimes:
//!
//! * [`poisson`] — memoryless arrivals at rate `λ` (steady background load);
//! * [`bursty`] — bursts of `B` jobs separated by quiet gaps (the regime
//!   where grouping jobs into shared calibrations pays off most);
//! * [`uniform_spread`] — `n` arrivals spread uniformly over a horizon.
//!
//! All generators are deterministic given a seed and can emit either
//! distinct release times (required by the single-machine offline solvers)
//! or colliding ones (legal for the online engine and multi-machine runs).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use calib_core::Time;

/// Poisson-process arrival times with rate `rate` (expected jobs per step),
/// truncated to `n` jobs. Inter-arrival gaps are geometric (discrete-time
/// analogue); with `distinct`, consecutive arrivals are separated by at
/// least one step.
pub fn poisson(seed: u64, n: usize, rate: f64, distinct: bool) -> Vec<Time> {
    assert!(rate > 0.0, "rate must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0i64;
    let mut out = Vec::with_capacity(n);
    let p = (-rate).exp(); // probability of no arrival in one step
    while out.len() < n {
        // Geometric gap: number of empty steps before the next arrival.
        let u: f64 = rng.gen_range(0.0..1.0);
        let gap = if p <= 0.0 {
            0
        } else {
            (u.ln() / p.ln()).floor().max(0.0) as i64
        };
        t += gap;
        out.push(t);
        t += if distinct { 1 } else { 0 };
    }
    out
}

/// `bursts` bursts of `burst_size` jobs each, the bursts `gap` steps apart.
/// Within a burst, jobs arrive at consecutive steps when `distinct` (else
/// all at the burst start).
pub fn bursty(bursts: usize, burst_size: usize, gap: Time, distinct: bool) -> Vec<Time> {
    assert!(gap >= 1);
    let mut out = Vec::with_capacity(bursts * burst_size);
    for b in 0..bursts {
        let start = b as Time * gap;
        for k in 0..burst_size {
            out.push(if distinct { start + k as Time } else { start });
        }
    }
    out
}

/// `n` jobs spread over `[0, horizon]`, sorted; with `distinct`, collisions
/// are re-rolled (requires `horizon + 1 >= n`).
pub fn uniform_spread(seed: u64, n: usize, horizon: Time, distinct: bool) -> Vec<Time> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<Time> = Vec::with_capacity(n);
    if distinct {
        assert!(
            horizon + 1 >= n as Time,
            "not enough slots for distinct releases"
        );
        while out.len() < n {
            let r = rng.gen_range(0..=horizon);
            if !out.contains(&r) {
                out.push(r);
            }
        }
    } else {
        for _ in 0..n {
            out.push(rng.gen_range(0..=horizon));
        }
    }
    out.sort_unstable();
    out
}

/// The Lemma 3.1 "job train": one job per step in `[0, len)` — the workload
/// that punishes algorithms that wait too long.
pub fn job_train(len: Time) -> Vec<Time> {
    (0..len).collect()
}

/// Staircase pattern: `steps` clusters whose sizes grow linearly
/// (1, 2, 3, …), each cluster `gap` apart — mixes sparse and dense phases.
pub fn staircase(steps: usize, gap: Time, distinct: bool) -> Vec<Time> {
    let mut out = Vec::new();
    let mut start = 0 as Time;
    for s in 0..steps {
        for k in 0..=s {
            out.push(if distinct { start + k as Time } else { start });
        }
        start += gap + s as Time;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_and_sorted() {
        let a = poisson(42, 50, 0.3, true);
        let b = poisson(42, 50, 0.3, true);
        assert_eq!(a, b);
        assert!(
            a.windows(2).all(|w| w[0] < w[1]),
            "distinct => strictly increasing"
        );
        let c = poisson(43, 50, 0.3, true);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn poisson_rate_controls_density() {
        let sparse = poisson(1, 100, 0.05, false);
        let dense = poisson(1, 100, 2.0, false);
        assert!(sparse.last().unwrap() > dense.last().unwrap());
    }

    #[test]
    fn bursty_shape() {
        let r = bursty(3, 4, 100, true);
        assert_eq!(r.len(), 12);
        assert_eq!(r[0..4], [0, 1, 2, 3]);
        assert_eq!(r[4..8], [100, 101, 102, 103]);
        let collide = bursty(2, 3, 10, false);
        assert_eq!(collide, vec![0, 0, 0, 10, 10, 10]);
    }

    #[test]
    fn uniform_spread_respects_bounds() {
        let r = uniform_spread(7, 20, 40, true);
        assert_eq!(r.len(), 20);
        assert!(r.iter().all(|&t| (0..=40).contains(&t)));
        let mut d = r.clone();
        d.dedup();
        assert_eq!(d.len(), 20);
    }

    #[test]
    fn train_and_staircase() {
        assert_eq!(job_train(4), vec![0, 1, 2, 3]);
        let s = staircase(3, 10, true);
        // Clusters: {0}, {10,11}, {21,22,23}.
        assert_eq!(s, vec![0, 10, 11, 21, 22, 23]);
    }
}
