//! An independent exact solver for the *unweighted* single-machine case —
//! used to cross-validate the paper's general DP at sizes brute force
//! cannot reach.
//!
//! For unit weights the total flow `Σ (t_j + 1 − r_j)` depends only on the
//! *multiset of busy slots* (`Σ t_j + n − Σ r_j`), so an optimal schedule is
//! an optimal choice of calibration starts followed by greedy FIFO filling
//! (each slot takes the earliest released unscheduled job — exactly
//! Observation 2.1 on unit weights). With starts restricted to the Lemma 4.2
//! candidates `{ r_j + 1 − T }`, a different `O(K n³)` dynamic program
//! emerges:
//!
//! * process calibration starts in increasing order;
//! * state `(j, e, k)` — `j` jobs scheduled so far, merged-coverage
//!   frontier `e` (end of the latest interval; slots before `e` are used or
//!   permanently dead), `k` calibrations spent;
//! * transition: pick the next start `s > e − T` (overlap allowed — merged
//!   coverage is what matters), greedily fill the *new* slots
//!   `[max(e, s), s + T)` FIFO, pay the sum of used slots.
//!
//! Greedy filling is optimal given the starts (swapping any job to an
//! earlier feasible idle slot only reduces the slot sum, and an idle
//! calibrated slot is dead: when it went idle every released job was done,
//! and later jobs are released after it). This solver shares *no code or
//! structure* with the Propositions 1–2 DP, which is the point.

use std::collections::HashMap;

use calib_core::{Assignment, Calibration, Cost, Instance, MachineId, Schedule, Time};

use crate::brute::candidate_starts;
use crate::dp::OfflineError;

/// Result of the unweighted DP.
#[derive(Debug, Clone)]
pub struct UnweightedSolution {
    /// Minimum total flow within the budget.
    pub flow: Cost,
    /// A schedule achieving it.
    pub schedule: Schedule,
}

/// Exact minimum total flow for an unweighted single-machine instance with
/// at most `budget` calibrations; `Ok(None)` when the budget is infeasible.
pub fn solve_offline_unweighted(
    instance: &Instance,
    budget: usize,
) -> Result<Option<UnweightedSolution>, OfflineError> {
    if instance.machines() != 1 {
        return Err(OfflineError::MultipleMachines(instance.machines()));
    }
    if !instance.is_unweighted() {
        return Err(OfflineError::NotUnweighted);
    }
    let jobs = instance.jobs();
    for w in jobs.windows(2) {
        if w[0].release >= w[1].release {
            return Err(OfflineError::NotNormalized);
        }
    }
    let n = jobs.len();
    if n == 0 {
        return Ok(Some(UnweightedSolution {
            flow: 0,
            schedule: Schedule::default(),
        }));
    }
    let t = instance.cal_len();
    let starts = candidate_starts(instance);
    let releases: Vec<Time> = jobs.iter().map(|j| j.release).collect();

    // Memoized best remaining cost from (j, frontier-start-index, k spent).
    // `frontier` is encoded as the index of the last used start (`usize::MAX`
    // for "none"); its interval ends at starts[idx] + T.
    type Key = (usize, usize, usize);
    #[derive(Clone, Copy)]
    struct Step {
        /// Next start chosen (index into `starts`).
        next: usize,
        /// Jobs filled by that interval.
        filled: usize,
    }
    type Memo = HashMap<Key, (Option<i128>, Option<Step>)>;
    let mut memo: Memo = HashMap::new();

    // Greedy-fill simulation: jobs j.. into new slots [from, to); returns
    // (#scheduled, Σ slots).
    let fill = |mut j: usize, from: Time, to: Time| -> (usize, i128) {
        let mut sum = 0i128;
        let mut count = 0usize;
        let mut slot = from;
        while slot < to && j < n {
            if releases[j] <= slot {
                sum += slot as i128;
                j += 1;
                count += 1;
            } else {
                // Idle: jump to the next release if it lands inside.
                slot = releases[j].max(slot + 1) - 1; // -1 compensates +1 below
            }
            slot += 1;
        }
        (count, sum)
    };

    fn solve(
        key: (usize, usize, usize),
        n: usize,
        budget: usize,
        t: Time,
        starts: &[Time],
        fill: &impl Fn(usize, Time, Time) -> (usize, i128),
        memo: &mut HashMap<(usize, usize, usize), (Option<i128>, Option<Step>)>,
    ) -> Option<i128> {
        #![allow(clippy::type_complexity)]
        let (j, last, k) = key;
        if j == n {
            return Some(0);
        }
        if k == budget {
            return None;
        }
        if let Some(&(c, _)) = memo.get(&key) {
            return c;
        }
        let frontier = if last == usize::MAX {
            Time::MIN
        } else {
            starts[last] + t
        };
        let min_next = if last == usize::MAX {
            Time::MIN
        } else {
            starts[last] + 1
        };
        let mut best: Option<(i128, Step)> = None;
        for (idx, &s) in starts.iter().enumerate() {
            if s < min_next {
                continue;
            }
            let from = s.max(frontier);
            let (filled, slot_sum) = fill(j, from, s + t);
            if filled == 0 {
                continue; // a job-less interval never helps
            }
            if let Some(rest) = solve((j + filled, idx, k + 1), n, budget, t, starts, fill, memo) {
                let c = slot_sum + rest;
                if best.is_none_or(|(b, _)| c < b) {
                    best = Some((c, Step { next: idx, filled }));
                }
            }
        }
        let (cost, step) = match best {
            Some((c, s)) => (Some(c), Some(s)),
            None => (None, None),
        };
        memo.insert(key, (cost, step));
        cost
    }

    let root = (0usize, usize::MAX, 0usize);
    let Some(total_slots) = solve(root, n, budget, t, &starts, &fill, &mut memo) else {
        return Ok(None); // budget cannot cover all jobs
    };

    // Reconstruct by replaying the recorded steps.
    let mut assignments = Vec::with_capacity(n);
    let mut calibrations = Vec::new();
    let mut key = root;
    while key.0 < n {
        let step = memo
            .get(&key)
            .and_then(|&(_, s)| s)
            .expect("feasible states record a step");
        let s = starts[step.next];
        calibrations.push(Calibration {
            machine: MachineId(0),
            start: s,
        });
        let frontier = if key.1 == usize::MAX {
            Time::MIN
        } else {
            starts[key.1] + t
        };
        // Replay the fill to place the jobs.
        let mut j = key.0;
        let mut slot = s.max(frontier);
        while slot < s + t && j < key.0 + step.filled {
            if releases[j] <= slot {
                assignments.push(Assignment::new(jobs[j].id, slot, MachineId(0)));
                j += 1;
            } else {
                slot = releases[j].max(slot + 1) - 1;
            }
            slot += 1;
        }
        key = (key.0 + step.filled, step.next, key.2 + 1);
    }

    let release_sum: i128 = releases.iter().map(|&r| r as i128).sum();
    let flow = (total_slots + n as i128 - release_sum).max(0) as Cost;
    Ok(Some(UnweightedSolution {
        flow,
        schedule: Schedule::new(calibrations, assignments),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use calib_core::{check_schedule, InstanceBuilder};

    #[test]
    fn single_burst() {
        let inst = InstanceBuilder::new(3)
            .unit_jobs([0, 1, 2])
            .build()
            .unwrap();
        let sol = solve_offline_unweighted(&inst, 1).unwrap().unwrap();
        assert_eq!(sol.flow, 3);
        check_schedule(&inst, &sol.schedule).unwrap();
    }

    #[test]
    fn grouping_under_tight_budget() {
        let inst = InstanceBuilder::new(2).unit_jobs([0, 3]).build().unwrap();
        let sol = solve_offline_unweighted(&inst, 1).unwrap().unwrap();
        assert_eq!(sol.flow, 4); // both in [2, 4): flows 3 + 1
        check_schedule(&inst, &sol.schedule).unwrap();
    }

    #[test]
    fn infeasible_budget() {
        let inst = InstanceBuilder::new(2)
            .unit_jobs([0, 1, 2])
            .build()
            .unwrap();
        assert!(solve_offline_unweighted(&inst, 1).unwrap().is_none());
    }

    #[test]
    fn rejects_weighted_and_multi() {
        let weighted = InstanceBuilder::new(2).job(0, 3).build().unwrap();
        assert!(solve_offline_unweighted(&weighted, 1).is_err());
        let multi = InstanceBuilder::new(2)
            .machines(2)
            .unit_jobs([0])
            .build()
            .unwrap();
        assert!(solve_offline_unweighted(&multi, 1).is_err());
    }

    #[test]
    fn agrees_with_general_dp_small() {
        let inst = InstanceBuilder::new(3)
            .unit_jobs([0, 2, 5, 6, 11])
            .build()
            .unwrap();
        for k in 2..=5 {
            let a = solve_offline_unweighted(&inst, k).unwrap().map(|s| s.flow);
            let b = crate::dp::solve_offline(&inst, k).unwrap().map(|s| s.flow);
            assert_eq!(a, b, "K={k}");
        }
    }

    #[test]
    fn empty_instance() {
        let inst = InstanceBuilder::new(3).build().unwrap();
        let sol = solve_offline_unweighted(&inst, 0).unwrap().unwrap();
        assert_eq!(sol.flow, 0);
    }
}
