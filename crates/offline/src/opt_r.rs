//! `OPT_r` — the optimum restricted to schedules that process jobs in
//! release-time order (Lemma 3.4's baseline).
//!
//! Lemma 3.4 shows `OPT_r ≤ 2 · OPT`; the charging argument for Algorithm 2
//! bounds the algorithm against `OPT_r`. Experiment E5 measures the actual
//! `OPT_r / OPT` gap, which needs an exact `OPT_r` oracle. Given a fixed
//! calibration set, the best release-ordered assignment on one machine is
//! forced: FIFO into the earliest usable slots. We therefore enumerate
//! calibration subsets like the brute-force solver does.

use calib_core::{Calibration, Cost, Coverage, Instance, MachineId, Schedule, Time};

use crate::brute::candidate_starts;

/// FIFO assignment on one machine: jobs in `(release, id)` order, each into
/// the earliest covered slot that is both after the previous job's slot and
/// at/after its release. Returns `None` if some job does not fit.
pub fn assign_fifo(instance: &Instance, times: &[Time]) -> Option<Schedule> {
    assert_eq!(instance.machines(), 1, "OPT_r is a single-machine notion");
    let coverage = Coverage::from_starts(times, instance.cal_len());
    let mut assignments = Vec::with_capacity(instance.n());
    let mut cursor = Time::MIN;
    for job in instance.jobs() {
        let slot = coverage.next_covered(cursor.max(job.release))?;
        assignments.push(calib_core::Assignment::new(job.id, slot, MachineId(0)));
        cursor = slot + 1;
    }
    let calibrations = times
        .iter()
        .map(|&s| Calibration {
            machine: MachineId(0),
            start: s,
        })
        .collect();
    Some(Schedule::new(calibrations, assignments))
}

/// Exact `OPT_r`: minimum total weighted flow over release-ordered
/// schedules within `budget` calibrations, via subset enumeration.
///
/// `mode` selects the candidate start set:
/// * [`CandidateMode::Lemma42`] — starts in `{ r_j + 1 − T }` (fast; the
///   push-back argument of Lemma 4.2 applies verbatim to release-ordered
///   schedules since FIFO assignment is what its proof re-schedules with);
/// * [`CandidateMode::Exhaustive`] — every start in the sensible window
///   (used in tests to validate the Lemma42 mode).
pub fn opt_r_brute(
    instance: &Instance,
    budget: usize,
    mode: CandidateMode,
) -> Option<(Cost, Schedule)> {
    let candidates = match mode {
        CandidateMode::Lemma42 => candidate_starts(instance),
        CandidateMode::Exhaustive => {
            let (min_r, max_r) = match (instance.min_release(), instance.max_release()) {
                (Some(a), Some(b)) => (a, b),
                _ => return Some((0, Schedule::default())),
            };
            (min_r + 1 - instance.cal_len()..=max_r + instance.n() as Time).collect()
        }
    };
    let mut best: Option<(Cost, Schedule)> = None;
    for size in 0..=budget.min(candidates.len()) {
        crate::brute::for_each_subset(&candidates, size, &mut |times| {
            if let Some(sched) = assign_fifo(instance, times) {
                let flow = sched.total_weighted_flow(instance);
                if best.as_ref().is_none_or(|(b, _)| flow < *b) {
                    best = Some((flow, sched));
                }
            }
        });
    }
    best
}

/// Candidate start sets for [`opt_r_brute`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateMode {
    /// Interval starts restricted to `{ r_j + 1 − T }` (fast, lossless).
    Lemma42,
    /// Every start in the sensible window (validation only).
    Exhaustive,
}

#[cfg(test)]
mod tests {
    use super::*;
    use calib_core::{check_schedule, InstanceBuilder};

    #[test]
    fn fifo_respects_release_order() {
        let inst = InstanceBuilder::new(4)
            .job(0, 1)
            .job(1, 100)
            .build()
            .unwrap();
        let sched = assign_fifo(&inst, &[0]).unwrap();
        check_schedule(&inst, &sched).unwrap();
        // FIFO: light early job first even though the heavy one would
        // lower flow if swapped.
        assert_eq!(sched.start_of(calib_core::JobId(0)), Some(0));
        assert_eq!(sched.start_of(calib_core::JobId(1)), Some(1));
    }

    #[test]
    fn fifo_fails_when_coverage_runs_out() {
        let inst = InstanceBuilder::new(1).unit_jobs([0, 1]).build().unwrap();
        assert!(assign_fifo(&inst, &[0]).is_none());
        assert!(assign_fifo(&inst, &[0, 1]).is_some());
    }

    #[test]
    fn opt_r_at_least_opt() {
        // Weighted instance where release order is suboptimal.
        let inst = InstanceBuilder::new(4)
            .job(0, 1)
            .job(1, 100)
            .build()
            .unwrap();
        let (opt_flow, _) = crate::brute::optimal_flow_brute(&inst, 2).unwrap();
        let (optr_flow, sched) = opt_r_brute(&inst, 2, CandidateMode::Lemma42).unwrap();
        check_schedule(&inst, &sched).unwrap();
        assert!(optr_flow >= opt_flow);
    }

    #[test]
    fn lemma42_candidates_suffice_for_opt_r() {
        let cases = [
            (vec![(0i64, 1u64), (1, 5)], 3i64, 2usize),
            (vec![(0, 2), (2, 2), (5, 1)], 2, 2),
            (vec![(0, 1), (1, 1), (2, 9)], 2, 2),
        ];
        for (spec, t, k) in cases {
            let mut b = InstanceBuilder::new(t);
            for (r, w) in &spec {
                b = b.job(*r, *w);
            }
            let inst = b.build().unwrap();
            let fast = opt_r_brute(&inst, k, CandidateMode::Lemma42).map(|(f, _)| f);
            let slow = opt_r_brute(&inst, k, CandidateMode::Exhaustive).map(|(f, _)| f);
            assert_eq!(fast, slow, "spec {spec:?} T={t} K={k}");
        }
    }
}
