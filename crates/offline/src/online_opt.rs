//! Offline optimum for the *online* objective
//! `G · (#calibrations) + total weighted flow`.
//!
//! Section 4 of the paper notes the budgeted offline problem generalizes the
//! online objective: sweep the budget `K ∈ {0, …, n}` (at most one
//! calibration per job is ever useful on one machine) and take
//! `min_K { K·G + F(K, n) }`. This is the exact baseline `OPT` that the
//! competitive-ratio experiments (E1, E2) divide by.

use calib_core::{Cost, Instance};

use crate::dp::{min_flow_by_budget, solve_offline, DpSolution, OfflineError};

/// The optimal offline cost and the budget that achieves it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnlineOpt {
    /// `min_K { K·G + F(K, n) }`.
    pub cost: Cost,
    /// A minimizing number of calibrations.
    pub calibrations: usize,
    /// The flow part of the optimum.
    pub flow: Cost,
}

/// Exact offline optimum of the online objective on one machine.
///
/// The instance must be normalized (strictly increasing releases).
pub fn opt_online_cost(instance: &Instance, cal_cost: Cost) -> Result<OnlineOpt, OfflineError> {
    let n = instance.n();
    if n == 0 {
        return Ok(OnlineOpt {
            cost: 0,
            calibrations: 0,
            flow: 0,
        });
    }
    let flows = min_flow_by_budget(instance, n)?;
    let mut best: Option<OnlineOpt> = None;
    for (k, flow) in flows.into_iter().enumerate() {
        if let Some(flow) = flow {
            let cost = cal_cost * k as Cost + flow;
            if best.is_none_or(|b| cost < b.cost) {
                best = Some(OnlineOpt {
                    cost,
                    calibrations: k,
                    flow,
                });
            }
        }
    }
    Ok(best.expect("budget n always schedules every job on one machine"))
}

/// As [`opt_online_cost`] but also reconstructs an optimal schedule.
pub fn opt_online_schedule(
    instance: &Instance,
    cal_cost: Cost,
) -> Result<Option<DpSolution>, OfflineError> {
    let opt = opt_online_cost(instance, cal_cost)?;
    if instance.n() == 0 {
        return Ok(None);
    }
    solve_offline(instance, opt.calibrations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use calib_core::InstanceBuilder;

    #[test]
    fn empty_instance() {
        let inst = InstanceBuilder::new(3).build().unwrap();
        let opt = opt_online_cost(&inst, 100).unwrap();
        assert_eq!(opt.cost, 0);
    }

    #[test]
    fn single_job_pays_one_calibration() {
        let inst = InstanceBuilder::new(3).unit_jobs([5]).build().unwrap();
        let opt = opt_online_cost(&inst, 10).unwrap();
        // Calibrate once, run at release: 10 + 1.
        assert_eq!(opt.cost, 11);
        assert_eq!(opt.calibrations, 1);
    }

    #[test]
    fn expensive_calibrations_merge_intervals() {
        // Two far-apart jobs: cheap G -> 2 calibrations; huge G -> 1.
        let inst = InstanceBuilder::new(2).unit_jobs([0, 10]).build().unwrap();
        let cheap = opt_online_cost(&inst, 1).unwrap();
        assert_eq!(cheap.calibrations, 2);
        assert_eq!(cheap.cost, 2 + 2);
        let pricey = opt_online_cost(&inst, 1000).unwrap();
        assert_eq!(pricey.calibrations, 1);
        // One interval ending right after r=10: job 0 waits until 9
        // (flow 10), job 1 runs at 10 (flow 1).
        assert_eq!(pricey.cost, 1000 + 11);
    }

    #[test]
    fn matches_brute_force_over_budgets() {
        let inst = InstanceBuilder::new(3)
            .unit_jobs([0, 2, 4, 9])
            .build()
            .unwrap();
        for g in [0u128, 1, 3, 10, 50] {
            let opt = opt_online_cost(&inst, g).unwrap();
            let mut brute_best = Cost::MAX;
            for k in 0..=inst.n() {
                if let Some((flow, _)) = crate::brute::optimal_flow_brute(&inst, k) {
                    brute_best = brute_best.min(g * k as Cost + flow);
                }
            }
            assert_eq!(opt.cost, brute_best, "G={g}");
        }
    }
}

/// Is the budget→flow curve convex (differences non-increasing)? The
/// paper's footnote 5 says the online-objective optimum can be found by
/// *binary search* over the budget, which presumes `K·G + F(K)` is
/// unimodal; convexity of `F` is the sufficient condition, and it holds on
/// every instance we have ever generated (see the E6/E13 tests). Exposed so
/// callers can verify before trusting [`opt_online_cost_ternary`].
pub fn flow_curve_is_convex(flows: &[Option<Cost>]) -> bool {
    let vals: Vec<Cost> = flows.iter().copied().flatten().collect();
    vals.windows(3).all(|w| w[0] + w[2] >= 2 * w[1])
}

/// The paper's footnote-5 approach: ternary search over the budget for
/// `min_K { K·G + F(K) }`, assuming the flow curve is convex (verified via
/// [`flow_curve_is_convex`]; falls back to the exhaustive sweep when the
/// check fails, so the result is always exact).
pub fn opt_online_cost_ternary(
    instance: &Instance,
    cal_cost: Cost,
) -> Result<OnlineOpt, OfflineError> {
    let n = instance.n();
    if n == 0 {
        return Ok(OnlineOpt {
            cost: 0,
            calibrations: 0,
            flow: 0,
        });
    }
    let flows = min_flow_by_budget(instance, n)?;
    if !flow_curve_is_convex(&flows) {
        // Convexity failed (never observed): exhaustive sweep.
        return opt_online_cost(instance, cal_cost);
    }
    let first_feasible = flows
        .iter()
        .position(|f| f.is_some())
        .expect("budget n is always feasible");
    let cost_at = |k: usize| -> Cost { cal_cost * k as Cost + flows[k].expect("feasible k") };

    let (mut lo, mut hi) = (first_feasible, n);
    while hi - lo > 2 {
        let m1 = lo + (hi - lo) / 3;
        let m2 = hi - (hi - lo) / 3;
        if cost_at(m1) <= cost_at(m2) {
            hi = m2;
        } else {
            lo = m1;
        }
    }
    let best_k = (lo..=hi)
        .min_by_key(|&k| (cost_at(k), k))
        .expect("non-empty range");
    Ok(OnlineOpt {
        cost: cost_at(best_k),
        calibrations: best_k,
        flow: flows[best_k].unwrap(),
    })
}

#[cfg(test)]
mod ternary_tests {
    use super::*;
    use calib_core::{Instance, InstanceBuilder, Job};

    #[test]
    fn ternary_matches_sweep_on_many_instances() {
        // Deterministic pseudo-random instances via a small LCG.
        let mut state = 7u64;
        let mut next = |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for _ in 0..60 {
            let n = 2 + next(9) as usize;
            let t = 1 + next(4) as i64;
            let mut releases: Vec<i64> = Vec::new();
            while releases.len() < n {
                let r = next(3 * n as u64 + 1) as i64;
                if !releases.contains(&r) {
                    releases.push(r);
                }
            }
            releases.sort_unstable();
            let jobs: Vec<Job> = releases
                .into_iter()
                .enumerate()
                .map(|(i, r)| Job::new(i as u32, r, 1 + next(9)))
                .collect();
            let inst = Instance::single_machine(jobs, t).unwrap();
            for g in [0u128, 1, 4, 17, 60] {
                let sweep = opt_online_cost(&inst, g).unwrap();
                let tern = opt_online_cost_ternary(&inst, g).unwrap();
                assert_eq!(sweep.cost, tern.cost, "{inst:?} G={g}");
            }
        }
    }

    #[test]
    fn convexity_checker() {
        assert!(flow_curve_is_convex(&[
            None,
            Some(10),
            Some(6),
            Some(4),
            Some(3)
        ]));
        assert!(!flow_curve_is_convex(&[Some(10), Some(9), Some(4)]));
        assert!(flow_curve_is_convex(&[]));
        assert!(flow_curve_is_convex(&[None, Some(5)]));
    }

    #[test]
    fn ternary_empty_instance() {
        let inst = InstanceBuilder::new(3).build().unwrap();
        assert_eq!(opt_online_cost_ternary(&inst, 9).unwrap().cost, 0);
    }
}
