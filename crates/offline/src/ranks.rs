//! Definition 4.5 machinery: ranks, the job windows `J(u, v, μ)`, and the
//! quantities `e`, `Ψ`, `j_ℓ`, `s` used by the dynamic program.
//!
//! Jobs are indexed `0 .. n` in ascending release order with *distinct*
//! release times (the paper's single-machine normalization). Each job gets a
//! distinct rank `μ_j ∈ {1, …, n}` in ascending order of weight, ties broken
//! by ranking the job with the *latest* release time first (i.e. the lighter
//! job — and among equal weights the later-released job — has the smaller
//! rank and is the first candidate to be delayed).

use calib_core::{Job, Time};

/// Rank table over a release-sorted job slice with distinct releases.
#[derive(Debug, Clone)]
pub struct RankedJobs {
    jobs: Vec<Job>,
    /// `rank[i]` = `μ` of the job at index `i` (1-based ranks).
    rank: Vec<u32>,
}

impl RankedJobs {
    /// Builds the rank table. Panics if releases are not strictly
    /// increasing — callers must hand in a normalized single-machine job
    /// list (see `Instance::normalized`).
    pub fn new(jobs: &[Job]) -> Self {
        for w in jobs.windows(2) {
            assert!(
                w[0].release < w[1].release,
                "offline DP requires strictly increasing release times; got {:?} then {:?}",
                w[0],
                w[1]
            );
        }
        let n = jobs.len();
        let mut order: Vec<usize> = (0..n).collect();
        // Ascending weight; ties -> latest release first (smaller rank).
        order.sort_by_key(|&i| (jobs[i].weight, std::cmp::Reverse(jobs[i].release)));
        let mut rank = vec![0u32; n];
        for (pos, &i) in order.iter().enumerate() {
            rank[i] = pos as u32 + 1;
        }
        RankedJobs {
            jobs: jobs.to_vec(),
            rank,
        }
    }

    /// Number of jobs.
    #[inline]
    pub fn n(&self) -> usize {
        self.jobs.len()
    }

    /// The jobs, in (strictly increasing) release order.
    #[inline]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// The job at release-order index `i`.
    #[inline]
    pub fn job(&self, i: usize) -> &Job {
        &self.jobs[i]
    }

    /// Release time of job index `i`.
    #[inline]
    pub fn release(&self, i: usize) -> Time {
        self.jobs[i].release
    }

    /// 1-based rank `μ_i` of job index `i`.
    #[inline]
    pub fn rank(&self, i: usize) -> u32 {
        self.rank[i]
    }

    /// `J(u, v, μ)`: indices `u ..= v` with rank `> μ`, ascending (which is
    /// also ascending release order).
    pub fn window(&self, u: usize, v: usize, mu: u32) -> Vec<usize> {
        if u > v || v >= self.n() {
            return Vec::new();
        }
        (u..=v).filter(|&i| self.rank[i] > mu).collect()
    }
}

/// All Definition 4.5 quantities for one DP state `(u, v, μ)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowInfo {
    /// Member indices, ascending.
    pub members: Vec<usize>,
    /// Start `b_i = r_v + 1 − T` of the group's last interval.
    pub last_start: Time,
    /// `e`: the member with the smallest rank.
    pub e: usize,
    /// `Ψ`: members `j` (with `j < v`) whose prefix count `|J(u, j, μ)|` is a
    /// positive multiple of `T`.
    pub psi: Vec<usize>,
    /// `s` per Lemma 4.6: the machine is completely busy during
    /// `[b_i, b_i + s)` and every job during `[b_i + s, b_i + T)` runs at its
    /// release time. `None` when no `h ∈ [0, T]` satisfies the congruence
    /// (the state is then structurally infeasible).
    pub s: Option<Time>,
}

impl WindowInfo {
    /// Computes the quantities for `(u, v, μ)` with calibration length `T`.
    /// Returns `None` when the window is empty.
    pub fn compute(
        ranked: &RankedJobs,
        u: usize,
        v: usize,
        mu: u32,
        t: Time,
    ) -> Option<WindowInfo> {
        let members = ranked.window(u, v, mu);
        if members.is_empty() {
            return None;
        }
        let last_start = ranked.release(v) + 1 - t;

        let e = *members
            .iter()
            .min_by_key(|&&i| ranked.rank(i))
            .expect("non-empty window");

        let mut psi = Vec::new();
        for (pos, &j) in members.iter().enumerate() {
            let count = pos as Time + 1;
            if j < v && count % t == 0 {
                psi.push(j);
            }
        }

        // s = min { h : h ≡ |{ j ∈ J : r_j < b_i + h }| (mod T) }, h ∈ [0, T].
        let mut s = None;
        for h in 0..=t {
            let c = members
                .iter()
                .filter(|&&j| ranked.release(j) < last_start + h)
                .count() as Time;
            if (c - h).rem_euclid(t) == 0 {
                s = Some(h);
                break;
            }
        }

        Some(WindowInfo {
            members,
            last_start,
            e,
            psi,
            s,
        })
    }

    /// `j_ℓ`: the member of `Ψ` with the latest release (largest index).
    pub fn j_ell(&self) -> Option<usize> {
        self.psi.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs(spec: &[(Time, u64)]) -> Vec<Job> {
        spec.iter()
            .enumerate()
            .map(|(i, &(r, w))| Job::new(i as u32, r, w))
            .collect()
    }

    #[test]
    fn ranks_ascending_weight_latest_release_first() {
        // weights: 5, 2, 2, 9 at releases 0, 1, 2, 3.
        let r = RankedJobs::new(&jobs(&[(0, 5), (1, 2), (2, 2), (3, 9)]));
        // Lightest are the two weight-2 jobs; the later-released (index 2)
        // ranks first.
        assert_eq!(r.rank(2), 1);
        assert_eq!(r.rank(1), 2);
        assert_eq!(r.rank(0), 3);
        assert_eq!(r.rank(3), 4);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_shared_releases() {
        RankedJobs::new(&jobs(&[(0, 1), (0, 2)]));
    }

    #[test]
    fn window_filters_by_rank() {
        let r = RankedJobs::new(&jobs(&[(0, 5), (1, 2), (2, 2), (3, 9)]));
        assert_eq!(r.window(0, 3, 0), vec![0, 1, 2, 3]);
        // Remove rank-1 (index 2) and rank-2 (index 1).
        assert_eq!(r.window(0, 3, 2), vec![0, 3]);
        assert_eq!(r.window(1, 2, 2), Vec::<usize>::new());
        assert_eq!(r.window(2, 1, 0), Vec::<usize>::new());
    }

    #[test]
    fn window_info_basics() {
        // 4 unit-ish jobs, T = 2. Window over everything.
        let r = RankedJobs::new(&jobs(&[(0, 4), (1, 3), (5, 2), (6, 1)]));
        let info = WindowInfo::compute(&r, 0, 3, 0, 2).unwrap();
        assert_eq!(info.last_start, 6 + 1 - 2);
        // e is the lightest job: index 3 (weight 1).
        assert_eq!(info.e, 3);
        // Ψ: prefix counts 1,2,3,4 -> multiples of 2 at positions 1 and 3;
        // position 3 is v itself (excluded), so Ψ = {index 1}.
        assert_eq!(info.psi, vec![1]);
        assert_eq!(info.j_ell(), Some(1));
    }

    #[test]
    fn s_zero_when_everything_runs_at_release() {
        // Jobs released exactly inside the last interval: T = 4,
        // releases 10, 11, 12 -> b_i = 12 + 1 - 4 = 9; no job released
        // before 9, so the busy prefix is empty: s = 0.
        let r = RankedJobs::new(&jobs(&[(10, 1), (11, 1), (12, 1)]));
        let info = WindowInfo::compute(&r, 0, 2, 0, 4).unwrap();
        assert_eq!(info.last_start, 9);
        assert_eq!(info.s, Some(0));
    }

    #[test]
    fn s_counts_backlog_before_interval() {
        // T = 4, releases 0, 1, 9 -> b_i = 6. Jobs 0 and 1 are released
        // before the interval: the busy prefix must hold both, s = 2
        // (slots 6 and 7), then job 2 runs at its release 9.
        let r = RankedJobs::new(&jobs(&[(0, 1), (1, 1), (9, 1)]));
        let info = WindowInfo::compute(&r, 0, 2, 0, 4).unwrap();
        assert_eq!(info.last_start, 6);
        assert_eq!(info.s, Some(2));
    }

    #[test]
    fn empty_window_returns_none() {
        let r = RankedJobs::new(&jobs(&[(0, 1)]));
        assert!(WindowInfo::compute(&r, 0, 0, 1, 3).is_none());
    }
}
