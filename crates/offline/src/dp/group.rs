//! `f(u, v, μ)` — Proposition 2 of the paper.
//!
//! `f(u, v, μ)` is the minimum total *weighted completion time* of the jobs
//! `J(u, v, μ)` scheduled in a group of exactly `⌈|J(u,v,μ)|/T⌉` intervals
//! whose last interval starts at `b_i = r_v + 1 − T`, with every interval
//! full except possibly the last.
//!
//! The recurrence (Definition 4.5 / Proposition 2):
//!
//! * `f = 0` when the window is empty;
//! * `f = ∞` when `Ψ ≠ ∅` and `b_i ≤ r_ℓ` (the full-interval prefix cannot
//!   fit before the last interval);
//! * otherwise `f` is the minimum of:
//!   1. `f(u, v, μ_e) + w_e (r_e + 1)` if `r_e ≥ b_i + s` — the cheapest
//!      (rank-`e`) job runs at its release inside the at-release region;
//!   2. `f(u, v, μ_e) + w_e (b_i + s)` if `r_e < b_i + s` and `s > 0` — job
//!      `e` takes the last slot of the busy prefix, completing at `b_i + s`;
//!   3. `min_{j ∈ Ψ, r_j ≥ r_e} f(u, j, μ) + f(j+1, v, μ)` — split the group
//!      after a full-interval boundary.

use std::collections::HashMap;

use calib_core::Time;

use crate::ranks::{RankedJobs, WindowInfo};

/// How the optimum of a state was achieved — recorded for schedule
/// reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Choice {
    /// Empty window: cost 0, nothing to place.
    Empty,
    /// Branch 1: job `e` completes at `r_e + 1`; recurse on `(u, v, μ_e)`.
    AtRelease {
        /// Index of the placed (smallest-rank) job.
        e: usize,
    },
    /// Branch 2: job `e` completes at `b_i + s`; recurse on `(u, v, μ_e)`.
    AtSlot {
        /// Index of the placed (smallest-rank) job.
        e: usize,
        /// Its completion time `b_i + s`.
        completion: Time,
    },
    /// Branch 3: split into `(u, j, μ)` and `(j+1, v, μ)`.
    Split {
        /// The full-interval boundary job (member of `Ψ`).
        j: usize,
    },
}

/// One memoized state: completion-time optimum (`None` = infeasible) plus
/// the winning choice.
#[derive(Debug, Clone, Copy)]
pub struct StateValue {
    /// Total weighted completion time (`None` = infeasible).
    pub cost: Option<i128>,
    /// The branch achieving it.
    pub choice: Choice,
}

/// Memoized evaluator for `f(u, v, μ)` over one ranked job set.
pub struct GroupDp {
    ranked: RankedJobs,
    cal_len: Time,
    memo: HashMap<(u32, u32, u32), StateValue>,
    pruned: u64,
}

impl GroupDp {
    /// A fresh memo table over the given ranked jobs.
    pub fn new(ranked: RankedJobs, cal_len: Time) -> Self {
        assert!(cal_len >= 1);
        GroupDp {
            ranked,
            cal_len,
            memo: HashMap::new(),
            pruned: 0,
        }
    }

    /// The underlying ranked job set.
    pub fn ranked(&self) -> &RankedJobs {
        &self.ranked
    }

    /// The calibration length `T`.
    pub fn cal_len(&self) -> Time {
        self.cal_len
    }

    /// Number of states evaluated so far (for the E6 scaling study).
    pub fn states_evaluated(&self) -> usize {
        self.memo.len()
    }

    /// Number of states rejected as infeasible so far (the guard plus
    /// states where every branch was infeasible).
    pub fn states_pruned(&self) -> u64 {
        self.pruned
    }

    /// Adds the current expansion/prune totals to a shared registry. Call
    /// once, after solving — the registry accumulates, so repeated flushes
    /// double-count.
    pub fn flush_counters(&self, counters: &calib_core::obs::Counters) {
        counters.dp_states_expanded(self.memo.len() as u64);
        counters.dp_states_pruned(self.pruned);
    }

    /// The memoized `f(u, v, μ)` (total weighted completion time), `None`
    /// when infeasible.
    pub fn f(&mut self, u: usize, v: usize, mu: u32) -> Option<i128> {
        self.eval(u, v, mu).cost
    }

    /// The recorded choice for a state (used by reconstruction).
    pub fn choice(&mut self, u: usize, v: usize, mu: u32) -> Choice {
        self.eval(u, v, mu).choice
    }

    fn eval(&mut self, u: usize, v: usize, mu: u32) -> StateValue {
        let key = (u as u32, v as u32, mu);
        if let Some(&val) = self.memo.get(&key) {
            return val;
        }
        let val = self.compute(u, v, mu);
        self.memo.insert(key, val);
        val
    }

    fn compute(&mut self, u: usize, v: usize, mu: u32) -> StateValue {
        let t = self.cal_len;
        let info = match WindowInfo::compute(&self.ranked, u, v, mu, t) {
            None => {
                return StateValue {
                    cost: Some(0),
                    choice: Choice::Empty,
                }
            }
            Some(info) => info,
        };

        // Infeasibility guard: a full-interval prefix boundary job released
        // at or after the last interval's start cannot be completed in a
        // full interval that precedes it.
        if let Some(j_ell) = info.j_ell() {
            if info.last_start <= self.ranked.release(j_ell) {
                self.pruned += 1;
                return StateValue {
                    cost: None,
                    choice: Choice::Empty,
                };
            }
        }

        let e = info.e;
        let r_e = self.ranked.release(e);
        let w_e = self.ranked.job(e).weight as i128;
        let mu_e = self.ranked.rank(e);
        let mut best: Option<(i128, Choice)> = None;

        let consider = |cand: Option<(i128, Choice)>, best: &mut Option<(i128, Choice)>| {
            if let Some((c, ch)) = cand {
                if best.is_none_or(|(b, _)| c < b) {
                    *best = Some((c, ch));
                }
            }
        };

        if let Some(s) = info.s {
            if r_e >= info.last_start + s {
                // Branch 1: e at its release time.
                let rest = self.f(u, v, mu_e);
                consider(
                    rest.map(|c| (c + w_e * (r_e + 1) as i128, Choice::AtRelease { e })),
                    &mut best,
                );
            } else if s > 0 {
                // Branch 2: e completes at b_i + s.
                let completion = info.last_start + s;
                debug_assert!(completion > r_e);
                let rest = self.f(u, v, mu_e);
                consider(
                    rest.map(|c| {
                        (
                            c + w_e * completion as i128,
                            Choice::AtSlot { e, completion },
                        )
                    }),
                    &mut best,
                );
            }
        }

        // Branch 3: split at a full-interval boundary j ∈ Ψ with r_j ≥ r_e.
        for &j in &info.psi {
            if self.ranked.release(j) < r_e {
                continue;
            }
            let left = self.f(u, j, mu);
            let right = self.f(j + 1, v, mu);
            if let (Some(l), Some(r)) = (left, right) {
                consider(Some((l + r, Choice::Split { j })), &mut best);
            }
        }

        match best {
            Some((cost, choice)) => StateValue {
                cost: Some(cost),
                choice,
            },
            None => {
                self.pruned += 1;
                StateValue {
                    cost: None,
                    choice: Choice::Empty,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calib_core::Job;

    fn ranked(spec: &[(Time, u64)]) -> RankedJobs {
        let jobs: Vec<Job> = spec
            .iter()
            .enumerate()
            .map(|(i, &(r, w))| Job::new(i as u32, r, w))
            .collect();
        RankedJobs::new(&jobs)
    }

    #[test]
    fn single_job_at_release() {
        // One job released at 5, T = 3: the only interval is [3, 6); the job
        // runs at 5 and completes at 6.
        let r = ranked(&[(5, 2)]);
        let mut dp = GroupDp::new(r, 3);
        assert_eq!(dp.f(0, 0, 0), Some(2 * 6));
        assert!(matches!(dp.choice(0, 0, 0), Choice::AtRelease { e: 0 }));
    }

    #[test]
    fn two_close_jobs_share_interval() {
        // Jobs at 0 and 1 (unit weights), T = 3: interval [−1, 2); job 0
        // completes at 1, job 1 at 2 -> completion total 3.
        let r = ranked(&[(0, 1), (1, 1)]);
        let mut dp = GroupDp::new(r, 3);
        assert_eq!(dp.f(0, 1, 0), Some(3));
    }

    #[test]
    fn backlog_fills_busy_prefix() {
        // Jobs at 0 and 4, T = 2: last interval is [3, 5); job at 0 cannot
        // run at release inside it. Window of both jobs: job 0 takes the
        // busy-prefix slot (s = 1 -> completes at 4), job 4 at release
        // (completes 5). Total 9. But a split is impossible (|J| = 2, Ψ at
        // prefix count 2 is v itself) — check the DP agrees.
        let r = ranked(&[(0, 1), (4, 1)]);
        let mut dp = GroupDp::new(r, 2);
        assert_eq!(dp.f(0, 1, 0), Some(9));
    }

    #[test]
    fn far_apart_jobs_are_infeasible_in_one_group() {
        // Jobs at 0 and 100, T = 2, one group with last interval [99, 101):
        // job 0 would have to wait 99 steps in a busy prefix of length ≤ 2 —
        // the congruence for s gives s = 1 (busy prefix holds job 0
        // completing at 100!?). The DP must still be *correct*: the group
        // cost places job 0 completing at b_i + s = 100, which is legal
        // (flow 100) though a sane budget-2 schedule would split groups at
        // the F level. Just assert feasibility and exact value here.
        let r = ranked(&[(0, 1), (100, 1)]);
        let mut dp = GroupDp::new(r, 2);
        // s: b_i = 99; c(0) = 1 (job 0 released before 99) -> h ≡ 1 mod 2 -> s = 1.
        // e = job 1 (weight tie, latest release ranks first) -> r_e = 100 ≥ b_i + s = 100:
        // branch 1: job 1 completes 101; then f(0,1,μ_1): window = {job 0},
        // s = 1, r_0 < 100: branch 2 -> completes 100. Total 201.
        assert_eq!(dp.f(0, 1, 0), Some(201));
    }

    #[test]
    fn split_uses_full_interval_boundary() {
        // T = 1: every interval holds one job; a window of 2 jobs must split.
        let r = ranked(&[(0, 1), (7, 1)]);
        let mut dp = GroupDp::new(r, 1);
        // Each job in its own length-1 interval at its release. (The DP may
        // reach this either by splitting at j = 0 or by the equivalent
        // place-then-split chain; only the value is pinned down.)
        assert_eq!(dp.f(0, 1, 0), Some(1 + 8));
        assert!(matches!(
            dp.choice(0, 1, 0),
            Choice::Split { j: 0 } | Choice::AtRelease { e: 1 }
        ));
    }

    #[test]
    fn empty_window_cost_zero() {
        let r = ranked(&[(0, 1)]);
        let mut dp = GroupDp::new(r, 2);
        assert_eq!(dp.f(0, 0, 1), Some(0));
        assert!(matches!(dp.choice(0, 0, 1), Choice::Empty));
    }
}
