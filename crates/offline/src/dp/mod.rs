//! The offline dynamic program (Section 4 of the paper).
//!
//! Proposition 1 partitions the job sequence (sorted by release time) into
//! *groups*: `F(k, v)` is the minimum total weighted completion time of jobs
//! `1..=v` using at most `k` calibrations, and
//!
//! `F(k, v) = min_{u ≤ v} { F(k − ⌈(v−u+1)/T⌉, u−1) + f(u, v, 0) }`
//!
//! where `f(u, v, 0)` (Proposition 2, [`group`]) optimally schedules jobs
//! `u..=v` in exactly `⌈(v−u+1)/T⌉` intervals whose last interval starts at
//! `r_v + 1 − T`. Boundary conditions: `F(k, 0) = 0` and `F(k, v) = ∞` when
//! `kT < v`.

pub mod group;
pub mod rebuild;

use calib_core::{Cost, Instance, Schedule};

use crate::ranks::RankedJobs;
use group::GroupDp;

/// Why the offline solver refused to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OfflineError {
    /// The DP is defined for a single machine only.
    MultipleMachines(usize),
    /// Release times are not strictly increasing (run
    /// `Instance::normalized` first).
    NotNormalized,
    /// A solver specialized to unit weights was given weighted jobs.
    NotUnweighted,
}

impl std::fmt::Display for OfflineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OfflineError::MultipleMachines(p) => {
                write!(f, "offline DP handles one machine, instance has {p}")
            }
            OfflineError::NotNormalized => {
                write!(f, "offline DP needs strictly increasing release times")
            }
            OfflineError::NotUnweighted => {
                write!(f, "this solver handles unit-weight jobs only")
            }
        }
    }
}

impl std::error::Error for OfflineError {}

/// Result of the offline DP for one budget.
#[derive(Debug, Clone)]
pub struct DpSolution {
    /// Minimum total weighted flow with at most the given budget.
    pub flow: Cost,
    /// The same optimum as total weighted completion time.
    pub weighted_completion: Cost,
    /// A reconstructed optimal schedule (feasible; calibrations possibly
    /// overlapping, which the model allows).
    pub schedule: Schedule,
    /// Number of DP states evaluated (for the E6 scaling study).
    pub states_evaluated: usize,
}

/// The `F(k, n)` values for `k = 0 ..= max_k`, as *weighted flows*
/// (`None` = infeasible, i.e. `kT < n`).
///
/// One call computes the whole column, which is what the online-objective
/// baseline needs (it sweeps the budget).
pub fn min_flow_by_budget(
    instance: &Instance,
    max_k: usize,
) -> Result<Vec<Option<Cost>>, OfflineError> {
    let (table, _, _) = run_dp(instance, max_k)?;
    let n = instance.n();
    let release_sum = release_weight_sum(instance);
    Ok(table
        .iter()
        .map(|row| row[n].map(|c| to_flow(c, release_sum)))
        .collect())
}

/// Solves the offline problem: minimum total weighted flow of `instance`
/// with at most `budget` calibrations, plus a reconstructed schedule.
///
/// Returns `Ok(None)` when the budget cannot cover all jobs
/// (`budget * T < n`).
pub fn solve_offline(
    instance: &Instance,
    budget: usize,
) -> Result<Option<DpSolution>, OfflineError> {
    solve_offline_counted(instance, budget, None)
}

/// [`solve_offline`] with an optional [`Counters`](calib_core::obs::Counters)
/// registry: on return (feasible or not) the group DP's state
/// expansion/prune totals are flushed to `dp_states_expanded` /
/// `dp_states_pruned`.
pub fn solve_offline_counted(
    instance: &Instance,
    budget: usize,
    counters: Option<&calib_core::obs::Counters>,
) -> Result<Option<DpSolution>, OfflineError> {
    let (table, mut gdp, groups_choice) = run_dp(instance, budget)?;
    let flush = |gdp: &GroupDp| {
        if let Some(c) = counters {
            gdp.flush_counters(c);
        }
    };
    let n = instance.n();
    let completion = match table[budget][n] {
        None => {
            flush(&gdp);
            return Ok(None);
        }
        Some(c) => c,
    };

    // Reconstruct: walk the group boundaries chosen by F, then rebuild each
    // group's placements from the memoized choices.
    let mut groups: Vec<(usize, usize)> = Vec::new();
    let mut k = budget;
    let mut v = n;
    while v > 0 {
        let u = groups_choice[k][v].expect("feasible state has a recorded split");
        groups.push((u - 1, v - 1)); // to 0-based inclusive
        let used = group_calibration_count(v - u + 1, instance.cal_len());
        v = u - 1;
        k -= used;
    }
    groups.reverse();

    let schedule = rebuild::rebuild_schedule(&mut gdp, &groups);
    flush(&gdp);
    let release_sum = release_weight_sum(instance);
    Ok(Some(DpSolution {
        flow: to_flow(completion, release_sum),
        weighted_completion: completion.max(0) as Cost,
        schedule,
        states_evaluated: gdp.states_evaluated(),
    }))
}

/// `⌈len/T⌉` — calibrations a group of `len` jobs consumes.
fn group_calibration_count(len: usize, t: calib_core::Time) -> usize {
    len.div_ceil(t as usize)
}

fn release_weight_sum(instance: &Instance) -> i128 {
    instance
        .jobs()
        .iter()
        .map(|j| j.weight as i128 * j.release as i128)
        .sum()
}

fn to_flow(completion: i128, release_sum: i128) -> Cost {
    let flow = completion - release_sum;
    debug_assert!(flow >= 0, "weighted flow must be nonnegative");
    flow.max(0) as Cost
}

type FTable = Vec<Vec<Option<i128>>>;
type ChoiceTable = Vec<Vec<Option<usize>>>;

/// Runs Proposition 1 over Proposition 2. Returns the `F` table
/// (`table[k][v]`, `v` jobs prefix, 1-based `v`), the group-DP with its memo
/// (for reconstruction), and the chosen `u` per state.
fn run_dp(
    instance: &Instance,
    max_k: usize,
) -> Result<(FTable, GroupDp, ChoiceTable), OfflineError> {
    if instance.machines() != 1 {
        return Err(OfflineError::MultipleMachines(instance.machines()));
    }
    let jobs = instance.jobs();
    for w in jobs.windows(2) {
        if w[0].release >= w[1].release {
            return Err(OfflineError::NotNormalized);
        }
    }
    let n = jobs.len();
    let t = instance.cal_len();

    let mut gdp = GroupDp::new(RankedJobs::new(jobs), t);

    let mut table: FTable = vec![vec![None; n + 1]; max_k + 1];
    let mut choice: ChoiceTable = vec![vec![None; n + 1]; max_k + 1];
    for k in 0..=max_k {
        table[k][0] = Some(0);
        for v in 1..=n {
            if (k as i128) * (t as i128) < v as i128 {
                continue; // infeasible: kT < v
            }
            let mut best: Option<(i128, usize)> = None;
            for u in 1..=v {
                let used = group_calibration_count(v - u + 1, t);
                if used > k {
                    continue;
                }
                let prefix = table[k - used][u - 1];
                let group_cost = gdp.f(u - 1, v - 1, 0);
                if let (Some(p), Some(g)) = (prefix, group_cost) {
                    let c = p + g;
                    if best.is_none_or(|(b, _)| c < b) {
                        best = Some((c, u));
                    }
                }
            }
            if let Some((c, u)) = best {
                table[k][v] = Some(c);
                choice[k][v] = Some(u);
            }
        }
    }

    Ok((table, gdp, choice))
}

#[cfg(test)]
mod tests {
    use super::*;
    use calib_core::{check_schedule, InstanceBuilder};

    #[test]
    fn empty_instance_costs_nothing() {
        let inst = InstanceBuilder::new(3).build().unwrap();
        let sol = solve_offline(&inst, 0).unwrap().unwrap();
        assert_eq!(sol.flow, 0);
        assert!(sol.schedule.assignments.is_empty());
    }

    #[test]
    fn budget_too_small_is_infeasible() {
        let inst = InstanceBuilder::new(2)
            .unit_jobs([0, 1, 2])
            .build()
            .unwrap();
        assert!(solve_offline(&inst, 1).unwrap().is_none());
        assert!(solve_offline(&inst, 2).unwrap().is_some());
    }

    #[test]
    fn single_job_single_calibration() {
        let inst = InstanceBuilder::new(5).unit_jobs([7]).build().unwrap();
        let sol = solve_offline(&inst, 1).unwrap().unwrap();
        assert_eq!(sol.flow, 1); // runs at release
        check_schedule(&inst, &sol.schedule).unwrap();
    }

    #[test]
    fn burst_fits_one_interval() {
        // 3 jobs at 0,1,2 with T = 3 and budget 1: all at release, flow 3.
        let inst = InstanceBuilder::new(3)
            .unit_jobs([0, 1, 2])
            .build()
            .unwrap();
        let sol = solve_offline(&inst, 1).unwrap().unwrap();
        assert_eq!(sol.flow, 3);
        check_schedule(&inst, &sol.schedule).unwrap();
        assert!(sol.schedule.calibration_count() <= 1);
    }

    #[test]
    fn two_bursts_two_calibrations() {
        let inst = InstanceBuilder::new(2)
            .unit_jobs([0, 1, 100, 101])
            .build()
            .unwrap();
        let sol = solve_offline(&inst, 2).unwrap().unwrap();
        assert_eq!(sol.flow, 4);
        check_schedule(&inst, &sol.schedule).unwrap();
    }

    #[test]
    fn budget_one_forces_grouping() {
        // Jobs at 0 and 3, T = 2, one calibration: both must fit one
        // interval [b, b+2). Best: calibrate at 2: job0 runs at 2
        // (flow 3), job1 at 3 (flow 1) -> 4. DP anchors the interval at
        // r_v + 1 - T = 2 -> same answer.
        let inst = InstanceBuilder::new(2).unit_jobs([0, 3]).build().unwrap();
        let sol = solve_offline(&inst, 1).unwrap().unwrap();
        assert_eq!(sol.flow, 4);
        check_schedule(&inst, &sol.schedule).unwrap();
    }

    #[test]
    fn weights_prioritize_heavy_jobs() {
        // Heavy job released later must not wait behind light backlog.
        // Jobs: (0, w=1), (1, w=100), T = 2, budget 2.
        let inst = InstanceBuilder::new(2)
            .job(0, 1)
            .job(1, 100)
            .build()
            .unwrap();
        let sol = solve_offline(&inst, 2).unwrap().unwrap();
        check_schedule(&inst, &sol.schedule).unwrap();
        // Both can run at release with calibrations at 0 (covers 0,1):
        // flow = 1 + 100.
        assert_eq!(sol.flow, 101);
    }

    #[test]
    fn min_flow_by_budget_is_monotone() {
        let inst = InstanceBuilder::new(2)
            .unit_jobs([0, 4, 9, 13, 20])
            .build()
            .unwrap();
        let flows = min_flow_by_budget(&inst, 5).unwrap();
        assert_eq!(flows.len(), 6);
        assert!(flows[0].is_none() && flows[1].is_none() && flows[2].is_none());
        let mut last = Cost::MAX;
        for f in flows.into_iter().flatten() {
            assert!(f <= last, "more budget cannot hurt");
            last = f;
        }
    }

    #[test]
    fn rejects_multi_machine_and_unnormalized() {
        let multi = InstanceBuilder::new(2)
            .machines(2)
            .unit_jobs([0])
            .build()
            .unwrap();
        assert_eq!(
            solve_offline(&multi, 1).unwrap_err(),
            OfflineError::MultipleMachines(2)
        );
        let shared = InstanceBuilder::new(2).unit_jobs([3, 3]).build().unwrap();
        assert_eq!(
            solve_offline(&shared, 2).unwrap_err(),
            OfflineError::NotNormalized
        );
    }
}
