//! Schedule reconstruction from the memoized DP choices.
//!
//! Every direct placement made by a state chain at `(u, v, ·)` lands inside
//! that state's *last interval* `[r_v + 1 − T, r_v + 1)`; `Split` choices
//! delegate to sub-states with their own last intervals. Walking the choice
//! tree therefore yields both the job placements (as completion times) and
//! the set of interval start times. Intervals from different sub-states may
//! overlap in time — the model permits this (coverage merges), and the
//! budget accounting of Proposition 1 is still exact because each interval
//! is counted once.

use std::collections::BTreeSet;

use calib_core::{Assignment, Calibration, MachineId, Schedule, Time};

use super::group::{Choice, GroupDp};

/// Rebuilds the optimal schedule for the chosen group boundaries
/// (0-based inclusive `(u, v)` index pairs, in release order).
pub fn rebuild_schedule(gdp: &mut GroupDp, groups: &[(usize, usize)]) -> Schedule {
    let mut placements: Vec<(usize, Time)> = Vec::new();
    let mut starts: BTreeSet<Time> = BTreeSet::new();
    for &(u, v) in groups {
        walk(gdp, u, v, 0, &mut placements, &mut starts);
    }

    let assignments = placements
        .into_iter()
        .map(|(idx, completion)| {
            let job = gdp.ranked().job(idx);
            Assignment::new(job.id, completion - 1, MachineId(0))
        })
        .collect();
    let calibrations = starts
        .into_iter()
        .map(|s| Calibration {
            machine: MachineId(0),
            start: s,
        })
        .collect();
    Schedule::new(calibrations, assignments)
}

fn walk(
    gdp: &mut GroupDp,
    u: usize,
    v: usize,
    mu: u32,
    placements: &mut Vec<(usize, Time)>,
    starts: &mut BTreeSet<Time>,
) {
    match gdp.choice(u, v, mu) {
        Choice::Empty => {}
        Choice::AtRelease { e } => {
            let completion = gdp.ranked().release(e) + 1;
            placements.push((e, completion));
            starts.insert(gdp.ranked().release(v) + 1 - gdp.cal_len());
            let mu_e = gdp.ranked().rank(e);
            walk(gdp, u, v, mu_e, placements, starts);
        }
        Choice::AtSlot { e, completion } => {
            placements.push((e, completion));
            starts.insert(gdp.ranked().release(v) + 1 - gdp.cal_len());
            let mu_e = gdp.ranked().rank(e);
            walk(gdp, u, v, mu_e, placements, starts);
        }
        Choice::Split { j } => {
            walk(gdp, u, j, mu, placements, starts);
            walk(gdp, j + 1, v, mu, placements, starts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranks::RankedJobs;
    use calib_core::{check_schedule, InstanceBuilder};

    #[test]
    fn rebuild_matches_dp_cost_and_is_feasible() {
        let inst = InstanceBuilder::new(3)
            .job(0, 2)
            .job(1, 1)
            .job(5, 4)
            .job(9, 1)
            .build()
            .unwrap();
        let ranked = RankedJobs::new(inst.jobs());
        let mut gdp = GroupDp::new(ranked, inst.cal_len());
        // One group spanning everything (enough budget at the F level).
        let cost = gdp.f(0, 3, 0);
        if let Some(c) = cost {
            let sched = rebuild_schedule(&mut gdp, &[(0, 3)]);
            check_schedule(&inst, &sched).unwrap();
            let total_completion: i128 = sched
                .assignments
                .iter()
                .map(|a| inst.job(a.job).unwrap().weight as i128 * (a.start + 1) as i128)
                .sum();
            assert_eq!(total_completion, c);
        }
    }
}
