//! Brute-force reference solvers.
//!
//! These are exponential-time oracles used to validate the dynamic program
//! and the structural lemmas themselves:
//!
//! * [`optimal_flow_brute`] — exact optimum on one machine via Lemma 4.2:
//!   some optimal schedule ends every interval with a job running at its
//!   release time, so interval starts can be restricted to
//!   `{ r_j + 1 − T }`. Enumerates all subsets of that candidate set up to
//!   the budget and assigns greedily (Observation 2.1, optimal given the
//!   calibrations).
//! * [`optimal_flow_exhaustive`] — exact optimum *without* Lemma 4.2:
//!   enumerates calibration starts over the whole sensible time window.
//!   Only viable for tiny instances; used to validate Lemma 4.2.
//! * [`optimal_assignment_exhaustive`] — exact optimal assignment given
//!   fixed calibrations, by branch-and-bound over slot choices; validates
//!   Observation 2.1.

use calib_core::{
    assign_greedy, check_schedule, coverage_by_machine, round_robin_calibrations, Calibration,
    Cost, Instance, Schedule, Time,
};

/// Lemma 4.2 candidate interval starts: `{ r_j + 1 − T }`, deduplicated.
pub fn candidate_starts(instance: &Instance) -> Vec<Time> {
    let t = instance.cal_len();
    let mut starts: Vec<Time> = instance.jobs().iter().map(|j| j.release + 1 - t).collect();
    starts.sort_unstable();
    starts.dedup();
    starts
}

/// Visits every `k`-subset of `items`, invoking `f` on each.
pub fn for_each_subset<T: Copy>(items: &[T], k: usize, f: &mut impl FnMut(&[T])) {
    fn rec<T: Copy>(
        items: &[T],
        k: usize,
        start: usize,
        acc: &mut Vec<T>,
        f: &mut impl FnMut(&[T]),
    ) {
        if acc.len() == k {
            f(acc);
            return;
        }
        let need = k - acc.len();
        for i in start..=items.len().saturating_sub(need) {
            acc.push(items[i]);
            rec(items, k, i + 1, acc, f);
            acc.pop();
        }
    }
    if k > items.len() {
        return;
    }
    rec(items, k, 0, &mut Vec::with_capacity(k), f);
}

/// Minimum flow over a specific candidate start set with budget `k`
/// (all subset sizes `0..=k` are tried).
fn best_over_candidates(
    instance: &Instance,
    candidates: &[Time],
    budget: usize,
) -> Option<(Cost, Schedule)> {
    let mut best: Option<(Cost, Schedule)> = None;
    for size in 0..=budget.min(candidates.len()) {
        for_each_subset(candidates, size, &mut |times| {
            if let Ok(sched) = assign_greedy(instance, times) {
                let flow = sched.total_weighted_flow(instance);
                if best.as_ref().is_none_or(|(b, _)| flow < *b) {
                    debug_assert!(check_schedule(instance, &sched).is_ok());
                    best = Some((flow, sched));
                }
            }
        });
    }
    best
}

/// Exact single-machine optimum (min total weighted flow within `budget`
/// calibrations), restricting interval starts per Lemma 4.2.
/// `None` when even `budget` calibrations cannot fit all jobs.
///
/// Complexity `O(C(n, budget) * n log n)`; use for `n ≲ 16`.
pub fn optimal_flow_brute(instance: &Instance, budget: usize) -> Option<(Cost, Schedule)> {
    best_over_candidates(instance, &candidate_starts(instance), budget)
}

/// Exact optimum with *no structural assumption*: candidate starts range
/// over the whole window `[min_r + 1 − T, max_r + n]`. Exponentially more
/// expensive than [`optimal_flow_brute`]; only for validating Lemma 4.2 on
/// tiny instances.
pub fn optimal_flow_exhaustive(instance: &Instance, budget: usize) -> Option<(Cost, Schedule)> {
    let (min_r, max_r) = match (instance.min_release(), instance.max_release()) {
        (Some(a), Some(b)) => (a, b),
        _ => return Some((0, Schedule::default())),
    };
    let lo = min_r + 1 - instance.cal_len();
    let hi = max_r + instance.n() as Time;
    let candidates: Vec<Time> = (lo..=hi).collect();
    best_over_candidates(instance, &candidates, budget)
}

/// Exact minimum weighted flow for a *fixed* calibration time multiset, by
/// exhaustive branch-and-bound over job-to-slot assignments (jobs assigned
/// in release order to any feasible later slot). Validates Observation 2.1.
///
/// Returns `None` if no feasible assignment exists.
pub fn optimal_assignment_exhaustive(instance: &Instance, times: &[Time]) -> Option<Cost> {
    let cals: Vec<Calibration> = round_robin_calibrations(times, instance.machines());
    let coverage = coverage_by_machine(&cals, instance.machines(), instance.cal_len());
    // Enumerate candidate slots (machine, time) from coverage, bounded by
    // the horizon. Tiny instances only: the slot count is |coverage slots|.
    let mut slots: Vec<(Time, usize)> = Vec::new();
    for (m, cov) in coverage.iter().enumerate() {
        for &(b, e) in cov.segments() {
            for t in b..e {
                slots.push((t, m));
            }
        }
    }
    slots.sort_unstable();

    let jobs = instance.jobs();
    let mut used = vec![false; slots.len()];
    let mut best: Option<Cost> = None;

    fn rec(
        jobs: &[calib_core::Job],
        slots: &[(Time, usize)],
        used: &mut [bool],
        next: usize,
        acc: Cost,
        best: &mut Option<Cost>,
    ) {
        if best.is_some_and(|b| acc >= b) {
            return; // branch and bound
        }
        if next == jobs.len() {
            *best = Some(acc);
            return;
        }
        let job = jobs[next];
        for (i, &(t, _m)) in slots.iter().enumerate() {
            if used[i] || t < job.release {
                continue;
            }
            used[i] = true;
            rec(
                jobs,
                slots,
                used,
                next + 1,
                acc + job.flow_if_started(t),
                best,
            );
            used[i] = false;
        }
    }
    rec(jobs, &slots, &mut used, 0, 0, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use calib_core::InstanceBuilder;

    #[test]
    fn candidate_starts_shift_by_cal_len() {
        let inst = InstanceBuilder::new(3)
            .unit_jobs([0, 5, 5])
            .build()
            .unwrap();
        assert_eq!(candidate_starts(&inst), vec![-2, 3]);
    }

    #[test]
    fn subsets_enumerate_binomially() {
        let mut count = 0;
        for_each_subset(&[1, 2, 3, 4, 5], 3, &mut |_| count += 1);
        assert_eq!(count, 10);
        let mut empty = 0;
        for_each_subset(&[1, 2], 0, &mut |s| {
            assert!(s.is_empty());
            empty += 1;
        });
        assert_eq!(empty, 1);
    }

    #[test]
    fn brute_single_burst() {
        let inst = InstanceBuilder::new(3)
            .unit_jobs([0, 1, 2])
            .build()
            .unwrap();
        let (flow, sched) = optimal_flow_brute(&inst, 1).unwrap();
        assert_eq!(flow, 3);
        check_schedule(&inst, &sched).unwrap();
    }

    #[test]
    fn brute_matches_exhaustive_on_small_cases() {
        // Lemma 4.2 sanity: restricting to candidate starts loses nothing.
        let cases = [
            (vec![0, 3], 2i64, 1usize),
            (vec![0, 2, 7], 3, 2),
            (vec![1, 4], 2, 2),
            (vec![0, 1, 2, 8], 2, 3),
        ];
        for (releases, t, k) in cases {
            let inst = InstanceBuilder::new(t)
                .unit_jobs(releases.clone())
                .build()
                .unwrap();
            let b = optimal_flow_brute(&inst, k).map(|(f, _)| f);
            let e = optimal_flow_exhaustive(&inst, k).map(|(f, _)| f);
            assert_eq!(b, e, "releases {releases:?} T={t} K={k}");
        }
    }

    #[test]
    fn infeasible_budget_returns_none() {
        let inst = InstanceBuilder::new(2)
            .unit_jobs([0, 1, 2])
            .build()
            .unwrap();
        assert!(optimal_flow_brute(&inst, 1).is_none());
    }

    #[test]
    fn exhaustive_assignment_matches_greedy_unweighted() {
        let inst = InstanceBuilder::new(3)
            .unit_jobs([0, 1, 4])
            .build()
            .unwrap();
        let times = vec![1, 4];
        let greedy = assign_greedy(&inst, &times)
            .unwrap()
            .total_weighted_flow(&inst);
        let exhaustive = optimal_assignment_exhaustive(&inst, &times).unwrap();
        assert_eq!(greedy, exhaustive);
    }

    #[test]
    fn exhaustive_assignment_none_when_slots_short() {
        let inst = InstanceBuilder::new(1).unit_jobs([0, 1]).build().unwrap();
        assert!(optimal_assignment_exhaustive(&inst, &[0]).is_none());
    }
}

/// Visits every size-`k` *multiset* of `items` (nondecreasing index
/// sequences), invoking `f` on each.
pub fn for_each_multiset<T: Copy>(items: &[T], k: usize, f: &mut impl FnMut(&[T])) {
    fn rec<T: Copy>(
        items: &[T],
        k: usize,
        start: usize,
        acc: &mut Vec<T>,
        f: &mut impl FnMut(&[T]),
    ) {
        if acc.len() == k {
            f(acc);
            return;
        }
        for i in start..items.len() {
            acc.push(items[i]);
            rec(items, k, i, acc, f); // repetition allowed
            acc.pop();
        }
    }
    if k > 0 && items.is_empty() {
        return;
    }
    rec(items, k, 0, &mut Vec::with_capacity(k), f);
}

/// Exact offline optimum of the *online objective* `G·C + flow` on `P ≥ 1`
/// machines, by exhausting calibration-time multisets over the full sensible
/// window (multiple machines may share a calibration time, hence multisets;
/// machine placement is round-robin per Observation 2.1). Exponential — for
/// tiny instances only (`n ≲ 5`, `max_k ≲ 4`). Ground truth for the
/// multi-machine experiments that otherwise rely on the LP lower bound.
pub fn opt_online_brute_multi(
    instance: &Instance,
    cal_cost: Cost,
    max_k: usize,
) -> Option<(Cost, Schedule)> {
    if instance.n() == 0 {
        return Some((0, Schedule::default()));
    }
    let (min_r, max_r) = (instance.min_release()?, instance.max_release()?);
    let window: Vec<Time> =
        (min_r + 1 - instance.cal_len()..=max_r + instance.n() as Time).collect();
    let mut best: Option<(Cost, Schedule)> = None;
    for k in 0..=max_k {
        for_each_multiset(&window, k, &mut |times| {
            if let Ok(sched) = assign_greedy(instance, times) {
                let cost = cal_cost * k as Cost + sched.total_weighted_flow(instance);
                if best.as_ref().is_none_or(|(b, _)| cost < *b) {
                    best = Some((cost, sched));
                }
            }
        });
    }
    best
}

#[cfg(test)]
mod multi_tests {
    use super::*;
    use calib_core::InstanceBuilder;

    #[test]
    fn multisets_enumerate_with_repetition() {
        let mut count = 0;
        for_each_multiset(&[1, 2, 3], 2, &mut |ms| {
            assert!(ms.windows(2).all(|w| w[0] <= w[1]));
            count += 1;
        });
        assert_eq!(count, 6); // C(3+2-1, 2)
        let mut empty_called = 0;
        for_each_multiset(&[1], 0, &mut |_| empty_called += 1);
        assert_eq!(empty_called, 1);
    }

    #[test]
    fn multi_machine_opt_matches_single_machine_dp_when_p1() {
        let inst = InstanceBuilder::new(3)
            .unit_jobs([0, 2, 6])
            .build()
            .unwrap();
        for g in [1u128, 4, 10] {
            let (cost, sched) = opt_online_brute_multi(&inst, g, 3).unwrap();
            let dp = crate::online_opt::opt_online_cost(&inst, g).unwrap();
            assert_eq!(cost, dp.cost, "G={g}");
            calib_core::check_schedule(&inst, &sched).unwrap();
        }
    }

    #[test]
    fn second_machine_never_hurts() {
        let jobs = [0i64, 0, 1, 1];
        let one = InstanceBuilder::new(2)
            .machines(1)
            .unit_jobs(jobs)
            .build()
            .unwrap();
        let two = InstanceBuilder::new(2)
            .machines(2)
            .unit_jobs(jobs)
            .build()
            .unwrap();
        for g in [1u128, 3] {
            let (c1, _) = opt_online_brute_multi(&one, g, 4).unwrap();
            let (c2, _) = opt_online_brute_multi(&two, g, 4).unwrap();
            assert!(c2 <= c1, "G={g}: {c2} vs {c1}");
        }
    }
}
