//! # calib-offline
//!
//! Offline solvers for scheduling with calibrations (Section 4 of
//! "Minimizing Total Weighted Flow Time with Calibrations", SPAA 2017):
//!
//! * [`solve_offline`] / [`min_flow_by_budget`] — the paper's `O(K n³)`
//!   dynamic program (Propositions 1 and 2) computing the minimum total
//!   weighted flow under a calibration budget `K` on a single machine, with
//!   full schedule reconstruction;
//! * [`optimal_flow_brute`] / [`optimal_flow_exhaustive`] — exponential
//!   reference solvers used to validate the DP and Lemma 4.2;
//! * [`opt_r_brute`] — the release-order-restricted optimum `OPT_r`
//!   (Lemma 3.4's 2-approximation target);
//! * [`opt_online_cost`] — the exact offline optimum of the *online*
//!   objective `G·C + flow`, obtained by sweeping the budget.
//!
//! ```
//! use calib_core::InstanceBuilder;
//! use calib_offline::solve_offline;
//!
//! let inst = InstanceBuilder::new(3).unit_jobs([0, 1, 2, 10]).build().unwrap();
//! let sol = solve_offline(&inst, 2).unwrap().unwrap();
//! assert_eq!(sol.flow, 4); // both bursts run at release with 2 calibrations
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod brute;
pub mod dp;
pub mod online_opt;
pub mod opt_r;
pub mod ranks;
pub mod unweighted;

pub use brute::{
    candidate_starts, for_each_multiset, for_each_subset, opt_online_brute_multi,
    optimal_assignment_exhaustive, optimal_flow_brute, optimal_flow_exhaustive,
};
pub use dp::{min_flow_by_budget, solve_offline, solve_offline_counted, DpSolution, OfflineError};
pub use online_opt::{
    flow_curve_is_convex, opt_online_cost, opt_online_cost_ternary, opt_online_schedule, OnlineOpt,
};
pub use opt_r::{assign_fifo, opt_r_brute, CandidateMode};
pub use ranks::{RankedJobs, WindowInfo};
pub use unweighted::{solve_offline_unweighted, UnweightedSolution};
