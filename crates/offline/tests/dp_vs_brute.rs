//! Differential validation of the dynamic program (Propositions 1–2)
//! against the exponential brute-force oracle, across thousands of random
//! instances. This is the primary correctness evidence for the offline
//! solver (experiment E6a).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use calib_core::{check_schedule, Cost, Instance, Job};
use calib_offline::{optimal_flow_brute, solve_offline};

/// Random single-machine instance with distinct releases.
fn random_instance(rng: &mut StdRng, n: usize, span: i64, max_w: u64, t: i64) -> Instance {
    let mut releases: Vec<i64> = Vec::new();
    while releases.len() < n {
        let r = rng.gen_range(0..=span);
        if !releases.contains(&r) {
            releases.push(r);
        }
    }
    releases.sort_unstable();
    let jobs: Vec<Job> = releases
        .into_iter()
        .enumerate()
        .map(|(i, r)| Job::new(i as u32, r, rng.gen_range(1..=max_w)))
        .collect();
    Instance::single_machine(jobs, t).unwrap()
}

fn assert_dp_matches_brute(inst: &Instance, budget: usize, label: &str) {
    let brute = optimal_flow_brute(inst, budget).map(|(f, _)| f);
    let dp = solve_offline(inst, budget).unwrap();
    match (brute, &dp) {
        (None, None) => {}
        (Some(bf), Some(sol)) => {
            assert_eq!(
                sol.flow, bf,
                "{label}: DP flow {} != brute {} on {:?} (budget {budget})",
                sol.flow, bf, inst
            );
            // The reconstructed schedule must be feasible, within budget, and
            // have exactly the DP's flow.
            check_schedule(inst, &sol.schedule).unwrap_or_else(|e| {
                panic!("{label}: infeasible reconstruction on {:?}: {e}", inst)
            });
            assert!(sol.schedule.calibration_count() <= budget);
            assert_eq!(
                sol.schedule.total_weighted_flow(inst),
                sol.flow,
                "{label}: {inst:?}"
            );
        }
        (b, d) => panic!(
            "{label}: feasibility disagreement on {:?} (budget {budget}): brute {:?}, dp {:?}",
            inst,
            b,
            d.as_ref().map(|s| s.flow)
        ),
    }
}

#[test]
fn dp_matches_brute_unweighted_small() {
    let mut rng = StdRng::seed_from_u64(101);
    for case in 0..400 {
        let n = rng.gen_range(1..=7);
        let t = rng.gen_range(1..=4);
        let inst = random_instance(&mut rng, n, 14, 1, t);
        for budget in 1..=n.min(4) {
            assert_dp_matches_brute(&inst, budget, &format!("unweighted case {case}"));
        }
    }
}

#[test]
fn dp_matches_brute_weighted_small() {
    let mut rng = StdRng::seed_from_u64(202);
    for case in 0..400 {
        let n = rng.gen_range(1..=7);
        let t = rng.gen_range(1..=4);
        let inst = random_instance(&mut rng, n, 14, 9, t);
        for budget in 1..=n.min(4) {
            assert_dp_matches_brute(&inst, budget, &format!("weighted case {case}"));
        }
    }
}

#[test]
fn dp_matches_brute_tight_releases() {
    // Dense releases (0..n shifted) force heavy interval interaction.
    let mut rng = StdRng::seed_from_u64(303);
    for case in 0..200 {
        let n = rng.gen_range(2..=8);
        let t = rng.gen_range(1..=5);
        let inst = random_instance(&mut rng, n, n as i64 + 1, 5, t);
        for budget in 1..=n.min(5) {
            assert_dp_matches_brute(&inst, budget, &format!("dense case {case}"));
        }
    }
}

#[test]
fn dp_matches_brute_extreme_weights() {
    // Weight ratios up to 10^6 stress the rank ordering.
    let mut rng = StdRng::seed_from_u64(404);
    for case in 0..120 {
        let n = rng.gen_range(2..=6);
        let t = rng.gen_range(2..=4);
        let mut inst = random_instance(&mut rng, n, 12, 1, t);
        // Re-weight with exponential spread.
        let jobs: Vec<Job> = inst
            .jobs()
            .iter()
            .map(|j| Job::new(j.id.0, j.release, 10u64.pow(rng.gen_range(0..=6))))
            .collect();
        inst = Instance::single_machine(jobs, t).unwrap();
        for budget in 1..=n.min(3) {
            assert_dp_matches_brute(&inst, budget, &format!("extreme case {case}"));
        }
    }
}

#[test]
fn dp_larger_budget_never_worse() {
    let mut rng = StdRng::seed_from_u64(505);
    for _ in 0..60 {
        let n = rng.gen_range(2..=9);
        let t = rng.gen_range(1..=4);
        let inst = random_instance(&mut rng, n, 20, 7, t);
        let mut last = Cost::MAX;
        for budget in 1..=n {
            if let Some(sol) = solve_offline(&inst, budget).unwrap() {
                assert!(sol.flow <= last);
                last = sol.flow;
            }
        }
        // Budget n always suffices on one machine.
        assert!(last < Cost::MAX);
    }
}
