//! Property-based tests for the offline solvers (proptest-driven, on top of
//! the seeded differential suite in `dp_vs_brute.rs`).

use proptest::prelude::*;

use calib_core::{check_schedule, Instance, Job, Time};
use calib_offline::{
    assign_fifo, candidate_starts, min_flow_by_budget, opt_online_cost, opt_online_cost_ternary,
    optimal_flow_brute, solve_offline, RankedJobs,
};

/// Distinct-release job sets (what the single-machine solvers need).
fn arb_distinct_jobs(max_n: usize, span: i64, max_w: u64) -> impl Strategy<Value = Vec<Job>> {
    prop::collection::btree_set(0..=span, 1..=max_n).prop_flat_map(move |releases| {
        let releases: Vec<Time> = releases.into_iter().collect();
        let n = releases.len();
        prop::collection::vec(1..=max_w, n).prop_map(move |weights| {
            releases
                .iter()
                .zip(&weights)
                .enumerate()
                .map(|(i, (&r, &w))| Job::new(i as u32, r, w))
                .collect()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The DP agrees with brute force and reconstructs feasible,
    /// budget-respecting schedules (proptest shrinking finds the smallest
    /// counterexample if one ever appears).
    #[test]
    fn dp_equals_brute_force(
        jobs in arb_distinct_jobs(6, 12, 9),
        t in 1i64..5,
        budget in 1usize..4,
    ) {
        let inst = Instance::single_machine(jobs, t).unwrap();
        let brute = optimal_flow_brute(&inst, budget).map(|(f, _)| f);
        let dp = solve_offline(&inst, budget).unwrap();
        match (brute, dp) {
            (None, None) => {}
            (Some(bf), Some(sol)) => {
                prop_assert_eq!(sol.flow, bf);
                check_schedule(&inst, &sol.schedule).unwrap();
                prop_assert!(sol.schedule.calibration_count() <= budget);
                prop_assert_eq!(sol.schedule.total_weighted_flow(&inst), sol.flow);
            }
            (b, d) => {
                return Err(TestCaseError::fail(format!(
                    "feasibility disagreement: brute {b:?} dp {:?}",
                    d.map(|s| s.flow)
                )));
            }
        }
    }

    /// Budget monotonicity and the ternary-search shortcut.
    #[test]
    fn budget_curve_monotone_and_ternary_exact(
        jobs in arb_distinct_jobs(8, 18, 9),
        t in 1i64..5,
        g in 0u128..80,
    ) {
        let inst = Instance::single_machine(jobs, t).unwrap();
        let flows = min_flow_by_budget(&inst, inst.n()).unwrap();
        let feasible: Vec<u128> = flows.iter().copied().flatten().collect();
        prop_assert!(!feasible.is_empty());
        prop_assert!(feasible.windows(2).all(|w| w[1] <= w[0]), "not monotone: {feasible:?}");
        let sweep = opt_online_cost(&inst, g).unwrap();
        let tern = opt_online_cost_ternary(&inst, g).unwrap();
        prop_assert_eq!(sweep.cost, tern.cost);
    }

    /// Ranks are a permutation ordered by (weight asc, release desc).
    #[test]
    fn ranks_are_a_consistent_permutation(
        jobs in arb_distinct_jobs(10, 30, 9),
    ) {
        let ranked = RankedJobs::new(&jobs);
        let n = jobs.len();
        let mut seen = vec![false; n + 1];
        for i in 0..n {
            let r = ranked.rank(i) as usize;
            prop_assert!((1..=n).contains(&r));
            prop_assert!(!seen[r], "duplicate rank {r}");
            seen[r] = true;
        }
        for i in 0..n {
            for j in 0..n {
                if ranked.rank(i) < ranked.rank(j) {
                    let (a, b) = (&jobs[i], &jobs[j]);
                    prop_assert!(
                        a.weight < b.weight || (a.weight == b.weight && a.release > b.release),
                        "rank order violated: {a:?} before {b:?}"
                    );
                }
            }
        }
    }

    /// FIFO assignment (OPT_r building block) keeps release order and never
    /// beats the unrestricted greedy optimum.
    #[test]
    fn fifo_is_release_ordered_and_dominated(
        jobs in arb_distinct_jobs(7, 14, 9),
        t in 1i64..5,
    ) {
        let inst = Instance::single_machine(jobs, t).unwrap();
        let times = candidate_starts(&inst);
        if let Some(fifo) = assign_fifo(&inst, &times) {
            check_schedule(&inst, &fifo).unwrap();
            // Starts follow release order.
            let mut by_release = fifo.assignments.clone();
            by_release.sort_by_key(|a| inst.job(a.job).unwrap().release);
            prop_assert!(by_release.windows(2).all(|w| w[0].start < w[1].start));
            // Observation 2.1 with the same calibrations is at least as good.
            let greedy = calib_core::assign_greedy(&inst, &times).unwrap();
            prop_assert!(
                greedy.total_weighted_flow(&inst) <= fifo.total_weighted_flow(&inst)
            );
        }
    }
}
