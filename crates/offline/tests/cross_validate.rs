//! Cross-validation of the two *independent* exact solvers on unweighted
//! instances: the paper's Propositions 1–2 DP (ranks + group recurrences)
//! against the slot-exchange DP (`solve_offline_unweighted`). They share no
//! code or structure; agreement at n = 30–60 extends the brute-force
//! validation (n ≤ 8) by an order of magnitude.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use calib_core::{check_schedule, Instance, Job};
use calib_offline::{solve_offline, solve_offline_unweighted};

fn random_unweighted(rng: &mut StdRng, n: usize, span: i64, t: i64) -> Instance {
    let mut releases: Vec<i64> = Vec::new();
    while releases.len() < n {
        let r = rng.gen_range(0..=span);
        if !releases.contains(&r) {
            releases.push(r);
        }
    }
    releases.sort_unstable();
    let jobs: Vec<Job> = releases
        .into_iter()
        .enumerate()
        .map(|(i, r)| Job::unweighted(u32::try_from(i).unwrap(), r))
        .collect();
    Instance::single_machine(jobs, t).unwrap()
}

#[test]
fn general_dp_equals_slot_dp_medium_scale() {
    let mut rng = StdRng::seed_from_u64(777);
    for case in 0..40 {
        let n = rng.gen_range(20..=45);
        let t = rng.gen_range(2..=6);
        let ni = i64::try_from(n).unwrap();
        let span = rng.gen_range(2 * ni..=5 * ni);
        let inst = random_unweighted(&mut rng, n, span, t);
        for budget in [n.div_ceil(usize::try_from(t).unwrap()), n.div_ceil(2), n] {
            let general = solve_offline(&inst, budget).unwrap();
            let slot = solve_offline_unweighted(&inst, budget).unwrap();
            match (general, slot) {
                (None, None) => {}
                (Some(g), Some(s)) => {
                    assert_eq!(
                        g.flow, s.flow,
                        "case {case}: general {} vs slot {} (n={n}, T={t}, K={budget})",
                        g.flow, s.flow
                    );
                    check_schedule(&inst, &s.schedule).unwrap();
                    assert!(s.schedule.calibration_count() <= budget);
                    assert_eq!(s.schedule.total_weighted_flow(&inst), s.flow);
                }
                (g, s) => panic!(
                    "case {case}: feasibility disagreement (n={n}, T={t}, K={budget}): general {:?} slot {:?}",
                    g.map(|x| x.flow),
                    s.map(|x| x.flow)
                ),
            }
        }
    }
}

#[test]
fn slot_dp_matches_brute_tiny() {
    let mut rng = StdRng::seed_from_u64(888);
    for _ in 0..150 {
        let n = rng.gen_range(1..=7);
        let t = rng.gen_range(1..=4);
        let inst = random_unweighted(&mut rng, n, 14, t);
        for budget in 1..=n.min(4) {
            let slot = solve_offline_unweighted(&inst, budget)
                .unwrap()
                .map(|s| s.flow);
            let brute = calib_offline::optimal_flow_brute(&inst, budget).map(|(f, _)| f);
            assert_eq!(slot, brute, "{inst:?} K={budget}");
        }
    }
}

#[test]
fn dense_trains_agree() {
    // Adversarially dense: the train workload with varying budgets.
    for n in [10usize, 25, 40] {
        for t in [2i64, 3, 7] {
            let jobs: Vec<Job> = (0..n)
                .map(|i| Job::unweighted(u32::try_from(i).unwrap(), i64::try_from(i).unwrap()))
                .collect();
            let inst = Instance::single_machine(jobs, t).unwrap();
            let tu = usize::try_from(t).unwrap();
            for budget in [n.div_ceil(tu), n.div_ceil(tu) + 1, n] {
                let g = solve_offline(&inst, budget).unwrap().map(|s| s.flow);
                let s = solve_offline_unweighted(&inst, budget)
                    .unwrap()
                    .map(|s| s.flow);
                assert_eq!(g, s, "n={n} T={t} K={budget}");
            }
        }
    }
}
