//! Golden-trace test: the checked-in `.perfetto-trace` bytes must be
//! reproduced exactly from the checked-in JSON-lines input. Any encoder or
//! timeline-mapping change that alters the wire bytes fails here and asks
//! for an explicit re-bless (`BLESS=1 cargo test -p calib-trace golden`).

use std::fs;
use std::path::PathBuf;

use calib_trace::{convert, summarize};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

#[test]
fn tiny_trace_is_byte_identical_to_the_golden() {
    let input = fs::read_to_string(golden_dir().join("tiny.jsonl")).unwrap();
    let out = convert(&[("tiny-stem".to_string(), input)], None, 1).unwrap();

    // Structure first, so a mismatch fails with a readable cause before
    // the byte comparison does.
    let summary = summarize(&out.bytes).unwrap();
    assert_eq!(
        out.tenants,
        vec!["tiny"],
        "session preamble names the tenant"
    );
    let machine0 = summary.track_named("machine 0").unwrap();
    assert_eq!(
        summary.slices_on(machine0),
        vec!["calibrate", "job 0", "job 1"]
    );
    let journal = summary.track_named("journal").unwrap();
    assert_eq!(summary.slices_on(journal), vec!["fsync"]);
    assert_eq!(summary.slice_begins.len(), summary.slice_ends.len());

    let golden_path = golden_dir().join("tiny.perfetto-trace");
    if std::env::var_os("BLESS").is_some() {
        fs::write(&golden_path, &out.bytes).unwrap();
        return;
    }
    let golden = fs::read(&golden_path).unwrap();
    assert_eq!(
        out.bytes, golden,
        "serialized trace drifted from tests/golden/tiny.perfetto-trace; \
         re-bless with BLESS=1 if the change is intentional"
    );
}
