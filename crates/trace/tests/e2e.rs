//! The tentpole acceptance test: a fixed-seed three-tenant, 1000-job-each
//! run through the real daemon (`serve_stream` with tracing and a tick-
//! fsync journal), converted by [`calib_trace::convert`], must decode as a
//! structurally valid Perfetto trace — per-tenant track groups with
//! calibration, job, and fsync slices plus `queued`/`flow` counter tracks,
//! every slice balanced, and byte-identical across conversions.

use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use calib_core::json::{Json, ToJson};
use calib_difftest::{gen_case_sized, GenParams};
use calib_serve::{serve_stream, ServerConfig};
use calib_trace::{convert, summarize};

/// A self-cleaning temp dir (mirrors the serve test-suite idiom).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path =
            std::env::temp_dir().join(format!("calib-trace-e2e-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One generator family per tenant, spanning all three algorithms (alg1
/// and alg2 are single-machine; alg3 exercises multi-machine lanes).
fn tenant_family(i: usize) -> (&'static str, GenParams) {
    let base = GenParams {
        max_p: 1,
        max_weight: 1,
        ..GenParams::default()
    };
    match i % 3 {
        0 => ("alg1", base),
        1 => (
            "alg2",
            GenParams {
                max_weight: 9,
                ..base
            },
        ),
        _ => ("alg3", GenParams { max_p: 3, ..base }),
    }
}

/// Script one tenant: hello, all 1000 arrivals up front, a few mid-run
/// ticks (each a journal sync point under `--fsync tick`), drain, bye.
fn tenant_script(name: &str, seed: u64, algorithm: &str, params: &GenParams) -> Vec<String> {
    let case = gen_case_sized(seed, params, 1000);
    let mut jobs = case.instance.jobs().to_vec();
    jobs.sort_by_key(|j| (j.release, j.id));

    let mut lines = vec![Json::obj([
        ("type", "hello".to_json()),
        ("tenant", name.to_json()),
        ("machines", case.instance.machines().to_json()),
        ("cal_len", case.instance.cal_len().to_json()),
        ("cal_cost", case.cal_cost.to_json()),
        ("algorithm", algorithm.to_json()),
    ])
    .to_string_compact()];
    // All jobs arrive at virtual time zero (every release is >= 0), then a
    // handful of ticks walk the clock forward; `drain` finishes the rest.
    // This keeps real fsync counts bounded while still producing fsync
    // slices and a full schedule's worth of calibrate/job slices.
    lines.push(
        Json::obj([
            ("type", "arrive".to_json()),
            ("tenant", name.to_json()),
            ("jobs", jobs.to_json()),
        ])
        .to_string_compact(),
    );
    let mut releases: Vec<_> = jobs.iter().map(|j| j.release).collect();
    releases.sort_unstable();
    releases.dedup();
    for now in releases.iter().step_by(releases.len().div_ceil(4).max(1)) {
        lines.push(
            Json::obj([
                ("type", "tick".to_json()),
                ("tenant", name.to_json()),
                ("now", now.to_json()),
            ])
            .to_string_compact(),
        );
    }
    lines.push(format!(r#"{{"type":"drain","tenant":"{name}"}}"#));
    lines.push(format!(r#"{{"type":"bye","tenant":"{name}"}}"#));
    lines
}

#[test]
fn three_tenant_thousand_job_run_converts_to_a_valid_perfetto_trace() {
    let dir = TempDir::new("run");
    let trace_dir = dir.0.join("traces");
    let journal_dir = dir.0.join("journal");

    let mut lines = Vec::new();
    for (i, name) in ["alpha", "beta", "gamma"].iter().enumerate() {
        let (algorithm, params) = tenant_family(i);
        let seed = 1000 + u64::try_from(i).unwrap();
        lines.extend(tenant_script(name, seed, algorithm, &params));
    }
    let input = lines.join("\n") + "\n";

    struct NullOut;
    impl Write for NullOut {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let report = serve_stream(
        input.as_bytes(),
        Box::new(NullOut),
        ServerConfig {
            workers: 3,
            queue_cap: 100_000,
            trace_dir: Some(trace_dir.clone()),
            journal_dir: Some(journal_dir),
            fsync: calib_serve::FsyncPolicy::Tick,
            ..Default::default()
        },
    );
    assert!(report.all_ok(), "accountings: {:?}", report.accountings);
    assert_eq!(report.accountings.len(), 3);

    // Convert exactly as `calib-trace tdir/*.jsonl` would.
    let mut inputs = Vec::new();
    for name in ["alpha", "beta", "gamma"] {
        let text = std::fs::read_to_string(trace_dir.join(format!("{name}.jsonl"))).unwrap();
        inputs.push((name.to_string(), text));
    }
    let out = convert(&inputs, None, 1).unwrap();
    assert_eq!(out.tenants, vec!["alpha", "beta", "gamma"]);
    assert_eq!(out.skipped_lines, 0, "every trace line must parse");

    let summary = summarize(&out.bytes).unwrap();
    assert_eq!(summary.packets, out.packets);
    assert_eq!(
        summary.process_tracks.len(),
        1,
        "one process track for the daemon"
    );
    assert_eq!(
        summary.slice_begins.len(),
        summary.slice_ends.len(),
        "every slice must be balanced"
    );

    for (i, name) in ["alpha", "beta", "gamma"].iter().enumerate() {
        let base = (u64::try_from(i).unwrap() + 1) * 1000;
        let group = summary.track_named(name).unwrap();
        assert_eq!(group, base, "tenant groups are laid out in name order");

        // Each tenant scheduled 1000 jobs on some machine lane, calibrating
        // at least once to do it.
        let mut jobs = 0;
        let mut calibrations = 0;
        let machines: Vec<u64> = summary
            .named_tracks
            .iter()
            .filter(|(_, parent, n)| *parent == base && n.starts_with("machine "))
            .map(|(uuid, _, _)| *uuid)
            .collect();
        assert!(!machines.is_empty(), "tenant `{name}` has machine lanes");
        for lane in machines {
            for slice in summary.slices_on(lane) {
                if slice.starts_with("job ") {
                    jobs += 1;
                } else if slice == "calibrate" {
                    calibrations += 1;
                }
            }
        }
        assert_eq!(jobs, 1000, "tenant `{name}` must show all job slices");
        assert!(calibrations > 0, "tenant `{name}` must show calibrations");

        // The tick-policy journal produced fsync slices on the journal lane.
        let journal = base + 800;
        let fsyncs = summary
            .slices_on(journal)
            .iter()
            .filter(|s| **s == "fsync")
            .count();
        assert!(fsyncs > 0, "tenant `{name}` must show fsync slices");

        // Counter tracks exist and carry samples.
        for (offset, counter) in [(900, "queued"), (901, "flow")] {
            let track = base + offset;
            assert!(
                summary
                    .counter_tracks
                    .iter()
                    .any(|(uuid, parent, n)| *uuid == track && *parent == base && n == counter),
                "tenant `{name}` must declare a `{counter}` counter track"
            );
            assert!(
                summary.counter_samples.iter().any(|(t, _)| *t == track),
                "tenant `{name}` `{counter}` counter must have samples"
            );
        }
    }

    // Conversion is deterministic: a second pass over the same inputs is
    // byte-identical (the trace files contain no wall-clock data).
    let again = convert(&inputs, None, 1).unwrap();
    assert_eq!(out.bytes, again.bytes);
}

/// Regression guard for the snapshot-stream integration: feeding the
/// converter a `--metrics` JSON-lines file alongside the tenant traces
/// yields daemon counter tracks without disturbing the tenant layout.
#[test]
fn converter_accepts_a_metrics_stream_alongside_traces() {
    let dir = TempDir::new("metrics");
    let trace_dir = dir.0.join("traces");

    let lines = [
        r#"{"type":"hello","tenant":"m","machines":1,"cal_len":2,"cal_cost":3,"algorithm":"alg1"}"#,
        r#"{"type":"arrive","tenant":"m","jobs":[{"id":0,"release":0,"weight":1}]}"#,
        r#"{"type":"tick","tenant":"m","now":10}"#,
        r#"{"type":"drain","tenant":"m"}"#,
        r#"{"type":"bye","tenant":"m"}"#,
    ];
    let input = lines.join("\n") + "\n";

    let snapshots = Arc::new(Mutex::new(Vec::<u8>::new()));
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    struct NullOut;
    impl Write for NullOut {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let report = serve_stream(
        input.as_bytes(),
        Box::new(NullOut),
        ServerConfig {
            workers: 1,
            trace_dir: Some(trace_dir.clone()),
            metrics_interval: Some(std::time::Duration::from_millis(5)),
            metrics_sink: Some(calib_serve::MetricsSink::new(Box::new(SharedBuf(
                Arc::clone(&snapshots),
            )))),
            ..Default::default()
        },
    );
    assert!(report.all_ok());

    let trace = std::fs::read_to_string(trace_dir.join("m.jsonl")).unwrap();
    let metrics = String::from_utf8(snapshots.lock().unwrap().clone()).unwrap();
    assert!(!metrics.is_empty(), "the sink must capture snapshots");

    let out = convert(&[("m".to_string(), trace)], Some(&metrics), 1).unwrap();
    let summary = summarize(&out.bytes).unwrap();
    assert_eq!(out.tenants, vec!["m"]);
    let group = summary.track_named("daemon metrics").unwrap();
    let counters: Vec<&str> = summary
        .counter_tracks
        .iter()
        .filter(|(_, parent, _)| *parent == group)
        .map(|(_, _, n)| n.as_str())
        .collect();
    assert!(
        counters.contains(&"decisions"),
        "daemon counter tracks: {counters:?}"
    );
    assert!(summary.track_named("m").is_some());
}
