//! Offline JSON-lines → Perfetto conversion.
//!
//! The serve daemon writes one JSON-lines trace per tenant session (plus,
//! optionally, a metrics-snapshot stream). [`convert`] merges any number of
//! such traces into a single `.perfetto-trace` byte blob: one process
//! track, one tenant track group per input, and daemon-level counter
//! tracks from the metrics stream.
//!
//! Inputs are `(fallback name, content)` pairs rather than paths so the
//! conversion core stays I/O-free and unit-testable; the `calib-trace` bin
//! supplies file stems as fallback names. A `{"type":"session",...}`
//! preamble line overrides the fallback name and supplies the calibration
//! length; traces without one (older daemons, bare engine runs) fall back
//! to the caller's `default_cal_len`.

use std::collections::BTreeMap;

use calib_core::json::Json;
use calib_core::types::Time;

use crate::perfetto::TraceBuilder;
use crate::timeline::{parse_line, TenantTimeline, TraceLine, NS_PER_UNIT};

/// Track uuid of the daemon-metrics group; per-key counter tracks follow.
/// Tenant blocks start at 1000, so this never collides.
const METRICS_GROUP: u64 = 500;

/// Result of a conversion: the serialized trace plus what went into it.
#[derive(Debug)]
pub struct Converted {
    /// `.perfetto-trace` bytes.
    pub bytes: Vec<u8>,
    /// Tenant names, in track order (sorted).
    pub tenants: Vec<String>,
    /// Total `TracePacket`s emitted.
    pub packets: u64,
    /// Trace lines of unknown type, skipped for forward compatibility.
    pub skipped_lines: u64,
}

/// Converts tenant trace contents (and an optional metrics-snapshot
/// stream) into one Perfetto trace.
///
/// Fails loudly on malformed JSON or recognised lines with missing fields
/// (trace corruption should not convert silently); lines of *unknown* type
/// are skipped and counted instead.
pub fn convert(
    inputs: &[(String, String)],
    metrics: Option<&str>,
    default_cal_len: Time,
) -> Result<Converted, String> {
    let mut skipped: u64 = 0;
    let mut timelines: Vec<TenantTimeline> = Vec::new();
    for (fallback, content) in inputs {
        let mut name = fallback.clone();
        let mut cal_len = default_cal_len;
        let mut recs: Vec<(Option<u64>, calib_core::obs::Event)> = Vec::new();
        for (idx, line) in content.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let lineno = idx + 1;
            match parse_line(line).map_err(|e| format!("{fallback}:{lineno}: {e}"))? {
                TraceLine::Session(session_name, _machines, session_cal_len) => {
                    name = session_name;
                    cal_len = session_cal_len;
                }
                TraceLine::Event(seq, event) => recs.push((seq, event)),
                TraceLine::Unknown(_) => skipped += 1,
            }
        }
        let mut timeline = TenantTimeline::new(&name, cal_len);
        for (fallback_seq, (seq, event)) in recs.iter().enumerate() {
            let seq = match seq {
                Some(s) => *s,
                None => u64::try_from(fallback_seq).unwrap_or(u64::MAX),
            };
            timeline.add_event_with_seq(seq, event);
        }
        timelines.push(timeline);
    }
    timelines.sort_by(|a, b| a.name().cmp(b.name()));
    for pair in timelines.windows(2) {
        if pair[0].name() == pair[1].name() {
            return Err(format!("duplicate tenant name {:?}", pair[0].name()));
        }
    }

    let offset = timelines
        .iter()
        .filter_map(TenantTimeline::min_time)
        .min()
        .unwrap_or(0)
        .min(0);

    let mut builder = TraceBuilder::new();
    builder.process_track(1, 1, "calib-serve");
    if let Some(snapshots) = metrics {
        emit_metrics(&mut builder, snapshots, &mut skipped)?;
    }
    for (i, timeline) in timelines.iter().enumerate() {
        let block = u64::try_from(i).unwrap_or(0).saturating_add(1);
        timeline.emit(&mut builder, 1, block.saturating_mul(1000), offset);
    }

    let packets = builder.packet_count();
    Ok(Converted {
        bytes: builder.into_bytes(),
        tenants: timelines.iter().map(|t| t.name().to_string()).collect(),
        packets,
        skipped_lines: skipped,
    })
}

/// Renders a metrics-snapshot JSON-lines stream as counter tracks under a
/// "daemon metrics" group: one track per numeric key of the `"global"`
/// object, sampled at `seq * NS_PER_UNIT` (snapshots carry no virtual
/// time — the sequence number is the only wall-clock-free ordering).
fn emit_metrics(
    builder: &mut TraceBuilder,
    snapshots: &str,
    skipped: &mut u64,
) -> Result<(), String> {
    // (seq, key -> value), keys unioned across snapshots for stable tracks.
    let mut samples: Vec<(u64, Vec<(String, i64)>)> = Vec::new();
    let mut keys: BTreeMap<String, u64> = BTreeMap::new();
    for (idx, line) in snapshots.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let json = Json::parse(line).map_err(|e| format!("metrics:{lineno}: bad JSON: {e}"))?;
        if json.get("type").and_then(Json::as_str) != Some("metrics") {
            *skipped += 1;
            continue;
        }
        let seq = json
            .get("seq")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("metrics:{lineno}: snapshot missing \"seq\""))?;
        let global = json
            .get("global")
            .ok_or_else(|| format!("metrics:{lineno}: snapshot missing \"global\""))?;
        let mut row = Vec::new();
        if let Json::Obj(fields) = global {
            for (key, value) in fields {
                if let Some(v) = value.as_u64() {
                    let clamped = i64::try_from(v).unwrap_or(i64::MAX);
                    row.push((key.clone(), clamped));
                    keys.entry(key.clone()).or_insert(0);
                }
            }
        }
        samples.push((seq, row));
    }
    if samples.is_empty() {
        return Ok(());
    }
    samples.sort_by_key(|(seq, _)| *seq);

    builder.named_track(METRICS_GROUP, 1, "daemon metrics");
    for (i, (_, uuid)) in keys.iter_mut().enumerate() {
        *uuid = METRICS_GROUP + 1 + u64::try_from(i).unwrap_or(0);
    }
    for (key, uuid) in &keys {
        builder.counter_track(*uuid, METRICS_GROUP, key);
    }
    for (seq, row) in &samples {
        let ts = seq.saturating_mul(NS_PER_UNIT);
        for (key, value) in row {
            if let Some(uuid) = keys.get(key) {
                builder.counter(*uuid, ts, *value);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfetto::summarize;

    fn tenant_trace(tenant: &str) -> String {
        [
            format!(r#"{{"type":"session","tenant":"{tenant}","machines":1,"cal_len":4}}"#),
            r#"{"type":"job_arrived","time":0,"job":0,"weight":3,"seq":0}"#.to_string(),
            r#"{"type":"calibrate","time":0,"machine":0,"start":0,"seq":1}"#.to_string(),
            r#"{"type":"dispatch","time":0,"job":0,"machine":0,"start":0,"seq":2}"#.to_string(),
            r#"{"type":"journal_sync","time":0,"micros":90,"synced":true,"seq":3}"#.to_string(),
        ]
        .join("\n")
    }

    #[test]
    fn merges_tenants_sorted_with_session_names() {
        let inputs = vec![
            ("zfile".to_string(), tenant_trace("zeta")),
            ("afile".to_string(), tenant_trace("alpha")),
        ];
        let out = convert(&inputs, None, 1).unwrap();
        assert_eq!(out.tenants, vec!["alpha", "zeta"]);
        assert_eq!(out.skipped_lines, 0);
        let s = summarize(&out.bytes).unwrap();
        assert_eq!(s.process_tracks, vec![(1, 1, "calib-serve".to_string())]);
        // alpha gets block 1000, zeta block 2000; each has a calibrate and
        // a job slice on its machine lane plus an fsync on its journal.
        assert_eq!(s.slices_on(1001), vec!["calibrate", "job 0"]);
        assert_eq!(s.slices_on(2001), vec!["calibrate", "job 0"]);
        assert_eq!(s.slices_on(1800), vec!["fsync"]);
        assert!(s
            .counter_tracks
            .iter()
            .any(|(u, p, n)| (*u, *p, n.as_str()) == (1900, 1000, "queued")));
    }

    #[test]
    fn fallback_name_and_unknown_lines() {
        let content = [
            r#"{"type":"time_skip","from":0,"to":4}"#,
            r#"{"type":"novel_thing","x":1}"#,
        ]
        .join("\n");
        let out = convert(&[("stem-name".to_string(), content)], None, 2).unwrap();
        assert_eq!(out.tenants, vec!["stem-name"]);
        assert_eq!(out.skipped_lines, 1);
    }

    #[test]
    fn duplicate_tenant_names_error() {
        let inputs = vec![
            ("a".to_string(), tenant_trace("same")),
            ("b".to_string(), tenant_trace("same")),
        ];
        assert!(convert(&inputs, None, 1).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn malformed_lines_error_with_location() {
        let content = "{\"type\":\"dispatch\",\"time\":1}";
        let err = convert(&[("bad".to_string(), content.to_string())], None, 1).unwrap_err();
        assert!(err.starts_with("bad:1:"), "{err}");
    }

    #[test]
    fn metrics_snapshots_become_counter_tracks() {
        let metrics = [
            r#"{"type":"metrics","seq":0,"global":{"decisions":10,"inbox_depth":2}}"#,
            r#"{"type":"metrics","seq":1,"global":{"decisions":25,"inbox_depth":0}}"#,
        ]
        .join("\n");
        let out = convert(&[], Some(&metrics), 1).unwrap();
        let s = summarize(&out.bytes).unwrap();
        let group = s.track_named("daemon metrics").unwrap();
        assert_eq!(group, METRICS_GROUP);
        let decisions = s.track_named("decisions").unwrap();
        let samples: Vec<i64> = s
            .counter_samples
            .iter()
            .filter(|(t, _)| *t == decisions)
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(samples, vec![10, 25]);
    }

    #[test]
    fn conversion_is_deterministic() {
        let inputs = vec![("t".to_string(), tenant_trace("t"))];
        let a = convert(&inputs, None, 1).unwrap();
        let b = convert(&inputs, None, 1).unwrap();
        assert_eq!(a.bytes, b.bytes);
    }
}
