//! Minimal protobuf wire-format encoding and decoding.
//!
//! Perfetto traces are protobuf messages, but the subset the TrackEvent
//! schema needs is tiny: varints and length-delimited fields. This module
//! implements exactly that subset by hand — no codegen, no dependency —
//! mirroring the encoding rules of the protobuf spec:
//!
//! * a field is a *key* varint `(field_number << 3) | wire_type` followed
//!   by its payload;
//! * wire type 0 (`VARINT`) is a base-128 little-endian varint, 7 payload
//!   bits per byte, continuation bit 0x80;
//! * wire type 2 (`LEN`) is a varint byte length followed by that many
//!   payload bytes (strings, bytes, nested messages).
//!
//! The decoder half exists so the crate can *verify its own output*: the
//! structural decode tests and `calib-trace --verify` walk the emitted
//! bytes field-by-field instead of trusting the encoder.

/// Wire type 0: varint.
pub const WIRE_VARINT: u64 = 0;
/// Wire type 1: fixed 64-bit.
pub const WIRE_FIXED64: u64 = 1;
/// Wire type 2: length-delimited (strings, bytes, sub-messages).
pub const WIRE_LEN: u64 = 2;
/// Wire type 5: fixed 32-bit.
pub const WIRE_FIXED32: u64 = 5;

/// Appends `value` to `buf` as a base-128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut value: u64) {
    loop {
        let low = u8::try_from(value & 0x7f).unwrap_or(0);
        value >>= 7;
        if value == 0 {
            buf.push(low);
            return;
        }
        buf.push(low | 0x80);
    }
}

/// Reads one varint from `buf` at `*pos`, advancing it. `None` on
/// truncation or a varint longer than the 10 bytes a `u64` can need.
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value: u64 = 0;
    let mut shift: u32 = 0;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
    }
}

/// An in-progress protobuf message: fields append in call order.
#[derive(Debug, Default)]
pub struct MessageWriter {
    buf: Vec<u8>,
}

impl MessageWriter {
    /// An empty message.
    pub fn new() -> MessageWriter {
        MessageWriter::default()
    }

    fn key(&mut self, field: u32, wire: u64) {
        put_varint(&mut self.buf, (u64::from(field) << 3) | wire);
    }

    /// A varint-typed field (protobuf `uint64`/`uint32`/`bool`/enums).
    pub fn varint(&mut self, field: u32, value: u64) -> &mut Self {
        self.key(field, WIRE_VARINT);
        put_varint(&mut self.buf, value);
        self
    }

    /// A varint-typed `int64` field: negative values use two's-complement,
    /// ten bytes on the wire (the protobuf `int64` rule, not zigzag).
    pub fn int64(&mut self, field: u32, value: i64) -> &mut Self {
        self.varint(field, u64::from_le_bytes(value.to_le_bytes()))
    }

    /// A length-delimited bytes field.
    pub fn bytes(&mut self, field: u32, payload: &[u8]) -> &mut Self {
        self.key(field, WIRE_LEN);
        put_varint(&mut self.buf, u64::try_from(payload.len()).unwrap_or(0));
        self.buf.extend_from_slice(payload);
        self
    }

    /// A length-delimited UTF-8 string field.
    pub fn string(&mut self, field: u32, value: &str) -> &mut Self {
        self.bytes(field, value.as_bytes())
    }

    /// A nested message field.
    pub fn message(&mut self, field: u32, child: &MessageWriter) -> &mut Self {
        self.bytes(field, &child.buf)
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The encoded bytes, by reference.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// One decoded field value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldValue<'a> {
    /// Wire type 0.
    Varint(u64),
    /// Wire type 1.
    Fixed64(u64),
    /// Wire type 2: the raw payload (string, bytes, or nested message).
    Len(&'a [u8]),
    /// Wire type 5.
    Fixed32(u32),
}

impl<'a> FieldValue<'a> {
    /// The payload of a length-delimited field, if that is what this is.
    pub fn as_len(&self) -> Option<&'a [u8]> {
        match self {
            FieldValue::Len(b) => Some(b),
            _ => None,
        }
    }

    /// The value of a varint field, if that is what this is.
    pub fn as_varint(&self) -> Option<u64> {
        match self {
            FieldValue::Varint(v) => Some(*v),
            _ => None,
        }
    }
}

/// Decodes a message into `(field_number, value)` pairs, in wire order.
///
/// Rejects truncated input, unknown wire types, and field payloads that
/// run past the end — the structural tests rely on this strictness.
pub fn decode_fields(buf: &[u8]) -> Result<Vec<(u32, FieldValue<'_>)>, String> {
    let mut fields = Vec::new();
    let mut pos = 0usize;
    while pos < buf.len() {
        let key = get_varint(buf, &mut pos).ok_or("truncated field key")?;
        let field = u32::try_from(key >> 3).map_err(|_| "field number overflow".to_string())?;
        if field == 0 {
            return Err("field number 0 is invalid".to_string());
        }
        let value = match key & 7 {
            WIRE_VARINT => FieldValue::Varint(get_varint(buf, &mut pos).ok_or("truncated varint")?),
            WIRE_FIXED64 => {
                let end = pos.checked_add(8).filter(|&e| e <= buf.len());
                let end = end.ok_or("truncated fixed64")?;
                let mut raw = [0u8; 8];
                raw.copy_from_slice(&buf[pos..end]);
                pos = end;
                FieldValue::Fixed64(u64::from_le_bytes(raw))
            }
            WIRE_LEN => {
                let len = get_varint(buf, &mut pos).ok_or("truncated length")?;
                let len = usize::try_from(len).map_err(|_| "length overflow".to_string())?;
                let end = pos.checked_add(len).filter(|&e| e <= buf.len());
                let end = end.ok_or("length-delimited field runs past the end")?;
                let payload = &buf[pos..end];
                pos = end;
                FieldValue::Len(payload)
            }
            WIRE_FIXED32 => {
                let end = pos.checked_add(4).filter(|&e| e <= buf.len());
                let end = end.ok_or("truncated fixed32")?;
                let mut raw = [0u8; 4];
                raw.copy_from_slice(&buf[pos..end]);
                pos = end;
                FieldValue::Fixed32(u32::from_le_bytes(raw))
            }
            other => return Err(format!("unsupported wire type {other}")),
        };
        fields.push((field, value));
    }
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn varint_bytes(v: u64) -> Vec<u8> {
        let mut buf = Vec::new();
        put_varint(&mut buf, v);
        buf
    }

    #[test]
    fn varint_golden_bytes() {
        // The satellite's edge cases, byte for byte.
        assert_eq!(varint_bytes(0), vec![0x00]);
        assert_eq!(varint_bytes(1), vec![0x01]);
        assert_eq!(varint_bytes(127), vec![0x7f]);
        assert_eq!(varint_bytes(128), vec![0x80, 0x01]);
        assert_eq!(varint_bytes(300), vec![0xac, 0x02]);
        assert_eq!(
            varint_bytes(u64::MAX),
            vec![0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01]
        );
    }

    #[test]
    fn varint_round_trips() {
        for v in [
            0u64,
            1,
            127,
            128,
            255,
            256,
            16383,
            16384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            let bytes = varint_bytes(v);
            let mut pos = 0;
            assert_eq!(get_varint(&bytes, &mut pos), Some(v), "value {v}");
            assert_eq!(pos, bytes.len(), "value {v} consumed exactly");
        }
    }

    #[test]
    fn truncated_varint_is_rejected() {
        let mut pos = 0;
        assert_eq!(get_varint(&[0x80], &mut pos), None);
        let mut pos = 0;
        assert_eq!(get_varint(&[], &mut pos), None);
    }

    #[test]
    fn int64_uses_twos_complement() {
        let mut m = MessageWriter::new();
        m.int64(1, -1);
        let bytes = m.into_bytes();
        // key 0x08, then ten 0xff…0x01 bytes for -1.
        assert_eq!(bytes[0], 0x08);
        assert_eq!(bytes.len(), 11);
        assert_eq!(bytes[10], 0x01);
    }

    #[test]
    fn messages_nest_and_decode() {
        let mut child = MessageWriter::new();
        child.varint(1, 42).string(2, "tenant-a");
        let mut parent = MessageWriter::new();
        parent.varint(8, 1000).message(60, &child);
        let bytes = parent.into_bytes();

        let fields = decode_fields(&bytes).unwrap();
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0], (8, FieldValue::Varint(1000)));
        let nested = fields[1].1.as_len().unwrap();
        let inner = decode_fields(nested).unwrap();
        assert_eq!(inner[0], (1, FieldValue::Varint(42)));
        assert_eq!(inner[1].1.as_len(), Some("tenant-a".as_bytes()));
    }

    #[test]
    fn decoder_rejects_overruns() {
        // Length claims 5 bytes, only 2 present.
        let bad = [0x0a, 0x05, 0x01, 0x02];
        assert!(decode_fields(&bad).is_err());
        // Unsupported wire type 3 (group start).
        let bad = [0x0b];
        assert!(decode_fields(&bad).is_err());
    }
}
