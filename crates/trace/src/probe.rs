//! Live Perfetto capture.

use calib_core::obs::{Event, Probe};
use calib_core::types::Time;

use crate::perfetto::TraceBuilder;
use crate::timeline::TenantTimeline;

/// A [`Probe`] that buffers the event stream and serializes it straight to
/// `.perfetto-trace` bytes — no JSON-lines intermediate, no I/O during the
/// run (events are `Copy`; recording is a `Vec` push).
///
/// Use this to trace a single in-process engine run:
///
/// ```
/// use calib_core::obs::Probe;
/// use calib_trace::PerfettoProbe;
///
/// let mut probe = PerfettoProbe::new("demo", 4);
/// probe.record(&calib_core::obs::Event::TimeSkip { from: 0, to: 8 });
/// let bytes = probe.finish();
/// assert!(!bytes.is_empty());
/// ```
///
/// The serve daemon instead writes JSON-lines traces per tenant and leaves
/// Perfetto conversion to the offline `calib-trace` bin, which merges many
/// tenants into one trace; this probe is the single-session live path.
#[derive(Debug)]
pub struct PerfettoProbe {
    timeline: TenantTimeline,
}

impl PerfettoProbe {
    /// A probe for a session named `name` whose calibrations last `cal_len`
    /// time units (the instance's `T`; governs rendered slice length).
    pub fn new(name: &str, cal_len: Time) -> PerfettoProbe {
        PerfettoProbe {
            timeline: TenantTimeline::new(name, cal_len),
        }
    }

    /// Events buffered so far.
    pub fn events(&self) -> usize {
        self.timeline.len()
    }

    /// Serializes the buffered run as a single-process Perfetto trace.
    pub fn finish(self) -> Vec<u8> {
        let mut builder = TraceBuilder::new();
        builder.process_track(1, 1, "calib-engine");
        // Negative virtual times shift to a zero origin; non-negative
        // timelines keep their absolute virtual timestamps.
        let offset = self.timeline.min_time().unwrap_or(0).min(0);
        self.timeline.emit(&mut builder, 1, 1000, offset);
        builder.into_bytes()
    }
}

impl Probe for PerfettoProbe {
    fn record(&mut self, event: &Event) {
        self.timeline.add_event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfetto::summarize;
    use calib_core::types::{JobId, MachineId};

    #[test]
    fn records_and_serializes_a_run() {
        let mut probe = PerfettoProbe::new("solo", 2);
        probe.record(&Event::JobArrived {
            time: 0,
            job: JobId(0),
            weight: 1,
        });
        probe.record(&Event::Calibrate {
            time: 0,
            machine: MachineId(0),
            start: 0,
        });
        probe.record(&Event::Dispatch {
            time: 0,
            job: JobId(0),
            machine: MachineId(0),
            start: 0,
        });
        assert_eq!(probe.events(), 3);
        let s = summarize(&probe.finish()).unwrap();
        assert_eq!(s.process_tracks.len(), 1);
        assert!(s.track_named("solo").is_some());
        assert_eq!(s.slices_on(1001), vec!["calibrate", "job 0"]);
    }
}
