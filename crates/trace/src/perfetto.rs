//! Perfetto TrackEvent packet builders.
//!
//! A Perfetto trace is a protobuf `Trace` message: a flat sequence of
//! `TracePacket`s (field 1). Tracks are declared once with a
//! `TrackDescriptor` packet (a process, a named child track, or a counter
//! track), then referenced by `uuid` from `TrackEvent` packets carrying
//! slices (`TYPE_SLICE_BEGIN`/`TYPE_SLICE_END`), instants, and counter
//! values. This module hard-codes the handful of field numbers the
//! `ui.perfetto.dev` importer needs; the constants below name them so the
//! encoder reads like the schema.
//!
//! Only wall-clock-free inputs reach this layer: timestamps are virtual
//! engine time scaled to nanoseconds by the caller, so identical runs
//! serialize to identical bytes (the golden-trace test pins this down).

use crate::proto::MessageWriter;

// Trace
const TRACE_PACKET: u32 = 1;
// TracePacket
const PACKET_TIMESTAMP: u32 = 8;
const PACKET_SEQUENCE_ID: u32 = 10;
const PACKET_TRACK_EVENT: u32 = 11;
const PACKET_TRACK_DESCRIPTOR: u32 = 60;
// TrackDescriptor
const TRACK_UUID: u32 = 1;
const TRACK_NAME: u32 = 2;
const TRACK_PROCESS: u32 = 3;
const TRACK_PARENT_UUID: u32 = 5;
const TRACK_COUNTER: u32 = 8;
// ProcessDescriptor
const PROCESS_PID: u32 = 1;
const PROCESS_NAME: u32 = 6;
// TrackEvent
const EVENT_TYPE: u32 = 9;
const EVENT_TRACK_UUID: u32 = 11;
const EVENT_CATEGORIES: u32 = 22;
const EVENT_NAME: u32 = 23;
const EVENT_COUNTER_VALUE: u32 = 30;

/// `TrackEvent.Type` values.
const TYPE_SLICE_BEGIN: u64 = 1;
const TYPE_SLICE_END: u64 = 2;
const TYPE_INSTANT: u64 = 3;
const TYPE_COUNTER: u64 = 4;

/// The one trusted packet sequence id every packet carries. A real tracing
/// service assigns these per producer; an offline converter is a single
/// producer, so a constant is correct and keeps the output deterministic.
const SEQUENCE_ID: u64 = 0x2017; // SPAA 2017, for lack of a better magic.

/// Builds a Perfetto trace as a flat packet sequence.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    trace: MessageWriter,
    packets: u64,
}

impl TraceBuilder {
    /// An empty trace.
    pub fn new() -> TraceBuilder {
        TraceBuilder::default()
    }

    /// Packets emitted so far.
    pub fn packet_count(&self) -> u64 {
        self.packets
    }

    fn push_packet(&mut self, packet: &MessageWriter) {
        self.trace.message(TRACE_PACKET, packet);
        self.packets += 1;
    }

    fn descriptor_packet(&mut self, descriptor: &MessageWriter) {
        let mut packet = MessageWriter::new();
        packet.varint(PACKET_SEQUENCE_ID, SEQUENCE_ID);
        packet.message(PACKET_TRACK_DESCRIPTOR, descriptor);
        self.push_packet(&packet);
    }

    fn event_packet(&mut self, timestamp_ns: u64, event: &MessageWriter) {
        let mut packet = MessageWriter::new();
        packet.varint(PACKET_TIMESTAMP, timestamp_ns);
        packet.varint(PACKET_SEQUENCE_ID, SEQUENCE_ID);
        packet.message(PACKET_TRACK_EVENT, event);
        self.push_packet(&packet);
    }

    /// Declares a process track (the daemon, or one converter input set).
    pub fn process_track(&mut self, uuid: u64, pid: u64, name: &str) {
        let mut process = MessageWriter::new();
        process.varint(PROCESS_PID, pid);
        process.string(PROCESS_NAME, name);
        let mut descriptor = MessageWriter::new();
        descriptor.varint(TRACK_UUID, uuid);
        descriptor.message(TRACK_PROCESS, &process);
        self.descriptor_packet(&descriptor);
    }

    /// Declares a named track under `parent_uuid` (a tenant, a machine
    /// lane, a journal lane).
    pub fn named_track(&mut self, uuid: u64, parent_uuid: u64, name: &str) {
        let mut descriptor = MessageWriter::new();
        descriptor.varint(TRACK_UUID, uuid);
        descriptor.string(TRACK_NAME, name);
        descriptor.varint(TRACK_PARENT_UUID, parent_uuid);
        self.descriptor_packet(&descriptor);
    }

    /// Declares a counter track under `parent_uuid`: its events carry
    /// values, not durations.
    pub fn counter_track(&mut self, uuid: u64, parent_uuid: u64, name: &str) {
        let mut descriptor = MessageWriter::new();
        descriptor.varint(TRACK_UUID, uuid);
        descriptor.string(TRACK_NAME, name);
        descriptor.varint(TRACK_PARENT_UUID, parent_uuid);
        // Presence of an (empty) CounterDescriptor marks the track.
        descriptor.message(TRACK_COUNTER, &MessageWriter::new());
        self.descriptor_packet(&descriptor);
    }

    /// Opens a slice on `track_uuid` at `timestamp_ns`.
    pub fn slice_begin(&mut self, track_uuid: u64, timestamp_ns: u64, name: &str, category: &str) {
        let mut event = MessageWriter::new();
        event.varint(EVENT_TYPE, TYPE_SLICE_BEGIN);
        event.varint(EVENT_TRACK_UUID, track_uuid);
        event.string(EVENT_NAME, name);
        event.string(EVENT_CATEGORIES, category);
        self.event_packet(timestamp_ns, &event);
    }

    /// Closes the innermost open slice on `track_uuid`.
    pub fn slice_end(&mut self, track_uuid: u64, timestamp_ns: u64) {
        let mut event = MessageWriter::new();
        event.varint(EVENT_TYPE, TYPE_SLICE_END);
        event.varint(EVENT_TRACK_UUID, track_uuid);
        self.event_packet(timestamp_ns, &event);
    }

    /// A zero-duration marker on `track_uuid`.
    pub fn instant(&mut self, track_uuid: u64, timestamp_ns: u64, name: &str, category: &str) {
        let mut event = MessageWriter::new();
        event.varint(EVENT_TYPE, TYPE_INSTANT);
        event.varint(EVENT_TRACK_UUID, track_uuid);
        event.string(EVENT_NAME, name);
        event.string(EVENT_CATEGORIES, category);
        self.event_packet(timestamp_ns, &event);
    }

    /// A counter sample on a [`TraceBuilder::counter_track`].
    pub fn counter(&mut self, track_uuid: u64, timestamp_ns: u64, value: i64) {
        let mut event = MessageWriter::new();
        event.varint(EVENT_TYPE, TYPE_COUNTER);
        event.varint(EVENT_TRACK_UUID, track_uuid);
        event.int64(EVENT_COUNTER_VALUE, value);
        self.event_packet(timestamp_ns, &event);
    }

    /// The serialized `.perfetto-trace` bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.trace.into_bytes()
    }
}

/// Structural facts decoded back out of serialized trace bytes — the
/// self-verification half (see [`summarize`]).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total `TracePacket`s.
    pub packets: u64,
    /// `(uuid, pid, name)` of every process track.
    pub process_tracks: Vec<(u64, u64, String)>,
    /// `(uuid, parent_uuid, name)` of every named (non-counter) track.
    pub named_tracks: Vec<(u64, u64, String)>,
    /// `(uuid, parent_uuid, name)` of every counter track.
    pub counter_tracks: Vec<(u64, u64, String)>,
    /// Slice-begin events per track uuid, with names.
    pub slice_begins: Vec<(u64, String)>,
    /// Slice-end events per track uuid.
    pub slice_ends: Vec<u64>,
    /// Instant events per track uuid, with names.
    pub instants: Vec<(u64, String)>,
    /// Counter samples `(track uuid, value)`.
    pub counter_samples: Vec<(u64, i64)>,
}

impl TraceSummary {
    /// Slice-begin names recorded on `track`.
    pub fn slices_on(&self, track: u64) -> Vec<&str> {
        self.slice_begins
            .iter()
            .filter(|(t, _)| *t == track)
            .map(|(_, n)| n.as_str())
            .collect()
    }

    /// The uuid of the named track called `name`, if any.
    pub fn track_named(&self, name: &str) -> Option<u64> {
        self.named_tracks
            .iter()
            .chain(self.counter_tracks.iter())
            .find(|(_, _, n)| n == name)
            .map(|(uuid, _, _)| *uuid)
    }
}

fn utf8(bytes: &[u8]) -> Result<String, String> {
    String::from_utf8(bytes.to_vec()).map_err(|_| "non-UTF-8 string field".to_string())
}

/// Decodes serialized trace bytes into a [`TraceSummary`], validating the
/// wire format along the way. This is how the converter's tests (and
/// `calib-trace --verify`) check output without a Perfetto installation.
pub fn summarize(bytes: &[u8]) -> Result<TraceSummary, String> {
    let mut summary = TraceSummary::default();
    for (field, value) in crate::proto::decode_fields(bytes)? {
        if field != TRACE_PACKET {
            return Err(format!("unexpected top-level field {field}"));
        }
        let packet = value.as_len().ok_or("packet is not length-delimited")?;
        summary.packets += 1;
        let mut timestamp = None;
        for (pf, pv) in crate::proto::decode_fields(packet)? {
            match pf {
                PACKET_TIMESTAMP => timestamp = pv.as_varint(),
                PACKET_TRACK_DESCRIPTOR => {
                    let descriptor = pv.as_len().ok_or("descriptor is not a message")?;
                    summarize_descriptor(descriptor, &mut summary)?;
                }
                PACKET_TRACK_EVENT => {
                    let event = pv.as_len().ok_or("track event is not a message")?;
                    timestamp.ok_or("track event packet without timestamp")?;
                    summarize_event(event, &mut summary)?;
                }
                _ => {}
            }
        }
    }
    Ok(summary)
}

fn summarize_descriptor(descriptor: &[u8], summary: &mut TraceSummary) -> Result<(), String> {
    let mut uuid = 0u64;
    let mut parent = 0u64;
    let mut name = String::new();
    let mut process: Option<(u64, String)> = None;
    let mut is_counter = false;
    for (field, value) in crate::proto::decode_fields(descriptor)? {
        match field {
            TRACK_UUID => uuid = value.as_varint().ok_or("uuid is not a varint")?,
            TRACK_PARENT_UUID => parent = value.as_varint().ok_or("parent is not a varint")?,
            TRACK_NAME => name = utf8(value.as_len().ok_or("name is not a string")?)?,
            TRACK_COUNTER => is_counter = true,
            TRACK_PROCESS => {
                let body = value.as_len().ok_or("process is not a message")?;
                let mut pid = 0u64;
                let mut pname = String::new();
                for (pf, pv) in crate::proto::decode_fields(body)? {
                    match pf {
                        PROCESS_PID => pid = pv.as_varint().ok_or("pid is not a varint")?,
                        PROCESS_NAME => pname = utf8(pv.as_len().ok_or("bad process name")?)?,
                        _ => {}
                    }
                }
                process = Some((pid, pname));
            }
            _ => {}
        }
    }
    if let Some((pid, pname)) = process {
        summary.process_tracks.push((uuid, pid, pname));
    } else if is_counter {
        summary.counter_tracks.push((uuid, parent, name));
    } else {
        summary.named_tracks.push((uuid, parent, name));
    }
    Ok(())
}

fn summarize_event(event: &[u8], summary: &mut TraceSummary) -> Result<(), String> {
    let mut kind = 0u64;
    let mut track = 0u64;
    let mut name = String::new();
    let mut counter_value = 0i64;
    for (field, value) in crate::proto::decode_fields(event)? {
        match field {
            EVENT_TYPE => kind = value.as_varint().ok_or("event type is not a varint")?,
            EVENT_TRACK_UUID => track = value.as_varint().ok_or("track uuid is not a varint")?,
            EVENT_NAME => name = utf8(value.as_len().ok_or("event name is not a string")?)?,
            EVENT_COUNTER_VALUE => {
                let raw = value.as_varint().ok_or("counter value is not a varint")?;
                counter_value = i64::from_le_bytes(raw.to_le_bytes());
            }
            _ => {}
        }
    }
    match kind {
        TYPE_SLICE_BEGIN => summary.slice_begins.push((track, name)),
        TYPE_SLICE_END => summary.slice_ends.push(track),
        TYPE_INSTANT => summary.instants.push((track, name)),
        TYPE_COUNTER => summary.counter_samples.push((track, counter_value)),
        other => return Err(format!("unknown track event type {other}")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_summarize_round_trip() {
        let mut b = TraceBuilder::new();
        b.process_track(1, 1, "calib-serve");
        b.named_track(100, 1, "tenant-a");
        b.counter_track(101, 100, "queued");
        b.slice_begin(100, 0, "calibrate", "calibration");
        b.slice_end(100, 4_000_000);
        b.instant(100, 2_000_000, "reserve", "reserve");
        b.counter(101, 0, 3);
        b.counter(101, 1_000_000, -1);
        let bytes = b.into_bytes();

        let s = summarize(&bytes).unwrap();
        assert_eq!(s.packets, 8);
        assert_eq!(s.process_tracks, vec![(1, 1, "calib-serve".to_string())]);
        assert_eq!(s.named_tracks, vec![(100, 1, "tenant-a".to_string())]);
        assert_eq!(s.counter_tracks, vec![(101, 100, "queued".to_string())]);
        assert_eq!(s.slices_on(100), vec!["calibrate"]);
        assert_eq!(s.slice_ends, vec![100]);
        assert_eq!(s.instants, vec![(100, "reserve".to_string())]);
        assert_eq!(s.counter_samples, vec![(101, 3), (101, -1)]);
        assert_eq!(s.track_named("queued"), Some(101));
    }

    #[test]
    fn identical_builds_are_byte_identical() {
        let build = || {
            let mut b = TraceBuilder::new();
            b.process_track(1, 1, "p");
            b.named_track(2, 1, "t");
            b.slice_begin(2, 10, "s", "c");
            b.slice_end(2, 20);
            b.into_bytes()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn summarize_rejects_garbage() {
        assert!(summarize(&[0xff, 0xff]).is_err());
        // A top-level field other than `packet`.
        let mut m = MessageWriter::new();
        m.varint(9, 1);
        assert!(summarize(m.as_bytes()).is_err());
    }
}
