//! `calib-trace`: convert JSON-lines traces to a Perfetto trace.
//!
//! ```text
//! calib-trace [--out FILE] [--metrics FILE] [--cal-len N] [--verify] INPUT...
//! ```
//!
//! Each `INPUT` is a JSON-lines trace written by the serve daemon's
//! `--trace-dir` (or any `TraceProbe`); the tenant name and calibration
//! length come from the `{"type":"session",...}` preamble when present,
//! else the file stem and `--cal-len`. `--metrics` adds daemon counter
//! tracks from a metrics-snapshot stream. `--verify` structurally decodes
//! the output after writing it. Exit status: 0 on success, 2 on any error.

use std::fs;
use std::path::Path;
use std::process::ExitCode;

use calib_trace::{convert, summarize};

struct Options {
    out: String,
    metrics: Option<String>,
    cal_len: i64,
    verify: bool,
    inputs: Vec<String>,
}

const USAGE: &str =
    "usage: calib-trace [--out FILE] [--metrics FILE] [--cal-len N] [--verify] INPUT...";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        out: "out.perfetto-trace".to_string(),
        metrics: None,
        cal_len: 1,
        verify: false,
        inputs: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--out" => opts.out = value("--out")?,
            "--metrics" => opts.metrics = Some(value("--metrics")?),
            "--cal-len" => {
                let raw = value("--cal-len")?;
                opts.cal_len = raw
                    .parse::<i64>()
                    .ok()
                    .filter(|v| *v >= 1)
                    .ok_or_else(|| format!("--cal-len: bad value {raw:?}"))?;
            }
            "--verify" => opts.verify = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            input => opts.inputs.push(input.to_string()),
        }
    }
    if opts.inputs.is_empty() && opts.metrics.is_none() {
        return Err("no inputs given".to_string());
    }
    Ok(opts)
}

fn stem(path: &str) -> String {
    Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string())
}

fn run(args: &[String]) -> Result<String, String> {
    let opts = parse_args(args)?;
    let mut inputs = Vec::new();
    for path in &opts.inputs {
        let content = fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        inputs.push((stem(path), content));
    }
    let metrics = match &opts.metrics {
        Some(path) => Some(fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?),
        None => None,
    };
    let out = convert(&inputs, metrics.as_deref(), opts.cal_len)?;
    fs::write(&opts.out, &out.bytes).map_err(|e| format!("write {}: {e}", opts.out))?;
    if opts.verify {
        let summary = summarize(&out.bytes)?;
        if summary.process_tracks.is_empty() {
            return Err("verify: no process track in output".to_string());
        }
        if summary.packets != out.packets {
            return Err(format!(
                "verify: packet count mismatch ({} decoded, {} written)",
                summary.packets, out.packets
            ));
        }
    }
    let mut line = format!(
        "wrote {}: {} packets, {} bytes, tenants [{}]",
        opts.out,
        out.packets,
        out.bytes.len(),
        out.tenants.join(", ")
    );
    if out.skipped_lines > 0 {
        line.push_str(&format!(", {} unknown lines skipped", out.skipped_lines));
    }
    if opts.verify {
        line.push_str(", verified");
    }
    Ok(line)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(line) => {
            println!("{line}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("calib-trace: {e}");
            ExitCode::from(2)
        }
    }
}
