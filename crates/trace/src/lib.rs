//! Perfetto TrackEvent export for calibration-scheduling traces.
//!
//! This crate turns the engine's observability stream (see
//! `calib_core::obs` and `OBSERVABILITY.md` at the workspace root) into
//! traces the [Perfetto](https://ui.perfetto.dev) UI can open:
//!
//! * [`proto`] — a dependency-free protobuf *wire-format* encoder and
//!   strict decoder (varints and length-delimited fields only, no codegen);
//! * [`perfetto`] — TrackEvent packet builders on top of it, plus
//!   [`perfetto::summarize`], the structural decoder the tests and
//!   `calib-trace --verify` use to check output without Perfetto itself;
//! * [`timeline`] — the mapping from engine [`Event`]s to tracks: machine
//!   lanes with calibration and job slices, a journal lane with fsync
//!   slices, and `queued`/`flow` counters;
//! * [`PerfettoProbe`] — a live [`calib_core::obs::Probe`] serializing a
//!   single in-process run;
//! * [`convert`] — the offline many-tenant merger behind the `calib-trace`
//!   bin.
//!
//! Everything here is wall-clock-free and deterministic: the same inputs
//! serialize to the same bytes (pinned by a golden-trace test).
//!
//! [`Event`]: calib_core::obs::Event
//! [`convert`]: convert::convert

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod convert;
pub mod perfetto;
pub mod probe;
pub mod proto;
pub mod timeline;

pub use convert::{convert, Converted};
pub use perfetto::{summarize, TraceBuilder, TraceSummary};
pub use probe::PerfettoProbe;
pub use timeline::{parse_line, TenantTimeline, TraceLine, NS_PER_UNIT};
