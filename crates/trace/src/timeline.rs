//! Mapping engine events onto Perfetto tracks.
//!
//! One [`TenantTimeline`] collects the [`Event`] stream of a single engine
//! session (live, via [`PerfettoProbe`](crate::PerfettoProbe), or offline
//! from a JSON-lines trace) and renders it as a tenant track group:
//!
//! * one lane per machine carrying `calibrate` slices (`start .. start + T`)
//!   and unit-length `job N` slices;
//! * a `journal` lane with `fsync` slices (wall-clock append cost, scaled)
//!   and `append` instants for unsynced writes;
//! * `queued` and `flow` counter tracks: waiting-job depth and cumulative
//!   weighted flow time, sampled at every arrival and dispatch;
//! * engine instants (`reserve`, `wake`, `time_skip`, `run_complete`) on
//!   the group track itself.
//!
//! Virtual engine time maps to trace nanoseconds at a fixed
//! [`NS_PER_UNIT`] scale, shifted by a caller-chosen offset so negative
//! calibration starts stay representable. All ordering is by
//! `(timestamp, kind, seq)` — no wall clock anywhere, so conversion is
//! deterministic and the golden-trace test can pin exact bytes.

use std::collections::HashMap;

use calib_core::json::Json;
use calib_core::obs::Event;
use calib_core::types::{JobId, MachineId, Time};

use crate::perfetto::TraceBuilder;

/// Nanoseconds of trace time per virtual engine time unit.
pub const NS_PER_UNIT: u64 = 1_000_000;

/// Floor for rendered fsync slice duration, so sub-microsecond appends stay
/// visible at millisecond zoom.
const MIN_FSYNC_NS: u64 = 1_000;

/// Track-uuid offsets within a tenant's uuid block (see
/// [`TenantTimeline::emit`]).
const JOURNAL_TRACK: u64 = 800;
const QUEUED_TRACK: u64 = 900;
const FLOW_TRACK: u64 = 901;

/// One session's event stream, ready to render as a Perfetto track group.
#[derive(Debug, Clone)]
pub struct TenantTimeline {
    name: String,
    cal_len: Time,
    /// `(seq, event)` in arrival order; seq comes from the trace line or a
    /// local counter and breaks ties among events at one virtual instant.
    recs: Vec<(u64, Event)>,
    next_seq: u64,
}

/// What a single decoded trace line contained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceLine {
    /// A session preamble: `(tenant name, machines, cal_len)`.
    Session(String, usize, Time),
    /// A recognised engine event, with its `seq` if the line carried one.
    Event(Option<u64>, Event),
    /// A line of a type this converter does not render (forward
    /// compatibility: skipped, not an error).
    Unknown(String),
}

/// Decodes one JSON-lines trace line.
///
/// Errors only on malformed JSON or a recognised type with missing fields;
/// unknown event types decode as [`TraceLine::Unknown`].
pub fn parse_line(line: &str) -> Result<TraceLine, String> {
    let json = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    let kind = json
        .get("type")
        .and_then(Json::as_str)
        .ok_or("line has no \"type\" field")?
        .to_string();
    let time = |field: &str| -> Result<Time, String> {
        json.get(field)
            .and_then(Json::as_i64)
            .ok_or_else(|| format!("{kind} line missing \"{field}\""))
    };
    let uint = |field: &str| -> Result<u64, String> {
        json.get(field)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{kind} line missing \"{field}\""))
    };
    let id = |field: &str| -> Result<u32, String> {
        let raw = uint(field)?;
        u32::try_from(raw).map_err(|_| format!("{kind} line: \"{field}\" overflows u32"))
    };
    let seq = json.get("seq").and_then(Json::as_u64);
    let event = match kind.as_str() {
        "session" => {
            let name = json
                .get("tenant")
                .and_then(Json::as_str)
                .ok_or("session line missing \"tenant\"")?
                .to_string();
            let machines = usize::try_from(uint("machines")?)
                .map_err(|_| "session line: \"machines\" overflows usize".to_string())?;
            return Ok(TraceLine::Session(name, machines, time("cal_len")?));
        }
        "job_arrived" => Event::JobArrived {
            time: time("time")?,
            job: JobId(id("job")?),
            weight: uint("weight")?,
        },
        "calibrate" => Event::Calibrate {
            time: time("time")?,
            machine: MachineId(id("machine")?),
            start: time("start")?,
        },
        "reserve" => Event::Reserve {
            time: time("time")?,
            machine: MachineId(id("machine")?),
            start: time("start")?,
        },
        "dispatch" => Event::Dispatch {
            time: time("time")?,
            job: JobId(id("job")?),
            machine: MachineId(id("machine")?),
            start: time("start")?,
        },
        "time_skip" => Event::TimeSkip {
            from: time("from")?,
            to: time("to")?,
        },
        "wake" => Event::Wake {
            time: time("time")?,
            // `reason` is `&'static str` on the event; map known reasons,
            // fold the rest into one bucket rather than leaking strings.
            reason: match json.get("reason").and_then(Json::as_str) {
                Some("scheduler") => "scheduler",
                Some("release") => "release",
                _ => "other",
            },
        },
        "run_complete" => Event::RunComplete {
            time: time("time")?,
            flow: json
                .get("flow")
                .and_then(Json::as_u128)
                .ok_or("run_complete line missing \"flow\"")?,
            calibrations: uint("calibrations")?,
        },
        "journal_sync" => Event::JournalSync {
            time: time("time")?,
            micros: uint("micros")?,
            synced: match json.get("synced") {
                Some(Json::Bool(b)) => *b,
                _ => return Err("journal_sync line missing \"synced\"".to_string()),
            },
        },
        _ => return Ok(TraceLine::Unknown(kind)),
    };
    Ok(TraceLine::Event(seq, event))
}

/// The packet kinds a timeline emits, in same-timestamp order: slice ends
/// first (closing the previous interval), then begins, then the rest.
#[derive(Debug, Clone)]
enum Op {
    SliceEnd {
        track: u64,
    },
    SliceBegin {
        track: u64,
        name: String,
        category: &'static str,
    },
    Instant {
        track: u64,
        name: String,
        category: &'static str,
    },
    Counter {
        track: u64,
        value: i64,
    },
}

impl Op {
    fn rank(&self) -> u8 {
        match self {
            Op::SliceEnd { .. } => 0,
            Op::SliceBegin { .. } => 1,
            Op::Instant { .. } => 2,
            Op::Counter { .. } => 3,
        }
    }
}

impl TenantTimeline {
    /// An empty timeline for tenant `name` whose calibrations last
    /// `cal_len` time units.
    pub fn new(name: &str, cal_len: Time) -> TenantTimeline {
        TenantTimeline {
            name: name.to_string(),
            cal_len: cal_len.max(1),
            recs: Vec::new(),
            next_seq: 0,
        }
    }

    /// The tenant name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records a live event; `seq` is assigned from a local counter.
    pub fn add_event(&mut self, event: &Event) {
        let seq = self.next_seq;
        self.add_event_with_seq(seq, event);
    }

    /// Records an event with an explicit trace-line `seq`.
    pub fn add_event_with_seq(&mut self, seq: u64, event: &Event) {
        self.recs.push((seq, *event));
        self.next_seq = self.next_seq.max(seq.saturating_add(1));
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.recs.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }

    /// The earliest virtual time any recorded event touches (including
    /// calibration starts, which may precede the decision time — or even be
    /// negative). `None` when empty.
    pub fn min_time(&self) -> Option<Time> {
        self.recs
            .iter()
            .flat_map(|(_, e)| {
                let (a, b) = match *e {
                    Event::JobArrived { time, .. }
                    | Event::Wake { time, .. }
                    | Event::RunComplete { time, .. }
                    | Event::JournalSync { time, .. } => (time, time),
                    Event::Calibrate { time, start, .. }
                    | Event::Reserve { time, start, .. }
                    | Event::Dispatch { time, start, .. } => (time, start),
                    Event::TimeSkip { from, to } => (from, to),
                };
                [a, b]
            })
            .min()
    }

    /// Highest machine index observed, as a lane count.
    pub fn machines(&self) -> usize {
        self.recs
            .iter()
            .filter_map(|(_, e)| match *e {
                Event::Calibrate { machine, .. }
                | Event::Reserve { machine, .. }
                | Event::Dispatch { machine, .. } => Some(machine.0),
                _ => None,
            })
            .max()
            .map_or(0, |m| usize::try_from(m).unwrap_or(0).saturating_add(1))
    }

    fn ts(&self, time: Time, offset: Time) -> u64 {
        let shifted = time.saturating_sub(offset);
        u64::try_from(shifted)
            .unwrap_or(0)
            .saturating_mul(NS_PER_UNIT)
    }

    /// Renders this timeline into `builder` as a track group under
    /// `process_uuid`.
    ///
    /// `base` is the tenant's uuid block: the group track takes `base`,
    /// machine lane `m` takes `base + 1 + m`, the journal lane
    /// `base + 800`, and the `queued`/`flow` counters `base + 900/901`.
    /// Blocks must be ≥ 1000 apart. `offset` is subtracted from every
    /// virtual time before scaling (pass the global minimum across tenants,
    /// clamped to ≤ 0 origin, so all timestamps are non-negative).
    pub fn emit(&self, builder: &mut TraceBuilder, process_uuid: u64, base: u64, offset: Time) {
        builder.named_track(base, process_uuid, &self.name);
        let machines = self.machines();
        for m in 0..machines {
            let lane = base + 1 + u64::try_from(m).unwrap_or(0);
            builder.named_track(lane, base, &format!("machine {m}"));
        }
        builder.named_track(base + JOURNAL_TRACK, base, "journal");
        builder.counter_track(base + QUEUED_TRACK, base, "queued");
        builder.counter_track(base + FLOW_TRACK, base, "flow");

        let mut sorted: Vec<&(u64, Event)> = self.recs.iter().collect();
        sorted.sort_by_key(|(seq, e)| (event_time(e), *seq));

        let mut ops: Vec<(u64, u64, Op)> = Vec::new();
        let mut queued: i64 = 0;
        let mut flow: i128 = 0;
        let mut jobs: HashMap<u32, (Time, i128)> = HashMap::new();
        for (seq, event) in sorted {
            let seq = *seq;
            match *event {
                Event::JobArrived { time, job, weight } => {
                    queued = queued.saturating_add(1);
                    jobs.insert(job.0, (time, i128::from(weight)));
                    ops.push((
                        self.ts(time, offset),
                        seq,
                        Op::Counter {
                            track: base + QUEUED_TRACK,
                            value: queued,
                        },
                    ));
                }
                Event::Dispatch {
                    time,
                    job,
                    machine,
                    start,
                } => {
                    queued = queued.saturating_sub(1).max(0);
                    let t = self.ts(time, offset);
                    ops.push((
                        t,
                        seq,
                        Op::Counter {
                            track: base + QUEUED_TRACK,
                            value: queued,
                        },
                    ));
                    if let Some((release, weight)) = jobs.get(&job.0) {
                        let completion = start.saturating_add(1);
                        let in_system = i128::from(completion.saturating_sub(*release));
                        flow = flow.saturating_add(weight.saturating_mul(in_system.max(0)));
                    }
                    let flow_sample = i64::try_from(flow).unwrap_or(i64::MAX);
                    ops.push((
                        t,
                        seq,
                        Op::Counter {
                            track: base + FLOW_TRACK,
                            value: flow_sample,
                        },
                    ));
                    let lane = base + 1 + u64::from(machine.0);
                    ops.push((
                        self.ts(start, offset),
                        seq,
                        Op::SliceBegin {
                            track: lane,
                            name: format!("job {}", job.0),
                            category: "job",
                        },
                    ));
                    ops.push((
                        self.ts(start.saturating_add(1), offset),
                        seq,
                        Op::SliceEnd { track: lane },
                    ));
                }
                Event::Calibrate { machine, start, .. } => {
                    let lane = base + 1 + u64::from(machine.0);
                    ops.push((
                        self.ts(start, offset),
                        seq,
                        Op::SliceBegin {
                            track: lane,
                            name: "calibrate".to_string(),
                            category: "calibration",
                        },
                    ));
                    ops.push((
                        self.ts(start.saturating_add(self.cal_len), offset),
                        seq,
                        Op::SliceEnd { track: lane },
                    ));
                }
                Event::Reserve {
                    time,
                    machine,
                    start,
                } => {
                    let lane = base + 1 + u64::from(machine.0);
                    ops.push((
                        self.ts(time, offset),
                        seq,
                        Op::Instant {
                            track: lane,
                            name: format!("reserve @{start}"),
                            category: "calibration",
                        },
                    ));
                }
                Event::TimeSkip { from, to } => {
                    ops.push((
                        self.ts(from, offset),
                        seq,
                        Op::Instant {
                            track: base,
                            name: format!("skip to {to}"),
                            category: "engine",
                        },
                    ));
                }
                Event::Wake { time, reason } => {
                    ops.push((
                        self.ts(time, offset),
                        seq,
                        Op::Instant {
                            track: base,
                            name: format!("wake ({reason})"),
                            category: "engine",
                        },
                    ));
                }
                Event::RunComplete { time, .. } => {
                    ops.push((
                        self.ts(time, offset),
                        seq,
                        Op::Instant {
                            track: base,
                            name: "run_complete".to_string(),
                            category: "engine",
                        },
                    ));
                }
                Event::JournalSync {
                    time,
                    micros,
                    synced,
                } => {
                    let t = self.ts(time, offset);
                    if synced {
                        let duration = micros.saturating_mul(1_000).max(MIN_FSYNC_NS);
                        ops.push((
                            t,
                            seq,
                            Op::SliceBegin {
                                track: base + JOURNAL_TRACK,
                                name: "fsync".to_string(),
                                category: "journal",
                            },
                        ));
                        ops.push((
                            t.saturating_add(duration),
                            seq,
                            Op::SliceEnd {
                                track: base + JOURNAL_TRACK,
                            },
                        ));
                    } else {
                        ops.push((
                            t,
                            seq,
                            Op::Instant {
                                track: base + JOURNAL_TRACK,
                                name: "append".to_string(),
                                category: "journal",
                            },
                        ));
                    }
                }
            }
        }

        // Ends close before begins open at a shared timestamp; `seq` then
        // insertion order keep the result deterministic.
        let mut indexed: Vec<(usize, &(u64, u64, Op))> = ops.iter().enumerate().collect();
        indexed.sort_by_key(|(idx, (ts, seq, op))| (*ts, op.rank(), *seq, *idx));
        for (_, (ts, _, op)) in indexed {
            match op {
                Op::SliceEnd { track } => builder.slice_end(*track, *ts),
                Op::SliceBegin {
                    track,
                    name,
                    category,
                } => {
                    builder.slice_begin(*track, *ts, name, category);
                }
                Op::Instant {
                    track,
                    name,
                    category,
                } => {
                    builder.instant(*track, *ts, name, category);
                }
                Op::Counter { track, value } => builder.counter(*track, *ts, *value),
            }
        }
    }
}

fn event_time(event: &Event) -> Time {
    match *event {
        Event::JobArrived { time, .. }
        | Event::Calibrate { time, .. }
        | Event::Reserve { time, .. }
        | Event::Dispatch { time, .. }
        | Event::Wake { time, .. }
        | Event::RunComplete { time, .. }
        | Event::JournalSync { time, .. } => time,
        Event::TimeSkip { from, .. } => from,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfetto::summarize;

    fn sample_timeline() -> TenantTimeline {
        let mut t = TenantTimeline::new("tenant-a", 4);
        t.add_event(&Event::JobArrived {
            time: 0,
            job: JobId(1),
            weight: 2,
        });
        t.add_event(&Event::Calibrate {
            time: 0,
            machine: MachineId(0),
            start: 1,
        });
        t.add_event(&Event::Dispatch {
            time: 1,
            job: JobId(1),
            machine: MachineId(0),
            start: 1,
        });
        t.add_event(&Event::JournalSync {
            time: 1,
            micros: 250,
            synced: true,
        });
        t.add_event(&Event::RunComplete {
            time: 5,
            flow: 4,
            calibrations: 1,
        });
        t
    }

    #[test]
    fn emits_tracks_slices_and_counters() {
        let mut b = TraceBuilder::new();
        b.process_track(1, 1, "calib-serve");
        let t = sample_timeline();
        t.emit(&mut b, 1, 1000, 0);
        let s = summarize(&b.into_bytes()).unwrap();

        assert_eq!(s.named_tracks[0], (1000, 1, "tenant-a".to_string()));
        let machine0 = s.track_named("machine 0").unwrap();
        assert_eq!(machine0, 1001);
        let slices = s.slices_on(machine0);
        assert_eq!(slices, vec!["calibrate", "job 1"]);
        let journal = s.track_named("journal").unwrap();
        assert_eq!(s.slices_on(journal), vec!["fsync"]);
        // Counters: queued 1 (arrival), 0 (dispatch); flow 2 * (2 - 0) = 4.
        let queued = s.track_named("queued").unwrap();
        let flow = s.track_named("flow").unwrap();
        let queued_samples: Vec<i64> = s
            .counter_samples
            .iter()
            .filter(|(t, _)| *t == queued)
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(queued_samples, vec![1, 0]);
        let flow_samples: Vec<i64> = s
            .counter_samples
            .iter()
            .filter(|(t, _)| *t == flow)
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(flow_samples, vec![4]);
        // Every begun slice is closed.
        assert_eq!(s.slice_begins.len(), s.slice_ends.len());
    }

    #[test]
    fn negative_times_shift_to_zero_origin() {
        let mut t = TenantTimeline::new("t", 2);
        t.add_event(&Event::Calibrate {
            time: 0,
            machine: MachineId(0),
            start: -3,
        });
        assert_eq!(t.min_time(), Some(-3));
        let mut b = TraceBuilder::new();
        b.process_track(1, 1, "p");
        t.emit(&mut b, 1, 1000, -3);
        // Decodes cleanly; the slice begins at timestamp 0.
        let s = summarize(&b.into_bytes()).unwrap();
        assert_eq!(s.slices_on(1001), vec!["calibrate"]);
    }

    #[test]
    fn emit_is_deterministic() {
        let render = || {
            let mut b = TraceBuilder::new();
            b.process_track(1, 1, "p");
            sample_timeline().emit(&mut b, 1, 1000, 0);
            b.into_bytes()
        };
        assert_eq!(render(), render());
    }

    #[test]
    fn parse_line_round_trips_events() {
        let events = [
            Event::JobArrived {
                time: 3,
                job: JobId(7),
                weight: 5,
            },
            Event::Calibrate {
                time: 1,
                machine: MachineId(2),
                start: -1,
            },
            Event::Reserve {
                time: 1,
                machine: MachineId(0),
                start: 9,
            },
            Event::Dispatch {
                time: 4,
                job: JobId(7),
                machine: MachineId(2),
                start: 4,
            },
            Event::TimeSkip { from: 5, to: 9 },
            Event::Wake {
                time: 9,
                reason: "release",
            },
            Event::RunComplete {
                time: 10,
                flow: 35,
                calibrations: 2,
            },
            Event::JournalSync {
                time: 4,
                micros: 120,
                synced: false,
            },
        ];
        for e in events {
            let line = e.to_json().to_string_compact();
            match parse_line(&line).unwrap() {
                TraceLine::Event(_, back) => assert_eq!(back, e, "{line}"),
                other => panic!("expected event for {line}, got {other:?}"),
            }
        }
    }

    #[test]
    fn parse_line_handles_session_seq_and_unknowns() {
        let meta = r#"{"type":"session","tenant":"acme","machines":3,"cal_len":16}"#;
        assert_eq!(
            parse_line(meta).unwrap(),
            TraceLine::Session("acme".to_string(), 3, 16)
        );
        let with_seq = r#"{"type":"time_skip","from":0,"to":4,"seq":11}"#;
        match parse_line(with_seq).unwrap() {
            TraceLine::Event(seq, _) => assert_eq!(seq, Some(11)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            parse_line(r#"{"type":"comet_sighting"}"#).unwrap(),
            TraceLine::Unknown("comet_sighting".to_string())
        );
        assert!(parse_line("not json").is_err());
        assert!(parse_line(r#"{"type":"dispatch","time":1}"#).is_err());
    }
}
