//! Seeded random-instance generation for the differential oracle.
//!
//! One `u64` seed fully determines a [`TestCase`]: the arrival family (drawn
//! from `calib-workloads`' generators), the weight model, `n`, `T`, `P`, and
//! the calibration cost `G`. The sampled ranges are deliberately small —
//! the oracle's brute-force references are exponential, and decades of
//! random testing folklore say almost every scheduling bug already shows up
//! below a dozen jobs.

use calib_core::{Cost, Instance, Time};
use calib_workloads::{arrivals, make_instance, WeightModel};
use proptest::Strategy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bounds for the generator's sampled parameters.
#[derive(Debug, Clone, Copy)]
pub struct GenParams {
    /// Maximum number of jobs (inclusive).
    pub max_n: usize,
    /// Maximum calibration length `T` (inclusive).
    pub max_t: Time,
    /// Maximum calibration cost `G` (inclusive).
    pub max_g: Cost,
    /// Maximum machine count `P` (inclusive).
    pub max_p: usize,
    /// Maximum job weight (inclusive); 1 forces unweighted instances.
    pub max_weight: u64,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            max_n: 12,
            max_t: 8,
            max_g: 60,
            max_p: 3,
            max_weight: 9,
        }
    }
}

/// One generated instance plus the online objective's calibration cost.
#[derive(Debug, Clone, PartialEq)]
pub struct TestCase {
    /// Provenance label (`seed<k>/<family>` for generated cases, the file
    /// stem for replayed regressions).
    pub name: String,
    /// The instance under test.
    pub instance: Instance,
    /// Calibration cost `G` for the online objective.
    pub cal_cost: Cost,
}

/// Deterministically generates the test case for `seed` within `params`.
pub fn gen_case(seed: u64, params: &GenParams) -> TestCase {
    gen_case_inner(seed, params, None)
}

/// [`gen_case`] with the job count forced to exactly `n` — the serve-layer
/// load generator uses this to replay the oracle's workload families at
/// production sizes. The RNG draw sequence matches [`gen_case`], so a
/// `(seed, params)` pair lands in the same family/weight corner of the
/// space regardless of which entry point drew it.
pub fn gen_case_sized(seed: u64, params: &GenParams, n: usize) -> TestCase {
    gen_case_inner(seed, params, Some(n.max(1)))
}

fn gen_case_inner(seed: u64, params: &GenParams, forced_n: Option<usize>) -> TestCase {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xd1ff_7e57);
    let drawn_n = rng.gen_range(1..=params.max_n.max(1));
    let n = forced_n.unwrap_or(drawn_n);
    let t = rng.gen_range(1..=params.max_t.max(1));
    let p = rng.gen_range(1..=params.max_p.max(1));
    let g: Cost = rng.gen_range(0..=params.max_g);

    // Mixing colliding and distinct releases exercises both the raw online
    // path and the footnote-1 normalization the offline solvers need.
    let distinct = rng.gen_bool(0.5);
    let (family, releases): (&str, Vec<Time>) = match rng.gen_range(0u32..5) {
        0 => (
            "poisson",
            arrivals::poisson(
                rng.gen_range(0..u64::MAX),
                n,
                rng.gen_range(0.2..2.0),
                distinct,
            ),
        ),
        1 => {
            let burst = rng.gen_range(1..=n);
            let bursts = n.div_ceil(burst);
            let gap = rng.gen_range(1..=(2 * t + 4));
            let mut r = arrivals::bursty(bursts, burst, gap, distinct);
            r.truncate(n);
            ("bursty", r)
        }
        2 => {
            let horizon = rng.gen_range(n as Time..=(n as Time) * 4);
            (
                "uniform",
                arrivals::uniform_spread(rng.gen_range(0..u64::MAX), n, horizon, distinct),
            )
        }
        3 => ("train", arrivals::job_train(n as Time)),
        _ => {
            let mut r = arrivals::staircase(n, rng.gen_range(1..=(t + 3)), distinct);
            r.truncate(n);
            ("staircase", r)
        }
    };

    let weights = if params.max_weight <= 1 || rng.gen_bool(0.4) {
        WeightModel::Unit
    } else {
        match rng.gen_range(0u32..3) {
            0 => WeightModel::Uniform {
                max: params.max_weight,
            },
            1 => WeightModel::Bimodal {
                heavy: params.max_weight,
                p_heavy: 0.3,
            },
            _ => WeightModel::Pareto {
                alpha: 1.2,
                cap: params.max_weight,
            },
        }
    };

    let instance = make_instance(releases, weights, rng.gen_range(0..u64::MAX), p, t);
    TestCase {
        name: format!("seed{seed}/{family}"),
        instance,
        cal_cost: g,
    }
}

/// A proptest-style strategy over [`TestCase`]s — plugs the generator into
/// the in-repo `proptest` shim so property tests elsewhere in the workspace
/// can draw oracle-ready cases.
pub fn cases(params: GenParams) -> impl Strategy<Value = TestCase> {
    (0u64..u64::MAX).prop_map(move |seed| gen_case(seed, &params))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_seed() {
        let p = GenParams::default();
        for seed in 0..50 {
            assert_eq!(gen_case(seed, &p), gen_case(seed, &p));
        }
        assert_ne!(gen_case(1, &p), gen_case(2, &p));
    }

    #[test]
    fn respects_parameter_bounds() {
        let p = GenParams {
            max_n: 5,
            max_t: 3,
            max_g: 7,
            max_p: 2,
            max_weight: 1,
        };
        for seed in 0..200 {
            let c = gen_case(seed, &p);
            assert!(
                c.instance.n() >= 1 && c.instance.n() <= 5,
                "n={}",
                c.instance.n()
            );
            assert!(c.instance.cal_len() <= 3);
            assert!(c.instance.machines() <= 2);
            assert!(c.cal_cost <= 7);
            assert!(
                c.instance.is_unweighted(),
                "max_weight=1 must force unit weights"
            );
        }
    }

    #[test]
    fn sized_generation_forces_n_and_stays_deterministic() {
        let p = GenParams::default();
        for seed in 0..20 {
            let c = gen_case_sized(seed, &p, 100);
            assert_eq!(c.instance.n(), 100, "{}", c.name);
            assert_eq!(c, gen_case_sized(seed, &p, 100));
            // Same seed, same family corner as the unsized entry point.
            assert_eq!(c.name, gen_case(seed, &p).name);
        }
    }

    #[test]
    fn covers_every_family_and_multi_machine() {
        let p = GenParams::default();
        let mut families = std::collections::BTreeSet::new();
        let mut saw_multi = false;
        let mut saw_weighted = false;
        for seed in 0..300 {
            let c = gen_case(seed, &p);
            families.insert(c.name.split('/').nth(1).unwrap().to_string());
            saw_multi |= c.instance.machines() > 1;
            saw_weighted |= !c.instance.is_unweighted();
        }
        assert_eq!(families.len(), 5, "all five families hit: {families:?}");
        assert!(saw_multi && saw_weighted);
    }

    #[test]
    fn strategy_draws_cases() {
        use proptest::TestRng;
        let s = cases(GenParams::default());
        let mut rng = TestRng::for_case("difftest", "strategy", 0);
        let c = s.generate(&mut rng);
        assert!(c.instance.n() >= 1);
    }
}
