//! Greedy instance minimization for oracle failures.
//!
//! When the oracle flags a case, the raw instance is rarely the story — the
//! bug usually survives with most of the jobs deleted and every parameter
//! halved. The shrinker runs a fixpoint loop of structural simplifications,
//! keeping a candidate only if the *same* [`Check`] still fails on it, so
//! the minimized instance in the replay file demonstrates the original
//! defect rather than some other one uncovered along the way.

use calib_core::{Instance, Job};

use crate::gen::TestCase;
use crate::oracle::{Check, Oracle};

/// Outcome of a shrink run.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The minimized failing case.
    pub case: TestCase,
    /// Detail string of the surviving failure on the minimized case.
    pub detail: String,
    /// Number of accepted simplification steps.
    pub steps: usize,
}

/// Minimizes `case` while `check` keeps failing under `oracle`.
///
/// Transformations tried each round, in order of how much they simplify:
/// dropping a job, removing a machine, shrinking `T`, shrinking `G`,
/// flattening a weight to 1, pulling a release toward 0, and shifting the
/// whole release profile so it starts at 0. The loop re-runs until no
/// transformation is accepted (or `max_rounds` is hit, a safety valve —
/// each round makes strict progress, so the bound is rarely reached).
pub fn shrink(oracle: &Oracle, case: &TestCase, check: Check, max_rounds: usize) -> Shrunk {
    let mut current = case.clone();
    let mut detail = failing_detail(oracle, &current, check)
        .expect("shrink() requires a case on which `check` fails");
    let mut steps = 0;

    for _ in 0..max_rounds {
        let mut improved = false;
        for cand in candidates(&current) {
            if let Some(d) = failing_detail(oracle, &cand, check) {
                current = cand;
                detail = d;
                steps += 1;
                improved = true;
                break; // restart candidate generation from the smaller case
            }
        }
        if !improved {
            break;
        }
    }

    Shrunk {
        case: current,
        detail,
        steps,
    }
}

/// Runs the oracle; returns the detail of the first failure matching
/// `check`, if any.
fn failing_detail(oracle: &Oracle, case: &TestCase, check: Check) -> Option<String> {
    oracle
        .check(case)
        .into_iter()
        .find(|f| f.check == check)
        .map(|f| f.detail)
}

/// All one-step simplifications of `case`, most aggressive first.
fn candidates(case: &TestCase) -> Vec<TestCase> {
    let inst = &case.instance;
    let jobs = inst.jobs();
    let mut out = Vec::new();

    let push = |out: &mut Vec<TestCase>,
                jobs: Vec<Job>,
                machines: usize,
                cal_len: calib_core::Time,
                g: calib_core::Cost| {
        if let Ok(instance) = Instance::new(jobs, machines, cal_len) {
            out.push(TestCase {
                name: format!("{}/shrunk", case.name),
                instance,
                cal_cost: g,
            });
        }
    };

    // Drop each job (largest structural win).
    for i in 0..jobs.len() {
        if jobs.len() > 1 {
            let mut j = jobs.to_vec();
            j.remove(i);
            push(&mut out, j, inst.machines(), inst.cal_len(), case.cal_cost);
        }
    }
    // Fewer machines.
    if inst.machines() > 1 {
        push(
            &mut out,
            jobs.to_vec(),
            inst.machines() - 1,
            inst.cal_len(),
            case.cal_cost,
        );
    }
    // Shorter calibrations: halve, then decrement.
    for t in [inst.cal_len() / 2, inst.cal_len() - 1] {
        if t >= 1 && t < inst.cal_len() {
            push(&mut out, jobs.to_vec(), inst.machines(), t, case.cal_cost);
        }
    }
    // Cheaper calibrations: zero, halve, decrement.
    for g in [0, case.cal_cost / 2, case.cal_cost.saturating_sub(1)] {
        if g < case.cal_cost {
            push(&mut out, jobs.to_vec(), inst.machines(), inst.cal_len(), g);
        }
    }
    // Flatten one weight to 1, or halve it.
    for (i, job) in jobs.iter().enumerate() {
        if job.weight > 1 {
            for w in [1, job.weight / 2] {
                if w < job.weight {
                    let mut j = jobs.to_vec();
                    j[i].weight = w;
                    push(&mut out, j, inst.machines(), inst.cal_len(), case.cal_cost);
                }
            }
        }
    }
    // Pull one release toward 0: halve, then decrement.
    for (i, job) in jobs.iter().enumerate() {
        if job.release > 0 {
            for r in [job.release / 2, job.release - 1] {
                if r < job.release {
                    let mut j = jobs.to_vec();
                    j[i].release = r;
                    push(&mut out, j, inst.machines(), inst.cal_len(), case.cal_cost);
                }
            }
        }
    }
    // Shift the whole profile so the earliest release is 0.
    if let Some(min_r) = inst.min_release() {
        if min_r > 0 {
            let j = jobs
                .iter()
                .map(|job| Job {
                    release: job.release - min_r,
                    ..*job
                })
                .collect();
            push(&mut out, j, inst.machines(), inst.cal_len(), case.cal_cost);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gen_case, GenParams};
    use crate::oracle::Fault;

    /// The headline acceptance test: a deliberately broken assigner (every
    /// materialization lands its last job one slot late) must be caught by
    /// the oracle and shrunk to a tiny witness.
    #[test]
    fn off_by_one_fault_is_caught_and_shrunk_small() {
        let oracle = Oracle::with_fault(Fault::AssignerOffByOne);
        let params = GenParams::default();
        let mut caught = 0;
        for seed in 0..100u64 {
            let case = gen_case(seed, &params);
            let failures = oracle.check(&case);
            let Some(f) = failures.iter().find(|f| {
                matches!(
                    f.check,
                    Check::AssignerFeasible
                        | Check::AssignerNotWorseThanEngine
                        | Check::AssignerOptimal
                )
            }) else {
                continue;
            };
            caught += 1;
            let shrunk = shrink(&oracle, &case, f.check, 200);
            assert!(
                shrunk.case.instance.n() <= 5,
                "seed {seed}: {} shrank to n={} ({}), want <= 5",
                f.check,
                shrunk.case.instance.n(),
                shrunk.detail
            );
            // The shrunk case must still fail the same check.
            assert!(oracle
                .check(&shrunk.case)
                .iter()
                .any(|g| g.check == f.check));
            if caught >= 10 {
                break;
            }
        }
        assert!(
            caught >= 5,
            "fault injected but only {caught} seeds caught it"
        );
    }

    #[test]
    fn shrink_preserves_failure_and_makes_progress() {
        let oracle = Oracle::with_fault(Fault::AssignerOffByOne);
        for seed in 0..50u64 {
            let case = gen_case(seed, &GenParams::default());
            let failures = oracle.check(&case);
            if let Some(f) = failures.first() {
                let shrunk = shrink(&oracle, &case, f.check, 200);
                assert!(shrunk.case.instance.n() <= case.instance.n());
                assert!(!shrunk.detail.is_empty());
                return;
            }
        }
        panic!("no seed in 0..50 triggered the injected fault");
    }
}
