//! Deterministic regression replay files.
//!
//! When the oracle finds (and shrinks) a failure, the minimized instance is
//! written as a JSON file under `difftest/regressions/`. Checked in, these
//! files are permanent unit tests: the CLI's `--replay` mode and the crate's
//! own test suite re-run the oracle on every file and expect a clean pass,
//! so a fixed bug stays fixed.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use calib_core::{Cost, FromJson, Instance, Json, ToJson};

use crate::gen::TestCase;
use crate::oracle::Check;
use crate::shrink::Shrunk;

/// The default regression directory, relative to the workspace root.
pub const REGRESSION_DIR: &str = "difftest/regressions";

/// One regression record: the minimized failing case plus enough context to
/// understand the failure it once triggered.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The check that failed when this was recorded.
    pub check: Check,
    /// Failure detail as recorded (informational; not re-asserted).
    pub detail: String,
    /// Generator seed that produced the original (pre-shrink) case.
    pub seed: u64,
    /// Calibration cost `G` for the online objective.
    pub cal_cost: Cost,
    /// The minimized instance.
    pub instance: Instance,
}

impl Regression {
    /// Builds the record for a shrunk failure.
    pub fn from_shrunk(check: Check, seed: u64, shrunk: &Shrunk) -> Regression {
        Regression {
            check,
            detail: shrunk.detail.clone(),
            seed,
            cal_cost: shrunk.case.cal_cost,
            instance: shrunk.case.instance.clone(),
        }
    }

    /// The test case this record replays.
    pub fn to_case(&self, name: &str) -> TestCase {
        TestCase {
            name: name.to_string(),
            instance: self.instance.clone(),
            cal_cost: self.cal_cost,
        }
    }

    /// Serializes to the on-disk JSON form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("check", Json::Str(self.check.code().to_string())),
            ("detail", Json::Str(self.detail.clone())),
            ("seed", Json::UInt(self.seed as u128)),
            ("cal_cost", Json::UInt(self.cal_cost)),
            ("instance", self.instance.to_json()),
        ])
    }

    /// Parses the on-disk JSON form.
    pub fn from_json(v: &Json) -> Result<Regression, String> {
        let code = v
            .field("check")
            .map_err(|e| e.to_string())?
            .as_str()
            .ok_or("`check` must be a string")?;
        let check = Check::from_code(code).ok_or_else(|| format!("unknown check `{code}`"))?;
        let detail = v
            .field("detail")
            .map_err(|e| e.to_string())?
            .as_str()
            .ok_or("`detail` must be a string")?
            .to_string();
        let seed = v
            .field("seed")
            .map_err(|e| e.to_string())?
            .as_u64()
            .ok_or("`seed` must be a u64")?;
        let cal_cost = v
            .field("cal_cost")
            .map_err(|e| e.to_string())?
            .as_u128()
            .ok_or("`cal_cost` must be an unsigned integer")?;
        let instance = Instance::from_json(v.field("instance").map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        Ok(Regression {
            check,
            detail,
            seed,
            cal_cost,
            instance,
        })
    }

    /// The deterministic file stem for this record
    /// (`<check>-seed<seed>.json`).
    pub fn file_name(&self) -> String {
        format!("{}-seed{}.json", self.check.code(), self.seed)
    }

    /// Writes the record under `dir`, creating the directory if needed.
    /// Returns the written path.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        fs::write(&path, self.to_json().to_string_pretty() + "\n")?;
        Ok(path)
    }
}

/// Loads every `*.json` regression under `dir`, sorted by file name for
/// deterministic replay order. A missing directory is an empty suite.
pub fn load_dir(dir: &Path) -> Result<Vec<(String, Regression)>, String> {
    let mut entries: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("reading {}: {e}", dir.display())),
    };
    entries.sort();
    let mut out = Vec::new();
    for path in entries {
        let text =
            fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let json = Json::parse(&text).map_err(|e| format!("parsing {}: {e}", path.display()))?;
        let reg = Regression::from_json(&json)
            .map_err(|e| format!("decoding {}: {e}", path.display()))?;
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("regression")
            .to_string();
        out.push((stem, reg));
    }
    Ok(out)
}

/// The checked-in regression directory, resolved from this crate's
/// manifest so tests work from any working directory.
pub fn default_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(REGRESSION_DIR)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gen_case, GenParams};
    use crate::oracle::Oracle;

    #[test]
    fn regression_json_round_trips() {
        let case = gen_case(7, &GenParams::default());
        let reg = Regression {
            check: Check::AssignerNotWorseThanEngine,
            detail: "greedy flow 9 > engine flow 8".into(),
            seed: 7,
            cal_cost: case.cal_cost,
            instance: case.instance,
        };
        let back = Regression::from_json(&Json::parse(&reg.to_json().to_string_pretty()).unwrap())
            .unwrap();
        assert_eq!(back, reg);
        assert_eq!(reg.file_name(), "assigner-not-worse-than-engine-seed7.json");
    }

    #[test]
    fn unknown_check_code_is_rejected() {
        let mut json = gen_case(1, &GenParams::default()).instance.to_json();
        json = Json::obj([
            ("check", Json::Str("no-such-check".into())),
            ("detail", Json::Str(String::new())),
            ("seed", Json::UInt(0)),
            ("cal_cost", Json::UInt(0)),
            ("instance", json),
        ]);
        assert!(Regression::from_json(&json).is_err());
    }

    /// Every checked-in regression must replay clean: the bugs they witness
    /// are fixed and must stay fixed.
    #[test]
    fn checked_in_regressions_replay_clean() {
        let regs = load_dir(&default_dir()).expect("regression dir must parse");
        assert!(
            !regs.is_empty(),
            "expected at least one checked-in regression under {}",
            default_dir().display()
        );
        let oracle = Oracle::default();
        for (name, reg) in regs {
            let failures = oracle.check(&reg.to_case(&name));
            assert!(
                failures.is_empty(),
                "regression {name} ({}) failed again: {failures:?}",
                reg.check
            );
        }
    }
}
