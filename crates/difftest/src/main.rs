//! CLI driver for the differential harness.
//!
//! ```text
//! cargo run --release -p calib-difftest -- --iters 500 --seed 2017
//! cargo run --release -p calib-difftest -- --replay
//! cargo run --release -p calib-difftest -- --fault off-by-one --iters 50
//! ```
//!
//! Exit status is non-zero when any violation is found (or any regression
//! fails to replay), so the binary slots directly into CI.

use std::path::PathBuf;
use std::process::ExitCode;

use calib_difftest::oracle::Fault;
use calib_difftest::{load_dir, replay, GenParams, Oracle, Regression, RunSummary};

struct Options {
    seed: u64,
    iters: u64,
    max_n: usize,
    replay: bool,
    replay_dir: Option<PathBuf>,
    fault: Fault,
    write_regressions: bool,
    quiet: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            seed: 2017,
            iters: 200,
            max_n: GenParams::default().max_n,
            replay: false,
            replay_dir: None,
            fault: Fault::None,
            write_regressions: false,
            quiet: false,
        }
    }
}

const USAGE: &str = "\
calib-difftest: differential correctness harness

USAGE:
    calib-difftest [OPTIONS]

OPTIONS:
    --seed <u64>        base seed for instance generation [default: 2017]
    --iters <u64>       number of generated cases to check [default: 200]
    --max-n <usize>     maximum jobs per generated instance [default: 12]
    --replay            replay checked-in regressions instead of generating
    --replay-dir <dir>  regression directory [default: difftest/regressions]
    --fault <name>      inject a fault (none | off-by-one) [default: none]
    --write-regressions write shrunk failures under the regression directory
    --quiet             suppress per-case progress output
    --help              print this help
";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--seed" => opts.seed = parse_num(&value("--seed")?)?,
            "--iters" => opts.iters = parse_num(&value("--iters")?)?,
            "--max-n" => opts.max_n = parse_num::<usize>(&value("--max-n")?)?.max(1),
            "--replay" => opts.replay = true,
            "--replay-dir" => opts.replay_dir = Some(PathBuf::from(value("--replay-dir")?)),
            "--fault" => {
                let v = value("--fault")?;
                opts.fault = Fault::from_cli(&v)
                    .ok_or_else(|| format!("unknown fault `{v}` (none | off-by-one)"))?;
            }
            "--write-regressions" => opts.write_regressions = true,
            "--quiet" | "-q" => opts.quiet = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("`{s}` is not a valid number"))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let oracle = Oracle::with_fault(opts.fault);
    let dir = opts.replay_dir.clone().unwrap_or_else(replay::default_dir);

    if opts.replay {
        return run_replay(&oracle, &dir);
    }
    run_generate(&oracle, &opts, &dir)
}

/// Replays every checked-in regression; any failure is fatal.
fn run_replay(oracle: &Oracle, dir: &std::path::Path) -> ExitCode {
    let regs = match load_dir(dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "replaying {} regression(s) from {}",
        regs.len(),
        dir.display()
    );
    let mut bad = 0usize;
    for (name, reg) in &regs {
        let failures = oracle.check(&reg.to_case(name));
        if failures.is_empty() {
            println!("  PASS {name} (was: {})", reg.check);
        } else {
            bad += 1;
            println!("  FAIL {name}");
            for f in failures {
                println!("       {f}");
            }
        }
    }
    if bad > 0 {
        eprintln!("{bad} regression(s) reproduce — a fixed bug is back");
        ExitCode::FAILURE
    } else {
        println!("all regressions stay fixed");
        ExitCode::SUCCESS
    }
}

/// Generates `--iters` cases, checks them all, and shrinks any failures.
fn run_generate(oracle: &Oracle, opts: &Options, dir: &std::path::Path) -> ExitCode {
    let params = GenParams {
        max_n: opts.max_n,
        ..GenParams::default()
    };
    println!(
        "difftest: {} cases from seed {} (max_n={}{})",
        opts.iters,
        opts.seed,
        params.max_n,
        match opts.fault {
            Fault::None => String::new(),
            f => format!(", injected fault {f:?}"),
        }
    );

    let quiet = opts.quiet;
    let mut checked = 0u64;
    let summary: RunSummary =
        calib_difftest::run_iters(oracle, &params, opts.seed, opts.iters, |seed, failures| {
            checked += 1;
            if !failures.is_empty() {
                println!("  seed {seed}: {} violation(s)", failures.len());
                for f in failures {
                    println!("    {f}");
                }
            } else if !quiet && checked.is_multiple_of(100) {
                println!("  ... {checked} cases clean");
            }
        });

    if summary.failures.is_empty() {
        println!("OK: {} cases, zero violations", summary.cases);
        return ExitCode::SUCCESS;
    }

    println!(
        "{} failing case(s); shrunk witnesses:",
        summary.failures.len()
    );
    for (seed, shrunk, check) in &summary.failures {
        println!(
            "  seed {seed} [{check}] -> n={}, T={}, P={}, G={}: {}",
            shrunk.case.instance.n(),
            shrunk.case.instance.cal_len(),
            shrunk.case.instance.machines(),
            shrunk.case.cal_cost,
            shrunk.detail
        );
        if opts.write_regressions {
            let reg = Regression::from_shrunk(*check, *seed, shrunk);
            match reg.write_to(dir) {
                Ok(path) => println!("    wrote {}", path.display()),
                Err(e) => eprintln!("    error writing regression: {e}"),
            }
        }
    }
    ExitCode::FAILURE
}
