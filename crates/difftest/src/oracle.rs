//! The differential oracle: every implementation checked against every
//! other on the same instance.
//!
//! The relations asserted are exactly the paper's:
//!
//! * **Feasibility** — every produced schedule passes
//!   [`calib_core::check_schedule`], and every [`RunResult`]'s cost fields
//!   are mutually consistent (`cost = G·C + flow`).
//! * **DP vs brute force** — the `O(K n³)` dynamic program (Propositions
//!   1–2) agrees with the Lemma 4.2 subset brute force on every budget, and
//!   with the assumption-free exhaustive search on tiny instances.
//! * **Competitive ratios** — Algorithm 1 stays within 3× OPT
//!   (Theorem 3.3), Algorithms 2 and 3 within 12× (Theorems 3.8 and 3.10),
//!   with OPT computed exactly (DP budget sweep on one machine, calibration
//!   multiset brute force on several).
//! * **Assigner invariants** — Observation 2.1's greedy assignment is
//!   optimal for a fixed calibration set (checked against branch-and-bound
//!   on small instances), never worse than the engine's own materialization
//!   of the same calibrations, and invariant under job-id permutation.
//!
//! Brute-force references are exponential, so each is gated behind explicit
//! size bounds; the [`Oracle`] runs every check whose gate admits the case.

use std::panic::{catch_unwind, AssertUnwindSafe};

use calib_core::{
    assign_greedy_with_policy, check_schedule, Cost, Instance, JobId, PriorityPolicy, Schedule,
};
use calib_offline::{
    min_flow_by_budget, opt_online_brute_multi, opt_online_cost, optimal_assignment_exhaustive,
    optimal_flow_brute, optimal_flow_exhaustive, solve_offline,
};
use calib_online::{
    run_alg3_practical, run_online, run_weighted_multi_practical, Alg1, Alg2, Alg3,
    CalibrateImmediately, OnlineScheduler, RunResult, SkiRentalBatch, WeightedMulti,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gen::TestCase;

/// The individual relations the oracle asserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Check {
    /// An online run produced an infeasible schedule (or panicked).
    OnlineFeasible,
    /// `RunResult { cost, flow, calibrations }` disagrees with its schedule.
    CostAccounting,
    /// DP flow differs from the Lemma 4.2 subset brute force.
    DpMatchesBrute,
    /// DP flow differs from the assumption-free exhaustive optimum.
    DpMatchesExhaustive,
    /// A reconstructed DP schedule is infeasible or mis-costed.
    DpScheduleConsistent,
    /// `F(k, n)` increased when the budget grew.
    DpBudgetMonotone,
    /// Algorithm 1 exceeded 3× OPT (Theorem 3.3).
    RatioAlg1,
    /// Algorithm 2 exceeded 12× OPT (Theorem 3.8).
    RatioAlg2,
    /// Algorithm 3 exceeded 12× OPT (Theorem 3.10).
    RatioAlg3,
    /// Greedy assignment is infeasible over a calibration set that the
    /// engine proved sufficient.
    AssignerFeasible,
    /// Greedy assignment costs more than the exhaustive optimal assignment
    /// (Observation 2.1 violated).
    AssignerOptimal,
    /// Greedy re-assignment cost exceeds the engine's own assignment of the
    /// same calibrations.
    AssignerNotWorseThanEngine,
    /// Assignment cost changed under a job-id permutation.
    AssignerPermutationInvariant,
}

impl Check {
    /// Stable kebab-case label, used in replay files and reports.
    pub fn code(&self) -> &'static str {
        match self {
            Check::OnlineFeasible => "online-feasible",
            Check::CostAccounting => "cost-accounting",
            Check::DpMatchesBrute => "dp-matches-brute",
            Check::DpMatchesExhaustive => "dp-matches-exhaustive",
            Check::DpScheduleConsistent => "dp-schedule-consistent",
            Check::DpBudgetMonotone => "dp-budget-monotone",
            Check::RatioAlg1 => "ratio-alg1",
            Check::RatioAlg2 => "ratio-alg2",
            Check::RatioAlg3 => "ratio-alg3",
            Check::AssignerFeasible => "assigner-feasible",
            Check::AssignerOptimal => "assigner-optimal",
            Check::AssignerNotWorseThanEngine => "assigner-not-worse-than-engine",
            Check::AssignerPermutationInvariant => "assigner-permutation-invariant",
        }
    }

    /// Inverse of [`Check::code`].
    pub fn from_code(code: &str) -> Option<Check> {
        ALL_CHECKS.iter().copied().find(|c| c.code() == code)
    }
}

/// Every check, for code round-trips and reporting.
pub const ALL_CHECKS: &[Check] = &[
    Check::OnlineFeasible,
    Check::CostAccounting,
    Check::DpMatchesBrute,
    Check::DpMatchesExhaustive,
    Check::DpScheduleConsistent,
    Check::DpBudgetMonotone,
    Check::RatioAlg1,
    Check::RatioAlg2,
    Check::RatioAlg3,
    Check::AssignerFeasible,
    Check::AssignerOptimal,
    Check::AssignerNotWorseThanEngine,
    Check::AssignerPermutationInvariant,
];

impl std::fmt::Display for Check {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// One violated relation on one instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleFailure {
    /// Which relation broke.
    pub check: Check,
    /// Human-readable specifics (costs, violation lists, panic payloads).
    pub detail: String,
}

impl std::fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.check, self.detail)
    }
}

/// Deliberate implementation faults, injected to prove the oracle (and the
/// shrinker behind it) actually catch what they claim to catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fault {
    /// No fault: the shipped implementations as they are.
    #[default]
    None,
    /// The classic assigner bug: the last materialized job lands one slot
    /// later than chosen — off the end of its calibrated interval, onto an
    /// occupied slot, or simply one step of avoidable flow.
    AssignerOffByOne,
}

impl Fault {
    /// Parses the CLI spelling (`off-by-one`).
    pub fn from_cli(s: &str) -> Option<Fault> {
        match s {
            "none" => Some(Fault::None),
            "off-by-one" => Some(Fault::AssignerOffByOne),
            _ => None,
        }
    }
}

/// The configured oracle. `Default` is the honest one; tests inject faults.
#[derive(Debug, Clone, Copy, Default)]
pub struct Oracle {
    /// Fault to inject into the assigner paths under the oracle's control.
    pub fault: Fault,
}

impl Oracle {
    /// An oracle with a deliberately broken assigner.
    pub fn with_fault(fault: Fault) -> Self {
        Oracle { fault }
    }

    /// Runs every admitted check on `case`, returning all violations found.
    pub fn check(&self, case: &TestCase) -> Vec<OracleFailure> {
        let mut failures = Vec::new();
        let inst = &case.instance;
        let g = case.cal_cost;

        let runs = self.online_runs(inst, g, &mut failures);
        self.offline_checks(inst, g, &mut failures);
        self.ratio_checks(inst, g, &mut failures);
        if let Some((name, result)) = runs.first() {
            self.assigner_checks(inst, name, result, &mut failures);
        }
        failures
    }

    /// The greedy assigner as seen by the oracle's own checks, with the
    /// configured fault applied on top.
    fn assign(
        &self,
        instance: &Instance,
        times: &[i64],
    ) -> Result<Schedule, calib_core::InsufficientCalibrations> {
        let mut sched =
            assign_greedy_with_policy(instance, times, PriorityPolicy::HighestWeightFirst)?;
        if self.fault == Fault::AssignerOffByOne {
            if let Some(a) = sched.assignments.last_mut() {
                a.start += 1;
            }
        }
        Ok(sched)
    }

    /// Runs every applicable online algorithm, checking feasibility and cost
    /// accounting. Returns the successful runs for downstream checks.
    fn online_runs(
        &self,
        inst: &Instance,
        g: Cost,
        failures: &mut Vec<OracleFailure>,
    ) -> Vec<(&'static str, RunResult)> {
        let single = inst.machines() == 1;
        let unweighted = inst.is_unweighted();

        let mut runs: Vec<(&'static str, RunResult)> = Vec::new();
        let mut run = |name: &'static str, f: &mut dyn FnMut() -> RunResult| {
            // The engine validates its own output and panics on violations;
            // the oracle converts that panic into a reported failure so the
            // shrinker can minimize the instance behind it.
            match catch_unwind(AssertUnwindSafe(f)) {
                Ok(res) => runs.push((name, res)),
                Err(payload) => failures.push(OracleFailure {
                    check: Check::OnlineFeasible,
                    detail: format!("{name}: engine panicked: {}", panic_text(payload)),
                }),
            }
        };

        run("calibrate-immediately", &mut || {
            run_online(inst, g, &mut CalibrateImmediately)
        });
        if single {
            run("ski-rental-batch", &mut || {
                run_online(inst, g, &mut SkiRentalBatch)
            });
            if unweighted {
                run("alg1", &mut || run_online(inst, g, &mut Alg1::new()));
            }
            run("alg2", &mut || run_online(inst, g, &mut Alg2::new()));
        }
        if unweighted {
            run("alg3", &mut || run_online(inst, g, &mut Alg3::new()));
            run("alg3-practical", &mut || run_alg3_practical(inst, g));
        }
        run("weighted-multi", &mut || {
            run_online(inst, g, &mut WeightedMulti::new())
        });
        run("weighted-multi-practical", &mut || {
            run_weighted_multi_practical(inst, g)
        });

        for (name, res) in &runs {
            if let Err(e) = check_schedule(inst, &res.schedule) {
                failures.push(OracleFailure {
                    check: Check::OnlineFeasible,
                    detail: format!("{name}: {e}"),
                });
            }
            let flow = res.schedule.total_weighted_flow(inst);
            let cals = res.schedule.calibration_count();
            if res.flow != flow || res.calibrations != cals || res.cost != g * cals as Cost + flow {
                failures.push(OracleFailure {
                    check: Check::CostAccounting,
                    detail: format!(
                        "{name}: reported flow={} cals={} cost={}, schedule says flow={flow} \
                         cals={cals} (G={g})",
                        res.flow, res.calibrations, res.cost
                    ),
                });
            }
        }
        runs
    }

    /// DP vs brute force vs exhaustive, plus DP-internal consistency.
    fn offline_checks(&self, inst: &Instance, _g: Cost, failures: &mut Vec<OracleFailure>) {
        if inst.machines() != 1 {
            return;
        }
        let norm = inst.normalized();
        let n = norm.n();

        // Budget sweep: F(k, n) must be non-increasing in k and agree with
        // the Lemma 4.2 brute force wherever the latter is tractable.
        let flows = match min_flow_by_budget(&norm, n) {
            Ok(f) => f,
            Err(e) => {
                failures.push(OracleFailure {
                    check: Check::DpScheduleConsistent,
                    detail: format!("min_flow_by_budget refused normalized instance: {e}"),
                });
                return;
            }
        };
        // `prev` carries the last *feasible* budget and its flow, so the
        // failure message names the index the value actually came from even
        // when intermediate budgets are infeasible (None).
        let mut prev: Option<(usize, Cost)> = None;
        for (k, flow) in flows.iter().enumerate() {
            if let (Some((pk, p)), Some(f)) = (prev, *flow) {
                if f > p {
                    failures.push(OracleFailure {
                        check: Check::DpBudgetMonotone,
                        detail: format!("F({pk},n)={p} but F({k},n)={f}"),
                    });
                }
            }
            prev = flow.map(|f| (k, f)).or(prev);
        }

        let brute_ok = n <= 9;
        for (k, &budget_flow) in flows.iter().enumerate() {
            let dp = match solve_offline(&norm, k) {
                Ok(sol) => sol,
                Err(e) => {
                    failures.push(OracleFailure {
                        check: Check::DpScheduleConsistent,
                        detail: format!("solve_offline({k}) refused: {e}"),
                    });
                    continue;
                }
            };
            if let Some(sol) = &dp {
                if let Err(e) = check_schedule(&norm, &sol.schedule) {
                    failures.push(OracleFailure {
                        check: Check::DpScheduleConsistent,
                        detail: format!("budget {k}: reconstructed schedule infeasible: {e}"),
                    });
                }
                let sched_flow = sol.schedule.total_weighted_flow(&norm);
                if sched_flow != sol.flow {
                    failures.push(OracleFailure {
                        check: Check::DpScheduleConsistent,
                        detail: format!(
                            "budget {k}: DP flow {} but reconstructed schedule costs {sched_flow}",
                            sol.flow
                        ),
                    });
                }
                if budget_flow != Some(sol.flow) {
                    failures.push(OracleFailure {
                        check: Check::DpScheduleConsistent,
                        detail: format!(
                            "budget {k}: min_flow_by_budget={budget_flow:?} but solve_offline={}",
                            sol.flow
                        ),
                    });
                }
            }
            if brute_ok {
                let brute = optimal_flow_brute(&norm, k);
                match (&dp, &brute) {
                    (Some(sol), Some((bf, _))) if sol.flow != *bf => {
                        failures.push(OracleFailure {
                            check: Check::DpMatchesBrute,
                            detail: format!("budget {k}: DP={} brute={bf}", sol.flow),
                        });
                    }
                    (Some(sol), None) => failures.push(OracleFailure {
                        check: Check::DpMatchesBrute,
                        detail: format!("budget {k}: DP feasible ({}) but brute is not", sol.flow),
                    }),
                    (None, Some((bf, _))) => failures.push(OracleFailure {
                        check: Check::DpMatchesBrute,
                        detail: format!("budget {k}: brute feasible ({bf}) but DP is not"),
                    }),
                    _ => {}
                }
            }
        }

        // Lemma 4.2 itself: on tiny windows, restricting interval starts to
        // `{r_j + 1 - T}` loses nothing against the exhaustive search.
        let window = match (norm.min_release(), norm.max_release()) {
            (Some(lo), Some(hi)) => (hi + n as i64) - (lo + 1 - norm.cal_len()) + 1,
            _ => 0,
        };
        if n <= 4 && window <= 12 {
            for k in 0..=2.min(n) {
                let brute = optimal_flow_brute(&norm, k).map(|(f, _)| f);
                let exhaustive = optimal_flow_exhaustive(&norm, k).map(|(f, _)| f);
                if brute != exhaustive {
                    failures.push(OracleFailure {
                        check: Check::DpMatchesExhaustive,
                        detail: format!(
                            "budget {k}: Lemma 4.2 brute {brute:?} vs exhaustive {exhaustive:?}"
                        ),
                    });
                }
            }
        }
    }

    /// Competitive-ratio checks against exact OPT.
    fn ratio_checks(&self, inst: &Instance, g: Cost, failures: &mut Vec<OracleFailure>) {
        if inst.machines() == 1 {
            // Ratios are measured on the normalized instance so the DP's OPT
            // and the online run see the same input.
            let norm = inst.normalized();
            let opt = match opt_online_cost(&norm, g) {
                Ok(o) => o,
                Err(e) => {
                    failures.push(OracleFailure {
                        check: Check::DpScheduleConsistent,
                        detail: format!("opt_online_cost refused normalized instance: {e}"),
                    });
                    return;
                }
            };
            let ratio = |name: &'static str,
                         check: Check,
                         bound: Cost,
                         sched: &mut dyn OnlineScheduler,
                         failures: &mut Vec<OracleFailure>| {
                let res = match catch_unwind(AssertUnwindSafe(|| run_online(&norm, g, sched))) {
                    Ok(res) => res,
                    Err(payload) => {
                        failures.push(OracleFailure {
                            check: Check::OnlineFeasible,
                            detail: format!(
                                "{name} (normalized): engine panicked: {}",
                                panic_text(payload)
                            ),
                        });
                        return;
                    }
                };
                if res.cost > bound * opt.cost {
                    failures.push(OracleFailure {
                        check,
                        detail: format!(
                            "{name}: cost {} > {bound} x OPT {} (G={g})",
                            res.cost, opt.cost
                        ),
                    });
                }
            };
            if norm.is_unweighted() {
                ratio("alg1", Check::RatioAlg1, 3, &mut Alg1::new(), failures);
                ratio("alg3", Check::RatioAlg3, 12, &mut Alg3::new(), failures);
            }
            ratio("alg2", Check::RatioAlg2, 12, &mut Alg2::new(), failures);
        } else if inst.is_unweighted() && inst.n() <= 5 {
            let window = match (inst.min_release(), inst.max_release()) {
                (Some(lo), Some(hi)) => (hi + inst.n() as i64) - (lo + 1 - inst.cal_len()) + 1,
                _ => 0,
            };
            if window > 10 {
                return;
            }
            let Some((opt_cost, _)) = opt_online_brute_multi(inst, g, inst.n()) else {
                return;
            };
            let res = match catch_unwind(AssertUnwindSafe(|| run_online(inst, g, &mut Alg3::new())))
            {
                Ok(res) => res,
                Err(_) => return, // already reported by online_runs
            };
            if res.cost > 12 * opt_cost {
                failures.push(OracleFailure {
                    check: Check::RatioAlg3,
                    detail: format!(
                        "alg3 on P={}: cost {} > 12 x OPT {opt_cost} (G={g})",
                        inst.machines(),
                        res.cost
                    ),
                });
            }
        }
    }

    /// Observation 2.1 checks over a calibration set the engine proved
    /// sufficient: feasibility, optimality, improvement over the engine's
    /// own assignment, and invariance under job-id permutation.
    fn assigner_checks(
        &self,
        inst: &Instance,
        run_name: &str,
        run: &RunResult,
        failures: &mut Vec<OracleFailure>,
    ) {
        let times = run.schedule.calibration_times();
        let sched = match self.assign(inst, &times) {
            Ok(s) => s,
            Err(e) => {
                failures.push(OracleFailure {
                    check: Check::AssignerFeasible,
                    detail: format!(
                        "greedy failed over {run_name}'s {} calibrations: {e}",
                        times.len()
                    ),
                });
                return;
            }
        };
        if let Err(e) = check_schedule(inst, &sched) {
            failures.push(OracleFailure {
                check: Check::AssignerFeasible,
                detail: format!("greedy over {run_name}'s calibrations: {e}"),
            });
            return;
        }
        let flow = sched.total_weighted_flow(inst);
        if flow > run.flow {
            failures.push(OracleFailure {
                check: Check::AssignerNotWorseThanEngine,
                detail: format!(
                    "greedy flow {flow} > {run_name}'s own flow {} on the same calibrations",
                    run.flow
                ),
            });
        }

        // Exhaustive optimality (Observation 2.1), gated by slot count.
        let slot_count = times.len() as i64 * inst.cal_len();
        if inst.n() <= 6 && slot_count <= 12 {
            if let Some(best) = optimal_assignment_exhaustive(inst, &times) {
                if flow != best {
                    failures.push(OracleFailure {
                        check: Check::AssignerOptimal,
                        detail: format!(
                            "greedy flow {flow} vs exhaustive optimal {best} over {} calibrations",
                            times.len()
                        ),
                    });
                }
            }
        }

        // Permutation invariance: relabel ids, same cost profile.
        let n = inst.n();
        if n >= 2 {
            let mut ids: Vec<JobId> = inst.jobs().iter().map(|j| j.id).collect();
            ids.sort();
            let mut perms: Vec<Vec<JobId>> = Vec::new();
            let mut rev = ids.clone();
            rev.reverse();
            perms.push(rev);
            let mut rot = ids.clone();
            rot.rotate_left(1);
            perms.push(rot);
            let mut shuffled = ids.clone();
            let mut rng = StdRng::seed_from_u64(0x5487_11e5 ^ n as u64);
            for i in (1..shuffled.len()).rev() {
                shuffled.swap(i, rng.gen_range(0..=i));
            }
            perms.push(shuffled);

            let mut starts: Vec<i64> = sched.assignments.iter().map(|a| a.start).collect();
            starts.sort_unstable();
            for perm in perms {
                let relabeled = match inst.with_permuted_ids(&perm) {
                    Ok(r) => r,
                    Err(e) => {
                        failures.push(OracleFailure {
                            check: Check::AssignerPermutationInvariant,
                            detail: format!("relabeling failed: {e}"),
                        });
                        continue;
                    }
                };
                match self.assign(&relabeled, &times) {
                    Ok(ps) => {
                        let pflow = ps.total_weighted_flow(&relabeled);
                        let mut pstarts: Vec<i64> =
                            ps.assignments.iter().map(|a| a.start).collect();
                        pstarts.sort_unstable();
                        if pflow != flow || pstarts != starts {
                            failures.push(OracleFailure {
                                check: Check::AssignerPermutationInvariant,
                                detail: format!(
                                    "flow {flow} / starts {starts:?} became {pflow} / {pstarts:?} \
                                     under id permutation {perm:?}"
                                ),
                            });
                        }
                    }
                    Err(e) => failures.push(OracleFailure {
                        check: Check::AssignerPermutationInvariant,
                        detail: format!("greedy infeasible after id permutation: {e}"),
                    }),
                }
            }
        }
    }
}

/// Renders a `catch_unwind` payload.
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".into()
    }
}
