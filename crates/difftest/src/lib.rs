//! `calib-difftest` — differential correctness harness for the calibration
//! scheduler.
//!
//! Every solver in this workspace claims a relationship to every other: the
//! DP matches the brute force, the online algorithms stay within their
//! proven competitive ratios of the exact optimum, the greedy assigner is
//! optimal for a fixed calibration set (Observation 2.1). This crate turns
//! those claims into an executable oracle:
//!
//! * [`gen`] — seeded random-instance generation over the workload
//!   families, exposed both as plain functions and as a proptest-style
//!   [`Strategy`](proptest::Strategy);
//! * [`oracle`] — the cross-implementation checks themselves;
//! * [`mod@shrink`] — greedy minimization of failing instances;
//! * [`replay`] — deterministic JSON regression files under
//!   `difftest/regressions/` that become permanent unit tests.
//!
//! The `calib-difftest` binary drives all of it from the command line (and
//! from CI); see `DIFFTEST.md` at the repository root.

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod gen;
pub mod oracle;
pub mod replay;
pub mod shrink;

pub use gen::{cases, gen_case, gen_case_sized, GenParams, TestCase};
pub use oracle::{Check, Fault, Oracle, OracleFailure, ALL_CHECKS};
pub use replay::{load_dir, Regression, REGRESSION_DIR};
pub use shrink::{shrink, Shrunk};

/// Summary of one differential run, as produced by [`run_iters`].
#[derive(Debug, Clone, Default)]
pub struct RunSummary {
    /// Cases executed.
    pub cases: usize,
    /// Failures found, as `(seed, shrunk witness)` pairs.
    pub failures: Vec<(u64, Shrunk, Check)>,
}

/// Runs `iters` generated cases starting from `seed`, shrinking every
/// failure. `report` is called once per case (after checking) for progress
/// output; pass `|_, _| {}` to stay quiet.
pub fn run_iters(
    oracle: &Oracle,
    params: &GenParams,
    seed: u64,
    iters: u64,
    mut report: impl FnMut(u64, &[OracleFailure]),
) -> RunSummary {
    let mut summary = RunSummary::default();
    for i in 0..iters {
        let case_seed = seed.wrapping_add(i);
        let case = gen_case(case_seed, params);
        let failures = oracle.check(&case);
        report(case_seed, &failures);
        summary.cases += 1;
        if let Some(first) = failures.first() {
            let shrunk = shrink(oracle, &case, first.check, 400);
            summary.failures.push((case_seed, shrunk, first.check));
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The honest implementations must survive a differential sweep. This is
    /// a smaller in-test version of the CI run (`--iters 500 --seed 2017`).
    #[test]
    fn honest_oracle_finds_no_violations() {
        let summary = run_iters(
            &Oracle::default(),
            &GenParams::default(),
            2017,
            60,
            |_, _| {},
        );
        assert_eq!(summary.cases, 60);
        assert!(
            summary.failures.is_empty(),
            "differential violations: {:?}",
            summary
                .failures
                .iter()
                .map(|(s, sh, c)| format!("seed {s} [{c}]: {}", sh.detail))
                .collect::<Vec<_>>()
        );
    }

    /// A broken implementation must NOT survive it — otherwise the harness
    /// itself is the bug.
    #[test]
    fn faulty_oracle_finds_violations() {
        let summary = run_iters(
            &Oracle::with_fault(Fault::AssignerOffByOne),
            &GenParams::default(),
            2017,
            40,
            |_, _| {},
        );
        assert!(
            !summary.failures.is_empty(),
            "injected off-by-one fault went undetected over 40 cases"
        );
    }
}
