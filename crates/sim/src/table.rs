//! Plain-text result tables — every experiment binary prints one of these,
//! mirroring how the paper's results would appear as a table.

/// A simple column-aligned ASCII table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Heading printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (same arity as headers).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Constructs the value.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row; must match the header arity.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// The same table with `title` swapped in. Used by the golden-table
    /// writer to strip run-dependent text (e.g. fitted exponents) from
    /// titles before committing them.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = title.into();
        self
    }

    /// The same table minus the named columns. Unknown names are ignored,
    /// so callers can strip `"ms"` unconditionally. Used to produce
    /// deterministic golden tables from experiments whose full output
    /// includes wall-clock columns.
    pub fn without_columns(&self, drop: &[&str]) -> Table {
        let keep: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .filter(|(_, h)| !drop.contains(&h.as_str()))
            .map(|(i, _)| i)
            .collect();
        Table {
            title: self.title.clone(),
            headers: keep.iter().map(|&i| self.headers[i].clone()).collect(),
            rows: self
                .rows
                .iter()
                .map(|r| keep.iter().map(|&i| r[i].clone()).collect())
                .collect(),
        }
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            (0..ncol)
                .map(|i| format!(" {:<width$} ", cells[i], width = widths[i]))
                .collect::<Vec<_>>()
                .join("|")
        };
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float compactly for table cells.
pub fn fmt_f(x: f64) -> String {
    if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("alpha"));
        let lines: Vec<&str> = s.lines().collect();
        // header, separator, 2 rows, plus title line.
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[2].len(), lines[3].len(), "rows pad to equal width");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn without_columns_drops_named_and_ignores_unknown() {
        let mut t = Table::new("demo", &["a", "ms", "b"]);
        t.row(vec!["1".into(), "99".into(), "2".into()]);
        let s = t.without_columns(&["ms", "no-such-column"]);
        assert_eq!(s.headers, vec!["a", "b"]);
        assert_eq!(s.rows, vec![vec!["1".to_string(), "2".to_string()]]);
        assert!(!s.render().contains("99"));
    }

    #[test]
    fn with_title_replaces_title() {
        let t = Table::new("old (fit 2.97)", &["a"]).with_title("new");
        assert_eq!(t.title, "new");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(1.23456), "1.235");
        assert_eq!(fmt_f(12345.6), "12346");
    }
}
