//! Plain-text result tables — every experiment binary prints one of these,
//! mirroring how the paper's results would appear as a table.

/// A simple column-aligned ASCII table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Heading printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (same arity as headers).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Constructs the value.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row; must match the header arity.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            (0..ncol)
                .map(|i| format!(" {:<width$} ", cells[i], width = widths[i]))
                .collect::<Vec<_>>()
                .join("|")
        };
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float compactly for table cells.
pub fn fmt_f(x: f64) -> String {
    if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("alpha"));
        let lines: Vec<&str> = s.lines().collect();
        // header, separator, 2 rows, plus title line.
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[2].len(), lines[3].len(), "rows pad to equal width");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(1.23456), "1.235");
        assert_eq!(fmt_f(12345.6), "12346");
    }
}
