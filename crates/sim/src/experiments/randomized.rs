//! E13 — *extension beyond the paper*: does randomization beat the
//! deterministic `2 − o(1)` lower bound of Lemma 3.1?
//!
//! Against an **oblivious** adversary (who commits to the instance without
//! seeing coin flips), the randomized ski-rental trigger should average
//! below 2 on the branch-1 instance family (classical ski rental achieves
//! `e/(e−1) ≈ 1.582`); the deterministic algorithms cannot. The job-train
//! instances still require Algorithm 1's queue rule — randomization does not
//! help there. Measured, not proven.

use calib_core::{Cost, Instance, InstanceBuilder, Time};
use calib_offline::opt_online_cost;
use calib_online::{run_online, Alg1, RandomizedSkiRental};

use crate::stats::Summary;
use crate::table::{fmt_f, Table};

/// Configuration for the randomized-vs-deterministic study.
#[derive(Debug, Clone)]
pub struct RandomizedConfig {
    /// `(T, G)` adversary parameters.
    pub params: Vec<(Time, Cost)>,
    /// Coin-flip trials per instance.
    pub trials: u64,
}

impl Default for RandomizedConfig {
    fn default() -> Self {
        // `G > T` keeps Algorithm 1's queue rule out of the way on the
        // single-job instance, so the flow trigger (the randomized part)
        // governs; the train instances have `G < nT`, exercising the rules
        // randomization does not replace.
        RandomizedConfig {
            params: vec![(10, 100), (20, 400), (40, 1600), (80, 6400)],
            trials: 200,
        }
    }
}

/// One row of the study.
#[derive(Debug, Clone)]
pub struct RandomizedRow {
    /// Calibration length `T`.
    pub cal_len: Time,
    /// Calibration cost `G`.
    pub cal_cost: Cost,
    /// Which fixed (oblivious) instance was played.
    pub instance_kind: &'static str,
    /// Deterministic Alg1 ratio on it.
    pub alg1_ratio: f64,
    /// Randomized expected ratio over the trials.
    pub rand_mean_ratio: f64,
    /// Randomized worst single-coin-flip ratio.
    pub rand_max_ratio: f64,
}

/// The two oblivious instances of Lemma 3.1 (fixed up front — the adversary
/// cannot adapt to coin flips).
fn oblivious_instances(t: Time) -> Vec<(&'static str, Instance)> {
    let mut out = Vec::new();
    // The classical ski-rental nemesis: a deterministic flow trigger
    // waits a full G and pays ~2·OPT; a randomized X·G trigger pays
    // ~(1 + 1/(e−1))·OPT ≈ 1.582·OPT in expectation.
    if let Ok(inst) = InstanceBuilder::new(t).unit_jobs([0]).build() {
        out.push(("single job", inst));
    }
    if let Ok(inst) = InstanceBuilder::new(t).unit_jobs(0..t).build() {
        out.push(("job train", inst));
    }
    out
}

/// Runs the study and renders its table.
pub fn run(cfg: &RandomizedConfig) -> (Vec<RandomizedRow>, Table) {
    let mut rows = Vec::new();
    for &(t, g) in &cfg.params {
        for (kind, inst) in oblivious_instances(t) {
            let Ok(opt) = opt_online_cost(&inst, g) else {
                continue;
            };
            let opt = opt.cost as f64;
            let alg1_ratio = run_online(&inst, g, &mut Alg1::new()).cost as f64 / opt;
            let ratios: Vec<f64> = (0..cfg.trials)
                .map(|seed| {
                    run_online(&inst, g, &mut RandomizedSkiRental::new(seed)).cost as f64 / opt
                })
                .collect();
            let Some(s) = Summary::from_values(&ratios) else {
                continue;
            };
            rows.push(RandomizedRow {
                cal_len: t,
                cal_cost: g,
                instance_kind: kind,
                alg1_ratio,
                rand_mean_ratio: s.mean,
                rand_max_ratio: s.max,
            });
        }
    }

    let mut table = Table::new(
        "E13 (extension): randomized trigger vs deterministic lower bound (oblivious adversary)",
        &[
            "T",
            "G",
            "instance",
            "Alg1 ratio",
            "rand E[ratio]",
            "rand max",
        ],
    );
    for r in &rows {
        table.row(vec![
            r.cal_len.to_string(),
            r.cal_cost.to_string(),
            r.instance_kind.to_string(),
            fmt_f(r.alg1_ratio),
            fmt_f(r.rand_mean_ratio),
            fmt_f(r.rand_max_ratio),
        ]);
    }
    (rows, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_randomization_beats_two_on_single_job() {
        let cfg = RandomizedConfig {
            params: vec![(20, 400)],
            trials: 150,
        };
        let (rows, table) = run(&cfg);
        let b1 = rows
            .iter()
            .find(|r| r.instance_kind == "single job")
            .unwrap();
        // Deterministic Alg1 pays ~2 on its nemesis; the randomized trigger
        // averages strictly below (classically -> 1 + 1/(e-1) ≈ 1.58).
        assert!(b1.alg1_ratio > 1.9, "alg1 {}", b1.alg1_ratio);
        assert!(
            b1.rand_mean_ratio < 1.75,
            "randomization should beat 2 − o(1) in expectation: {} vs {}",
            b1.rand_mean_ratio,
            b1.alg1_ratio
        );
        // On the train both stay bounded (the queue rule does the work).
        let b2 = rows
            .iter()
            .find(|r| r.instance_kind == "job train")
            .unwrap();
        assert!(b2.rand_mean_ratio <= 3.0 + 1e-9);
        assert!(table.render().contains("E13"));
    }
}
