//! E8 — quality of the Figure 1 LP relaxation: `OPT / LP` integrality-gap
//! statistics on instances where OPT is computable exactly (single machine,
//! DP). Weak duality demands `LP ≤ OPT`; the table reports how tight the
//! certificate used in E3 actually is.

use calib_core::obs::{CounterSnapshot, Counters, SpanTimer};
use calib_core::{Cost, Time};
use calib_lp::lp_lower_bound_counted;
use calib_offline::opt_online_cost;
use calib_workloads::WeightModel;

use crate::runner::run_parallel_metered;
use crate::stats::Summary;
use crate::table::{fmt_f, Table};

use super::{fmt_metrics, Family};

#[derive(Debug, Clone)]
/// LpGapConfig (see module docs).
pub struct LpGapConfig {
    /// Workload families to sweep.
    pub families: Vec<Family>,
    /// Jobs per instance.
    pub n: usize,
    /// Calibration lengths `T` to sweep.
    pub cal_lens: Vec<Time>,
    /// Calibration costs `G` to sweep.
    pub cal_costs: Vec<Cost>,
    /// Instances per parameter cell.
    pub seeds: u64,
}

impl Default for LpGapConfig {
    fn default() -> Self {
        LpGapConfig {
            families: vec![
                Family::Poisson { rate: 0.8 },
                Family::Bursty { burst: 3, gap: 9 },
                Family::Train,
            ],
            n: 7,
            cal_lens: vec![2, 3, 4],
            cal_costs: vec![1, 4, 12],
            seeds: 4,
        }
    }
}

#[derive(Debug, Clone)]
/// LpGapCell (see module docs).
pub struct LpGapCell {
    /// Workload family label.
    pub family: String,
    /// Calibration length `T`.
    pub cal_len: Time,
    /// Calibration cost `G`.
    pub cal_cost: Cost,
    /// `OPT / LP` per seed (≥ 1 by weak duality).
    pub gaps: Vec<f64>,
    /// Solver counters (simplex pivots) merged over the cell's seeds.
    pub metrics: CounterSnapshot,
    /// Wall-clock nanoseconds summed over the cell's solves.
    pub nanos: u64,
}

/// Runs the sweep and renders its table.
pub fn run(cfg: &LpGapConfig) -> (Vec<LpGapCell>, Table) {
    let mut points = Vec::new();
    for &fam in &cfg.families {
        for &t in &cfg.cal_lens {
            for &g in &cfg.cal_costs {
                for seed in 0..cfg.seeds {
                    points.push((fam, t, g, seed));
                }
            }
        }
    }

    let (results, _sweep, _span) =
        run_parallel_metered(points, None, |&(fam, t, g, seed), sweep| {
            let local = Counters::new();
            let timer = SpanTimer::start("lp_gap_point");
            let inst = fam.instance(seed * 977 + 5, cfg.n, WeightModel::Unit, t);
            // A degenerate point gets a NaN gap; `Summary::from_values`
            // rejects poisoned cells below, so its row is dropped rather
            // than misreported.
            let opt = opt_online_cost(&inst, g)
                .map(|o| o.cost as f64)
                .unwrap_or(f64::NAN);
            let lb = lp_lower_bound_counted(&inst, g, Some(&local)).unwrap_or(f64::NAN);
            let gap = if lb.is_finite() {
                opt / lb.max(1e-9)
            } else {
                f64::NAN
            };
            let snap = local.snapshot();
            sweep.lp_pivots(snap.lp_pivots);
            (fam.label(), t, g, gap, snap, timer.elapsed_ns())
        });

    let mut cells: Vec<LpGapCell> = Vec::new();
    for (family, t, g, gap, snap, nanos) in results {
        match cells
            .iter_mut()
            .find(|c| c.family == family && c.cal_len == t && c.cal_cost == g)
        {
            Some(c) => {
                c.gaps.push(gap);
                c.metrics = c.metrics.merged(snap);
                c.nanos += nanos;
            }
            None => cells.push(LpGapCell {
                family,
                cal_len: t,
                cal_cost: g,
                gaps: vec![gap],
                metrics: snap,
                nanos,
            }),
        }
    }

    let mut table = Table::new(
        "E8: integrality gap OPT / LP (Figure 1 relaxation)",
        &["family", "T", "G", "mean gap", "max gap", "metrics", "ms"],
    );
    for c in &cells {
        let Some(s) = Summary::from_values(&c.gaps) else {
            continue;
        };
        table.row(vec![
            c.family.clone(),
            c.cal_len.to_string(),
            c.cal_cost.to_string(),
            fmt_f(s.mean),
            fmt_f(s.max),
            fmt_metrics(&c.metrics),
            fmt_f(c.nanos as f64 / 1e6),
        ]);
    }
    (cells, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_gaps_at_least_one() {
        let cfg = LpGapConfig {
            families: vec![Family::Train],
            n: 5,
            cal_lens: vec![2],
            cal_costs: vec![2, 6],
            seeds: 2,
        };
        let (cells, _) = run(&cfg);
        for c in &cells {
            for &g in &c.gaps {
                assert!(g >= 1.0 - 1e-6, "weak duality violated: gap {g}");
                assert!(g < 10.0, "certificate uselessly loose: {g}");
            }
            assert!(c.metrics.lp_pivots > 0, "{}: no pivots counted", c.family);
        }
    }
}
