//! E5 — the release-order restriction (Lemma 3.4).
//!
//! The lemma's construction turns any optimal schedule with `C` calibrations
//! into a *release-ordered* schedule that starts every job no later (so its
//! flow is no larger) using at most `2C` calibrations. Two measurable
//! consequences, both exercised here with exact oracles:
//!
//! * **hard invariant**: `flow(OPT_r with budget 2K) ≤ flow(OPT with
//!   budget K)` — asserted on every instance;
//! * **observed gap**: the same-budget ratio `flow(OPT_r, K) / flow(OPT,
//!   K)` — reported in the table (can exceed 1; interesting how far it
//!   strays, since the charging argument for Algorithm 2 pays the factor 2
//!   in *calibrations*, not flow).

use calib_core::Time;
use calib_offline::{opt_r_brute, optimal_flow_brute, CandidateMode};
use calib_workloads::WeightModel;

use crate::runner::run_parallel;
use crate::stats::Summary;
use crate::table::{fmt_f, Table};

use super::Family;

#[derive(Debug, Clone)]
/// OptrConfig (see module docs).
pub struct OptrConfig {
    /// Workload families to sweep.
    pub families: Vec<Family>,
    /// Jobs per instance.
    pub n: usize,
    /// Calibration lengths `T` to sweep.
    pub cal_lens: Vec<Time>,
    /// Calibration budgets `K` to sweep.
    pub budgets: Vec<usize>,
    /// Instances per parameter cell.
    pub seeds: u64,
    /// Weight model for generated jobs.
    pub weights: WeightModel,
}

impl Default for OptrConfig {
    fn default() -> Self {
        OptrConfig {
            families: vec![
                Family::Poisson { rate: 0.7 },
                Family::Bursty { burst: 3, gap: 10 },
                Family::Uniform { spread: 2 },
            ],
            n: 8,
            cal_lens: vec![2, 3, 5],
            budgets: vec![2, 3],
            seeds: 8,
            weights: WeightModel::Uniform { max: 20 },
        }
    }
}

#[derive(Debug, Clone)]
/// OptrCell (see module docs).
pub struct OptrCell {
    /// Workload family label.
    pub family: String,
    /// Calibration length `T`.
    pub cal_len: Time,
    /// Calibration budget `K`.
    pub budget: usize,
    /// Same-budget ratio `flow(OPT_r, K) / flow(OPT, K)` per seed.
    pub same_budget_gaps: Vec<f64>,
    /// Double-budget ratio `flow(OPT_r, 2K) / flow(OPT, K)` per seed —
    /// Lemma 3.4 guarantees ≤ 1.
    pub double_budget_gaps: Vec<f64>,
}

/// Runs the sweep and renders its table.
pub fn run(cfg: &OptrConfig) -> (Vec<OptrCell>, Table) {
    let mut points = Vec::new();
    for &fam in &cfg.families {
        for &t in &cfg.cal_lens {
            for &k in &cfg.budgets {
                for seed in 0..cfg.seeds {
                    points.push((fam, t, k, seed));
                }
            }
        }
    }

    let results = run_parallel(points, None, |&(fam, t, k, seed)| {
        let inst = fam.instance(seed * 101 + 13, cfg.n, cfg.weights, t);
        let opt = optimal_flow_brute(&inst, k);
        let same = opt_r_brute(&inst, k, CandidateMode::Lemma42);
        let double = opt_r_brute(&inst, 2 * k, CandidateMode::Lemma42);
        let gaps = match (opt, same, double) {
            (Some((o, _)), Some((s, _)), Some((d, _))) if o > 0 => {
                Some((s as f64 / o as f64, d as f64 / o as f64))
            }
            _ => None,
        };
        (fam.label(), t, k, gaps)
    });

    let mut cells: Vec<OptrCell> = Vec::new();
    for (family, t, k, gaps) in results {
        let Some((same, double)) = gaps else { continue };
        match cells
            .iter_mut()
            .find(|c| c.family == family && c.cal_len == t && c.budget == k)
        {
            Some(c) => {
                c.same_budget_gaps.push(same);
                c.double_budget_gaps.push(double);
            }
            None => cells.push(OptrCell {
                family,
                cal_len: t,
                budget: k,
                same_budget_gaps: vec![same],
                double_budget_gaps: vec![double],
            }),
        }
    }

    let mut table = Table::new(
        "E5: release-order restriction (Lemma 3.4)",
        &[
            "family",
            "T",
            "K",
            "mean same-K gap",
            "max same-K gap",
            "max 2K gap (<=1)",
        ],
    );
    for c in &cells {
        let (Some(same), Some(double)) = (
            Summary::from_values(&c.same_budget_gaps),
            Summary::from_values(&c.double_budget_gaps),
        ) else {
            continue;
        };
        table.row(vec![
            c.family.clone(),
            c.cal_len.to_string(),
            c.budget.to_string(),
            fmt_f(same.mean),
            fmt_f(same.max),
            fmt_f(double.max),
        ]);
    }
    (cells, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_lemma34_invariants() {
        let cfg = OptrConfig {
            families: vec![Family::Poisson { rate: 0.7 }, Family::Uniform { spread: 2 }],
            n: 6,
            cal_lens: vec![2, 3],
            budgets: vec![2],
            seeds: 4,
            weights: WeightModel::Uniform { max: 9 },
        };
        let (cells, table) = run(&cfg);
        assert!(!cells.is_empty());
        for c in &cells {
            for &g in &c.same_budget_gaps {
                assert!(g >= 1.0 - 1e-9, "OPT_r below OPT? gap {g}");
            }
            for &g in &c.double_budget_gaps {
                assert!(
                    g <= 1.0 + 1e-9,
                    "Lemma 3.4 violated: OPT_r with 2K budget has more flow ({g})"
                );
            }
        }
        assert!(table.render().contains("E5"));
    }
}

/// The intermediate claim of Theorem 3.8: Algorithm 2 is 6-competitive
/// against the release-ordered optimum `OPT_r` (measured on small weighted
/// instances where `OPT_r` is computed exactly). Returns the observed
/// ratios; used by the `e2` binary.
pub fn alg2_vs_optr(cfg: &OptrConfig) -> (Vec<f64>, Table) {
    use calib_online::{run_online, Alg2};

    let mut points = Vec::new();
    for &fam in &cfg.families {
        for &t in &cfg.cal_lens {
            for seed in 0..cfg.seeds {
                points.push((fam, t, seed));
            }
        }
    }
    let results = run_parallel(points, None, |&(fam, t, seed)| {
        let inst = fam.instance(seed * 67 + 29, cfg.n, cfg.weights, t);
        let mut best: Option<f64> = None;
        for g in [2u128, 8, 32] {
            let alg = run_online(&inst, g, &mut Alg2::new()).cost;
            // OPT_r for the *online objective*: sweep budgets over the
            // exact release-ordered flow optimum.
            let mut opt_r = u128::MAX;
            for k in 1..=inst.n() {
                if let Some((flow, _)) = opt_r_brute(&inst, k, CandidateMode::Lemma42) {
                    opt_r = opt_r.min(g * k as u128 + flow);
                }
            }
            let ratio = alg as f64 / opt_r as f64;
            best = Some(best.map_or(ratio, |b: f64| b.max(ratio)));
        }
        best.unwrap_or(f64::NAN)
    });

    let mut table = Table::new(
        "E2b: Alg2 vs OPT_r (Theorem 3.8 intermediate bound: 6)",
        &["instances", "mean ratio", "max ratio", "within 6x"],
    );
    if let Some(s) = Summary::from_values(&results) {
        table.row(vec![
            s.count.to_string(),
            fmt_f(s.mean),
            fmt_f(s.max),
            (s.max <= 6.0).to_string(),
        ]);
    }
    (results, table)
}

#[cfg(test)]
mod optr_alg2_tests {
    use super::*;

    #[test]
    fn alg2_within_6x_of_opt_r() {
        let cfg = OptrConfig {
            families: vec![Family::Poisson { rate: 0.7 }, Family::Uniform { spread: 2 }],
            n: 7,
            cal_lens: vec![2, 4],
            budgets: vec![2],
            seeds: 4,
            weights: WeightModel::Uniform { max: 12 },
        };
        let (ratios, _) = alg2_vs_optr(&cfg);
        for &r in &ratios {
            assert!(
                r <= 6.0 + 1e-9,
                "Theorem 3.8 intermediate bound violated: {r}"
            );
            assert!(r >= 1.0 - 1e-9);
        }
    }
}
