//! E12 — *extension beyond the paper*: the weighted multi-machine
//! heuristic (Algorithm 3's structure with Algorithm 2's weight rules)
//! measured against the weighted Figure 1 LP lower bound. The paper leaves
//! this setting open; the measured certified ratios are evidence about
//! what a future analysis might prove.

use calib_core::{Cost, Time};
use calib_lp::lp_lower_bound;
use calib_online::{run_online, WeightedMulti};
use calib_workloads::{make_instance, WeightModel};

use crate::runner::run_parallel;
use crate::stats::Summary;
use crate::table::{fmt_f, Table};

use super::Family;

#[derive(Debug, Clone)]
/// WeightedMultiConfig (see module docs).
pub struct WeightedMultiConfig {
    /// Machine counts `P` to sweep.
    pub machines: Vec<usize>,
    /// Workload families to sweep.
    pub families: Vec<Family>,
    /// Jobs per instance.
    pub n: usize,
    /// Calibration length `T`.
    pub cal_len: Time,
    /// Calibration costs `G` to sweep.
    pub cal_costs: Vec<Cost>,
    /// Instances per parameter cell.
    pub seeds: u64,
    /// Weight model for generated jobs.
    pub weights: WeightModel,
}

impl Default for WeightedMultiConfig {
    fn default() -> Self {
        WeightedMultiConfig {
            machines: vec![1, 2, 3],
            families: vec![
                Family::Poisson { rate: 0.8 },
                Family::Bursty { burst: 3, gap: 8 },
            ],
            n: 7,
            cal_len: 3,
            cal_costs: vec![2, 8, 24],
            seeds: 3,
            weights: WeightModel::Uniform { max: 9 },
        }
    }
}

#[derive(Debug, Clone)]
/// WeightedMultiCell (see module docs).
pub struct WeightedMultiCell {
    /// Machine counts `P` to sweep.
    pub machines: usize,
    /// Workload family label.
    pub family: String,
    /// Calibration cost `G`.
    pub cal_cost: Cost,
    /// Certified per-seed ratios `ALG/LP`.
    pub certified_ratios: Vec<f64>,
}

/// Runs the sweep and renders its table.
pub fn run(cfg: &WeightedMultiConfig) -> (Vec<WeightedMultiCell>, Table) {
    let mut points = Vec::new();
    for &p in &cfg.machines {
        for &fam in &cfg.families {
            for &g in &cfg.cal_costs {
                for seed in 0..cfg.seeds {
                    points.push((p, fam, g, seed));
                }
            }
        }
    }

    let results = run_parallel(points, None, |&(p, fam, g, seed)| {
        let releases = fam.releases(seed * 61 + 11, cfg.n);
        let inst = make_instance(releases, cfg.weights, seed, p, cfg.cal_len);
        let alg = run_online(&inst, g, &mut WeightedMulti::new());
        // An unsolved LP yields a NaN ratio, poisoning its cell's
        // summary — the row is skipped below rather than misreported.
        let ratio = match lp_lower_bound(&inst, g) {
            Some(lb) => alg.cost as f64 / lb.max(1e-9),
            None => f64::NAN,
        };
        (p, fam.label(), g, ratio)
    });

    let mut cells: Vec<WeightedMultiCell> = Vec::new();
    for (p, family, g, ratio) in results {
        match cells
            .iter_mut()
            .find(|c| c.machines == p && c.family == family && c.cal_cost == g)
        {
            Some(c) => c.certified_ratios.push(ratio),
            None => cells.push(WeightedMultiCell {
                machines: p,
                family,
                cal_cost: g,
                certified_ratios: vec![ratio],
            }),
        }
    }

    let mut table = Table::new(
        "E12 (extension): WeightedMulti vs weighted LP bound — no theorem, measured only",
        &["P", "family", "G", "mean ALG/LP", "max ALG/LP"],
    );
    for c in &cells {
        let Some(s) = Summary::from_values(&c.certified_ratios) else {
            continue;
        };
        table.row(vec![
            c.machines.to_string(),
            c.family.clone(),
            c.cal_cost.to_string(),
            fmt_f(s.mean),
            fmt_f(s.max),
        ]);
    }
    (cells, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_certified_ratios_are_sane() {
        let cfg = WeightedMultiConfig {
            machines: vec![1, 2],
            families: vec![Family::Poisson { rate: 0.8 }],
            n: 5,
            cal_costs: vec![3, 9],
            seeds: 1,
            ..Default::default()
        };
        let (cells, table) = run(&cfg);
        assert!(!cells.is_empty());
        for c in &cells {
            for &r in &c.certified_ratios {
                assert!(r >= 1.0 - 1e-6, "below the LP bound: {r}");
                assert!(r <= 30.0, "heuristic wildly off: {r}");
            }
        }
        assert!(table.render().contains("E12"));
    }
}
