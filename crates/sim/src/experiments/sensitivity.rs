//! E11 — threshold sensitivity: how much do the paper's specific constants
//! matter? The tunable scheduler sweeps multipliers on the weight and flow
//! thresholds around the paper's choice (×1) and measures total cost
//! against the exact optimum.
//!
//! Expectation: a shallow bowl around ×1 — far-eager (×1/8) over-calibrates
//! when G is large, far-lazy (×8) over-waits; the paper's constants sit
//! near the bottom without being magic.

use calib_core::{Cost, Time};
use calib_offline::opt_online_cost;
use calib_online::{run_online, Ratio, Thresholds, TunableScheduler};
use calib_workloads::WeightModel;

use crate::runner::run_parallel;
use crate::stats::Summary;
use crate::table::{fmt_f, Table};

use super::Family;

#[derive(Debug, Clone)]
/// SensitivityConfig (see module docs).
pub struct SensitivityConfig {
    /// Workload families to sweep.
    pub families: Vec<Family>,
    /// Jobs per instance.
    pub n: usize,
    /// Calibration length `T`.
    pub cal_len: Time,
    /// Calibration costs `G` to sweep.
    pub cal_costs: Vec<Cost>,
    /// Instances per parameter cell.
    pub seeds: u64,
    /// Weight model for generated jobs.
    pub weights: WeightModel,
    /// Multipliers applied to *both* thresholds, as `(num, den)`.
    pub factors: Vec<(u32, u32)>,
}

impl Default for SensitivityConfig {
    fn default() -> Self {
        SensitivityConfig {
            families: vec![
                Family::Poisson { rate: 0.4 },
                Family::Bursty { burst: 4, gap: 30 },
                Family::Uniform { spread: 3 },
            ],
            n: 30,
            cal_len: 5,
            cal_costs: vec![8, 40, 160],
            seeds: 4,
            weights: WeightModel::Uniform { max: 9 },
            factors: vec![(1, 8), (1, 4), (1, 2), (1, 1), (2, 1), (4, 1), (8, 1)],
        }
    }
}

#[derive(Debug, Clone)]
/// SensitivityCell (see module docs).
pub struct SensitivityCell {
    /// Threshold multiplier `(num, den)`.
    pub factor: (u32, u32),
    /// Calibration cost `G`.
    pub cal_cost: Cost,
    /// `cost / OPT` per (family, seed).
    pub ratios: Vec<f64>,
}

/// Runs the sweep and renders its table.
pub fn run(cfg: &SensitivityConfig) -> (Vec<SensitivityCell>, Table) {
    let mut points = Vec::new();
    for &factor in &cfg.factors {
        for &g in &cfg.cal_costs {
            for &fam in &cfg.families {
                for seed in 0..cfg.seeds {
                    points.push((factor, g, fam, seed));
                }
            }
        }
    }

    let results = run_parallel(points, None, |&(factor, g, fam, seed)| {
        let inst = fam.instance(seed * 53 + 2, cfg.n, cfg.weights, cfg.cal_len);
        let ratio = Ratio::new(factor.0, factor.1);
        let mut sched = TunableScheduler::new(Thresholds {
            weight_factor: ratio,
            flow_factor: ratio,
            ..Thresholds::alg2()
        });
        let res = run_online(&inst, g, &mut sched);
        // A NaN ratio poisons the cell's summary; the row is skipped
        // below rather than misreported.
        let ratio = match opt_online_cost(&inst, g) {
            Ok(opt) => res.cost as f64 / opt.cost as f64,
            Err(_) => f64::NAN,
        };
        (factor, g, ratio)
    });

    let mut cells: Vec<SensitivityCell> = Vec::new();
    for (factor, g, ratio) in results {
        match cells
            .iter_mut()
            .find(|c| c.factor == factor && c.cal_cost == g)
        {
            Some(c) => c.ratios.push(ratio),
            None => cells.push(SensitivityCell {
                factor,
                cal_cost: g,
                ratios: vec![ratio],
            }),
        }
    }

    let mut table = Table::new(
        "E11: threshold-multiplier sensitivity (×1 = the paper's constants)",
        &["factor", "G", "mean cost/OPT", "max cost/OPT"],
    );
    for c in &cells {
        let Some(s) = Summary::from_values(&c.ratios) else {
            continue;
        };
        table.row(vec![
            format!("x{}/{}", c.factor.0, c.factor.1),
            c.cal_cost.to_string(),
            fmt_f(s.mean),
            fmt_f(s.max),
        ]);
    }
    (cells, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_paper_constants_near_the_bottom() {
        let cfg = SensitivityConfig {
            families: vec![Family::Poisson { rate: 0.4 }],
            n: 16,
            cal_costs: vec![40],
            seeds: 3,
            factors: vec![(1, 8), (1, 1), (8, 1)],
            ..Default::default()
        };
        let (cells, _) = run(&cfg);
        let mean = |f: (u32, u32)| {
            let c = cells.iter().find(|c| c.factor == f).unwrap();
            c.ratios.iter().sum::<f64>() / c.ratios.len() as f64
        };
        let at_one = mean((1, 1));
        // The paper's choice should not be much worse than either extreme.
        assert!(at_one <= mean((1, 8)) * 1.5 + 1e-9);
        assert!(at_one <= mean((8, 1)) * 1.5 + 1e-9);
        // And everything stays finite and >= 1.
        for c in &cells {
            for &r in &c.ratios {
                assert!(r >= 1.0 - 1e-9);
            }
        }
    }
}
