//! E6 — offline DP runtime scaling (Theorem 4.7: `O(K n³)`).
//!
//! Measures wall time and DP states evaluated as `n` grows (fixed workload
//! shape), then fits a power law. Our memoized implementation of
//! Propositions 1–2 has an `O(n⁴)` worst-case guard (DESIGN.md §5), so the
//! fitted exponent is expected in the 2.5–4 range depending on how many
//! `(u, v, μ)` states the instance actually reaches.

use std::time::Instant;

use calib_core::obs::Counters;
use calib_core::Time;
use calib_offline::solve_offline_counted;
use calib_workloads::WeightModel;

use crate::stats::power_law_exponent;
use crate::table::{fmt_f, Table};

use super::Family;

#[derive(Debug, Clone)]
/// DpScalingConfig (see module docs).
pub struct DpScalingConfig {
    /// Workload family label.
    pub family: Family,
    /// Instance sizes `n` to sweep.
    pub sizes: Vec<usize>,
    /// Calibration length `T`.
    pub cal_len: Time,
    /// Budget as a fraction of `n` (e.g. 4 -> `K = n/4`, min 1).
    pub budget_divisor: usize,
    /// Weight model for generated jobs.
    pub weights: WeightModel,
    /// Repetitions per size (medians are reported).
    pub reps: u64,
}

impl Default for DpScalingConfig {
    fn default() -> Self {
        DpScalingConfig {
            family: Family::Poisson { rate: 0.6 },
            sizes: vec![10, 20, 40, 60, 80, 120],
            cal_len: 4,
            budget_divisor: 4,
            weights: WeightModel::Uniform { max: 9 },
            reps: 3,
        }
    }
}

#[derive(Debug, Clone)]
/// DpScalingRow (see module docs).
pub struct DpScalingRow {
    /// Jobs per instance.
    pub n: usize,
    /// Calibration budget `K`.
    pub budget: usize,
    /// Median wall time of one solve.
    pub median_seconds: f64,
    /// DP states evaluated.
    pub states: usize,
    /// DP states rejected as infeasible (from the observability counters).
    pub pruned: u64,
    /// Optimal flow found (sanity).
    pub flow: u128,
}

/// Runs the sweep and renders its table.
pub fn run(cfg: &DpScalingConfig) -> (Vec<DpScalingRow>, f64, Table) {
    let mut rows = Vec::new();
    for &n in &cfg.sizes {
        // At least ⌈n/T⌉ calibrations are needed for feasibility.
        let budget = n
            .div_ceil(cfg.budget_divisor)
            .max(n.div_ceil(cfg.cal_len as usize));
        let mut times = Vec::new();
        let mut states = 0;
        let mut pruned = 0;
        let mut flow = 0u128;
        for rep in 0..cfg.reps {
            let inst = cfg
                .family
                .instance(rep * 17 + n as u64, n, cfg.weights, cfg.cal_len);
            let counters = Counters::new();
            let start = Instant::now();
            // A degenerate draw (unnormalized instance or short budget)
            // would poison the whole sweep; skip the rep instead.
            let Ok(Some(sol)) = solve_offline_counted(&inst, budget, Some(&counters)) else {
                continue;
            };
            times.push(start.elapsed().as_secs_f64());
            states = sol.states_evaluated;
            pruned = counters.snapshot().dp_states_pruned;
            flow = sol.flow;
        }
        if times.is_empty() {
            continue;
        }
        times.sort_by(f64::total_cmp);
        rows.push(DpScalingRow {
            n,
            budget,
            median_seconds: times[times.len() / 2],
            states,
            pruned,
            flow,
        });
    }

    let xs: Vec<f64> = rows.iter().map(|r| r.n as f64).collect();
    let ys: Vec<f64> = rows.iter().map(|r| r.median_seconds.max(1e-7)).collect();
    let exponent = power_law_exponent(&xs, &ys);

    let mut table = Table::new(
        format!("E6: offline DP scaling (fit exponent {exponent:.2}; paper O(K n^3))"),
        &["n", "K", "median sec", "dp states", "pruned", "flow"],
    );
    for r in &rows {
        table.row(vec![
            r.n.to_string(),
            r.budget.to_string(),
            format!("{:.5}", r.median_seconds),
            r.states.to_string(),
            r.pruned.to_string(),
            fmt_f(r.flow as f64),
        ]);
    }
    (rows, exponent, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_runs_and_grows() {
        let cfg = DpScalingConfig {
            sizes: vec![6, 12, 24],
            reps: 1,
            ..Default::default()
        };
        let (rows, _exp, table) = run(&cfg);
        assert_eq!(rows.len(), 3);
        // More jobs -> more DP states.
        assert!(rows[2].states > rows[0].states);
        assert!(table.render().contains("E6"));
        assert!(table.render().contains("pruned"));
    }
}
