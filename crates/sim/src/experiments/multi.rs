//! E3 — Algorithm 3 on multiple machines against the Figure 1 LP lower
//! bound (a *certified* upper estimate of its competitive ratio, since
//! `ALG/OPT ≤ ALG/LP`). Paper claim: 12-competitive (Theorem 3.10).

use calib_core::{Cost, Time};
use calib_lp::lp_lower_bound;
use calib_online::{run_online, Alg3};
use calib_workloads::{make_instance, WeightModel};

use crate::runner::run_parallel;
use crate::stats::Summary;
use crate::table::{fmt_f, Table};

use super::Family;

#[derive(Debug, Clone)]
/// MultiConfig (see module docs).
pub struct MultiConfig {
    /// Machine counts `P` to sweep.
    pub machines: Vec<usize>,
    /// Workload families to sweep.
    pub families: Vec<Family>,
    /// Jobs per instance (kept small: LP size is O(n·H·P)).
    pub n: usize,
    /// Calibration lengths `T` to sweep.
    pub cal_lens: Vec<Time>,
    /// Calibration costs `G` to sweep.
    pub cal_costs: Vec<Cost>,
    /// Instances per parameter cell.
    pub seeds: u64,
}

impl Default for MultiConfig {
    fn default() -> Self {
        MultiConfig {
            machines: vec![1, 2, 3],
            families: vec![
                Family::Poisson { rate: 0.8 },
                Family::Bursty { burst: 3, gap: 8 },
                Family::Train,
            ],
            n: 8,
            cal_lens: vec![2, 4],
            cal_costs: vec![2, 8, 24],
            seeds: 3,
        }
    }
}

#[derive(Debug, Clone)]
/// MultiCell (see module docs).
pub struct MultiCell {
    /// Machine counts `P` to sweep.
    pub machines: usize,
    /// Workload family label.
    pub family: String,
    /// Calibration length `T`.
    pub cal_len: Time,
    /// Calibration cost `G`.
    pub cal_cost: Cost,
    /// Certified ratios `ALG3 / LP ≥ ALG3 / OPT`.
    pub certified_ratios: Vec<f64>,
}

/// Runs the sweep and renders its table.
pub fn run(cfg: &MultiConfig) -> (Vec<MultiCell>, Table) {
    let mut points = Vec::new();
    for &p in &cfg.machines {
        for &fam in &cfg.families {
            for &t in &cfg.cal_lens {
                for &g in &cfg.cal_costs {
                    for seed in 0..cfg.seeds {
                        points.push((p, fam, t, g, seed));
                    }
                }
            }
        }
    }

    let results = run_parallel(points, None, |&(p, fam, t, g, seed)| {
        // Multi-machine instances may share release times up to P per step.
        let releases = fam.releases(seed * 31 + 3, cfg.n);
        let inst = make_instance(releases, WeightModel::Unit, seed, p, t);
        let alg = run_online(&inst, g, &mut Alg3::new());
        // An unsolved LP yields a NaN ratio, poisoning its cell's
        // summary — the row is skipped below rather than misreported.
        let ratio = match lp_lower_bound(&inst, g) {
            Some(lb) => alg.cost as f64 / lb.max(1e-9),
            None => f64::NAN,
        };
        (p, fam.label(), t, g, ratio)
    });

    let mut cells: Vec<MultiCell> = Vec::new();
    for (p, family, t, g, ratio) in results {
        match cells
            .iter_mut()
            .find(|c| c.machines == p && c.family == family && c.cal_len == t && c.cal_cost == g)
        {
            Some(c) => c.certified_ratios.push(ratio),
            None => cells.push(MultiCell {
                machines: p,
                family,
                cal_len: t,
                cal_cost: g,
                certified_ratios: vec![ratio],
            }),
        }
    }

    let mut table = Table::new(
        "E3: Alg3 vs LP lower bound (certified; bound 12)",
        &[
            "P",
            "family",
            "T",
            "G",
            "mean ALG/LP",
            "max ALG/LP",
            "within bound",
        ],
    );
    for c in &cells {
        let Some(s) = Summary::from_values(&c.certified_ratios) else {
            continue;
        };
        table.row(vec![
            c.machines.to_string(),
            c.family.clone(),
            c.cal_len.to_string(),
            c.cal_cost.to_string(),
            fmt_f(s.mean),
            fmt_f(s.max),
            (s.max <= 12.0).to_string(),
        ]);
    }
    (cells, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_tiny_within_bound() {
        let cfg = MultiConfig {
            machines: vec![1, 2],
            families: vec![Family::Train],
            n: 5,
            cal_lens: vec![2],
            cal_costs: vec![3, 9],
            seeds: 1,
        };
        let (cells, table) = run(&cfg);
        assert_eq!(cells.len(), 2 * 2);
        for c in &cells {
            for &r in &c.certified_ratios {
                assert!(r >= 1.0 - 1e-6, "certified ratio below 1: {r}");
                assert!(r <= 12.0 + 1e-9, "P={} ratio {r}", c.machines);
            }
        }
        assert!(table.render().contains("E3"));
    }
}
