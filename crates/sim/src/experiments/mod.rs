//! The experiment suite (E1–E10 of DESIGN.md §3).
//!
//! Each module exposes a `run(&Config) -> Table` entry point sized by a
//! `Config` with sensible defaults; the `calib-bench` binaries print the
//! tables, and EXPERIMENTS.md records representative output against the
//! paper's claims.

pub mod ablations;
pub mod dp_scaling;
pub mod lower_bound;
pub mod lp_gap;
pub mod multi;
pub mod optr_gap;
pub mod randomized;
pub mod ratio;
pub mod sensitivity;
pub mod weighted_multi;

use calib_core::{Instance, Time};
use calib_workloads::{arrivals, make_instance, WeightModel};

/// A named workload family producing single-machine instances with distinct
/// releases (what the offline DP baseline requires).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Family {
    /// Poisson arrivals at the given rate.
    Poisson {
        /// Expected jobs per time step.
        rate: f64,
    },
    /// Bursts of `burst` jobs every `gap` steps.
    Bursty {
        /// Jobs per burst.
        burst: usize,
        /// Steps between burst starts.
        gap: Time,
    },
    /// Uniform over a horizon `spread × n`.
    Uniform {
        /// Horizon multiplier.
        spread: Time,
    },
    /// The Lemma 3.1 job train (one job per step).
    Train,
    /// Growing clusters.
    Staircase {
        /// Steps between clusters.
        gap: Time,
    },
}

impl Family {
    /// Human-readable family label.
    pub fn label(&self) -> String {
        match self {
            Family::Poisson { rate } => format!("poisson({rate})"),
            Family::Bursty { burst, gap } => format!("bursty({burst}x/{gap})"),
            Family::Uniform { spread } => format!("uniform(x{spread})"),
            Family::Train => "train".into(),
            Family::Staircase { gap } => format!("staircase({gap})"),
        }
    }

    /// Release times for ~`n` jobs (families with fixed shapes may round).
    pub fn releases(&self, seed: u64, n: usize) -> Vec<Time> {
        match *self {
            Family::Poisson { rate } => arrivals::poisson(seed, n, rate, true),
            Family::Bursty { burst, gap } => {
                let bursts = n.div_ceil(burst).max(1);
                arrivals::bursty(bursts, burst, gap, true)
            }
            Family::Uniform { spread } => {
                arrivals::uniform_spread(seed, n, spread * n as Time, true)
            }
            Family::Train => arrivals::job_train(n as Time),
            Family::Staircase { gap } => {
                // Pick enough steps to reach ~n jobs: k(k+1)/2 >= n.
                let mut steps = 1;
                while steps * (steps + 1) / 2 < n {
                    steps += 1;
                }
                arrivals::staircase(steps, gap, true)
            }
        }
    }

    /// Builds a single-machine instance of this family.
    pub fn instance(&self, seed: u64, n: usize, weights: WeightModel, cal_len: Time) -> Instance {
        make_instance(self.releases(seed, n), weights, seed, 1, cal_len)
    }
}

/// Compact one-cell rendering of the observability counters an experiment
/// row accumulated (only the fields the experiment touched are ever
/// nonzero; zeros are elided to keep tables narrow).
pub fn fmt_metrics(snap: &calib_core::obs::CounterSnapshot) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut push = |label: &str, v: u64| {
        if v > 0 {
            parts.push(format!("{label}={v}"));
        }
    };
    push("ev", snap.events);
    push("skip", snap.time_skips);
    push("cal", snap.calibrations);
    push("disp", snap.dispatches);
    push("resv", snap.reservations);
    push("wake", snap.wakes);
    push("dp", snap.dp_states_expanded);
    push("prune", snap.dp_states_pruned);
    push("scan", snap.assigner_slots_scanned);
    push("piv", snap.lp_pivots);
    if parts.is_empty() {
        "-".into()
    } else {
        parts.join(" ")
    }
}

/// The default family mix used by the ratio experiments.
pub fn default_families() -> Vec<Family> {
    vec![
        Family::Poisson { rate: 0.25 },
        Family::Poisson { rate: 1.0 },
        Family::Bursty { burst: 4, gap: 40 },
        Family::Uniform { spread: 3 },
        Family::Train,
        Family::Staircase { gap: 12 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_produce_normalized_instances() {
        for fam in default_families() {
            let inst = fam.instance(5, 12, WeightModel::Unit, 4);
            assert!(inst.n() >= 12, "{}", fam.label());
            assert!(inst.is_normalized(), "{}", fam.label());
        }
    }

    #[test]
    fn fmt_metrics_elides_zeros() {
        let mut snap = calib_core::obs::CounterSnapshot::default();
        assert_eq!(fmt_metrics(&snap), "-");
        snap.events = 12;
        snap.calibrations = 3;
        assert_eq!(fmt_metrics(&snap), "ev=12 cal=3");
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<String> =
            default_families().iter().map(|f| f.label()).collect();
        assert_eq!(labels.len(), default_families().len());
    }
}
