//! E1 / E2 — empirical competitive ratios of Algorithms 1 and 2 against the
//! exact offline optimum (DP budget sweep), across workload families and
//! `(G, T)` settings.
//!
//! Paper claims: Algorithm 1 ≤ 3 (Theorem 3.3); Algorithm 2 ≤ 12
//! (Theorem 3.8). The tables report mean/max observed ratios; the benches
//! and EXPERIMENTS.md record that the maxima stay beneath the proven
//! constants with real slack.

use calib_core::obs::{CounterSnapshot, Counters, CountingProbe, SpanTimer};
use calib_core::{Cost, Time};
use calib_offline::opt_online_cost;
use calib_online::{run_online_probed, Alg1, Alg2, EngineConfig};
use calib_workloads::WeightModel;

use crate::runner::run_parallel_metered;
use crate::stats::Summary;
use crate::table::{fmt_f, Table};

use super::{default_families, fmt_metrics, Family};

/// Which algorithm the sweep drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Algorithm 1 (unweighted, Theorem 3.3 bound 3).
    Alg1,
    /// Algorithm 2 (weighted, Theorem 3.8 bound 12).
    Alg2,
}

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct RatioConfig {
    /// Algorithm under test.
    pub algo: Algo,
    /// Workload families to sweep.
    pub families: Vec<Family>,
    /// Jobs per instance.
    pub n: usize,
    /// Calibration lengths to sweep.
    pub cal_lens: Vec<Time>,
    /// Calibration costs to sweep.
    pub cal_costs: Vec<Cost>,
    /// Instances per (family, T, G) cell.
    pub seeds: u64,
    /// Weight model (E2 uses non-unit models).
    pub weights: WeightModel,
}

impl RatioConfig {
    /// E1 defaults: unweighted, Algorithm 1.
    pub fn e1() -> Self {
        RatioConfig {
            algo: Algo::Alg1,
            families: default_families(),
            n: 40,
            cal_lens: vec![2, 5, 10],
            cal_costs: vec![2, 10, 50, 200],
            seeds: 5,
            weights: WeightModel::Unit,
        }
    }

    /// E2 defaults: weighted, Algorithm 2.
    pub fn e2() -> Self {
        RatioConfig {
            algo: Algo::Alg2,
            weights: WeightModel::Pareto {
                alpha: 1.1,
                cap: 100,
            },
            ..RatioConfig::e1()
        }
    }
}

/// One sweep cell's outcome.
#[derive(Debug, Clone)]
pub struct RatioCell {
    /// Workload family label.
    pub family: String,
    /// Calibration length `T`.
    pub cal_len: Time,
    /// Calibration cost `G`.
    pub cal_cost: Cost,
    /// Per-seed measured ratios.
    pub ratios: Vec<f64>,
    /// Engine counters merged over the cell's seeds.
    pub metrics: CounterSnapshot,
    /// Wall-clock nanoseconds summed over the cell's solves (online run +
    /// offline optimum).
    pub nanos: u64,
}

/// Runs the sweep, returning per-cell ratios (for tests) and the table.
pub fn run(cfg: &RatioConfig) -> (Vec<RatioCell>, Table) {
    let mut points: Vec<(Family, Time, Cost, u64)> = Vec::new();
    for &fam in &cfg.families {
        for &t in &cfg.cal_lens {
            for &g in &cfg.cal_costs {
                for seed in 0..cfg.seeds {
                    points.push((fam, t, g, seed));
                }
            }
        }
    }

    let (results, sweep, span) = run_parallel_metered(points, None, |&(fam, t, g, seed), sweep| {
        // Per-item registry for the cell's row; the shared sweep registry
        // receives the same events through the probe pair.
        let local = Counters::new();
        let timer = SpanTimer::start("ratio_point");
        let mut probe = (CountingProbe::new(&local), CountingProbe::new(sweep));
        let inst = fam.instance(seed.wrapping_mul(7919) + 1, cfg.n, cfg.weights, t);
        let res = match cfg.algo {
            Algo::Alg1 => run_online_probed(
                &inst,
                g,
                &mut Alg1::new(),
                EngineConfig::default(),
                &mut probe,
            ),
            Algo::Alg2 => run_online_probed(
                &inst,
                g,
                &mut Alg2::new(),
                EngineConfig::default(),
                &mut probe,
            ),
        };
        // A NaN ratio poisons the cell's summary; the row is skipped
        // below rather than misreported.
        let ratio = match opt_online_cost(&inst, g) {
            Ok(opt) => res.cost as f64 / opt.cost as f64,
            Err(_) => f64::NAN,
        };
        (fam, t, g, ratio, local.snapshot(), timer.elapsed_ns())
    });

    // Group by (family, T, G).
    let mut cells: Vec<RatioCell> = Vec::new();
    for (fam, t, g, ratio, snap, nanos) in results {
        let label = fam.label();
        match cells
            .iter_mut()
            .find(|c| c.family == label && c.cal_len == t && c.cal_cost == g)
        {
            Some(c) => {
                c.ratios.push(ratio);
                c.metrics = c.metrics.merged(snap);
                c.nanos += nanos;
            }
            None => cells.push(RatioCell {
                family: label,
                cal_len: t,
                cal_cost: g,
                ratios: vec![ratio],
                metrics: snap,
                nanos,
            }),
        }
    }

    let (name, bound) = match cfg.algo {
        Algo::Alg1 => ("E1: Alg1 vs OPT (bound 3)", 3.0),
        Algo::Alg2 => ("E2: Alg2 vs OPT (bound 12)", 12.0),
    };
    let mut table = Table::new(
        name,
        &[
            "family",
            "T",
            "G",
            "mean ratio",
            "max ratio",
            "within bound",
            "metrics",
            "ms",
        ],
    );
    for c in &cells {
        let Some(s) = Summary::from_values(&c.ratios) else {
            continue;
        };
        table.row(vec![
            c.family.clone(),
            c.cal_len.to_string(),
            c.cal_cost.to_string(),
            fmt_f(s.mean),
            fmt_f(s.max),
            (s.max <= bound).to_string(),
            fmt_metrics(&c.metrics),
            fmt_f(c.nanos as f64 / 1e6),
        ]);
    }
    // Sweep-wide footer: the runner's shared registry plus total wall-clock.
    table.row(vec![
        "(sweep)".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        fmt_metrics(&sweep),
        fmt_f(span.seconds() * 1e3),
    ]);
    (cells, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(algo: Algo, weights: WeightModel) -> RatioConfig {
        RatioConfig {
            algo,
            families: vec![Family::Poisson { rate: 0.5 }, Family::Train],
            n: 10,
            cal_lens: vec![3],
            cal_costs: vec![4, 20],
            seeds: 2,
            weights,
        }
    }

    #[test]
    fn e1_tiny_within_bound() {
        let (cells, table) = run(&tiny(Algo::Alg1, WeightModel::Unit));
        assert_eq!(cells.len(), 2 * 2);
        for c in &cells {
            for &r in &c.ratios {
                assert!(r <= 3.0 + 1e-9, "{} ratio {r}", c.family);
                assert!(r >= 1.0 - 1e-9);
            }
        }
        assert!(table.render().contains("within bound"));
        assert!(table.render().contains("(sweep)"));
    }

    #[test]
    fn cells_carry_engine_metrics() {
        let (cells, _) = run(&tiny(Algo::Alg1, WeightModel::Unit));
        for c in &cells {
            // Every instance dispatches its jobs, so the probed engine must
            // have fed the cell's registry.
            assert!(c.metrics.events > 0, "{}: no events", c.family);
            assert!(c.metrics.dispatches > 0, "{}: no dispatches", c.family);
            assert!(c.metrics.calibrations > 0, "{}: no calibrations", c.family);
            assert!(c.nanos > 0, "{}: no wall-clock", c.family);
        }
    }

    #[test]
    fn e2_tiny_within_bound() {
        let (cells, _) = run(&tiny(Algo::Alg2, WeightModel::Uniform { max: 9 }));
        for c in &cells {
            for &r in &c.ratios {
                assert!(r <= 12.0 + 1e-9, "{} ratio {r}", c.family);
            }
        }
    }
}
