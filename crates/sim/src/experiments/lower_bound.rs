//! E4 — the Lemma 3.1 lower bound in action: the adaptive adversary drives
//! every online algorithm's ratio toward 2 as the parameters grow.
//!
//! Paper claim: no deterministic online algorithm is better than
//! `(2 − o(1))`-competitive; branch 1 realizes `2 − 4/(G+3)` against eager
//! algorithms and branch 2 realizes `2 − G/(T+G)` against patient ones.

use calib_core::{Cost, Time};
use calib_online::{play_lemma31, AdversaryBranch, Alg1, CalibrateImmediately, SkiRentalBatch};

use crate::table::{fmt_f, Table};

#[derive(Debug, Clone)]
/// LowerBoundConfig (see module docs).
pub struct LowerBoundConfig {
    /// `(T, G)` points to probe, chosen so the o(1) term shrinks.
    pub params: Vec<(Time, Cost)>,
}

impl Default for LowerBoundConfig {
    fn default() -> Self {
        LowerBoundConfig {
            params: vec![
                (4, 4),
                (16, 8),
                (64, 32),
                (256, 128),
                (1024, 512),
                (4096, 2048),
                (2, 64),
                (2, 1024),
                (2, 16384),
            ],
        }
    }
}

#[derive(Debug, Clone)]
/// LowerBoundRow (see module docs).
pub struct LowerBoundRow {
    /// Algorithm under test.
    pub algo: &'static str,
    /// Calibration length `T`.
    pub cal_len: Time,
    /// Calibration cost `G`.
    pub cal_cost: Cost,
    /// Adversary branch taken.
    pub branch: AdversaryBranch,
    /// Measured competitive ratio.
    pub ratio: f64,
}

/// Runs the sweep and renders its table.
pub fn run(cfg: &LowerBoundConfig) -> (Vec<LowerBoundRow>, Table) {
    let mut rows: Vec<LowerBoundRow> = Vec::new();
    for &(t, g) in &cfg.params {
        let a1 = play_lemma31(t, g, Alg1::new);
        rows.push(LowerBoundRow {
            algo: "Alg1",
            cal_len: t,
            cal_cost: g,
            branch: a1.branch,
            ratio: a1.ratio(),
        });
        let eager = play_lemma31(t, g, || CalibrateImmediately);
        rows.push(LowerBoundRow {
            algo: "CalibrateImmediately",
            cal_len: t,
            cal_cost: g,
            branch: eager.branch,
            ratio: eager.ratio(),
        });
        let ski = play_lemma31(t, g, || SkiRentalBatch);
        rows.push(LowerBoundRow {
            algo: "SkiRentalBatch",
            cal_len: t,
            cal_cost: g,
            branch: ski.branch,
            ratio: ski.ratio(),
        });
    }

    let mut table = Table::new(
        "E4: Lemma 3.1 adversary (lower bound -> 2)",
        &["algorithm", "T", "G", "branch", "ratio"],
    );
    for r in &rows {
        table.row(vec![
            r.algo.to_string(),
            r.cal_len.to_string(),
            r.cal_cost.to_string(),
            format!("{:?}", r.branch),
            fmt_f(r.ratio),
        ]);
    }
    (rows, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adversary_ratios_climb_toward_two() {
        let cfg = LowerBoundConfig {
            params: vec![(2, 8), (2, 64), (2, 1024)],
        };
        let (rows, _) = run(&cfg);
        // The eager baseline takes branch 1 whose ratio 2 - 4/(G+3)
        // increases with G.
        let eager: Vec<&LowerBoundRow> = rows
            .iter()
            .filter(|r| r.algo == "CalibrateImmediately")
            .collect();
        assert!(eager.windows(2).all(|w| w[1].ratio >= w[0].ratio));
        assert!(eager.last().unwrap().ratio > 1.99);
        // Nothing exceeds 2 +- rounding on the adversary's own instances...
        // (the adversary's opt_cost is an upper bound on OPT, so measured
        // ratios are lower bounds of the true ones; but branch math caps
        // the eager baseline at exactly (2G+2)/(G+3) < 2).
        for r in rows.iter().filter(|r| r.algo == "CalibrateImmediately") {
            assert!(r.ratio < 2.0);
        }
    }
}
