//! E10 — ablations of the paper's design choices:
//!
//! * **A1**: Algorithm 1 with/without the immediate-calibration rule
//!   (lines 11–14);
//! * **A2**: Algorithm 2 heaviest-first vs the literal pseudocode's
//!   lightest-first extraction (DESIGN.md §5 note 1);
//! * **A3**: Algorithm 3 spec assignment vs the "practical" Observation 2.1
//!   re-assignment the paper recommends.
//!
//! Each row compares total online-objective cost over a workload mix; the
//! reported ratio is `variant / default` (> 1 means the paper's default
//! choice wins).

use calib_core::{Cost, Time};
use calib_online::{run_alg3_practical, run_online, Alg1, Alg2, Alg3};
use calib_workloads::{make_instance, WeightModel};

use crate::runner::run_parallel;
use crate::table::{fmt_f, Table};

use super::{default_families, Family};

#[derive(Debug, Clone)]
/// AblationConfig (see module docs).
pub struct AblationConfig {
    /// Workload families to sweep.
    pub families: Vec<Family>,
    /// Jobs per instance.
    pub n: usize,
    /// Calibration lengths `T` to sweep.
    pub cal_lens: Vec<Time>,
    /// Calibration costs `G` to sweep.
    pub cal_costs: Vec<Cost>,
    /// Instances per parameter cell.
    pub seeds: u64,
    /// Machines for the A3 ablation.
    pub machines: usize,
}

impl Default for AblationConfig {
    fn default() -> Self {
        AblationConfig {
            families: default_families(),
            n: 40,
            cal_lens: vec![3, 8],
            cal_costs: vec![4, 24, 96],
            seeds: 5,
            machines: 3,
        }
    }
}

#[derive(Debug, Clone)]
/// AblationRow (see module docs).
pub struct AblationRow {
    /// Which design choice is ablated.
    pub ablation: &'static str,
    /// Calibration length `T`.
    pub cal_len: Time,
    /// Calibration cost `G`.
    pub cal_cost: Cost,
    /// Total cost with the paper default.
    pub default_total: Cost,
    /// Total cost with the ablated variant.
    pub variant_total: Cost,
}

impl AblationRow {
    /// `variant_total / default_total`.
    pub fn ratio(&self) -> f64 {
        self.variant_total as f64 / self.default_total.max(1) as f64
    }
}

/// Runs the sweep and renders its table.
pub fn run(cfg: &AblationConfig) -> (Vec<AblationRow>, Table) {
    let mut points = Vec::new();
    for &t in &cfg.cal_lens {
        for &g in &cfg.cal_costs {
            points.push((t, g));
        }
    }

    let rows: Vec<Vec<AblationRow>> = run_parallel(points, None, |&(t, g)| {
        let mut a1 = (0u128, 0u128);
        let mut a2 = (0u128, 0u128);
        let mut a3 = (0u128, 0u128);
        for &fam in &cfg.families {
            for seed in 0..cfg.seeds {
                let s = seed * 131 + 7;
                // A1: unweighted single machine.
                let u = fam.instance(s, cfg.n, WeightModel::Unit, t);
                a1.0 += run_online(&u, g, &mut Alg1::new()).cost;
                a1.1 += run_online(&u, g, &mut Alg1::without_immediate_rule()).cost;
                // A2: weighted single machine.
                let w = fam.instance(
                    s,
                    cfg.n,
                    WeightModel::Pareto {
                        alpha: 1.2,
                        cap: 64,
                    },
                    t,
                );
                a2.0 += run_online(&w, g, &mut Alg2::new()).cost;
                a2.1 += run_online(&w, g, &mut Alg2::lightest_first()).cost;
                // A3: unweighted multi machine (collisions allowed).
                let m = make_instance(
                    fam.releases(s, cfg.n),
                    WeightModel::Unit,
                    s,
                    cfg.machines,
                    t,
                );
                a3.0 += run_alg3_practical(&m, g).cost;
                a3.1 += run_online(&m, g, &mut Alg3::new()).cost;
            }
        }
        vec![
            AblationRow {
                ablation: "A1 immediate-rule off",
                cal_len: t,
                cal_cost: g,
                default_total: a1.0,
                variant_total: a1.1,
            },
            AblationRow {
                ablation: "A2 lightest-first",
                cal_len: t,
                cal_cost: g,
                default_total: a2.0,
                variant_total: a2.1,
            },
            AblationRow {
                ablation: "A3 spec vs practical",
                cal_len: t,
                cal_cost: g,
                default_total: a3.0,
                variant_total: a3.1,
            },
        ]
    });
    let rows: Vec<AblationRow> = rows.into_iter().flatten().collect();

    let mut table = Table::new(
        "E10: design-choice ablations (ratio > 1 = paper default wins)",
        &[
            "ablation",
            "T",
            "G",
            "default cost",
            "variant cost",
            "variant/default",
        ],
    );
    for r in &rows {
        table.row(vec![
            r.ablation.to_string(),
            r.cal_len.to_string(),
            r.cal_cost.to_string(),
            r.default_total.to_string(),
            r.variant_total.to_string(),
            fmt_f(r.ratio()),
        ]);
    }
    (rows, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_runs_and_a2_default_wins() {
        let cfg = AblationConfig {
            families: vec![Family::Poisson { rate: 0.6 }],
            n: 15,
            cal_lens: vec![3],
            cal_costs: vec![8],
            seeds: 3,
            machines: 2,
        };
        let (rows, table) = run(&cfg);
        assert_eq!(rows.len(), 3);
        let a2 = rows.iter().find(|r| r.ablation.starts_with("A2")).unwrap();
        assert!(
            a2.ratio() >= 1.0,
            "heaviest-first should not lose to lightest-first: {}",
            a2.ratio()
        );
        // A3: spec mode pays at least the practical mode's flow.
        let a3 = rows.iter().find(|r| r.ablation.starts_with("A3")).unwrap();
        assert!(a3.ratio() >= 1.0 - 1e-9);
        assert!(table.render().contains("E10"));
    }
}
