//! Small statistics toolkit for experiment summaries.

/// Summary statistics over a sample of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 95th percentile (nearest rank).
    pub p95: f64,
}

impl Summary {
    /// Computes a summary; returns `None` for an empty sample or one
    /// containing a NaN (a poisoned sample has no meaningful order
    /// statistics, and silently sorting NaNs would corrupt them).
    pub fn from_values(values: &[f64]) -> Option<Summary> {
        if values.is_empty() || values.iter().any(|v| v.is_nan()) {
            return None;
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        Some(Summary {
            count,
            mean,
            min: sorted[0],
            max: sorted[count - 1],
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
        })
    }
}

/// Nearest-rank percentile over a pre-sorted slice.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=1.0).contains(&q));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Least-squares slope & intercept of `y = a + b·x`.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let b = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let a = (sy - b * sx) / n;
    (a, b)
}

/// Fits `y ≈ c·x^e` by regressing `ln y` on `ln x`; returns the exponent
/// `e`. Used by the E6 runtime-scaling study.
pub fn power_law_exponent(xs: &[f64], ys: &[f64]) -> f64 {
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    linear_fit(&lx, &ly).1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::from_values(&[3.0, 1.0, 2.0, 4.0]).unwrap();
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.p95, 4.0);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::from_values(&[]).is_none());
    }

    #[test]
    fn summary_rejects_nan() {
        assert!(Summary::from_values(&[1.0, f64::NAN, 3.0]).is_none());
        assert!(Summary::from_values(&[f64::NAN]).is_none());
        // Infinities are ordered, not poisoned: they summarize fine.
        let s = Summary::from_values(&[1.0, f64::INFINITY]).unwrap();
        assert_eq!(s.max, f64::INFINITY);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::from_values(&[7.5]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 7.5);
        assert_eq!(s.min, 7.5);
        assert_eq!(s.max, 7.5);
        assert_eq!(s.p50, 7.5);
        assert_eq!(s.p95, 7.5);
    }

    #[test]
    fn summary_two_samples() {
        let s = Summary::from_values(&[10.0, 2.0]).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, 6.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 10.0);
        // Nearest rank: ceil(0.5 * 2) = 1 -> first sorted value.
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.p95, 10.0);
    }

    #[test]
    fn summary_all_equal_values() {
        let s = Summary::from_values(&[4.0; 9]).unwrap();
        assert_eq!(s.count, 9);
        assert_eq!(s.mean, 4.0);
        assert_eq!((s.min, s.max, s.p50, s.p95), (4.0, 4.0, 4.0, 4.0));
    }

    #[test]
    fn percentile_single_and_two_sample_edges() {
        assert_eq!(percentile(&[42.0], 0.0), 42.0);
        assert_eq!(percentile(&[42.0], 0.5), 42.0);
        assert_eq!(percentile(&[42.0], 1.0), 42.0);
        let two = [1.0, 9.0];
        assert_eq!(percentile(&two, 0.0), 1.0);
        assert_eq!(percentile(&two, 0.5), 1.0); // nearest rank 1
        assert_eq!(percentile(&two, 0.51), 9.0); // rank 2
        assert_eq!(percentile(&two, 1.0), 9.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
    }

    #[test]
    fn linear_fit_exact_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [5.0, 7.0, 9.0, 11.0]; // y = 3 + 2x
        let (a, b) = linear_fit(&xs, &ys);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn power_law_recovers_cubic() {
        let xs: Vec<f64> = (1..=8).map(|x| x as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.5 * x.powi(3)).collect();
        let e = power_law_exponent(&xs, &ys);
        assert!((e - 3.0).abs() < 1e-9, "exponent {e}");
    }
}
