//! # calib-sim
//!
//! Experiment harness for the calibration-scheduling reproduction: workload
//! sweeps, a crossbeam-based parallel runner, summary statistics, ASCII
//! result tables, and the E1–E10 experiment suite defined in DESIGN.md.
//!
//! ```
//! use calib_sim::experiments::lower_bound::{run, LowerBoundConfig};
//!
//! let cfg = LowerBoundConfig { params: vec![(4, 16)] };
//! let (rows, table) = run(&cfg);
//! assert!(!rows.is_empty());
//! println!("{}", table.render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod experiments;
pub mod runner;
pub mod stats;
pub mod table;

pub use runner::run_parallel;
pub use stats::{linear_fit, percentile, power_law_exponent, Summary};
pub use table::{fmt_f, Table};
