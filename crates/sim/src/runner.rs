//! Parallel experiment runner built on `std::thread::scope`.
//!
//! Experiment sweeps are embarrassingly parallel (one independent solve per
//! parameter point); this runner fans a work list out over the available
//! cores while preserving input order in the results. Each worker buffers
//! its `(index, result)` pairs locally and the buffers are merged after the
//! scope ends — no shared lock is touched while work is running, so slow
//! items never serialize the fast ones behind a mutex.

use std::sync::atomic::{AtomicUsize, Ordering};

use calib_core::obs::{CounterSnapshot, Counters, SpanRecord, SpanTimer};

/// Runs `f` over `items` on up to `workers` threads (defaults to the number
/// of available cores), returning results in input order.
pub fn run_parallel<T, R, F>(items: Vec<T>, workers: Option<usize>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .clamp(1, n);

    if workers == 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);

    let mut buffers: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            return local;
                        }
                        local.push((i, f(&items[i])));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(buf) => buf,
                // Re-raise a worker's panic on the caller's thread instead
                // of silently dropping its indices.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(n);
    for buf in &mut buffers {
        indexed.append(buf);
    }
    debug_assert_eq!(indexed.len(), n, "every index processed exactly once");
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// [`run_parallel`] with metrics: every worker shares one [`Counters`]
/// registry (passed to `f` alongside each item), and the whole sweep is
/// wall-clock timed. Returns the ordered results, the aggregated counter
/// snapshot, and the sweep's span.
///
/// The registry is atomic, so workers feed it concurrently without any lock;
/// per-cell detail (when an experiment wants it) is the closure's business —
/// build a local `Counters` per item and flush or return its snapshot.
pub fn run_parallel_metered<T, R, F>(
    items: Vec<T>,
    workers: Option<usize>,
    f: F,
) -> (Vec<R>, CounterSnapshot, SpanRecord)
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T, &Counters) -> R + Sync,
{
    let counters = Counters::new();
    let timer = SpanTimer::start("run_parallel_metered");
    let results = run_parallel(items, workers, |item| f(item, &counters));
    (results, counters.snapshot(), timer.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..200).collect();
        let out = run_parallel(items.clone(), Some(8), |&x| x * x);
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn single_worker_path() {
        let out = run_parallel(vec![1, 2, 3], Some(1), |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = run_parallel(Vec::<i32>::new(), None, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn heavier_than_workers() {
        // More items than threads; all complete exactly once.
        let out = run_parallel((0..1000).collect::<Vec<i32>>(), Some(3), |&x| x % 7);
        assert_eq!(out.len(), 1000);
        assert_eq!(out[13], 13 % 7);
    }

    #[test]
    fn preserves_order_under_contention() {
        // Skewed per-item cost: early items are slow, late items are fast, so
        // fast workers finish many late items while a slow worker still holds
        // early ones. Order must still come out exactly as the input.
        let items: Vec<u64> = (0..256).collect();
        let out = run_parallel(items.clone(), Some(8), |&x| {
            if x % 16 == 0 {
                // Busy work, deterministic and untrimmable.
                let mut acc = x;
                for i in 0..200_000u64 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                std::hint::black_box(acc);
            }
            x * 3
        });
        let expect: Vec<u64> = items.iter().map(|x| x * 3).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn metered_aggregates_counters_across_workers() {
        let items: Vec<u64> = (0..100).collect();
        let (out, snap, span) = run_parallel_metered(items, Some(4), |&x, c| {
            c.events(1);
            c.dispatches(x % 2);
            x
        });
        assert_eq!(out.len(), 100);
        assert_eq!(snap.events, 100);
        assert_eq!(snap.dispatches, 50);
        assert_eq!(span.label, "run_parallel_metered");
    }
}
