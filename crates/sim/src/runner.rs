//! Parallel experiment runner built on crossbeam scoped threads.
//!
//! Experiment sweeps are embarrassingly parallel (one independent solve per
//! parameter point); this runner fans a work list out over the available
//! cores while preserving input order in the results. Results are collected
//! through a `parking_lot`-guarded vector — no async machinery, no unsafe.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Runs `f` over `items` on up to `workers` threads (defaults to the number
/// of available cores), returning results in input order.
pub fn run_parallel<T, R, F>(items: Vec<T>, workers: Option<usize>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
        })
        .clamp(1, n);

    if workers == 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                slots.lock()[i] = Some(r);
            });
        }
    })
    .expect("worker panicked");

    slots
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every index processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..200).collect();
        let out = run_parallel(items.clone(), Some(8), |&x| x * x);
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn single_worker_path() {
        let out = run_parallel(vec![1, 2, 3], Some(1), |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = run_parallel(Vec::<i32>::new(), None, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn heavier_than_workers() {
        // More items than threads; all complete exactly once.
        let out = run_parallel((0..1000).collect::<Vec<i32>>(), Some(3), |&x| x % 7);
        assert_eq!(out.len(), 1000);
        assert_eq!(out[13], 13 % 7);
    }
}
