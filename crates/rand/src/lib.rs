//! In-repo stand-in for the `rand` crate.
//!
//! The build environment is offline, so the workspace vendors the *small*
//! slice of the `rand` 0.8 API its generators and tests actually use:
//!
//! * [`rngs::StdRng`] — a deterministic 64-bit PRNG (SplitMix64 core);
//! * [`SeedableRng::seed_from_u64`] — the only seeding path used here;
//! * [`Rng::gen_range`] over integer/float `Range`/`RangeInclusive`;
//! * [`Rng::gen_bool`].
//!
//! The streams differ from upstream `rand`'s ChaCha-based `StdRng` — every
//! consumer in this workspace treats seeded output as an arbitrary but
//! reproducible stream, never as a specific sequence, so only determinism
//! matters. Statistical quality of SplitMix64 is far beyond what synthetic
//! workload generation needs.

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A type that can be sampled uniformly from a range by an RNG
/// (the workspace's subset of `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draws a uniform sample; panics on an empty range.
    fn sample_single(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

// `u128`/`i128` ranges (used by cost-typed sweeps) sample from the low
// 64 bits of span arithmetic — spans beyond 2^64 never occur here.
impl SampleRange<u128> for Range<u128> {
    fn sample_single(self, rng: &mut dyn RngCore) -> u128 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end - self.start;
        self.start + (rng.next_u64() as u128) % span
    }
}
impl SampleRange<u128> for RangeInclusive<u128> {
    fn sample_single(self, rng: &mut dyn RngCore) -> u128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let span = hi - lo + 1;
        lo + (rng.next_u64() as u128) % span
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}
impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single(self, rng: &mut dyn RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

impl<T: RngCore> Rng for T {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Deterministic RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix so nearby seeds do not produce correlated first draws.
            let mut rng = StdRng {
                state: seed ^ 0x1656_7a09_e667_f3bc,
            };
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: i64 = rng.gen_range(-5..7);
            assert!((-5..7).contains(&x));
            let y: u64 = rng.gen_range(1..=4);
            assert!((1..=4).contains(&y));
            let z: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&z));
            let u: usize = rng.gen_range(0..=0);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn ranges_cover_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        // Clamping: out-of-range probabilities do not panic.
        assert!(rng.gen_bool(2.0));
        assert!(!rng.gen_bool(-1.0));
    }
}
