//! The brace/token-tree layer: delimiter matching and nesting depth on top
//! of the flat [`crate::lexer`] stream.
//!
//! The cross-file rules (L6–L9) need *structure* that a flat token stream
//! cannot give them — "which `}` closes this function body", "is this
//! token inside that `match` scrutinee" — without the weight of a real
//! parser. The token tree provides exactly that: for every `(`/`[`/`{`
//! token the index of its matching closer (and vice versa), plus a nesting
//! depth per token. Angle brackets are deliberately **not** treated as
//! delimiters: `<` is ambiguous between generics and comparison, and none
//! of the rules need generic grouping.
//!
//! Building is total in the same spirit as the lexer — it never panics —
//! but unlike the lexer it *reports* imbalance via [`TtreeError`], because
//! a rule walking an unbalanced tree would silently mis-scope its
//! findings. All workspace sources compile, so they all balance; the
//! property test in `tests/ttree_prop.rs` holds the builder to that (and
//! to byte-identical detokenization) over every `.rs` file in the repo.

use crate::lexer::{Token, TokenKind};

/// Delimiter matching and nesting information for one token stream.
#[derive(Debug, Clone)]
pub struct TokenTree {
    /// For each token index: the index of the matching delimiter (`(`→`)`,
    /// `{`→`}`, `[`→`]`, and each closer back to its opener). `None` for
    /// non-delimiter tokens.
    pub match_of: Vec<Option<usize>>,
    /// For each token index: how many delimiter groups enclose it. Open
    /// and close tokens carry the *outer* depth (the depth of the group's
    /// parent), so a group's children are exactly the tokens at
    /// `depth + 1` between opener and closer.
    pub depth: Vec<u32>,
}

/// Why a token stream failed to form a tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TtreeError {
    /// 1-based source line of the offending delimiter (or the last line
    /// for an unclosed group at end of input).
    pub line: u32,
    /// What went wrong, naming the delimiter.
    pub message: String,
}

impl std::fmt::Display for TtreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

fn closer_for(open: &str) -> &'static str {
    match open {
        "(" => ")",
        "[" => "]",
        _ => "}",
    }
}

/// Builds the token tree for `tokens`. Comments, strings, and char
/// literals are opaque single tokens (the lexer guarantees that), so only
/// [`TokenKind::Punct`] delimiters participate.
pub fn build(tokens: &[Token<'_>]) -> Result<TokenTree, TtreeError> {
    let mut match_of = vec![None; tokens.len()];
    let mut depth = vec![0u32; tokens.len()];
    // Open-delimiter stack: (token index, expected closer).
    let mut stack: Vec<(usize, &'static str)> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Punct {
            depth[i] = truncate_depth(stack.len());
            continue;
        }
        match t.text {
            "(" | "[" | "{" => {
                depth[i] = truncate_depth(stack.len());
                stack.push((i, closer_for(t.text)));
            }
            ")" | "]" | "}" => {
                let Some((open, expected)) = stack.pop() else {
                    return Err(TtreeError {
                        line: t.line,
                        message: format!("unmatched closing `{}`", t.text),
                    });
                };
                if t.text != expected {
                    return Err(TtreeError {
                        line: t.line,
                        message: format!(
                            "mismatched delimiter: `{}` on line {} closed by `{}`",
                            tokens[open].text, tokens[open].line, t.text
                        ),
                    });
                }
                match_of[i] = Some(open);
                match_of[open] = Some(i);
                depth[i] = truncate_depth(stack.len());
            }
            _ => depth[i] = truncate_depth(stack.len()),
        }
    }
    if let Some(&(open, _)) = stack.last() {
        return Err(TtreeError {
            line: tokens[open].line,
            message: format!("unclosed `{}`", tokens[open].text),
        });
    }
    Ok(TokenTree { match_of, depth })
}

/// Nesting deeper than `u32::MAX` cannot occur in real sources; saturate
/// rather than truncate so the builder stays total.
fn truncate_depth(d: usize) -> u32 {
    u32::try_from(d).unwrap_or(u32::MAX)
}

/// Byte offset of `text` (a lexer token slice) within `src`. Token texts
/// are always subslices of the lexed source, so pointer arithmetic
/// recovers the exact position without widening the `Token` struct.
pub fn offset_in(src: &str, text: &str) -> usize {
    // lint:allow(narrowing-cast): pointer-to-usize, both from one slice
    (text.as_ptr() as usize).wrapping_sub(src.as_ptr() as usize)
}

/// Reconstructs the source from its token stream: each token's exact text
/// plus the original inter-token gaps. By construction this is
/// byte-identical to `src` *iff* every token is a correctly positioned
/// subslice and no token overlaps another — which is precisely the lexer
/// contract the property test pins down.
pub fn detokenize(src: &str, tokens: &[Token<'_>]) -> String {
    let mut out = String::with_capacity(src.len());
    let mut pos = 0usize;
    for t in tokens {
        let start = offset_in(src, t.text);
        if start >= pos && start <= src.len() {
            out.push_str(&src[pos..start]);
        }
        out.push_str(t.text);
        pos = start + t.text.len();
    }
    if pos <= src.len() {
        out.push_str(&src[pos..]);
    }
    out
}

/// Returns the first inter-token gap that contains non-whitespace, as
/// `(byte offset, gap text)` — evidence the lexer silently swallowed
/// source bytes. `None` means every skipped byte was whitespace.
pub fn non_whitespace_gap<'a>(src: &'a str, tokens: &[Token<'_>]) -> Option<(usize, &'a str)> {
    let mut pos = 0usize;
    for t in tokens {
        let start = offset_in(src, t.text);
        if start > pos {
            let gap = &src[pos..start];
            if !gap.chars().all(char::is_whitespace) {
                return Some((pos, gap));
            }
        }
        pos = start + t.text.len();
    }
    if pos < src.len() {
        let gap = &src[pos..];
        if !gap.chars().all(char::is_whitespace) {
            return Some((pos, gap));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn matches_nested_delimiters_and_depths() {
        let src = "fn f(a: u64) { g([a, (a)]) }";
        let toks = lex(src);
        let tree = build(&toks).unwrap();
        // Every opener pairs with a closer of the same kind, symmetric.
        for (i, m) in tree.match_of.iter().enumerate() {
            if let Some(j) = m {
                assert_eq!(tree.match_of[*j], Some(i));
            }
        }
        // The outer fn body braces are at depth 0, their contents at 1+.
        let open_brace = toks.iter().position(|t| t.text == "{").unwrap();
        let close_brace = tree.match_of[open_brace].unwrap();
        assert_eq!(toks[close_brace].text, "}");
        assert_eq!(tree.depth[open_brace], 0);
        let inner = toks.iter().position(|t| t.text == "g").unwrap();
        assert_eq!(tree.depth[inner], 1);
    }

    #[test]
    fn reports_imbalance_without_panicking() {
        let unclosed = build(&lex("fn f() { (")).unwrap_err();
        assert!(unclosed.message.contains("unclosed"));
        let unmatched = build(&lex("}")).unwrap_err();
        assert!(unmatched.message.contains("unmatched"));
        let mismatched = build(&lex("( ]")).unwrap_err();
        assert!(mismatched.message.contains("mismatched"));
    }

    #[test]
    fn braces_in_strings_comments_and_chars_are_opaque() {
        let src = "let s = \"{ ( [\"; // } extra\nlet c = '{'; /* ) */ f()";
        let toks = lex(src);
        let tree = build(&toks).unwrap();
        let parens = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.text == "(" || t.text == ")")
            .count();
        assert_eq!(parens, 2, "{toks:?}");
        let _ = tree;
    }

    #[test]
    fn detokenize_round_trips_byte_identically() {
        let srcs = [
            "fn f(a: u64) -> u128 {\n    // exact\n    u128::from(a) * 3\n}\n",
            "let s = r#\"raw { \"#; let c = 'é'; /* nested /* */ */",
            "",
            "   \n\t ",
        ];
        for src in srcs {
            let toks = lex(src);
            assert_eq!(detokenize(src, &toks), src);
            assert_eq!(non_whitespace_gap(src, &toks), None, "{src:?}");
        }
    }
}
