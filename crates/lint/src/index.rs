//! The workspace symbol index: `fn` items (with their `impl` owner), enum
//! variants, struct fields, and string-literal tables, extracted per file
//! from the token tree.
//!
//! This is the data layer the cross-file rules (L6–L9) query. It is *not*
//! a type-checked model — symbols are recognized structurally from the
//! token stream (`fn name (…) … {`, `impl Name {`, `enum Name {`,
//! `struct Name {`) — which is exactly enough to answer the questions the
//! rules ask: "which tokens form the body of `apply_record`?", "what are
//! the variants of `JournalRecord`?", "which kebab-case string literals
//! does `protocol.rs` contain, and inside which function?".

use crate::lexer::{lex, Token, TokenKind};
use crate::ttree::{self, TokenTree};
use crate::walk::WorkspaceFile;

/// One `fn` item: its name, owning `impl` type (if any), and body extent.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The `impl` type the function lives in, when inside an `impl` block.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body: `body.0` is the `{`, `body.1` the
    /// matching `}`. Trait-method *declarations* (ending in `;`) carry no
    /// body and are not indexed.
    pub body: (usize, usize),
    /// Whether the item sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// One `enum` item with its variant names in declaration order.
#[derive(Debug, Clone)]
pub struct EnumItem {
    /// The enum's name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// Variant names, payloads stripped.
    pub variants: Vec<(String, u32)>,
}

/// One `struct` item with its named fields in declaration order.
#[derive(Debug, Clone)]
pub struct StructItem {
    /// The struct's name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Field names (tuple structs index none).
    pub fields: Vec<(String, u32)>,
}

/// One string literal, unquoted, with its location and enclosing function.
#[derive(Debug, Clone)]
pub struct StrLit {
    /// The literal's contents with the surrounding quotes stripped (raw
    /// and byte prefixes removed as well).
    pub value: String,
    /// 1-based source line.
    pub line: u32,
    /// Name of the function whose body contains the literal, if any.
    pub in_fn: Option<String>,
    /// Whether the literal sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// Everything indexed from one source file. Tokens and tree are kept so
/// rules can walk bodies without re-lexing.
pub struct FileIndex<'a> {
    /// The file this index describes.
    pub file: &'a WorkspaceFile,
    /// The full token stream.
    pub tokens: Vec<Token<'a>>,
    /// Delimiter matching over [`FileIndex::tokens`].
    pub tree: TokenTree,
    /// Per-token `#[cfg(test)]` membership.
    pub test_mask: Vec<bool>,
    /// Indexed `fn` items, in source order.
    pub fns: Vec<FnItem>,
    /// Indexed enums.
    pub enums: Vec<EnumItem>,
    /// Indexed structs.
    pub structs: Vec<StructItem>,
    /// Every string literal in the file.
    pub strings: Vec<StrLit>,
}

impl<'a> FileIndex<'a> {
    /// Builds the index for one file. Returns `None` when the file does
    /// not form a balanced token tree (it cannot compile either; the
    /// per-line rules still cover it).
    pub fn build(file: &'a WorkspaceFile) -> Option<FileIndex<'a>> {
        let tokens = lex(&file.src);
        let tree = ttree::build(&tokens).ok()?;
        let test_mask = crate::rules::test_region_mask(&tokens);
        let mut idx = FileIndex {
            file,
            tokens,
            tree,
            test_mask,
            fns: Vec::new(),
            enums: Vec::new(),
            structs: Vec::new(),
            strings: Vec::new(),
        };
        idx.scan_items();
        idx.scan_strings();
        Some(idx)
    }

    /// The `fn` item (by index order) whose body contains token `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnItem> {
        self.fns.iter().rfind(|f| f.body.0 <= i && i <= f.body.1)
    }

    /// The named fn's body token range, searching lib code first.
    pub fn fn_named(&self, name: &str, owner: Option<&str>) -> Option<&FnItem> {
        self.fns
            .iter()
            .find(|f| f.name == name && (owner.is_none() || f.owner.as_deref() == owner))
    }

    /// Non-comment token indices of a body range, inclusive of delimiters.
    pub fn code_in(&self, body: (usize, usize)) -> impl Iterator<Item = usize> + '_ {
        (body.0..=body.1.min(self.tokens.len().saturating_sub(1)))
            .filter(move |&i| self.tokens[i].kind != TokenKind::Comment)
    }

    fn scan_items(&mut self) {
        // Track the innermost `impl` block covering each position via a
        // stack of (close-brace index, type name).
        let mut impl_stack: Vec<(usize, String)> = Vec::new();
        let n = self.tokens.len();
        let mut i = 0usize;
        while i < n {
            while impl_stack.last().is_some_and(|(end, _)| i > *end) {
                impl_stack.pop();
            }
            let t = &self.tokens[i];
            if t.kind != TokenKind::Ident {
                i += 1;
                continue;
            }
            match t.text {
                "impl" => {
                    if let Some((name, open)) = self.impl_header(i) {
                        if let Some(close) = self.tree.match_of[open] {
                            impl_stack.push((close, name));
                        }
                        i = open + 1;
                        continue;
                    }
                }
                "fn" => {
                    if let Some(item) = self.fn_item(i, impl_stack.last().map(|(_, n)| n.clone())) {
                        let next = item.body.0 + 1;
                        self.fns.push(item);
                        i = next;
                        continue;
                    }
                }
                "enum" => {
                    if let Some(item) = self.enum_item(i) {
                        self.enums.push(item);
                    }
                }
                "struct" => {
                    if let Some(item) = self.struct_item(i) {
                        self.structs.push(item);
                    }
                }
                _ => {}
            }
            i += 1;
        }
        // Bodies nest (closures, inner fns); `enclosing_fn` picks the
        // innermost via `.last()`, which requires source order. `scan`
        // already emits in source order of the `fn` keyword.
    }

    /// Parses `impl [<generics>] Type [for Trait] {`, returning the type
    /// name and the index of the opening brace.
    fn impl_header(&self, impl_kw: usize) -> Option<(String, usize)> {
        let mut name: Option<&str> = None;
        let mut j = impl_kw + 1;
        let n = self.tokens.len();
        while j < n {
            let t = &self.tokens[j];
            match t.kind {
                TokenKind::Comment => {}
                TokenKind::Ident if t.text == "for" => {
                    // `impl Trait for Type`: the type follows.
                    name = None;
                }
                TokenKind::Ident if t.text != "where" && name.is_none() => {
                    name = Some(t.text);
                }
                TokenKind::Punct if t.text == "{" => {
                    return name.map(|s| (s.to_string(), j));
                }
                TokenKind::Punct if t.text == ";" => return None,
                TokenKind::Punct if t.text == "<" || t.text == "(" || t.text == "[" => {
                    // Skip generic params / tuple types wholesale. `<` is
                    // not tree-matched, so balance it manually.
                    if t.text == "<" {
                        let mut depth = 1i32;
                        j += 1;
                        while j < n && depth > 0 {
                            match self.tokens[j].text {
                                "<" => depth += 1,
                                ">" => depth -= 1,
                                ">>" => depth -= 2,
                                "{" | ";" => return None,
                                _ => {}
                            }
                            j += 1;
                        }
                        continue;
                    }
                    if let Some(close) = self.tree.match_of[j] {
                        j = close;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        None
    }

    /// Parses `fn name (…) … {`, returning the item. `fn_kw` points at the
    /// `fn` keyword.
    fn fn_item(&self, fn_kw: usize, owner: Option<String>) -> Option<FnItem> {
        let n = self.tokens.len();
        // Name: the next code token must be an identifier.
        let mut j = fn_kw + 1;
        while j < n && self.tokens[j].kind == TokenKind::Comment {
            j += 1;
        }
        let name_tok = self.tokens.get(j)?;
        if name_tok.kind != TokenKind::Ident {
            return None;
        }
        let name = name_tok.text.to_string();
        // Find the parameter list `(…)`, skipping generics.
        j += 1;
        while j < n && self.tokens[j].text != "(" {
            if self.tokens[j].text == "{" || self.tokens[j].text == ";" {
                return None;
            }
            j += 1;
        }
        let params_close = self.tree.match_of.get(j).copied().flatten()?;
        // The body is the first `{` after the signature; a `;` first means
        // a bodyless declaration. Return-type/where-clause tokens cannot
        // contain braces in this workspace's style.
        let mut k = params_close + 1;
        while k < n {
            match self.tokens[k].text {
                "{" => {
                    let close = self.tree.match_of[k]?;
                    return Some(FnItem {
                        name,
                        owner,
                        line: self.tokens[fn_kw].line,
                        body: (k, close),
                        in_test: self.test_mask.get(fn_kw).copied().unwrap_or(false),
                    });
                }
                ";" => return None,
                _ => k += 1,
            }
        }
        None
    }

    /// Parses `enum Name { Variant, Variant(…), Variant { … }, … }`.
    fn enum_item(&self, enum_kw: usize) -> Option<EnumItem> {
        let (name, open) = self.braced_item_header(enum_kw)?;
        let close = self.tree.match_of[open]?;
        let inner = self.tree.depth[open] + 1;
        let mut variants = Vec::new();
        let mut expecting = true;
        let mut j = open + 1;
        while j < close {
            let t = &self.tokens[j];
            if t.kind == TokenKind::Comment || self.tree.depth[j] > inner {
                j += 1;
                continue;
            }
            match (t.kind, t.text) {
                // Skip an attribute's `#[…]` group wholesale.
                (TokenKind::Punct, "#") if self.tokens.get(j + 1).map(|t| t.text) == Some("[") => {
                    j = self.tree.match_of[j + 1].unwrap_or(j + 1);
                }
                (TokenKind::Ident, _) if expecting => {
                    variants.push((t.text.to_string(), t.line));
                    expecting = false;
                }
                (TokenKind::Punct, ",") => expecting = true,
                _ => {}
            }
            j += 1;
        }
        Some(EnumItem {
            name,
            line: self.tokens[enum_kw].line,
            variants,
        })
    }

    /// Parses `struct Name { field: Type, … }`. Tuple and unit structs
    /// yield an empty field list.
    fn struct_item(&self, struct_kw: usize) -> Option<StructItem> {
        let (name, open) = self.braced_item_header(struct_kw)?;
        let close = self.tree.match_of[open]?;
        let inner = self.tree.depth[open] + 1;
        let mut fields = Vec::new();
        let mut j = open + 1;
        while j < close {
            let t = &self.tokens[j];
            if t.kind == TokenKind::Comment || self.tree.depth[j] > inner {
                j += 1;
                continue;
            }
            if t.kind == TokenKind::Punct && t.text == "#" {
                if self.tokens.get(j + 1).map(|t| t.text) == Some("[") {
                    j = self.tree.match_of[j + 1].unwrap_or(j + 1);
                }
                j += 1;
                continue;
            }
            // A field is an identifier directly followed by `:` at field
            // depth (`pub` and visibility groups fall through naturally).
            if t.kind == TokenKind::Ident {
                let mut k = j + 1;
                while k < close && self.tokens[k].kind == TokenKind::Comment {
                    k += 1;
                }
                if self.tokens.get(k).map(|t| t.text) == Some(":") && self.tree.depth[k] == inner {
                    fields.push((t.text.to_string(), t.line));
                }
            }
            j += 1;
        }
        Some(StructItem {
            name,
            line: self.tokens[struct_kw].line,
            fields,
        })
    }

    /// Shared header parse for `enum`/`struct`: `kw Name [<generics>] {`,
    /// returning the name and opening-brace index. Tuple structs
    /// (`struct X(…);`) return their `(` — callers see no named fields.
    fn braced_item_header(&self, kw: usize) -> Option<(String, usize)> {
        let n = self.tokens.len();
        let mut j = kw + 1;
        while j < n && self.tokens[j].kind == TokenKind::Comment {
            j += 1;
        }
        let name_tok = self.tokens.get(j)?;
        if name_tok.kind != TokenKind::Ident {
            return None;
        }
        let name = name_tok.text.to_string();
        j += 1;
        while j < n {
            match self.tokens[j].text {
                "{" => return Some((name, j)),
                "(" => {
                    // Tuple struct: no named fields; report its paren group
                    // so the caller scans an empty interior… except tuple
                    // groups contain types, so return None instead.
                    return None;
                }
                ";" => return None,
                "<" => {
                    let mut depth = 1i32;
                    j += 1;
                    while j < n && depth > 0 {
                        match self.tokens[j].text {
                            "<" => depth += 1,
                            ">" => depth -= 1,
                            ">>" => depth -= 2,
                            ";" => return None,
                            _ => {}
                        }
                        j += 1;
                    }
                    continue;
                }
                _ => {}
            }
            j += 1;
        }
        None
    }

    fn scan_strings(&mut self) {
        let mut strings = Vec::new();
        for (i, t) in self.tokens.iter().enumerate() {
            if t.kind != TokenKind::Str {
                continue;
            }
            let value = unquote(t.text);
            strings.push(StrLit {
                value,
                line: t.line,
                in_fn: self.enclosing_fn(i).map(|f| f.name.clone()),
                in_test: self.test_mask.get(i).copied().unwrap_or(false),
            });
        }
        self.strings = strings;
    }
}

/// Strips the quotes (and any `r`/`b`/`c`/`#` dressing) from a string
/// literal's source text. Only `\"` is unescaped — the exhaustiveness
/// rule must see the wire key `"cal_len"` inside hand-written serializer
/// fragments like `"{\"cal_len\":"`; other escape sequences are left as
/// written because the rules only compare kebab codes and quoted keys,
/// neither of which contain them.
pub(crate) fn unquote(text: &str) -> String {
    let inner = text.trim_start_matches(['r', 'b', 'c']).trim_matches('#');
    let inner = inner.strip_prefix('"').unwrap_or(inner);
    let inner = inner.strip_suffix('"').unwrap_or(inner);
    inner.replace("\\\"", "\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::FileKind;

    fn ws(src: &str) -> WorkspaceFile {
        WorkspaceFile {
            rel: "crates/serve/src/fixture.rs".to_string(),
            crate_name: "serve".to_string(),
            kind: FileKind::Lib,
            src: src.to_string(),
        }
    }

    #[test]
    fn indexes_fns_with_impl_owners() {
        let file = ws("fn free() { helper(); }\n\
                       struct S { x: u64 }\n\
                       impl S {\n\
                           pub fn method(&self) -> u64 { self.x }\n\
                       }\n\
                       impl std::fmt::Display for S {\n\
                           fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }\n\
                       }\n");
        let idx = FileIndex::build(&file).unwrap();
        let names: Vec<(String, Option<String>)> = idx
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.owner.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free".to_string(), None),
                ("method".to_string(), Some("S".to_string())),
                ("fmt".to_string(), Some("S".to_string())),
            ]
        );
        assert_eq!(idx.structs[0].name, "S");
        assert_eq!(idx.structs[0].fields[0].0, "x");
    }

    #[test]
    fn indexes_enum_variants_with_payloads_stripped() {
        let file = ws("pub enum Record {\n\
                           /// doc\n\
                           Hello { tenant: String, seq: Option<u64> },\n\
                           Arrive(Vec<u64>),\n\
                           #[allow(dead_code)]\n\
                           Tick,\n\
                           Checkpoint(Box<State>),\n\
                       }\n");
        let idx = FileIndex::build(&file).unwrap();
        let vs: Vec<&str> = idx.enums[0]
            .variants
            .iter()
            .map(|(v, _)| v.as_str())
            .collect();
        assert_eq!(vs, vec!["Hello", "Arrive", "Tick", "Checkpoint"]);
    }

    #[test]
    fn string_table_records_enclosing_fn_and_test_regions() {
        let file = ws("fn reply() -> &'static str { \"seq-gap\" }\n\
                       #[cfg(test)]\n\
                       mod tests {\n\
                           fn t() { let _ = \"test-only-code\"; }\n\
                       }\n");
        let idx = FileIndex::build(&file).unwrap();
        let gap = idx.strings.iter().find(|s| s.value == "seq-gap").unwrap();
        assert_eq!(gap.in_fn.as_deref(), Some("reply"));
        assert!(!gap.in_test);
        let test = idx
            .strings
            .iter()
            .find(|s| s.value == "test-only-code")
            .unwrap();
        assert!(test.in_test);
    }

    #[test]
    fn struct_fields_skip_method_like_lookalikes() {
        let file = ws("pub struct CheckpointState {\n\
                           pub tenant: String,\n\
                           pub last_seq: Option<u64>,\n\
                           pub engine: EngineSnapshot,\n\
                       }\n\
                       pub struct Unit;\n");
        let idx = FileIndex::build(&file).unwrap();
        let fields: Vec<&str> = idx.structs[0]
            .fields
            .iter()
            .map(|(f, _)| f.as_str())
            .collect();
        assert_eq!(fields, vec!["tenant", "last_seq", "engine"]);
    }
}
