//! CLI driver for the invariant linter.
//!
//! ```text
//! cargo run -p calib-lint                      # gate against the baseline
//! cargo run -p calib-lint -- --list            # print every finding
//! cargo run -p calib-lint -- --update-baseline # ratchet the baseline
//! ```
//!
//! Exit status: 0 = clean against the baseline, 1 = new violations (or any
//! violation with `--no-baseline`), 2 = usage or I/O error — the same
//! contract as `calib-difftest`, so CI can assert on exact codes.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use calib_core::json::Json;
use calib_lint::baseline::{compare, Baseline, RatchetReport};
use calib_lint::lint_workspace;
use calib_lint::Finding;

#[derive(PartialEq, Eq, Clone, Copy)]
enum Format {
    Text,
    Json,
}

struct Options {
    root: PathBuf,
    baseline: Option<PathBuf>,
    update_baseline: bool,
    no_baseline: bool,
    list: bool,
    quiet: bool,
    format: Format,
}

/// The workspace root this binary was compiled in (crates/lint/../..).
fn compiled_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

impl Default for Options {
    fn default() -> Self {
        Options {
            root: compiled_root(),
            baseline: None,
            update_baseline: false,
            no_baseline: false,
            list: false,
            quiet: false,
            format: Format::Text,
        }
    }
}

const USAGE: &str = "\
calib-lint: workspace invariant linter (exact-arith, cast-safety, panic-freedom)

USAGE:
    calib-lint [OPTIONS]

OPTIONS:
    --root <dir>        workspace root to lint [default: this workspace]
    --baseline <path>   ratchet file [default: <root>/results/lint_baseline.json]
    --update-baseline   rewrite the baseline from the current findings
    --no-baseline       ignore the baseline; any finding is fatal
    --list              print every finding, grandfathered or not
    --quiet             suppress the per-rule summary
    --format <fmt>      output format: text (default) or json — json emits one
                        object {findings, summary, ratchet, pass} on stdout
    --help              print this help
";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--root" => opts.root = PathBuf::from(value("--root")?),
            "--baseline" => opts.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--update-baseline" => opts.update_baseline = true,
            "--no-baseline" => opts.no_baseline = true,
            "--list" => opts.list = true,
            "--quiet" | "-q" => opts.quiet = true,
            "--format" => {
                opts.format = match value("--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}` (text|json)")),
                }
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// One finding as a JSON object.
fn finding_json(f: &Finding) -> Json {
    Json::obj([
        ("rule", Json::Str(f.rule.name().to_string())),
        ("file", Json::Str(f.file.clone())),
        ("line", Json::UInt(u128::from(f.line))),
        ("message", Json::Str(f.message.clone())),
    ])
}

/// The whole run as one JSON document: every finding, per-rule totals,
/// the ratchet deltas (when a baseline was consulted), and the verdict.
fn run_json(findings: &[Finding], report: Option<&RatchetReport>, pass: bool) -> Json {
    let summary = Json::Obj(
        calib_lint::ALL_RULES
            .iter()
            .map(|r| {
                let n = findings.iter().filter(|f| f.rule == *r).count();
                (r.name().to_string(), Json::UInt(n as u128))
            })
            .filter(|(_, n)| !matches!(n, Json::UInt(0)))
            .collect(),
    );
    let delta_json = |d: &calib_lint::Delta| {
        Json::obj([
            ("rule", Json::Str(d.rule.clone())),
            ("file", Json::Str(d.file.clone())),
            ("baseline", Json::UInt(u128::from(d.baseline))),
            ("current", Json::UInt(u128::from(d.current))),
        ])
    };
    let ratchet = match report {
        None => Json::Null,
        Some(r) => Json::obj([
            (
                "regressions",
                Json::Arr(r.regressions.iter().map(delta_json).collect()),
            ),
            (
                "improvements",
                Json::Arr(r.improvements.iter().map(delta_json).collect()),
            ),
        ]),
    };
    Json::obj([
        (
            "findings",
            Json::Arr(findings.iter().map(finding_json).collect()),
        ),
        ("summary", summary),
        ("ratchet", ratchet),
        ("pass", Json::Bool(pass)),
    ])
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let findings = match lint_workspace(&opts.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if !opts.quiet && opts.format == Format::Text {
        let mut per_rule: Vec<(&str, usize)> = calib_lint::ALL_RULES
            .iter()
            .map(|r| (r.name(), findings.iter().filter(|f| f.rule == *r).count()))
            .collect();
        per_rule.retain(|(_, n)| *n > 0);
        let summary: Vec<String> = per_rule
            .iter()
            .map(|(name, n)| format!("{name}={n}"))
            .collect();
        println!(
            "calib-lint: {} finding(s) in {} [{}]",
            findings.len(),
            opts.root.display(),
            summary.join(", ")
        );
    }
    if opts.list && opts.format == Format::Text {
        for f in &findings {
            println!("  {f}");
        }
    }

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| opts.root.join("results/lint_baseline.json"));

    if opts.update_baseline {
        let base = Baseline::from_findings(&findings);
        if let Err(e) = base.save(&baseline_path) {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
        match opts.format {
            Format::Json => println!(
                "{}",
                Json::obj([
                    ("wrote", Json::Str(baseline_path.display().to_string())),
                    ("grandfathered", Json::UInt(u128::from(base.total()))),
                ])
                .to_string_compact()
            ),
            Format::Text => println!(
                "wrote {} ({} grandfathered finding(s))",
                baseline_path.display(),
                base.total()
            ),
        }
        return ExitCode::SUCCESS;
    }

    if opts.no_baseline {
        let pass = findings.is_empty();
        if opts.format == Format::Json {
            println!("{}", run_json(&findings, None, pass).to_string_compact());
            return if pass {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
        if pass {
            println!("OK: no findings");
            return ExitCode::SUCCESS;
        }
        if !opts.list {
            for f in &findings {
                println!("  {f}");
            }
        }
        eprintln!("{} finding(s) with --no-baseline", findings.len());
        return ExitCode::FAILURE;
    }

    let base = match Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("hint: run with --update-baseline to create it");
            return ExitCode::from(2);
        }
    };
    let report = compare(&base, &findings);

    if opts.format == Format::Json {
        let pass = report.is_pass();
        println!(
            "{}",
            run_json(&findings, Some(&report), pass).to_string_compact()
        );
        return if pass {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    for d in &report.improvements {
        println!(
            "  improved: [{}] {} {} -> {} (run --update-baseline to ratchet)",
            d.rule, d.file, d.baseline, d.current
        );
    }
    if report.is_pass() {
        println!("OK: no new violations ({} grandfathered)", base.total());
        return ExitCode::SUCCESS;
    }

    for d in &report.regressions {
        println!(
            "NEW VIOLATIONS: [{}] {}: baseline {}, now {}",
            d.rule, d.file, d.baseline, d.current
        );
        for f in findings
            .iter()
            .filter(|f| f.rule.name() == d.rule && f.file == d.file)
        {
            println!("    {f}");
        }
    }
    eprintln!(
        "{} (rule, file) pair(s) exceed the baseline — fix the new violations \
         or (if intentional and reviewed) run --update-baseline",
        report.regressions.len()
    );
    ExitCode::FAILURE
}
