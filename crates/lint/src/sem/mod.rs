//! The cross-file semantic pass: rules L6–L9.
//!
//! Unlike L1–L5, these rules need to see several files at once — the lock
//! acquisition graph spans `server.rs`/`metrics.rs`/`session.rs`, the wire
//! registry cross-checks `protocol.rs` against `SERVE.md` and `retry.rs`,
//! and journal exhaustiveness compares `journal.rs` enums against the
//! replay path and `protocol.rs` serializers against struct definitions in
//! two crates. The pass therefore runs once per workspace, after the
//! per-file rules, over [`crate::index::FileIndex`]es of every library
//! file.
//!
//! The pass is *silent* when the serve crate is absent: synthetic
//! mini-workspaces used by the walker/ratchet tests simply produce no
//! L6–L9 findings. `lint:allow(<rule>)` markers suppress semantic findings
//! exactly like per-line ones (same line or the line after the marker);
//! findings anchored in `DESIGN.md`/`SERVE.md` are not suppressible — they
//! mean the authoritative tables themselves are out of sync.

use std::path::Path;

use crate::index::FileIndex;
use crate::rules::{allow_markers, FileKind, Finding, LIBRARY_CRATES};
use crate::walk::WorkspaceFile;

pub mod atomics;
pub mod exhaustive;
pub mod locks;
pub mod wire;

/// Everything the semantic rules query: per-file symbol indexes plus the
/// authoritative documentation the rules cross-check against.
pub struct SemContext<'a> {
    /// Indexes of every library file in the linted crates.
    pub indexes: Vec<FileIndex<'a>>,
    /// `DESIGN.md` contents (lock-order table), when present.
    pub design_md: Option<String>,
    /// `SERVE.md` contents (wire catalogue), when present.
    pub serve_md: Option<String>,
}

impl<'a> SemContext<'a> {
    /// The index for one workspace-relative path.
    pub fn index_of(&self, rel: &str) -> Option<&FileIndex<'a>> {
        self.indexes.iter().find(|i| i.file.rel == rel)
    }

    /// Indexes of the serve crate's library files.
    pub fn serve_libs(&self) -> impl Iterator<Item = &FileIndex<'a>> {
        self.indexes.iter().filter(|i| i.file.crate_name == "serve")
    }
}

/// Runs L6–L9 over the workspace, reading `DESIGN.md`/`SERVE.md` from
/// `root`. Findings are unsorted; the caller merges and sorts.
pub fn check_workspace(root: &Path, files: &[WorkspaceFile]) -> Vec<Finding> {
    let design_md = std::fs::read_to_string(root.join("DESIGN.md")).ok();
    let serve_md = std::fs::read_to_string(root.join("SERVE.md")).ok();
    check_files(files, design_md, serve_md)
}

/// [`check_workspace`] with the documentation passed in directly — the
/// entry point fixture tests use (no on-disk workspace needed).
pub fn check_files(
    files: &[WorkspaceFile],
    design_md: Option<String>,
    serve_md: Option<String>,
) -> Vec<Finding> {
    let indexes: Vec<FileIndex<'_>> = files
        .iter()
        .filter(|f| f.kind == FileKind::Lib && LIBRARY_CRATES.contains(&f.crate_name.as_str()))
        .filter_map(FileIndex::build)
        .collect();
    let ctx = SemContext {
        indexes,
        design_md,
        serve_md,
    };

    let mut findings = Vec::new();
    findings.extend(locks::check(&ctx));
    findings.extend(atomics::check(&ctx));
    findings.extend(wire::check(&ctx));
    findings.extend(exhaustive::check(&ctx));

    // Apply `lint:allow` markers, per file, with the same same-line-or-next
    // semantics as the per-line engine.
    for idx in &ctx.indexes {
        let allows = allow_markers(&idx.tokens);
        if allows.is_empty() {
            continue;
        }
        findings.retain(|f| {
            f.file != idx.file.rel
                || !allows
                    .iter()
                    .any(|(line, rule)| *rule == f.rule && (f.line == *line || f.line == *line + 1))
        });
    }
    findings
}

/// Kebab-case wire-code shape: lowercase alphanumerics joined by `-`,
/// at least one hyphen (`seq-gap`, `unknown-tenant`).
pub(crate) fn is_kebab(s: &str) -> bool {
    s.contains('-')
        && !s.starts_with('-')
        && !s.ends_with('-')
        && !s.contains("--")
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
}

/// Single lowercase word (wire `"type"` shape: `hello`, `tick`).
pub(crate) fn is_word(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_lowercase())
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}
