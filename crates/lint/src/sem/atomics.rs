//! L7 `atomic-ordering`: the metrics registry's documented invariant is
//! that atomics are *counters*, not synchronization — every access uses
//! `Ordering::Relaxed`, and cross-thread visibility is provided by the
//! mutexes around them (DESIGN.md). Two checks enforce that:
//!
//! * Any `Ordering::X` with `X` stronger than `Relaxed` must be on the
//!   per-file allowlist below. Only the five atomic orderings are
//!   matched, so `cmp::Ordering::Less` and friends never fire.
//! * A read-modify-write split across two calls — the same receiver
//!   `.load(…)`-ed and separately `.store(…)`/`.swap(…)`-ed inside one
//!   function — is a lost-update window; `fetch_add`/`fetch_max` keep the
//!   counter exact under concurrency.

use crate::lexer::TokenKind;
use crate::rules::{Finding, RuleId};

use super::SemContext;

/// The atomic memory orderings (and nothing else — `cmp::Ordering`
/// variants must not match).
const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// `(file, ordering)` pairs allowed beyond `Relaxed`, each with a reason
/// the catalogue in LINT.md repeats: the serve shutdown flag is a
/// cross-thread control signal, not a counter, and uses `SeqCst` so the
/// drain path's store is visible to the worker and metrics threads
/// without reasoning about fences.
const ALLOWED: [(&str, &str); 1] = [("crates/serve/src/server.rs", "SeqCst")];

/// Atomic writer methods that pair with `.load` into an RMW split.
const WRITE_METHODS: [&str; 2] = ["store", "swap"];

pub fn check(ctx: &SemContext<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for idx in &ctx.indexes {
        let toks = &idx.tokens;
        let code: Vec<usize> = (0..toks.len())
            .filter(|&i| toks[i].kind != TokenKind::Comment)
            .collect();
        let text = |ci: usize| code.get(ci).map(|&i| toks[i].text).unwrap_or("");

        // Non-Relaxed orderings outside the allowlist.
        for (ci, &i) in code.iter().enumerate() {
            if idx.test_mask.get(i).copied().unwrap_or(false) {
                continue;
            }
            if toks[i].kind == TokenKind::Ident
                && toks[i].text == "Ordering"
                && text(ci + 1) == "::"
                && ATOMIC_ORDERINGS.contains(&text(ci + 2))
            {
                let ord = text(ci + 2);
                if ord == "Relaxed" {
                    continue;
                }
                let allowed = ALLOWED.iter().any(|(f, o)| *f == idx.file.rel && *o == ord);
                if !allowed {
                    findings.push(Finding {
                        rule: RuleId::AtomicOrdering,
                        file: idx.file.rel.clone(),
                        line: toks[i].line,
                        message: format!(
                            "`Ordering::{ord}` outside the Relaxed-only atomics contract — counters \
                             are Relaxed by design; synchronization belongs to the mutexes \
                             (allowlist: sem::atomics)"
                        ),
                    });
                }
            }
        }

        // RMW splits, per function.
        for item in &idx.fns {
            if item.in_test {
                continue;
            }
            let body: Vec<usize> = idx.code_in(item.body).collect();
            let btext = |ci: usize| body.get(ci).map(|&i| toks[i].text).unwrap_or("");
            let mut loads: Vec<&str> = Vec::new();
            let mut writes: Vec<(&str, &str, u32)> = Vec::new();
            for (ci, &i) in body.iter().enumerate() {
                if toks[i].kind != TokenKind::Ident || btext(ci + 1) != "." {
                    continue;
                }
                let m = btext(ci + 2);
                if btext(ci + 3) != "(" {
                    continue;
                }
                if m == "load" {
                    loads.push(toks[i].text);
                } else if WRITE_METHODS.contains(&m) {
                    writes.push((toks[i].text, m, toks[i].line));
                }
            }
            for (recv, m, line) in writes {
                if loads.contains(&recv) {
                    findings.push(Finding {
                        rule: RuleId::AtomicOrdering,
                        file: idx.file.rel.clone(),
                        line,
                        message: format!(
                            "atomic `{recv}` is `.load`-ed and separately `.{m}`-ed in `{}` — a \
                             lost-update window; use a single `fetch_*` read-modify-write",
                            item.name
                        ),
                    });
                    break;
                }
            }
        }
    }
    findings
}
